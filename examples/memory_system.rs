//! The secondary memory system: NUCA latency, configurable mappings,
//! and a DMA transfer — the §3.6 substrate.
//!
//! ```sh
//! cargo run --release --example memory_system
//! ```

use trips::mem::{DmaEngine, DmaJob, MemConfig, MemMode, MemReq, SecondarySystem};

fn fetch_line(l2: &mut SecondarySystem, t0: u64, port: usize, addr: u64) -> u64 {
    l2.request(t0, port, MemReq::read_line(1, addr));
    let mut t = t0;
    loop {
        l2.tick(t);
        t += 1;
        if l2.pop_response(t, port).is_some() {
            return t - t0;
        }
        assert!(t < t0 + 10_000, "memory system hung");
    }
}

fn main() {
    // 1. NUCA: the same port sees different latencies to different
    //    banks — and misses cost a DRAM trip.
    let mut l2 = SecondarySystem::new(MemConfig::prototype());
    let near = 0u64; // homed in the bank nearest port 0
    let far = 7 * 64; // homed eight rows away
    println!("NUCA latencies from port 0 (cycles):");
    println!("  near bank, cold: {:>4}", fetch_line(&mut l2, 0, 0, near));
    println!("  near bank, warm: {:>4}", fetch_line(&mut l2, 10_000, 0, near));
    println!("  far bank,  cold: {:>4}", fetch_line(&mut l2, 20_000, 0, far));
    println!("  far bank,  warm: {:>4}", fetch_line(&mut l2, 30_000, 0, far));

    // 2. Scratchpad mode: no tags, no misses.
    let mut sp =
        SecondarySystem::new(MemConfig { mode: MemMode::Scratchpad, ..MemConfig::prototype() });
    println!("scratchpad, first touch: {:>4}", fetch_line(&mut sp, 0, 0, 0x7_0000));
    assert_eq!(sp.dram_accesses, 0);

    // 3. DMA: move 4 KB between regions through the OCN.
    let mut l2 = SecondarySystem::new(MemConfig::prototype());
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    l2.write_backing(0x10_0000, &payload);
    let mut dma = DmaEngine::new(5);
    dma.start(DmaJob { src: 0x10_0000, dst: 0x20_0000, bytes: 4096 });
    let mut t = 0;
    while !dma.idle() {
        dma.tick(t, &mut l2);
        l2.tick(t);
        t += 1;
    }
    let mut out = vec![0u8; 4096];
    l2.read_backing(0x20_0000, &mut out);
    assert_eq!(out, payload);
    println!("DMA moved {} lines in {} cycles", dma.lines_moved, t);
}
