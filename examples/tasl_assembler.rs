//! Write a TRIPS block in textual assembly, assemble it, and run it —
//! the lowest-friction way to experiment with EDGE dataflow by hand.
//!
//! ```sh
//! cargo run --release --example tasl_assembler
//! ```

use trips::core::{CoreConfig, Processor};
use trips::isa::{asm::assemble_block, disassemble, ProgramImage};

const PROGRAM: &str = "
    ; Sum the three words at 0x20_0000 and store the total after them.
    ; Dataflow: three loads feed an add tree; the result goes to the
    ; store whose address comes from a generated constant.
    N[0]  genu #32    N[1,L]          ; address high bits (0x20 << 16)
    N[1]  app #0      N[34,L]         ; base = 0x20_0000 (C format: one target)
    N[34] mov         N[4,L] N[33,L]  ; fan the base out with movs
    N[33] mov         N[5,L] N[6,L]
    N[4]  ld #0  [lsid=0] N[8,L]
    N[5]  ld #8  [lsid=1] N[8,R]
    N[6]  ld #16 [lsid=2] N[9,R]
    N[8]  add         N[9,L]
    N[9]  add         N[10,L]
    N[10] mov         N[12,R]         ; value to the store's data
    N[32] genu #32    N[11,L]
    N[11] app #24     N[12,L]         ; store address = 0x20_0018
    N[12] sd #0  [lsid=3]
    N[35] halt exit=0 offset=0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let block = assemble_block(PROGRAM)?;
    println!("assembled and validated:\n{}", disassemble(&block));

    let mut img = ProgramImage::new();
    img.entry = 0x1_0000;
    img.add_block(0x1_0000, &block);
    let mut data = Vec::new();
    for w in [100u64, 20, 3] {
        data.extend_from_slice(&w.to_le_bytes());
    }
    img.add_segment(0x20_0000, data);

    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&img, 100_000)?;
    let sum = cpu.memory().read_u64(0x20_0018);
    println!("100 + 20 + 3 = {sum} in {} cycles", stats.cycles);
    assert_eq!(sum, 123);
    Ok(())
}
