//! Quickstart: compile a benchmark for the TRIPS core, run it, and
//! inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trips::core::{CoreConfig, Processor};
use trips::tasm::Quality;
use trips::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick a benchmark from the paper's suite and compile it at both
    // code-quality levels.
    let wl = suite::by_name("vadd").expect("vadd is registered");
    for quality in [Quality::Compiled, Quality::Hand] {
        let compiled = wl.build_trips(quality)?;
        println!(
            "vadd ({quality}): {} blocks, {:.1} useful instructions per block",
            compiled.stats.blocks, compiled.stats.avg_block_size
        );

        let mut cpu = Processor::new(CoreConfig::prototype());
        let stats = cpu.run(&compiled.image, 10_000_000)?;
        println!(
            "  {} cycles, {} blocks committed, IPC {:.2}, \
             {} flushes, OPN avg hops {:.2}",
            stats.cycles,
            stats.blocks_committed,
            stats.ipc(),
            stats.branch_flushes + stats.violation_flushes,
            stats.opn.avg_hops(),
        );

        // The result is real data: c[i] = a[i] + b[i] in f64.
        let c0 = f64::from_bits(cpu.memory().read_u64(0x10_0000));
        println!("  c[0] = {c0:.4}");
    }
    Ok(())
}
