//! The paper's motivating scenario: signal-processing kernels on a
//! wide-issue distributed core. Runs the kernel suite on both machines
//! and prints the comparison rows of Table 3's right half.
//!
//! ```sh
//! cargo run --release --example signal_processing
//! ```

use trips::alpha::{AlphaConfig, AlphaCore};
use trips::core::{CoreConfig, Processor};
use trips::tasm::Quality;
use trips::workloads::{suite, Class};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "kernel", "alpha cyc", "trips cyc", "speedup", "ipc(A)", "ipc(T)"
    );
    for wl in suite::all() {
        if wl.class != Class::Kernel {
            continue;
        }
        let risc = wl.build_risc()?;
        let mut alpha = AlphaCore::new(AlphaConfig::alpha21264(), &risc)?;
        let a = alpha.run(100_000_000)?;

        let image = wl.build_trips(Quality::Hand)?.image;
        let mut trips = Processor::new(CoreConfig::prototype());
        let t = trips.run(&image, 100_000_000)?;

        println!(
            "{:<10} {:>10} {:>10} {:>8.2}x {:>9.2} {:>9.2}",
            wl.name,
            a.cycles,
            t.cycles,
            a.cycles as f64 / t.cycles as f64,
            a.ipc(),
            t.ipc()
        );
    }
    println!();
    println!(
        "The TRIPS core wins where blocks expose concurrency to the 16-wide \
         grid (cfar, ct) and loses where the dependence chain is serial — \
         the paper's own conclusion (§5.4)."
    );
    Ok(())
}
