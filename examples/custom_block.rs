//! Hand-construct an EDGE block at the ISA level — the Figure 5a
//! example of the paper — and execute it on the cycle-level core.
//!
//! This is the lowest-level public API: explicit dataflow targets,
//! predication, nullified stores, and the block header's store mask.
//!
//! ```sh
//! cargo run --release --example custom_block
//! ```

use trips::core::{CoreConfig, Processor};
use trips::isa::{
    disassemble, ArchReg, Instruction, Opcode, Pred, ProgramImage, ReadInst, Target, TripsBlock,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = TripsBlock::new();

    // R[0]: read R4, fan out to the test and the multiply.
    b.set_read(0, ReadInst::new(ArchReg::new(4), [Target::left(1), Target::left(2)]))?;

    // N[0] movi #0           -> right operand of the test
    b.push(Instruction::movi(0, [Target::right(1), Target::none()]))?;
    // N[1] teq               -> predicates of both arms
    b.push(Instruction::op(Opcode::Teq, [Target::pred(2), Target::pred(3)]))?;
    // N[2] p_f muli #4       -> address of the load (false arm)
    b.push(
        Instruction::opi(Opcode::Muli, 4, [Target::left(32), Target::none()])
            .with_pred(Pred::OnFalse),
    )?;
    // N[3] p_t null          -> nullifies the store (true arm)
    b.push(
        Instruction::op(Opcode::Null, [Target::left(34), Target::right(34)])
            .with_pred(Pred::OnTrue),
    )?;
    for _ in 4..32 {
        b.push(Instruction::nop())?;
    }
    // N[32] lw #8            -> loaded value to the mov
    b.push(Instruction::load(Opcode::Lw, 0, 8, Target::left(33)))?;
    // N[33] mov              -> fans the value to both store operands
    b.push(Instruction::op(Opcode::Mov, [Target::left(34), Target::right(34)]))?;
    // N[34] sw — receives either real operands or nulls
    b.push(Instruction::store(Opcode::Sw, 1, 0))?;
    // N[35] — the block's one branch (halt stands in for the callo)
    b.push(Instruction::branch(Opcode::Halt, 0, 0))?;
    b.header.store_mask = 1 << 1; // LSID 1 is a store
    b.validate()?;

    println!("{}", disassemble(&b));

    let mut img = ProgramImage::new();
    img.entry = 0x1_0000;
    img.add_block(0x1_0000, &b);
    img.add_segment(0x20_0000, (0..64).collect());

    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&img, 100_000)?;
    println!(
        "R4 = 0, so the teq predicate is true: the null path fired. \
         {} instructions executed, {} memory stores performed.",
        stats.insts_committed, stats.stores
    );
    Ok(())
}
