//! # trips — a reproduction of the TRIPS prototype processor
//!
//! This umbrella crate re-exports the component crates of the TRIPS
//! reproduction, a cycle-level model of the distributed, tiled,
//! EDGE-ISA processor described in *Distributed Microarchitectural
//! Protocols in the TRIPS Prototype Processor* (MICRO-39, 2006).
//!
//! ## Components
//!
//! * [`isa`] — the EDGE instruction set: instruction formats, block
//!   containers, binary encoding, and the disassembler.
//! * [`micronet`] — the micronetwork substrate: the deterministic
//!   simulation kernel, the operand network (OPN) wormhole router, the
//!   six control networks, and the on-chip network (OCN).
//! * [`tasm`] — the block toolchain: a small typed IR, hyperblock
//!   formation, the spatial scheduler, and the TRIPS/RISC backends.
//! * [`core`] — the processor core: the five tile types and the
//!   distributed fetch / execution / flush / commit protocols, plus the
//!   critical-path analyzer.
//! * [`mem`] — the secondary memory system: NUCA L2 memory tiles on the
//!   OCN, network interface tiles, and the DRAM controller model.
//! * [`alpha`] — the baseline comparator: an Alpha-21264-like
//!   out-of-order core running a conventional RISC ISA.
//! * [`workloads`] — the benchmark suite of the paper's evaluation,
//!   re-implemented for both ISAs.
//! * [`area`] — the area and floorplan model regenerating the paper's
//!   physical-design tables.
//!
//! ## Quickstart
//!
//! ```
//! use trips::core::{CoreConfig, Processor};
//! use trips::tasm::Quality;
//! use trips::workloads::suite;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wl = suite::by_name("vadd").expect("registered benchmark");
//! let image = wl.build_trips(Quality::Hand)?.image;
//! let mut cpu = Processor::new(CoreConfig::prototype());
//! let stats = cpu.run(&image, 2_000_000)?;
//! assert!(stats.blocks_committed > 0);
//! println!("vadd: {} cycles, IPC {:.2}", stats.cycles, stats.ipc());
//! # Ok(())
//! # }
//! ```

pub use trips_alpha as alpha;
pub use trips_area as area;
pub use trips_core as core;
pub use trips_isa as isa;
pub use trips_mem as mem;
pub use trips_micronet as micronet;
pub use trips_tasm as tasm;
pub use trips_workloads as workloads;
