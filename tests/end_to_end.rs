//! Cross-crate integration tests: the toolchain, the cycle-level
//! core, the baseline, and the protocols' timing claims.

use trips::alpha::{AlphaConfig, AlphaCore};
use trips::core::{CoreConfig, Processor};
use trips::tasm::{blockinterp, compile, interp, Quality};
use trips::workloads::{suite, Variant};

/// A full four-way agreement run on a representative benchmark.
#[test]
fn four_way_agreement_on_cfar() {
    let wl = suite::by_name("cfar").expect("registered");
    let (prog, cells) = wl.ir(Variant::Hand);
    let reference = interp::run(&prog, 10_000_000).expect("ir interp");

    let compiled = compile(&prog, Quality::Hand).expect("compiles");
    let bi = blockinterp::run_image(&compiled.image, 1_000_000).expect("block interp");
    let mut cpu = Processor::new(CoreConfig::prototype());
    cpu.run(&compiled.image, 50_000_000).unwrap_or_else(|e| panic!("core: {e}"));

    let risc = wl.build_risc().expect("risc");
    let mut alpha = AlphaCore::new(AlphaConfig::alpha21264(), &risc).expect("valid");
    alpha.run(50_000_000).expect("alpha");

    for &c in &cells {
        let want = reference.mem.read_u64(c);
        assert_eq!(bi.mem.read_u64(c), want, "block interp at {c:#x}");
        assert_eq!(cpu.memory().read_u64(c), want, "core at {c:#x}");
        assert_eq!(alpha.memory().read_u64(c), want, "alpha at {c:#x}");
    }
}

/// §4.1: back-to-back block fetches sustain one dispatch every eight
/// cycles, and a block's first instructions reach their tiles about
/// ten cycles after the fetch begins.
#[test]
fn fetch_protocol_cadence() {
    let wl = suite::by_name("vadd").expect("registered");
    let image = wl.build_trips(Quality::Compiled).expect("compiles").image;
    // The eight-cycle cadence is a property of the paper's 4x4 die
    // (beats = 128 insts / 16 ETs), so pin the geometry rather than
    // following TRIPS_GEOMETRY.
    let mut cpu = Processor::new(CoreConfig::prototype_pinned());
    let stats = cpu.run(&image, 10_000_000).unwrap_or_else(|e| panic!("{e}"));

    let tl = &stats.timeline;
    assert!(tl.len() >= 8, "need a stream of blocks, got {}", tl.len());
    // Dispatch commands never come closer than eight cycles apart.
    let mut deltas = Vec::new();
    for w in tl.windows(2) {
        let d = w[1].dispatch.saturating_sub(w[0].dispatch);
        assert!(d >= 8, "dispatch cadence violated: {d} cycles between blocks");
        deltas.push(d);
    }
    // In steady state the cadence reaches exactly eight.
    assert!(
        deltas.iter().filter(|&&d| d == 8).count() >= deltas.len() / 2,
        "steady-state cadence should be 8 cycles: {deltas:?}"
    );
    // The fetch pipeline in front of dispatch is five cycles
    // (2 tag + 3 predict) once caches are warm.
    let warm = &tl[4..];
    assert!(
        warm.iter().any(|t| t.dispatch - t.fetch <= 8),
        "warm fetch-to-dispatch should be a few cycles"
    );
}

/// §4.4: commits pipeline — a successor's fetch overlaps its
/// predecessor's commit round trip.
#[test]
fn commit_pipeline_overlaps() {
    let wl = suite::by_name("matrix").expect("registered");
    let image = wl.build_trips(Quality::Compiled).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&image, 50_000_000).unwrap_or_else(|e| panic!("{e}"));
    let tl = &stats.timeline;
    let overlapping = tl.windows(2).filter(|w| w[1].fetch < w[0].ack).count();
    assert!(
        overlapping * 2 > tl.len(),
        "most block pairs should overlap fetch with predecessor commit"
    );
    for t in tl {
        assert!(t.fetch <= t.dispatch);
        assert!(t.dispatch < t.complete);
        assert!(t.complete <= t.commit);
        assert!(t.commit < t.ack);
    }
}

/// The §5.2 observation that the replicated LSQs are heavily
/// over-provisioned: peak occupancy stays a small fraction of the
/// 4 × 256 entries.
#[test]
fn lsq_occupancy_stays_low() {
    let wl = suite::by_name("vadd").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&image, 10_000_000).unwrap_or_else(|e| panic!("{e}"));
    assert!(stats.lsq_peak_occupancy > 0);
    assert!(
        stats.lsq_peak_occupancy <= 256 / 4 * 4,
        "peak LSQ occupancy {} should stay well under the 256-entry copies",
        stats.lsq_peak_occupancy
    );
}

/// Doubling operand-network bandwidth never hurts and usually helps
/// communication-bound kernels (the §7 extension).
#[test]
fn second_opn_does_not_hurt() {
    let wl = suite::by_name("conv").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut base = Processor::new(CoreConfig::prototype());
    let b = base.run(&image, 50_000_000).unwrap_or_else(|e| panic!("{e}"));
    let mut wide = Processor::new(CoreConfig { opn_networks: 2, ..CoreConfig::prototype() });
    let w = wide.run(&image, 50_000_000).unwrap_or_else(|e| panic!("{e}"));
    assert!(w.cycles <= b.cycles + b.cycles / 20, "2x OPN regressed: {} vs {}", w.cycles, b.cycles);
}

/// `Processor::run` fully resets per-run state: running the same
/// image twice on one processor gives identical results and stats.
#[test]
fn back_to_back_runs_reset_state() {
    let wl = suite::by_name("vadd").expect("registered");
    let (_, cells) = wl.ir(Variant::Hand);
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    let first = cpu.run(&image, 10_000_000).unwrap_or_else(|e| panic!("first: {e}"));
    let mem_first: Vec<u64> = cells.iter().map(|&c| cpu.memory().read_u64(c)).collect();
    let second = cpu.run(&image, 10_000_000).unwrap_or_else(|e| panic!("second: {e}"));
    let mem_second: Vec<u64> = cells.iter().map(|&c| cpu.memory().read_u64(c)).collect();
    assert_eq!(first.cycles, second.cycles, "stale state changed timing");
    assert_eq!(first.blocks_committed, second.blocks_committed);
    assert_eq!(mem_first, mem_second, "stale state changed results");
}

/// When the core quiesces, the flight recorder agrees: every operand
/// injected into the OPN was also ejected.
#[test]
fn quiesced_core_has_balanced_opn_traffic() {
    let wl = suite::by_name("vadd").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    cpu.enable_tracing(1 << 14);
    cpu.run(&image, 10_000_000).unwrap_or_else(|e| panic!("{e}"));
    assert!(cpu.quiesced(), "halted core should have drained:\n{}", cpu.diagnose());
    let t = cpu.tracer();
    assert!(t.opn_injected > 0, "vadd must use the operand network");
    assert_eq!(
        t.opn_injected, t.opn_ejected,
        "quiesced core must have ejected every injected operand"
    );
    assert!(!t.is_empty(), "tracing was enabled, events expected");
}

/// A timeout carries the hang diagnosis: the report names the stuck
/// frames and where their work is held.
#[test]
fn timeout_reports_where_the_hang_is() {
    let wl = suite::by_name("matrix").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    // Far too few cycles: the first blocks are still mid-flight.
    let err = cpu.run(&image, 30).expect_err("30 cycles cannot finish matrix");
    let text = format!("{err}");
    assert!(text.contains("timeout after 30 cycles"), "{text}");
    assert!(text.contains("frame "), "report should name a stuck frame:\n{text}");
    assert!(text.contains("waiting on"), "report should say what each frame waits on:\n{text}");
    // Something — a tile or a micronetwork — must be named as holding
    // undelivered work this early in the run.
    let names_holder = ["IT", "RT", "ET", "DT", "GDN", "OPN", "GSN", "GCN", "GRN", "DSN"]
        .iter()
        .any(|k| text.contains(k));
    assert!(names_holder, "report should name the tile/net holding work:\n{text}");
}

/// The compiled/hand quality axis behaves as the paper describes:
/// hand code has larger blocks and runs faster.
#[test]
fn hand_quality_beats_compiled() {
    for name in ["vadd", "cfar", "conv", "matrix"] {
        let wl = suite::by_name(name).expect("registered");
        let hand = wl.build_trips(Quality::Hand).expect("hand");
        let tcc = wl.build_trips(Quality::Compiled).expect("tcc");
        assert!(
            hand.stats.avg_block_size > tcc.stats.avg_block_size,
            "{name}: hand blocks should be larger"
        );
        let mut cpu = Processor::new(CoreConfig::prototype());
        let h = cpu.run(&hand.image, 100_000_000).unwrap_or_else(|e| panic!("hand run: {e}"));
        let t = cpu.run(&tcc.image, 100_000_000).unwrap_or_else(|e| panic!("tcc run: {e}"));
        assert!(h.cycles < t.cycles, "{name}: hand {} vs tcc {}", h.cycles, t.cycles);
    }
}
