//! The coherent shared-memory chip (DESIGN.md §5g).
//!
//! Three properties pin `ChipConfig::shared_memory`:
//!
//! 1. **Correctness** — every shared-memory workload's final state
//!    matches its sequential oracle on every core's replica, with the
//!    coherence invariant suite (SWMR, directory/cache agreement,
//!    message conservation) checked every tick.
//! 2. **Replica convergence** — after the run, all cores' memory
//!    replicas are byte-identical: the value plane applied every
//!    drained store to every replica in one global order.
//! 3. **Non-vacuousness** — the runs actually exercise the protocol:
//!    GetS/GetM traffic, invalidations sent and received, and a
//!    populated [`CohSnapshot`] in the chip stats.
//!
//! The off-gate (shared_memory=false bit-identical to the
//! multiprogrammed chip) lives in `chip_equivalence.rs` with the rest
//! of the chip seam.

use trips_core::{Chip, ChipConfig, ChipStats, CoreConfig, MemBackend};
use trips_isa::ProgramImage;
use trips_mem::MemConfig;
use trips_tasm::{compile, BbId, FuncId, Opcode, ProgramBuilder, Quality};
use trips_workloads::shared::SharedProgram;
use trips_workloads::suite;

const MAX_CYCLES: u64 = 20_000_000;

/// Runs a shared-memory chip and checks the oracle against **every**
/// core's replica, plus replica convergence.
fn run_shared(
    images: &[ProgramImage],
    expected: &[(u64, u64)],
    check_invariants: bool,
    name: &str,
) -> (ChipStats, Chip) {
    let n = images.len();
    let core = CoreConfig {
        check_invariants,
        mem_backend: MemBackend::nuca_prototype(),
        ..CoreConfig::prototype()
    };
    let mut cfg = ChipConfig::with_cores(n, core, MemConfig::prototype());
    cfg.shared_memory = true;
    let mut chip = Chip::new(cfg);
    let stats = chip.run(images, MAX_CYCLES).unwrap_or_else(|e| panic!("{name}: {e}"));
    for &(addr, want) in expected {
        for k in 0..n {
            assert_eq!(
                chip.core(k).memory().read_u64(addr),
                want,
                "{name}: core {k}'s replica disagrees with the sequential oracle at {addr:#x}"
            );
        }
    }
    for k in 1..n {
        assert_eq!(
            chip.core(0).memory(),
            chip.core(k).memory(),
            "{name}: core {k}'s replica diverged from core 0's"
        );
    }
    (stats, chip)
}

fn run_workload(name: &str, ncores: usize) -> ChipStats {
    let wl = suite::shared_by_name(name).expect("registered");
    let SharedProgram { images, expected } = (wl.gen)(ncores);
    run_shared(&images, &expected, true, &format!("{name}x{ncores}")).0
}

/// A directed two-core ping-pong over **one** cache line: data, both
/// flags, and the reply all live in 0x40_0000..0x40_0038, so the line
/// bounces I→M (core 0 writes), M→S→M (core 1 reads then replies),
/// and back, exercising both invalidation directions and the deferred
/// write-ack path on the smallest possible footprint.
#[test]
fn two_core_one_line_ping_pong_matches_the_sequential_oracle() {
    const LINE: u64 = 0x40_0000;
    const DATA: i32 = 0; // core 0's payload
    const FLAG1: i32 = 8; // core 0 published
    const REPLY: i32 = 16; // core 1's payload
    const FLAG2: i32 = 24; // core 1 published
    const OUT: i32 = 32; // core 0's copy of the reply

    let mut p = ProgramBuilder::new();
    {
        let mut f = p.func("ping", 0);
        let lp = f.iconst(LINE as i64);
        let v = f.iconst(42);
        f.store(Opcode::Sd, lp, DATA, v);
        let one = f.iconst(1);
        f.store(Opcode::Sd, lp, FLAG1, one);
        let spin = f.new_block();
        let take = f.new_block();
        f.jmp(spin);
        f.switch_to(spin);
        let g = f.load(Opcode::Ld, lp, FLAG2);
        let up = f.bini(Opcode::Teqi, g, 1);
        f.br(up, take, spin);
        f.switch_to(take);
        let r = f.load(Opcode::Ld, lp, REPLY);
        f.store(Opcode::Sd, lp, OUT, r);
        f.halt();
        f.finish();
    }
    {
        let mut f = p.func("pong", 0);
        let lp = f.iconst(LINE as i64);
        let spin = f.new_block();
        let reply = f.new_block();
        f.jmp(spin);
        f.switch_to(spin);
        let g = f.load(Opcode::Ld, lp, FLAG1);
        let up = f.bini(Opcode::Teqi, g, 1);
        f.br(up, reply, spin);
        f.switch_to(reply);
        let v = f.load(Opcode::Ld, lp, DATA);
        let d = f.bin(Opcode::Add, v, v);
        f.store(Opcode::Sd, lp, REPLY, d);
        let one = f.iconst(1);
        f.store(Opcode::Sd, lp, FLAG2, one);
        f.halt();
        f.finish();
    }
    let compiled = compile(&p.finish(), Quality::Compiled).expect("compiles");
    let images: Vec<ProgramImage> = (0..2)
        .map(|k| {
            let entry = compiled
                .blocks
                .iter()
                .find(|b| b.func == FuncId(k) && b.head == BbId(0))
                .expect("entry placed")
                .addr;
            let mut image = compiled.image.clone();
            image.entry = entry;
            image
        })
        .collect();
    let expected = [
        (LINE, 42),
        (LINE + FLAG1 as u64, 1),
        (LINE + REPLY as u64, 84),
        (LINE + FLAG2 as u64, 1),
        (LINE + OUT as u64, 84),
    ];
    let (stats, _) = run_shared(&images, &expected, true, "ping-pong");
    let coh = stats.coherence.expect("a shared-memory run reports a coherence snapshot");
    assert!(coh.getms > 0, "both cores wrote the line — the directory must have seen GetM");
    assert!(
        coh.invals_sent > 0 && coh.invals_sent == coh.inval_acks,
        "the line changed writers, so invalidations flowed and were all acknowledged: {coh:?}"
    );
}

#[test]
fn shared_workloads_match_their_sequential_oracles_on_a_dual_die() {
    for wl in suite::shared_memory() {
        run_workload(wl.name, 2);
    }
}

#[test]
fn shared_workloads_match_their_sequential_oracles_on_a_quad_die() {
    for wl in suite::shared_memory() {
        run_workload(wl.name, 4);
    }
}

#[test]
fn shared_runs_are_deterministic() {
    let wl = suite::shared_by_name("pcring").expect("registered");
    let SharedProgram { images, expected } = (wl.gen)(2);
    let (s1, c1) = run_shared(&images, &expected, false, "pcring-run1");
    let (s2, c2) = run_shared(&images, &expected, false, "pcring-run2");
    assert_eq!(s1, s2, "ChipStats must be bit-identical across shared-memory reruns");
    for k in 0..2 {
        assert_eq!(c1.core(k).memory(), c2.core(k).memory(), "core {k} replica diverged");
    }
}

#[test]
fn coherence_traffic_is_not_vacuous() {
    // lockcount bounces two lines between every core T times, so each
    // core must both *send* (via its GetMs) and *receive*
    // invalidations, and the run must exercise read sharing (GetS).
    let stats = run_workload("lockcount", 2);
    let coh = stats.coherence.expect("snapshot present");
    assert!(coh.gets > 0, "spin loads must miss to GetS at least once: {coh:?}");
    assert!(coh.getms > 0, "counter/turn stores must GetM: {coh:?}");
    assert!(coh.invals_sent > 0, "ownership churn must invalidate: {coh:?}");
    assert_eq!(coh.invals_sent, coh.inval_acks, "every invalidation is acknowledged: {coh:?}");
    for (k, core) in stats.cores.iter().enumerate() {
        let mem = core.mem.as_ref().expect("NUCA stats present");
        assert!(mem.invals_received > 0, "core {k} never received an invalidation");
    }
}
