//! Randomized differential testing: randomly generated programs must
//! produce identical memory on the IR interpreter, the architectural
//! block interpreter, and the cycle-level core, at both code-quality
//! levels, with the clock-gated tick scheduler both on and off, with
//! the fused GT frame pass both on and off, and on every core of 1-,
//! 2- and 4-core chips sharing one NUCA.
//! (Seeded generation via `trips_harness::Rng`; the environment has no
//! crates.io access so `proptest` is unavailable.)

use trips::core::{Chip, ChipConfig, CoreConfig, CoreGeometry, FaultPlan, Processor};
use trips::isa::Opcode;
use trips::tasm::{blockinterp, compile, interp, ProgramBuilder, Quality, VReg};
use trips_harness::Rng;

const OUT: u64 = 0x10_0000;

/// A tiny random-program AST the generator draws from.
#[derive(Debug, Clone)]
enum Step {
    Bin(u8, usize, usize),
    BinImm(u8, usize, i64),
    Const(i64),
    LoadStore { slot: u8 },
    Diamond { cond_src: usize, then_mul: i64, else_add: i64 },
}

fn bin_op(code: u8) -> Opcode {
    [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
    ][code as usize % 8]
}

fn imm_op(code: u8) -> Opcode {
    [
        Opcode::Addi,
        Opcode::Subi,
        Opcode::Muli,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Teqi,
        Opcode::Tlti,
    ][code as usize % 8]
}

fn random_step(rng: &mut Rng) -> Step {
    match rng.range_u8(0, 5) {
        0 => Step::Bin(rng.next_u32() as u8, rng.range_usize(0, 8), rng.range_usize(0, 8)),
        1 => Step::BinImm(rng.next_u32() as u8, rng.range_usize(0, 8), rng.range_i64(-4000, 4000)),
        2 => Step::Const(rng.range_i64(-100_000, 100_000)),
        3 => Step::LoadStore { slot: rng.range_u8(0, 6) },
        _ => Step::Diamond {
            cond_src: rng.range_usize(0, 8),
            then_mul: rng.range_i64(1, 5),
            else_add: rng.range_i64(-5, 5),
        },
    }
}

/// Builds an IR program from the random steps. A pool of eight live
/// values rotates; every step's result lands in the pool and is also
/// stored to a distinct output cell so the differential check observes
/// everything.
fn build_program(steps: &[Step]) -> (trips::tasm::Program, Vec<u64>) {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("random", 0);
    let mut pool: Vec<VReg> = (0..8)
        .map(|i| {
            let v = f.fresh();
            f.iconst_into(v, (i * 37 + 5) as i64);
            v
        })
        .collect();
    let out = f.iconst(OUT as i64);
    let mut cells = Vec::new();

    for (n, s) in steps.iter().enumerate() {
        let val = match s {
            Step::Bin(o, a, b) => f.bin(bin_op(*o), pool[*a], pool[*b]),
            Step::BinImm(o, a, i) => f.bini(imm_op(*o), pool[*a], *i),
            Step::Const(v) => f.iconst(*v),
            Step::LoadStore { slot } => {
                // Store a pool value then read it back: exercises the
                // LSQ's same-block ordering.
                let v = pool[*slot as usize % pool.len()];
                f.store(Opcode::Sd, out, 2040, v);
                f.load(Opcode::Ld, out, 2040)
            }
            Step::Diamond { cond_src, then_mul, else_add } => {
                let bit = f.bini(Opcode::Andi, pool[*cond_src], 1);
                let c = f.bini(Opcode::Teqi, bit, 1);
                let t = f.new_block();
                let e = f.new_block();
                let j = f.new_block();
                let r = f.fresh();
                f.br(c, t, e);
                f.switch_to(t);
                f.bini_into(r, Opcode::Muli, pool[*cond_src], *then_mul);
                f.jmp(j);
                f.switch_to(e);
                f.bini_into(r, Opcode::Addi, pool[*cond_src], *else_add);
                f.jmp(j);
                f.switch_to(j);
                r
            }
        };
        let pi = n % pool.len();
        pool[pi] = val;
        f.store(Opcode::Sd, out, n as i32 * 8, val);
        cells.push(OUT + (n as u64) * 8);
    }
    f.halt();
    f.finish();
    (p.finish(), cells)
}

#[test]
fn random_programs_agree_everywhere() {
    let mut rng = Rng::new(0xd1ff_5eed);
    for case in 0..24 {
        let steps: Vec<Step> = (0..rng.range_usize(1, 24)).map(|_| random_step(&mut rng)).collect();
        let (prog, cells) = build_program(&steps);
        prog.check().expect("generated IR is structurally valid");
        let reference = interp::run(&prog, 1_000_000).expect("ir interp");

        for q in [Quality::Compiled, Quality::Hand] {
            let compiled = compile(&prog, q).expect("compiles");
            let bi = blockinterp::run_image(&compiled.image, 100_000).expect("block interp");
            // Axes: the clock-gated scheduler and the fused GT frame
            // pass (DESIGN.md §5b), each exercised off against the
            // other's default to keep the case count linear.
            for (gate, fused_gt) in [(true, true), (false, true), (true, false)] {
                let cfg = CoreConfig { gate_ticks: gate, fused_gt, ..CoreConfig::prototype() };
                let mut cpu = Processor::new(cfg);
                cpu.run(&compiled.image, 5_000_000).unwrap_or_else(|e| {
                    panic!("core run (case {case}, {q}, gate {gate}, fused {fused_gt}): {e}")
                });
                for &c in &cells {
                    let want = reference.mem.read_u64(c);
                    assert_eq!(
                        bi.mem.read_u64(c),
                        want,
                        "block interp diverged at {c:#x} (case {case}, {q}, steps {steps:?})"
                    );
                    assert_eq!(
                        cpu.memory().read_u64(c),
                        want,
                        "core diverged at {c:#x} (case {case}, {q}, gate {gate}, \
                         fused {fused_gt}, steps {steps:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn random_programs_agree_across_geometries() {
    // The geometry axis: the same random image on the mini and
    // prototype dies — each under a seeded random fault plan folded
    // into that die's OPN mesh, invariants checked every tick — must
    // match the architectural block interpreter cell for cell. The
    // distributed protocols carry no prototype-shaped constants, so
    // shrinking the array may slow a run but never change memory.
    let mut rng = Rng::new(0x9e0d_5eed);
    for case in 0..8u64 {
        let steps: Vec<Step> = (0..rng.range_usize(1, 24)).map(|_| random_step(&mut rng)).collect();
        let (prog, cells) = build_program(&steps);
        prog.check().expect("generated IR is structurally valid");
        let compiled = compile(&prog, Quality::Hand).expect("compiles");
        let oracle = blockinterp::run_image(&compiled.image, 100_000).expect("block interp");

        for geom in [CoreGeometry::mini(), CoreGeometry::prototype()] {
            let plan = FaultPlan::random_for(0x9e0_0000 + case, geom);
            let cfg = CoreConfig {
                faults: Some(plan),
                check_invariants: true,
                ..CoreConfig::with_geometry(geom)
            };
            let mut cpu = Processor::new(cfg);
            cpu.run(&compiled.image, 10_000_000)
                .unwrap_or_else(|e| panic!("core run (case {case}, {}): {e}", geom.name()));
            for &c in &cells {
                assert_eq!(
                    cpu.memory().read_u64(c),
                    oracle.mem.read_u64(c),
                    "{} die diverged at {c:#x} (case {case}, steps {steps:?})",
                    geom.name()
                );
            }
        }
    }
}

#[test]
fn random_programs_agree_on_multicore_chips() {
    // The chip axis: the same random image on every core of an
    // n-core die must leave every core's memory identical to the IR
    // interpreter — bank contention between the twins is timing-only.
    // Fewer cases than the solo sweep: each adds up to seven NUCA
    // chip runs.
    let mut rng = Rng::new(0xc41b_5eed);
    for case in 0..8 {
        let steps: Vec<Step> = (0..rng.range_usize(1, 24)).map(|_| random_step(&mut rng)).collect();
        let (prog, cells) = build_program(&steps);
        prog.check().expect("generated IR is structurally valid");
        let reference = interp::run(&prog, 1_000_000).expect("ir interp");
        let compiled = compile(&prog, Quality::Hand).expect("compiles");

        for n in [1usize, 2, 4] {
            let mut chip = Chip::new(ChipConfig::n_cores(n));
            let images = vec![compiled.image.clone(); n];
            chip.run(&images, 5_000_000)
                .unwrap_or_else(|e| panic!("chip run (case {case}, {n} cores): {e}"));
            for k in 0..n {
                for &c in &cells {
                    assert_eq!(
                        chip.core(k).memory().read_u64(c),
                        reference.mem.read_u64(c),
                        "core {k} of {n} diverged at {c:#x} (case {case}, steps {steps:?})"
                    );
                }
            }
        }
    }
}
