//! Fault-injection regression suite.
//!
//! Every `protofuzz_repro_*` test below is a minimized reproducer that
//! the `protofuzz` fuzzer found and shrank: a seeded, timing-only
//! [`FaultPlan`] under which the core once hung or diverged from the
//! `blockinterp` architectural oracle. Fault plans perturb *when*
//! messages move, never their values and never per-link FIFO order, so
//! the §4 distributed protocols must tolerate every plan; each test
//! pins the protocol fix that made its plan survivable.
//!
//! New reproducers come from the fuzzer itself: a failing `protofuzz`
//! run prints a `#[test]` snippet that pastes directly into this file
//! (the helper it calls is [`assert_plan_matches_oracle`]).

use trips::core::{
    ChainDelay, CoreConfig, CoreGeometry, FaultPlan, FaultPort, LinkFault, MemBackend, OcnFault,
    Processor, Ratio, SimError,
};
use trips::tasm::Quality;
use trips::workloads::suite;
use trips_bench::fuzz::{self, Oracle};

/// Cycle budget for one reproducer. Far above any passing run of the
/// micro workloads (a few hundred thousand cycles even under heavy
/// chain delay); a reproducer that exhausts it has re-wedged.
const REPRO_MAX_CYCLES: u64 = 10_000_000;

/// Runs `workload` under `plan` with every protocol invariant checked
/// each tick, then asserts bit-exact architectural agreement with the
/// block-interpreter oracle. This is the entry point `protofuzz`
/// reproducer snippets call.
fn assert_plan_matches_oracle(workload: &str, quality: Quality, plan: &FaultPlan) {
    let wl = suite::by_name(workload).expect("workload registered in the suite");
    let oracle = Oracle::build(&wl, quality);
    if let Err(why) = fuzz::run_against_oracle(&oracle, Some(plan), true, REPRO_MAX_CYCLES) {
        panic!("{workload} ({quality:?}) under plan seed {:#x}: {why}", plan.seed);
    }
}

/// [`assert_plan_matches_oracle`] on a named non-prototype die — the
/// entry point for reproducers `protofuzz` found on its geometry-axis
/// seeds (`seed % 8 == 2`, which run the `mini` die). The plan's OPN
/// coordinates were drawn folded into that die's mesh, so the named
/// geometry is part of the reproducer.
#[allow(dead_code)]
fn assert_plan_matches_oracle_geom(workload: &str, quality: Quality, geom: &str, plan: &FaultPlan) {
    let wl = suite::by_name(workload).expect("workload registered in the suite");
    let oracle = Oracle::build(&wl, quality);
    let geometry = CoreGeometry::parse(geom).expect("reproducer names a valid geometry");
    if let Err(why) = fuzz::run_against_oracle_geom(
        &oracle,
        MemBackend::prototype(),
        geometry,
        Some(plan),
        true,
        REPRO_MAX_CYCLES,
    ) {
        panic!("{workload} ({quality:?}, {geom}) under plan seed {:#x}: {why}", plan.seed);
    }
}

/// The entry point for reproducers `protofuzz` found on its
/// coherence-axis seeds (`seed % 16 == 6`, or any seed under
/// `--coherence`): re-runs the named shared-memory workload on a
/// coherent `ncores`-core chip of the named die under the plan, with
/// the §5g invariant suite checked every tick, and asserts every
/// replica matches the sequential final-state oracle.
#[allow(dead_code)]
fn assert_shared_plan_matches_oracle(workload: &str, ncores: usize, geom: &str, plan: &FaultPlan) {
    let geometry = CoreGeometry::parse(geom).expect("reproducer names a valid geometry");
    if let Err(why) = fuzz::run_shared_against_oracle(
        workload,
        ncores,
        geometry,
        Some(plan),
        true,
        REPRO_MAX_CYCLES,
    ) {
        panic!("{workload} (shared x{ncores}, {geom}) under plan seed {:#x}: {why}", plan.seed);
    }
}

/// [`assert_plan_matches_oracle`] under the NUCA secondary backend —
/// the entry point for reproducers `protofuzz` found on its NUCA
/// seeds (`seed % 4 == 3`), where OCN link stalls also perturb fill
/// and store-acknowledgement timing.
fn assert_plan_matches_oracle_nuca(workload: &str, quality: Quality, plan: &FaultPlan) {
    let wl = suite::by_name(workload).expect("workload registered in the suite");
    let oracle = Oracle::build(&wl, quality);
    if let Err(why) = fuzz::run_against_oracle_with(
        &oracle,
        MemBackend::nuca_prototype(),
        Some(plan),
        true,
        REPRO_MAX_CYCLES,
    ) {
        panic!("{workload} ({quality:?}, nuca) under plan seed {:#x}: {why}", plan.seed);
    }
}

/// [`assert_plan_matches_oracle`] on a chip sharing one NUCA — the
/// entry point for reproducers `protofuzz` found on its chip seeds
/// (`seed % 8 == 5`), where OCN faults hit the shared network with
/// all cores live. `co_runners` is the comma-joined workloads of
/// slots 1.. (so a dual-core repro passes one name, a quad-core repro
/// three). Each core is compared against its own oracle; contention
/// is timing-only, so any divergence indicts the protocols.
#[allow(dead_code)]
fn assert_chip_plan_matches_oracles(
    workload: &str,
    co_runners: &str,
    quality: Quality,
    plan: &FaultPlan,
) {
    let oracles: Vec<Oracle> = std::iter::once(workload)
        .chain(co_runners.split(','))
        .map(|name| {
            let wl = suite::by_name(name).expect("workload registered in the suite");
            Oracle::build(&wl, quality)
        })
        .collect();
    let refs: Vec<&Oracle> = oracles.iter().collect();
    if let Err(why) = fuzz::run_chip_against_oracles(&refs, Some(plan), true, REPRO_MAX_CYCLES) {
        panic!(
            "{workload}+{co_runners} ({quality:?}, chip) under plan seed {:#x}: {why}",
            plan.seed
        );
    }
}

/// A clean (faultless) chip sweep stays wired even while no chip
/// reproducer exists yet: the pair table's heaviest pairing plus OCN
/// link faults on the shared network must still match both oracles.
#[test]
fn chip_with_ocn_faults_matches_both_oracles() {
    let plan = FaultPlan {
        seed: 0x0c1b,
        rotate_arbitration: false,
        links: vec![],
        ocn_links: vec![OcnFault {
            row: 1,
            col: 0,
            port: FaultPort::Eject,
            chance: Ratio { num: 1, den: 7 },
            max_burst: 3,
        }],
        chain_delay: None,
        flush_storm: None,
    };
    assert_chip_plan_matches_oracles("saxpy", "vadd", Quality::Hand, &plan);
}

/// Minimized protofuzz reproducer (seed 0x1).
///
/// Chain delays let a neighbour RT flush and redispatch early, so its
/// `WritesDone` completion hop can carry the *next* generation into a
/// bank whose own (delayed) flush wave has not landed yet. The RT used
/// to drop the hop under an exact-generation check; since completion
/// hops are sent exactly once, the daisy chain wedged and the run
/// timed out awaiting `WritesDone`. Fixed by fast-forwarding the frame
/// (`ensure_frame`), the same idiom the OPN write path uses.
#[test]
fn protofuzz_repro_matrix_1() {
    let plan = FaultPlan {
        seed: 0x1,
        rotate_arbitration: false,
        links: vec![],
        ocn_links: vec![],
        chain_delay: Some(ChainDelay { chance: Ratio { num: 1, den: 8 }, max_extra: 4 }),
        flush_storm: None,
    };
    assert_plan_matches_oracle("matrix", Quality::Hand, &plan);
}

/// Minimized protofuzz reproducer (seed 0x4).
///
/// The GRN (refill commands) and GSN (refill completions) are separate
/// chains, so a delayed refill command can arrive at an IT *after* the
/// south neighbour's `RefillDone` hop for that same refill. The IT
/// used to drop the early hop because no refill was in flight yet;
/// the neighbour never resends, so the south-to-north completion chain
/// wedged and fetch stalled forever. Fixed by latching early hops
/// until the command arrives.
#[test]
fn protofuzz_repro_matrix_4() {
    let plan = FaultPlan {
        seed: 0x4,
        rotate_arbitration: false,
        links: vec![],
        ocn_links: vec![],
        chain_delay: Some(ChainDelay { chance: Ratio { num: 1, den: 8 }, max_extra: 5 }),
        flush_storm: None,
    };
    assert_plan_matches_oracle("matrix", Quality::Hand, &plan);
}

/// Minimized protofuzz reproducer (seed 0xd).
///
/// Chain delay bunched two commit waves so they reached an RT on the
/// same cycle, and the RT drained both write queues by *frame index*
/// rather than block age. Both blocks wrote the loop counter; the
/// younger block's write (the loop re-init) drained first and the
/// older block's stale final count landed last in the architectural
/// file, so the next loop test read 16, exited after one iteration,
/// and the run halted cleanly with most result cells zero. Fixed by
/// draining committing frames oldest-first through a shared per-tick
/// write-port budget: a younger commit cannot overtake an older one.
#[test]
fn protofuzz_repro_matrix_d() {
    let plan = FaultPlan {
        seed: 0xd,
        rotate_arbitration: false,
        links: vec![],
        ocn_links: vec![],
        chain_delay: Some(ChainDelay { chance: Ratio { num: 1, den: 4 }, max_extra: 4 }),
        flush_storm: None,
    };
    assert_plan_matches_oracle("matrix", Quality::Hand, &plan);
}

/// Minimized protofuzz reproducer (seed 0x48).
///
/// The data-tile twin of `protofuzz_repro_matrix_d`: each DT drained
/// every committing frame's stores concurrently, one store per cycle
/// *per frame*, walking frames by index. Flush storms refetch blocks
/// and chain delay bunches their commit waves, so two blocks storing
/// to the same address could drain youngest-first and leave the stale
/// older value in memory; a later load then steered a loop test wrong
/// and the run halted early (fewer blocks than the oracle). Fixed by
/// draining committing frames oldest-first through one shared store
/// port per DT.
#[test]
fn protofuzz_repro_dct8x8_48() {
    let plan = FaultPlan {
        seed: 0x48,
        rotate_arbitration: true,
        links: vec![],
        ocn_links: vec![],
        chain_delay: Some(ChainDelay { chance: Ratio { num: 1, den: 2 }, max_extra: 5 }),
        flush_storm: Some(Ratio { num: 1, den: 16 }),
    };
    assert_plan_matches_oracle("dct8x8", Quality::Hand, &plan);
}

/// Minimized protofuzz reproducer (seed 0x288).
///
/// The *deallocation* sibling of `protofuzz_repro_matrix_d` and
/// `protofuzz_repro_dct8x8_48`: commit drains were already made
/// oldest-first, but the RT's ack-and-deallocate step still walked
/// frames by index. Chain delay bunched two commit waves so a younger
/// frame acked and left the age order while an older frame (its east
/// ack delayed) stayed active — and the older frame's already-drained
/// write-queue entry then shadowed the architectural file for every
/// new read of that register, resurrecting the superseded value. Here
/// that register was dct8x8's inner loop counter, so a loop-bottom
/// test read a stale bound and the run exited 21 blocks early. Fixed
/// by acking/deallocating strictly oldest-first — a frame may leave
/// the dispatch order only from its head — in both the RT and the DT
/// (which had the same index-order walk for its store ack).
#[test]
fn protofuzz_repro_dct8x8_288() {
    let plan = FaultPlan {
        seed: 0x288,
        rotate_arbitration: false,
        links: vec![
            LinkFault {
                net: 0,
                row: 2,
                col: 3,
                port: FaultPort::West,
                chance: Ratio { num: 1, den: 2 },
                max_burst: 5,
            },
            LinkFault {
                net: 0,
                row: 0,
                col: 1,
                port: FaultPort::North,
                chance: Ratio { num: 1, den: 16 },
                max_burst: 4,
            },
            LinkFault {
                net: 0,
                row: 3,
                col: 3,
                port: FaultPort::East,
                chance: Ratio { num: 1, den: 2 },
                max_burst: 2,
            },
        ],
        ocn_links: vec![],
        chain_delay: Some(ChainDelay { chance: Ratio { num: 1, den: 2 }, max_extra: 3 }),
        flush_storm: Some(Ratio { num: 1, den: 64 }),
    };
    assert_plan_matches_oracle("dct8x8", Quality::Hand, &plan);
}

/// Minimized protofuzz chip reproducer (seed 0xdd).
///
/// The first bug caught by the quad-core chip seeds (`seed % 16 ==
/// 13`): the same write-queue resurrection as
/// `protofuzz_repro_dct8x8_288`, reached through shared-NUCA traffic
/// instead of operand-link stalls. An OCN eject stall plus chain
/// delay bunched core 0's commit waves until an index-order ack let a
/// younger frame deallocate past a still-active older one, and a
/// stale forwarded register corrupted one cell of matrix's result.
/// Pinned as a chip repro so the ack-order fix stays exercised with
/// all four cores contending on the shared network.
#[test]
fn protofuzz_repro_chip_matrix_vadd_dct8x8_matrix_dd() {
    let plan = FaultPlan {
        seed: 0xdd,
        rotate_arbitration: true,
        links: vec![],
        ocn_links: vec![OcnFault {
            row: 3,
            col: 0,
            port: FaultPort::Eject,
            chance: Ratio { num: 1, den: 16 },
            max_burst: 3,
        }],
        chain_delay: Some(ChainDelay { chance: Ratio { num: 1, den: 8 }, max_extra: 3 }),
        flush_storm: None,
    };
    assert_chip_plan_matches_oracles("matrix", "vadd,dct8x8,matrix", Quality::Hand, &plan);
}

/// A deliberately lethal plan: the GT's OPN eject port is permanently
/// stalled (`num >= den`), so resolved branches can never reach the
/// global tile and the machine must wedge. The point of the test is
/// the *diagnosis*: the timeout's hang report must name the stuck
/// network and tile so a fuzz failure is actionable.
#[test]
fn deliberate_deadlock_is_diagnosed() {
    let plan = FaultPlan {
        seed: 0,
        rotate_arbitration: false,
        links: vec![LinkFault {
            net: 0,
            row: 0, // GT sits at OPN coordinate (0, 0)
            col: 0,
            port: FaultPort::Eject,
            chance: Ratio { num: 1, den: 1 },
            max_burst: u64::MAX,
        }],
        ocn_links: vec![],
        chain_delay: None,
        flush_storm: None,
    };
    let wl = suite::by_name("vadd").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let cfg = CoreConfig { faults: Some(plan), ..CoreConfig::prototype() };
    let mut cpu = Processor::new(cfg);
    match cpu.run(&image, 200_000) {
        Err(SimError::Timeout { diagnosis, .. }) => {
            let text = diagnosis.to_string();
            assert!(text.contains("OPN0"), "hang report must name the stuck network:\n{text}");
            assert!(text.contains("GT"), "hang report must name the starved tile:\n{text}");
        }
        Ok(stats) => panic!(
            "a dead GT eject port cannot halt cleanly ({} blocks committed)",
            stats.blocks_committed
        ),
        Err(e) => panic!("expected a diagnosed timeout, got: {e}"),
    }
}

/// Zero-overhead regression: with the fault hooks compiled in and a
/// plan installed on *every* hook but with all probabilities zero, the
/// run must be bit-identical — same cycle count, same stats, same
/// registers, same memory — to a run with no plan at all.
#[test]
fn inert_fault_plan_is_bit_identical() {
    let wl = suite::by_name("dct8x8").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let outcome = |faults: Option<FaultPlan>| {
        let cfg = CoreConfig { faults, ..CoreConfig::prototype() };
        let mut cpu = Processor::new(cfg);
        let stats = cpu.run(&image, REPRO_MAX_CYCLES).expect("halts");
        let regs: Vec<u64> =
            (0..128u8).map(|r| cpu.arch_reg(trips::isa::ArchReg::new(r))).collect();
        (stats, regs, cpu.memory().clone())
    };
    let clean = outcome(None);
    let probed = outcome(Some(FaultPlan::inert_probe(0xdead_beef)));
    assert_eq!(clean.0, probed.0, "stats must be bit-identical under an inert probe");
    assert_eq!(clean.1, probed.1, "registers must be bit-identical under an inert probe");
    assert!(
        clean.2.diff(&probed.2, 1).is_empty(),
        "memory must be bit-identical under an inert probe"
    );
}

/// An OCN-only plan under the NUCA backend: stalled secondary-system
/// links delay MSHR fills, I-cache refills, and store-completion
/// acknowledgements, but the commit protocol must absorb every delay —
/// architectural state stays bit-exact against the oracle and the
/// conservation invariants hold every tick.
#[test]
fn ocn_stalls_under_nuca_match_oracle() {
    let plan = FaultPlan {
        seed: 0x0c9,
        rotate_arbitration: false,
        links: vec![],
        ocn_links: vec![
            OcnFault {
                row: 1,
                col: 0,
                port: FaultPort::Eject,
                chance: Ratio { num: 1, den: 2 },
                max_burst: 6,
            },
            OcnFault {
                row: 5,
                col: 3,
                port: FaultPort::West,
                chance: Ratio { num: 1, den: 4 },
                max_burst: 3,
            },
        ],
        chain_delay: None,
        flush_storm: None,
    };
    assert_plan_matches_oracle_nuca("matrix", Quality::Hand, &plan);
}

/// The invariant checker itself must pass on clean (unfaulted) runs of
/// the micro suite — per-tick checks plus post-halt quiescence.
#[test]
fn invariants_hold_on_clean_runs() {
    for name in ["vadd", "sha"] {
        let wl = suite::by_name(name).expect("registered");
        let oracle = Oracle::build(&wl, Quality::Hand);
        fuzz::run_against_oracle(&oracle, None, true, REPRO_MAX_CYCLES)
            .unwrap_or_else(|why| panic!("{name}: {why}"));
    }
}
