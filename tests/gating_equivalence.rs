//! Clock gating must be invisible: a gated run and an ungated run of
//! the same image must produce bit-identical statistics and
//! architectural state. The tick scheduler's `active()` predicates
//! are conservative by construction (a tile may tick unnecessarily,
//! never the reverse), and this suite enforces that across the whole
//! workload suite at both code qualities.

use trips_core::{CoreConfig, CoreStats, Processor};
use trips_harness::{num_threads, parallel_map};
use trips_isa::mem::SparseMem;
use trips_isa::ArchReg;
use trips_tasm::Quality;
use trips_workloads::{suite, Workload};

const MAX_CYCLES: u64 = 200_000_000;

/// Runs `wl` at `quality` with gating on or off, returning the full
/// observable outcome: stats, all 128 architectural registers, and
/// memory.
fn outcome(wl: &Workload, quality: Quality, gate: bool) -> (CoreStats, Vec<u64>, SparseMem) {
    let image = wl
        .build_trips(quality)
        .unwrap_or_else(|e| panic!("{} ({quality:?}): compile failed: {e}", wl.name))
        .image;
    let mut cpu = Processor::new(CoreConfig { gate_ticks: gate, ..CoreConfig::prototype() });
    let stats = cpu
        .run(&image, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} ({quality:?}): simulation failed: {e}", wl.name));
    let regs = (0..128).map(|r| cpu.arch_reg(ArchReg::new(r))).collect();
    (stats, regs, cpu.memory().clone())
}

#[test]
fn gated_and_ungated_runs_are_bit_identical_across_the_suite() {
    let items: Vec<(Workload, Quality)> = suite::all()
        .into_iter()
        .flat_map(|wl| [(wl, Quality::Hand), (wl, Quality::Compiled)])
        .collect();
    let failures: Vec<String> = parallel_map(items, num_threads(), |(wl, quality)| {
        let (g_stats, g_regs, g_mem) = outcome(&wl, quality, true);
        let (u_stats, u_regs, u_mem) = outcome(&wl, quality, false);
        let mut errs = Vec::new();
        if g_stats != u_stats {
            errs.push(format!(
                "{} ({quality:?}): CoreStats diverge\n  gated:   {g_stats:?}\n  ungated: {u_stats:?}",
                wl.name
            ));
        }
        if g_regs != u_regs {
            let diffs: Vec<String> = g_regs
                .iter()
                .zip(&u_regs)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(r, (a, b))| format!("G{r}: gated={a:#x} ungated={b:#x}"))
                .collect();
            errs.push(format!("{} ({quality:?}): registers diverge: {}", wl.name, diffs.join(", ")));
        }
        if g_mem != u_mem {
            errs.push(format!("{} ({quality:?}): memory diverges", wl.name));
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "gating changed observable behaviour:\n{}", failures.join("\n"));
}

#[test]
fn gating_actually_skips_ticks() {
    // Sanity that the equivalence above is not vacuous: on a real
    // workload the gated scheduler must skip a meaningful share of
    // tile ticks (drained tiles exist in any block-structured run).
    let wl = suite::by_name("matrix").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    cpu.run(&image, MAX_CYCLES).expect("halts");
    let g = cpu.gating_stats();
    assert!(g.ticks_gated > 0, "no ticks were gated: {g:?}");
    assert!(
        g.gated_fraction() > 0.05,
        "suspiciously little gating ({:.1}%): predicates may have regressed to always-active",
        100.0 * g.gated_fraction()
    );

    let mut ungated = Processor::new(CoreConfig { gate_ticks: false, ..CoreConfig::prototype() });
    ungated.run(&image, MAX_CYCLES).expect("halts");
    let u = ungated.gating_stats();
    assert_eq!(u.ticks_gated, 0, "ungated mode must never skip a tile");
}
