//! Clock gating must be invisible: a gated run and an ungated run of
//! the same image must produce bit-identical statistics and
//! architectural state. The tick scheduler's `active()` predicates
//! are conservative by construction (a tile may tick unnecessarily,
//! never the reverse), and this suite enforces that across the whole
//! workload suite at both code qualities.
//!
//! Epoch skipping (DESIGN.md §5b) layers on top: when every tile is
//! idle *now* the scheduler fast-forwards the cycle counter to the
//! earliest future wake instead of grinding through provably empty
//! cycles. The skipped cycles would each have been an all-gated
//! no-op, so a skipping run must also be bit-identical — to the
//! cycle-by-cycle gated run *and* to the ungated run.

use trips_core::{CoreConfig, CoreStats, MemBackend, Processor};
use trips_harness::{num_threads, parallel_map};
use trips_isa::mem::SparseMem;
use trips_isa::ArchReg;
use trips_tasm::Quality;
use trips_workloads::{suite, Workload};

const MAX_CYCLES: u64 = 200_000_000;

/// Runs `wl` at `quality` under the given scheduler configuration,
/// returning the full observable outcome: stats, all 128
/// architectural registers, and memory.
fn outcome_cfg(
    wl: &Workload,
    quality: Quality,
    gate: bool,
    skip: bool,
) -> (CoreStats, Vec<u64>, SparseMem) {
    let image = wl
        .build_trips(quality)
        .unwrap_or_else(|e| panic!("{} ({quality:?}): compile failed: {e}", wl.name))
        .image;
    let mut cpu = Processor::new(CoreConfig {
        gate_ticks: gate,
        skip_epochs: skip,
        ..CoreConfig::prototype()
    });
    let stats = cpu
        .run(&image, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} ({quality:?}): simulation failed: {e}", wl.name));
    let regs = (0..128).map(|r| cpu.arch_reg(ArchReg::new(r))).collect();
    (stats, regs, cpu.memory().clone())
}

/// Default-scheduler outcome: gating (and with it epoch skipping)
/// either fully on or fully off.
fn outcome(wl: &Workload, quality: Quality, gate: bool) -> (CoreStats, Vec<u64>, SparseMem) {
    outcome_cfg(wl, quality, gate, gate)
}

#[test]
fn gated_and_ungated_runs_are_bit_identical_across_the_suite() {
    let items: Vec<(Workload, Quality)> = suite::all()
        .into_iter()
        .flat_map(|wl| [(wl, Quality::Hand), (wl, Quality::Compiled)])
        .collect();
    let failures: Vec<String> = parallel_map(items, num_threads(), |(wl, quality)| {
        let (g_stats, g_regs, g_mem) = outcome(&wl, quality, true);
        let (u_stats, u_regs, u_mem) = outcome(&wl, quality, false);
        let mut errs = Vec::new();
        if g_stats != u_stats {
            errs.push(format!(
                "{} ({quality:?}): CoreStats diverge\n  gated:   {g_stats:?}\n  ungated: {u_stats:?}",
                wl.name
            ));
        }
        if g_regs != u_regs {
            let diffs: Vec<String> = g_regs
                .iter()
                .zip(&u_regs)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(r, (a, b))| format!("G{r}: gated={a:#x} ungated={b:#x}"))
                .collect();
            errs.push(format!("{} ({quality:?}): registers diverge: {}", wl.name, diffs.join(", ")));
        }
        if g_mem != u_mem {
            errs.push(format!("{} ({quality:?}): memory diverges", wl.name));
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "gating changed observable behaviour:\n{}", failures.join("\n"));
}

#[test]
fn epoch_skipping_matches_cycle_by_cycle_gating() {
    // Skip-on vs skip-off, both gated: the skipped epochs must be
    // exactly the cycles the cycle-by-cycle scheduler would have spent
    // ticking nothing. Any divergence here means a wake time was
    // computed too late (work silently delayed) or the skip jumped
    // past a message-maturity point.
    let items: Vec<(Workload, Quality)> = suite::all()
        .into_iter()
        .flat_map(|wl| [(wl, Quality::Hand), (wl, Quality::Compiled)])
        .collect();
    let failures: Vec<String> = parallel_map(items, num_threads(), |(wl, quality)| {
        let (s_stats, s_regs, s_mem) = outcome_cfg(&wl, quality, true, true);
        let (c_stats, c_regs, c_mem) = outcome_cfg(&wl, quality, true, false);
        let mut errs = Vec::new();
        if s_stats != c_stats {
            errs.push(format!(
                "{} ({quality:?}): CoreStats diverge\n  skipping: {s_stats:?}\n  \
                 cycle-by-cycle: {c_stats:?}",
                wl.name
            ));
        }
        if s_regs != c_regs {
            errs.push(format!("{} ({quality:?}): registers diverge", wl.name));
        }
        if s_mem != c_mem {
            errs.push(format!("{} ({quality:?}): memory diverges", wl.name));
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "epoch skipping changed observable behaviour:\n{}",
        failures.join("\n")
    );
}

#[test]
fn epoch_skipping_actually_skips_cycles() {
    // Sanity that the equivalence above is not vacuous. listwalk under
    // the NUCA backend is the stress case: a pointer chase whose misses
    // leave the whole core with nothing to do for the DRAM latency, so
    // the skip path must fast-forward a meaningful share of the run.
    let wl = suite::by_name("listwalk").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let nuca =
        || CoreConfig { mem_backend: MemBackend::nuca_prototype(), ..CoreConfig::prototype() };
    let mut cpu = Processor::new(nuca());
    let stats = cpu.run(&image, MAX_CYCLES).expect("halts");
    let g = cpu.gating_stats();
    assert!(g.epochs_skipped > 0, "no epochs were skipped: {g:?}");
    let frac = g.cycles_skipped as f64 / stats.cycles as f64;
    assert!(
        frac > 0.10,
        "suspiciously little epoch skipping ({:.1}% of {} cycles): \
         wake-time folding may have regressed to always-now",
        100.0 * frac,
        stats.cycles
    );

    // With skipping disabled the counters must stay at zero — the
    // cycle-by-cycle scheduler never fast-forwards.
    let mut noskip = Processor::new(CoreConfig { skip_epochs: false, ..nuca() });
    noskip.run(&image, MAX_CYCLES).expect("halts");
    let n = noskip.gating_stats();
    assert_eq!(n.cycles_skipped, 0, "skip_epochs=false must never skip: {n:?}");
    assert_eq!(n.epochs_skipped, 0, "skip_epochs=false must never skip: {n:?}");
}

/// Outcome with the tick fast paths (DESIGN.md §5b) individually
/// toggled: dirty-frame work lists and the fused GT frame pass.
/// Scheduler defaults (gating + skipping on) everywhere — these flags
/// must be inert on their own axis.
fn outcome_fast(
    wl: &Workload,
    quality: Quality,
    work_lists: bool,
    fused_gt: bool,
) -> (CoreStats, Vec<u64>, SparseMem) {
    let image = wl
        .build_trips(quality)
        .unwrap_or_else(|e| panic!("{} ({quality:?}): compile failed: {e}", wl.name))
        .image;
    let mut cpu = Processor::new(CoreConfig { work_lists, fused_gt, ..CoreConfig::prototype() });
    let stats = cpu
        .run(&image, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} ({quality:?}): simulation failed: {e}", wl.name));
    let regs = (0..128).map(|r| cpu.arch_reg(ArchReg::new(r))).collect();
    (stats, regs, cpu.memory().clone())
}

#[test]
fn work_lists_and_fused_gt_are_bit_identical_across_the_suite() {
    // The prototype default (both fast paths on) against each flag
    // individually off and both off. Any divergence means a work-list
    // mask missed a mutation site (a dirty frame was skipped) or the
    // fused GT pass reordered an observable protocol action.
    let items: Vec<(Workload, Quality)> = suite::all()
        .into_iter()
        .flat_map(|wl| [(wl, Quality::Hand), (wl, Quality::Compiled)])
        .collect();
    let failures: Vec<String> = parallel_map(items, num_threads(), |(wl, quality)| {
        let fast = outcome_fast(&wl, quality, true, true);
        let mut errs = Vec::new();
        for (work_lists, fused_gt) in [(false, true), (true, false), (false, false)] {
            let slow = outcome_fast(&wl, quality, work_lists, fused_gt);
            if fast.0 != slow.0 {
                errs.push(format!(
                    "{} ({quality:?}, work_lists={work_lists}, fused_gt={fused_gt}): \
                     CoreStats diverge\n  fast: {:?}\n  slow: {:?}",
                    wl.name, fast.0, slow.0
                ));
            }
            if fast.1 != slow.1 {
                errs.push(format!(
                    "{} ({quality:?}, work_lists={work_lists}, fused_gt={fused_gt}): \
                     registers diverge",
                    wl.name
                ));
            }
            if fast.2 != slow.2 {
                errs.push(format!(
                    "{} ({quality:?}, work_lists={work_lists}, fused_gt={fused_gt}): \
                     memory diverges",
                    wl.name
                ));
            }
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "tick fast paths changed observable behaviour:\n{}",
        failures.join("\n")
    );
}

#[test]
fn work_lists_actually_skip_frames() {
    // Sanity that the work-list equivalence is not vacuous: on real
    // workloads the dirty-frame walks must examine strictly fewer
    // frames than the full scans do. `work_list_visits` counts frames
    // examined by the RT/DT advancement walks and the ET select walk;
    // it lives outside CoreStats so the bit-identity checks above
    // never see it.
    for name in ["matrix", "dct8x8"] {
        let wl = suite::by_name(name).expect("registered");
        let image = wl.build_trips(Quality::Hand).expect("compiles").image;
        let mut visits = [0u64; 2];
        for (i, work_lists) in [true, false].into_iter().enumerate() {
            let mut cpu = Processor::new(CoreConfig { work_lists, ..CoreConfig::prototype() });
            cpu.run(&image, MAX_CYCLES).expect("halts");
            visits[i] = cpu.work_list_visits();
        }
        let [dirty, full] = visits;
        assert!(
            dirty < full,
            "{name}: dirty-frame walks examined {dirty} frames but full scans examined \
             {full} — the work lists are vacuous"
        );
    }
}

#[test]
fn gating_actually_skips_ticks() {
    // Sanity that the equivalence above is not vacuous: on a real
    // workload the gated scheduler must skip a meaningful share of
    // tile ticks (drained tiles exist in any block-structured run).
    let wl = suite::by_name("matrix").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    cpu.run(&image, MAX_CYCLES).expect("halts");
    let g = cpu.gating_stats();
    assert!(g.ticks_gated > 0, "no ticks were gated: {g:?}");
    assert!(
        g.gated_fraction() > 0.05,
        "suspiciously little gating ({:.1}%): predicates may have regressed to always-active",
        100.0 * g.gated_fraction()
    );

    let mut ungated = Processor::new(CoreConfig { gate_ticks: false, ..CoreConfig::prototype() });
    ungated.run(&image, MAX_CYCLES).expect("halts");
    let u = ungated.gating_stats();
    assert_eq!(u.ticks_gated, 0, "ungated mode must never skip a tile");
}

#[test]
fn fat_die_full_scan_handles_the_max_frames_mask() {
    use trips_core::{CoreGeometry, MAX_FRAMES};
    // The 16-frame fat die fills `FrameMask` exactly, so the full-scan
    // constant must be computed without a shift by the type width — a
    // debug-build panic (this test runs unoptimized) and an empty mask
    // in release, where the `work_lists=false` walks silently visit no
    // frames. Run the boundary die with work lists off, which iterates
    // the all-frames mask every advancement walk, and require
    // bit-identity with the work-list schedule.
    let fat = CoreGeometry::fat();
    assert_eq!(fat.frames, MAX_FRAMES, "fat must pin the FrameMask boundary");
    let wl = suite::by_name("vadd").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let run = |work_lists: bool| {
        let mut cpu = Processor::new(CoreConfig { work_lists, ..CoreConfig::with_geometry(fat) });
        let stats = cpu.run(&image, MAX_CYCLES).expect("halts");
        let regs: Vec<u64> = (0..128).map(|r| cpu.arch_reg(ArchReg::new(r))).collect();
        (stats, regs, cpu.memory().clone())
    };
    assert_eq!(run(false), run(true), "full-scan vs work-list walks diverge on the fat die");
}

#[test]
fn prototype_geometry_is_bit_identical_to_the_fixed_constants() {
    use trips_core::{
        CoreGeometry, ET_COLS, ET_ROWS, NUM_DTS, NUM_FRAMES, NUM_ITS, NUM_RTS, RS_PER_FRAME,
    };
    // Structural gate: every quantity the tiles, networks, and tick
    // scheduler size themselves by must reduce, at the prototype
    // point, to exactly the constants the pre-geometry code baked in.
    let g = CoreGeometry::prototype();
    assert_eq!((g.et_rows, g.et_cols), (ET_ROWS, ET_COLS));
    assert_eq!(g.frames, NUM_FRAMES);
    assert_eq!(g.rs_per_frame, RS_PER_FRAME);
    assert_eq!(g.lsq_depth, 256);
    assert_eq!(g.num_its(), NUM_ITS);
    assert_eq!(g.num_rts(), NUM_RTS);
    assert_eq!(g.num_dts(), NUM_DTS);
    assert_eq!(g.num_ets(), 16);
    assert_eq!(g.beats(), 8, "one block dispatches in eight GDN beats");
    assert_eq!(g.tile_ticks(), 30, "1 GT + 5 ITs + 4 RTs + 16 ETs + 4 DTs");
    assert_eq!((g.mesh_rows(), g.mesh_cols()), (5, 5), "the OPN is the paper's 5x5 mesh");

    // Dynamic gate: a core built from the geometry seam must be
    // bit-identical — stats, registers, memory — to the pinned
    // prototype configuration on real runs.
    let items: Vec<(Workload, Quality)> = ["vadd", "matrix", "dct8x8"]
        .into_iter()
        .map(|n| (suite::by_name(n).expect("registered"), Quality::Hand))
        .collect();
    let failures: Vec<String> = parallel_map(items, num_threads(), |(wl, quality)| {
        let image = wl.build_trips(quality).expect("compiles").image;
        let run = |cfg: CoreConfig| {
            let mut cpu = Processor::new(cfg);
            let stats = cpu.run(&image, MAX_CYCLES).expect("halts");
            let regs: Vec<u64> = (0..128).map(|r| cpu.arch_reg(ArchReg::new(r))).collect();
            (stats, regs, cpu.memory().clone())
        };
        let seam = run(CoreConfig::with_geometry(CoreGeometry::prototype()));
        let pinned = run(CoreConfig::prototype_pinned());
        let mut errs = Vec::new();
        if seam.0 != pinned.0 {
            errs.push(format!(
                "{}: CoreStats diverge\n  geometry seam: {:?}\n  pinned consts: {:?}",
                wl.name, seam.0, pinned.0
            ));
        }
        if seam.1 != pinned.1 || seam.2 != pinned.2 {
            errs.push(format!("{}: architectural state diverges", wl.name));
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "the geometry seam changed prototype behaviour:\n{}",
        failures.join("\n")
    );
}
