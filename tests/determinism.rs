//! The simulator must be a pure function of (image, config): rerunning
//! the same image on a reused `Processor` and running it concurrently
//! on independent threads must yield identical statistics. This is
//! what makes the parallel sweep harness sound — shards cannot
//! interfere — and what the gating-equivalence suite builds on.

use trips_core::{CoreConfig, CoreStats, Processor};
use trips_tasm::Quality;
use trips_workloads::suite;

const MAX_CYCLES: u64 = 200_000_000;

#[test]
fn rerunning_the_same_processor_is_deterministic() {
    let wl = suite::by_name("matrix").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    let first = cpu.run(&image, MAX_CYCLES).expect("halts");
    let second = cpu.run(&image, MAX_CYCLES).expect("halts");
    assert_eq!(first, second, "a reused Processor must fully reset between runs");
}

#[test]
fn concurrent_runs_on_separate_threads_are_deterministic() {
    let wl = suite::by_name("conv").expect("registered");
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let results: Vec<CoreStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let image = &image;
                scope.spawn(move || {
                    let mut cpu = Processor::new(CoreConfig::prototype());
                    cpu.run(image, MAX_CYCLES).expect("halts")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    assert_eq!(results[0], results[1], "concurrent shards must not interfere");
}
