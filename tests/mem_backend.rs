//! The secondary-memory backend boundary (DESIGN.md §5d).
//!
//! Three properties pin the [`MemBackend`] seam:
//!
//! 1. **Default pinning** — the default config *is* the perfect L2,
//!    and perfect-L2 runs carry no secondary-system statistics
//!    (`stats.mem == None`), so the backend seam is invisible to every
//!    pre-existing measurement path.
//! 2. **Architectural independence** — the backend changes only *when*
//!    fills and acknowledgements arrive, never what a load returns, so
//!    a NUCA run must match a perfect-L2 run in committed block count,
//!    all 128 architectural registers, and all of memory (cycle counts
//!    legitimately differ).
//! 3. **Determinism** — two NUCA runs of the same image are
//!    bit-identical in every observable, including the secondary
//!    statistics; the OCN arbitration, bank MSHRs, and the adapter's
//!    client iteration order contain no hidden host state.

use trips_core::{CoreConfig, CoreStats, MemBackend, Processor};
use trips_harness::{num_threads, parallel_map};
use trips_isa::mem::SparseMem;
use trips_isa::ArchReg;
use trips_mem::MemConfig;
use trips_tasm::Quality;
use trips_workloads::{suite, Workload};

const MAX_CYCLES: u64 = 200_000_000;

/// Runs `wl` at Hand quality under `backend`, returning the full
/// observable outcome.
fn outcome(wl: &Workload, backend: MemBackend) -> (CoreStats, Vec<u64>, SparseMem) {
    let image = wl
        .build_trips(Quality::Hand)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", wl.name))
        .image;
    let mut cpu = Processor::new(CoreConfig { mem_backend: backend, ..CoreConfig::prototype() });
    let stats = cpu
        .run(&image, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", wl.name));
    let regs = (0..128).map(|r| cpu.arch_reg(ArchReg::new(r))).collect();
    (stats, regs, cpu.memory().clone())
}

/// A NUCA configuration with effectively no capacity pressure: banks
/// large enough that nothing evicts. Requests still ride the OCN and
/// pay bank latency, so timing differs from the perfect L2 — only the
/// architectural outcome may not.
fn nuca_uncontended() -> MemBackend {
    MemBackend::Nuca(MemConfig { bank_kb: 4096, ..MemConfig::prototype() })
}

#[test]
fn default_backend_is_the_perfect_l2_and_exports_no_mem_stats() {
    assert_eq!(CoreConfig::prototype().mem_backend, MemBackend::PerfectL2 { latency: 12 });
    let wl = suite::by_name("vadd").expect("registered");
    let (default_stats, default_regs, default_mem) = outcome(&wl, MemBackend::prototype());
    assert!(
        default_stats.mem.is_none(),
        "perfect-L2 runs must not grow secondary statistics (bit-identity with the pre-backend \
         model)"
    );
    // An explicitly spelled-out PerfectL2 is the same backend, not a
    // sibling code path.
    let (explicit_stats, explicit_regs, explicit_mem) =
        outcome(&wl, MemBackend::PerfectL2 { latency: 12 });
    assert_eq!(default_stats, explicit_stats);
    assert_eq!(default_regs, explicit_regs);
    assert_eq!(default_mem, explicit_mem);
}

#[test]
fn nuca_matches_perfect_l2_architecturally_across_the_suite() {
    let failures: Vec<String> = parallel_map(suite::extended(), num_threads(), |wl| {
        let (p_stats, p_regs, p_mem) = outcome(&wl, MemBackend::prototype());
        let (n_stats, n_regs, n_mem) = outcome(&wl, nuca_uncontended());
        let mut errs = Vec::new();
        if p_stats.blocks_committed != n_stats.blocks_committed {
            errs.push(format!(
                "{}: committed {} blocks under NUCA, {} under perfect L2",
                wl.name, n_stats.blocks_committed, p_stats.blocks_committed
            ));
        }
        if p_regs != n_regs {
            let diffs: Vec<String> = p_regs
                .iter()
                .zip(&n_regs)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(r, (a, b))| format!("G{r}: l2={a:#x} nuca={b:#x}"))
                .collect();
            errs.push(format!("{}: registers diverge: {}", wl.name, diffs.join(", ")));
        }
        if p_mem != n_mem {
            errs.push(format!("{}: memory diverges", wl.name));
        }
        if n_stats.mem.is_none() {
            errs.push(format!("{}: NUCA run exported no secondary statistics", wl.name));
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "the backend leaked into architectural state:\n{}",
        failures.join("\n")
    );
}

#[test]
fn nuca_runs_are_deterministic() {
    let mut wls = suite::memory_bound();
    wls.push(suite::by_name("vadd").expect("registered"));
    for wl in &wls {
        let a = outcome(wl, MemBackend::nuca_prototype());
        let b = outcome(wl, MemBackend::nuca_prototype());
        assert_eq!(a.0, b.0, "{}: stats (including MemSysStats) must be bit-identical", wl.name);
        assert_eq!(a.1, b.1, "{}: registers must be bit-identical", wl.name);
        assert_eq!(a.2, b.2, "{}: memory must be bit-identical", wl.name);
    }
}

#[test]
fn nuca_timing_actually_differs_from_the_perfect_l2() {
    // Sanity that the architectural-equivalence suite above is not
    // vacuous: the NUCA system must change *timing* on a workload that
    // misses (else the OCN and banks are not in the loop at all).
    let wl = suite::by_name("saxpy").expect("registered");
    let (p_stats, _, _) = outcome(&wl, MemBackend::prototype());
    let (n_stats, _, _) = outcome(&wl, MemBackend::nuca_prototype());
    assert_ne!(
        p_stats.cycles, n_stats.cycles,
        "a 128KB streaming workload must see different fill timing under NUCA"
    );
    let m = n_stats.mem.expect("NUCA stats present");
    assert!(m.dside_fills > 0, "saxpy must miss in the L1");
    assert!(m.store_writebacks > 0, "committed stores must write back");
    assert!(m.dram_accesses > 0, "a 128KB stream must reach DRAM");
}
