//! The chip seam (DESIGN.md §5e).
//!
//! Four properties pin [`Chip`]:
//!
//! 1. **Single-core pinning** — a one-core chip is *bit-identical* to
//!    the solo `Processor` + `Nuca` path: same `CoreStats` (including
//!    every secondary-system counter), registers, and memory. The
//!    chip's phase loop is the solo adapter's tick re-rolled around a
//!    shared system, and this test is what keeps it that way.
//! 2. **Co-runner independence** — contention is timing-only: each
//!    core of a dual-core chip commits the same blocks, registers,
//!    and memory as a solo run of its workload, for every pairing in
//!    the suite table.
//! 3. **Determinism** — two identical chip runs are bit-identical in
//!    every observable, `ChipStats` included.
//! 4. **Non-vacuousness** — a memory-bound pairing must actually
//!    contend: nonzero cross-core bank-conflict stalls, OCN traffic
//!    attributed to both cores, and a measurable slowdown for at
//!    least one core.
//! 5. **Slot translation** — on any die width, slot `k` is a
//!    whole-block translation of prototype slot `k % 2`
//!    ([`trips_mem::OcnGeometry`] tiles one twenty-port block per
//!    core pair), so a lone live core in any slot is *bit-identical*
//!    to the same experiment on the prototype die — and even slots
//!    are bit-identical to the solo `Processor` + `Nuca` path itself.

use std::collections::HashMap;

use trips_core::{Chip, ChipConfig, ChipStats, CoreConfig, CoreStats, MemBackend, Processor};
use trips_isa::mem::SparseMem;
use trips_isa::{ArchReg, ProgramImage};
use trips_mem::MemConfig;
use trips_tasm::Quality;
use trips_workloads::{suite, Workload};

const MAX_CYCLES: u64 = 200_000_000;

fn regs(p: &Processor) -> Vec<u64> {
    (0..128).map(|r| p.arch_reg(ArchReg::new(r))).collect()
}

/// Solo `Processor` + prototype NUCA outcome (the chip's anchor).
fn solo(wl: &Workload) -> (CoreStats, Vec<u64>, SparseMem) {
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig {
        mem_backend: MemBackend::nuca_prototype(),
        ..CoreConfig::prototype()
    });
    let stats = cpu.run(&image, MAX_CYCLES).unwrap_or_else(|e| panic!("{}: {e}", wl.name));
    let r = regs(&cpu);
    (stats, r, cpu.memory().clone())
}

/// Runs one workload per core on a fresh chip built from `ccfg`,
/// returning the chip stats and each core's architectural
/// observables.
fn chip_run_with(wls: &[&Workload], ccfg: ChipConfig) -> (ChipStats, Vec<(Vec<u64>, SparseMem)>) {
    let mut chip = Chip::new(ccfg);
    let images: Vec<_> =
        wls.iter().map(|wl| wl.build_trips(Quality::Hand).expect("compiles").image).collect();
    let names: Vec<&str> = wls.iter().map(|w| w.name).collect();
    let stats = chip.run(&images, MAX_CYCLES).unwrap_or_else(|e| panic!("{names:?}: {e}"));
    let arch =
        (0..wls.len()).map(|k| (regs(chip.core(k)), chip.core(k).memory().clone())).collect();
    (stats, arch)
}

/// Runs one workload per core on a fresh default-config chip.
fn chip_run(wls: &[&Workload], check_invariants: bool) -> (ChipStats, Vec<(Vec<u64>, SparseMem)>) {
    let core_cfg = CoreConfig { check_invariants, ..CoreConfig::prototype() };
    chip_run_with(wls, ChipConfig::with_cores(wls.len(), core_cfg, MemConfig::prototype()))
}

/// Runs `wl` alone in slot `slot` of an `n`-core chip (every other
/// slot idle), returning the live core's stats and architecture.
fn run_slot(wl: &Workload, slot: usize, n: usize) -> (CoreStats, Vec<u64>, SparseMem) {
    let mut chip = Chip::new(ChipConfig::n_cores(n));
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut images: Vec<Option<&ProgramImage>> = vec![None; n];
    images[slot] = Some(&image);
    let stats = chip
        .run_select(&images, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} alone in slot {slot} of {n}: {e}", wl.name));
    assert_eq!(
        stats.total_conflict_stalls(),
        0,
        "a lone live core can never lose a bank arbitration"
    );
    for (j, c) in stats.cores.iter().enumerate() {
        if j != slot {
            assert_eq!(c, &CoreStats::default(), "idle slot {j} of an {n}-core die was not idle");
        }
    }
    (stats.cores[slot].clone(), regs(chip.core(slot)), chip.core(slot).memory().clone())
}

#[test]
fn single_core_chip_is_bit_identical_to_solo_nuca() {
    for name in ["vadd", "saxpy", "listwalk"] {
        let wl = suite::by_name(name).expect("registered");
        let (solo_stats, solo_regs, solo_mem) = solo(&wl);
        let (chip_stats, arch) = chip_run(&[&wl], false);
        assert_eq!(
            chip_stats.cores[0], solo_stats,
            "{name}: a one-core chip must report bit-identical CoreStats to the solo NUCA path"
        );
        assert_eq!(arch[0].0, solo_regs, "{name}: registers diverge");
        assert_eq!(arch[0].1, solo_mem, "{name}: memory diverges");
        assert_eq!(
            chip_stats.total_conflict_stalls(),
            0,
            "{name}: a single core can never lose a bank arbitration"
        );
    }
}

#[test]
fn per_core_state_is_corunner_independent_across_the_pair_table() {
    let mut failures = Vec::new();
    for (a, b) in suite::pairs() {
        let (chip_stats, arch) = chip_run(&[&a, &b], false);
        for (k, wl) in [&a, &b].into_iter().enumerate() {
            let (s_stats, s_regs, s_mem) = solo(wl);
            if chip_stats.cores[k].blocks_committed != s_stats.blocks_committed {
                failures.push(format!(
                    "{}+{} core{k} ({}): committed {} blocks paired, {} solo",
                    a.name,
                    b.name,
                    wl.name,
                    chip_stats.cores[k].blocks_committed,
                    s_stats.blocks_committed
                ));
            }
            if arch[k].0 != s_regs {
                failures.push(format!(
                    "{}+{} core{k} ({}): registers depend on the co-runner",
                    a.name, b.name, wl.name
                ));
            }
            if arch[k].1 != s_mem {
                failures.push(format!(
                    "{}+{} core{k} ({}): memory depends on the co-runner",
                    a.name, b.name, wl.name
                ));
            }
        }
    }
    assert!(failures.is_empty(), "contention leaked into architecture:\n{}", failures.join("\n"));
}

#[test]
fn chip_runs_are_deterministic() {
    let a = suite::by_name("listwalk").expect("registered");
    let b = suite::by_name("saxpy").expect("registered");
    let (s1, arch1) = chip_run(&[&a, &b], false);
    let (s2, arch2) = chip_run(&[&a, &b], false);
    assert_eq!(s1, s2, "ChipStats must be bit-identical across reruns");
    assert_eq!(arch1, arch2, "architectural state must be bit-identical across reruns");
}

#[test]
fn memory_bound_pairing_actually_contends() {
    let a = suite::by_name("listwalk").expect("registered");
    let b = suite::by_name("saxpy").expect("registered");
    let (chip_stats, _) = chip_run(&[&a, &b], false);
    assert!(
        chip_stats.total_conflict_stalls() > 0,
        "listwalk+saxpy must collide at the banks at least once"
    );
    for (k, (inj, _)) in chip_stats.ocn_tag_counts.iter().enumerate() {
        assert!(*inj > 0, "core {k} injected no OCN packets — tagging is broken");
    }
    assert!(
        chip_stats.ocn_tag_highwater.iter().all(|&h| h > 0),
        "both cores must have packets in flight at some point"
    );
    let slowdowns: Vec<f64> = [&a, &b]
        .into_iter()
        .enumerate()
        .map(|(k, wl)| chip_stats.cores[k].cycles as f64 / solo(wl).0.cycles as f64)
        .collect();
    // Contention shifts the OCN's round-robin state, so a single
    // request can in principle arrive *earlier* than solo — but net
    // across a memory-bound run, sharing the banks must cost someone
    // cycles.
    assert!(
        slowdowns.iter().any(|&s| s > 1.0),
        "two memory-bound workloads on one NUCA must slow at least one down: {slowdowns:?}"
    );
}

#[test]
fn threaded_chip_is_bit_identical_to_serial() {
    // The core-tick phase touches only per-core state (a Shared
    // memsys tick is a no-op), so ticking cores on worker threads and
    // joining before the shared-NUCA phase must be invisible. Forcing
    // `threaded` exercises real worker threads even on a one-CPU host
    // — the pool spawns as many workers as it is told to.
    let a = suite::by_name("listwalk").expect("registered");
    let b = suite::by_name("saxpy").expect("registered");
    let cfg = |threaded| {
        let mut c = ChipConfig::with_cores(2, CoreConfig::prototype(), MemConfig::prototype());
        c.threaded = Some(threaded);
        c
    };
    let (s_stats, s_arch) = chip_run_with(&[&a, &b], cfg(false));
    let (t_stats, t_arch) = chip_run_with(&[&a, &b], cfg(true));
    assert_eq!(t_stats, s_stats, "threaded chip run must match the serial run bit-for-bit");
    assert_eq!(t_arch, s_arch, "threaded chip architectural state diverges from serial");
}

#[test]
fn chip_epoch_skip_is_bit_identical_and_not_vacuous() {
    // The chip coordinates skips: only when every core's mask is
    // empty does the whole lockstep ensemble fast-forward (folding
    // the shared system's earliest event), so per-core skipping can
    // never desynchronise the cores from the shared-NUCA phase.
    let a = suite::by_name("listwalk").expect("registered");
    let b = suite::by_name("saxpy").expect("registered");
    let cfg = |skip| {
        let core = CoreConfig { skip_epochs: skip, ..CoreConfig::prototype() };
        ChipConfig::with_cores(2, core, MemConfig::prototype())
    };
    let (s_stats, s_arch) = chip_run_with(&[&a, &b], cfg(true));
    let (c_stats, c_arch) = chip_run_with(&[&a, &b], cfg(false));
    assert_eq!(s_stats, c_stats, "chip epoch skipping must match cycle-by-cycle bit-for-bit");
    assert_eq!(s_arch, c_arch, "chip epoch skipping changed architectural state");

    // Non-vacuous: a one-core chip running the pointer chase must
    // actually fast-forward — it mirrors the solo-NUCA case, where
    // every DRAM miss leaves the core with provably nothing to do.
    let mut chip =
        Chip::new(ChipConfig::with_cores(1, CoreConfig::prototype(), MemConfig::prototype()));
    let image = a.build_trips(Quality::Hand).expect("compiles").image;
    chip.run(std::slice::from_ref(&image), MAX_CYCLES).expect("halts");
    let g = chip.core(0).gating_stats();
    assert!(g.epochs_skipped > 0, "one-core chip skipped no epochs on listwalk: {g:?}");
}

#[test]
fn a_lone_core_in_any_slot_of_any_die_matches_its_prototype_slot() {
    let wl = suite::by_name("saxpy").expect("registered");
    let (solo_stats, solo_regs, solo_mem) = solo(&wl);

    // Slot 0 of the prototype die IS the solo path (PortMap::SOLO is
    // `for_core(0, 2)`), idle co-slot and all.
    let (s0, r0, m0) = run_slot(&wl, 0, 2);
    assert_eq!(s0, solo_stats, "slot 0 of the prototype die diverged from solo CoreStats");
    assert_eq!(r0, solo_regs, "slot 0 of the prototype die diverged from solo registers");
    assert_eq!(m0, solo_mem, "slot 0 of the prototype die diverged from solo memory");

    // Slot 1 of the prototype die anchors all odd slots: its ports
    // sit five rows below slot 0's, so its OCN distances — and hence
    // its cycle counts — legitimately differ from solo, but its
    // architecture must not.
    let (odd_stats, odd_regs, odd_mem) = run_slot(&wl, 1, 2);
    assert_eq!(odd_regs, solo_regs, "slot choice leaked into registers");
    assert_eq!(odd_mem, solo_mem, "slot choice leaked into memory");
    assert_eq!(
        odd_stats.blocks_committed, solo_stats.blocks_committed,
        "slot choice changed the committed block count"
    );

    // Wider dies tile whole prototype blocks vertically, and a +10·b
    // row translation preserves routing, per-router round-robin and
    // bank timing exactly — so slot k of any die must reproduce
    // prototype slot k % 2 bit-for-bit. The sweep uses the short
    // `vadd` (its loads and stores still cross the OCN) against its
    // own prototype-die anchors, keeping the debug-mode test cheap;
    // 16 cores is the widest die, and its interior slots add nothing
    // over 8's, so spot-check its corners.
    let wl = suite::by_name("vadd").expect("registered");
    let anchors = [run_slot(&wl, 0, 2), run_slot(&wl, 1, 2)];
    let slots: &[(usize, &[usize])] =
        &[(4, &[0, 1, 2, 3]), (8, &[0, 1, 2, 3, 4, 5, 6, 7]), (16, &[0, 1, 14, 15])];
    for &(n, ks) in slots {
        for &k in ks {
            let (stats, regs_k, mem_k) = run_slot(&wl, k, n);
            let (want_stats, want_regs, want_mem) = &anchors[k % 2];
            assert_eq!(
                &stats,
                want_stats,
                "slot {k} of an {n}-core die is not a translation of prototype slot {}",
                k % 2
            );
            assert_eq!(&regs_k, want_regs, "slot {k} of an {n}-core die: registers diverge");
            assert_eq!(&mem_k, want_mem, "slot {k} of an {n}-core die: memory diverges");
        }
    }
}

#[test]
fn per_core_state_is_corunner_independent_on_a_quad_die() {
    let mut solos: HashMap<&'static str, (CoreStats, Vec<u64>, SparseMem)> = HashMap::new();
    let mut failures = Vec::new();
    for group in suite::groups(4) {
        let wls: Vec<&Workload> = group.iter().collect();
        let (chip_stats, arch) = chip_run(&wls, false);
        let gname: Vec<&str> = group.iter().map(|w| w.name).collect();
        for (k, wl) in group.iter().enumerate() {
            let (s_stats, s_regs, s_mem) = solos.entry(wl.name).or_insert_with(|| solo(wl));
            if chip_stats.cores[k].blocks_committed != s_stats.blocks_committed {
                failures.push(format!(
                    "{gname:?} core{k} ({}): committed {} blocks grouped, {} solo",
                    wl.name, chip_stats.cores[k].blocks_committed, s_stats.blocks_committed
                ));
            }
            if &arch[k].0 != s_regs {
                failures.push(format!(
                    "{gname:?} core{k} ({}): registers depend on the co-runners",
                    wl.name
                ));
            }
            if &arch[k].1 != s_mem {
                failures.push(format!(
                    "{gname:?} core{k} ({}): memory depends on the co-runners",
                    wl.name
                ));
            }
        }
    }
    assert!(failures.is_empty(), "contention leaked into architecture:\n{}", failures.join("\n"));
}

#[test]
fn sixteen_core_chip_conserves_packets_under_audit() {
    // `check_invariants` runs the chip-wide OCN conservation audit
    // every cycle across all sixteen tags; after the halt-and-drain
    // loop every injected packet must have been delivered.
    let wl = suite::by_name("vadd").expect("registered");
    let wls: Vec<&Workload> = vec![&wl; 16];
    let (stats, _) = chip_run(&wls, true);
    assert_eq!(stats.cores.len(), 16);
    for (k, (inj, del)) in stats.ocn_tag_counts.iter().enumerate() {
        assert!(*inj > 0, "core {k} of 16 injected no OCN packets — tagging is broken");
        assert_eq!(inj, del, "core {k} of 16 leaked packets: {inj} injected, {del} delivered");
    }
}

#[test]
fn shared_memory_off_is_bit_identical_to_the_default_chip() {
    // PR 10's off-gate: `shared_memory` defaults off, and explicitly
    // off must be *bit-identical* to the default multiprogrammed chip
    // — cycles, whole-struct stats, registers, memory — across the
    // pair table, with every coherence observable quiet. Everything
    // the coherent mode adds (directory slices, GetS/GetM, the value
    // plane) must be unreachable behind the flag.
    for (a, b) in suite::pairs() {
        let core = CoreConfig { check_invariants: false, ..CoreConfig::prototype() };
        let mut cfg = ChipConfig::with_cores(2, core, MemConfig::prototype());
        assert!(!cfg.shared_memory, "shared memory must default off");
        cfg.shared_memory = false;
        let (off_stats, off_arch) = chip_run_with(&[&a, &b], cfg);
        let (def_stats, def_arch) = chip_run(&[&a, &b], false);
        assert_eq!(
            off_stats, def_stats,
            "{}+{}: shared_memory=false must not perturb ChipStats",
            a.name, b.name
        );
        assert_eq!(
            off_arch, def_arch,
            "{}+{}: shared_memory=false must not perturb architectural state",
            a.name, b.name
        );
        assert!(
            off_stats.coherence.is_none(),
            "a multiprogrammed chip must not report a coherence snapshot"
        );
        for (k, c) in off_stats.cores.iter().enumerate() {
            assert_eq!(c.coherence_flushes, 0, "core {k} flushed for coherence with it off");
            let mem = c.mem.as_ref().expect("NUCA stats present");
            assert_eq!(mem.invals_received, 0, "core {k} received invalidations with it off");
        }
    }
}

#[test]
fn chip_invariants_and_conservation_hold_under_contention() {
    let a = suite::by_name("saxpy").expect("registered");
    let b = suite::by_name("vadd").expect("registered");
    // `check_invariants` runs every core's per-tick suite plus the
    // chip-level conservation audit each cycle, and the post-halt
    // leak check (the whole chip must drain).
    let (chip_stats, _) = chip_run(&[&a, &b], true);
    assert_eq!(chip_stats.cores.len(), 2);
}
