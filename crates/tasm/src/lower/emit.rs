//! Region → TRIPS block emission.
//!
//! Turns a guarded region of IR blocks into one TRIPS block: builds
//! the dataflow graph (producers name their consumers), applies
//! predicates, inserts the `null`s that keep block outputs constant on
//! every path (§4.2, Figure 5a), expands fanout through `mov` trees,
//! assigns load/store IDs and read/write queue slots, spatially places
//! instructions on the 4×4 ET grid, and assembles a validated
//! [`TripsBlock`].

use std::collections::{HashMap, HashSet};

use trips_isa::{
    ArchReg, InstSlot, Instruction, Opcode, OperandSlot, Pred, ReadInst, Target, TripsBlock,
    WriteInst,
};

use crate::ir::{BbId, FuncId, Inst, Program, Term, VReg};
use crate::lower::regalloc::ProgramAlloc;
use crate::lower::region::{Guard, Region};
use crate::{Quality, TasmError};

/// Where a fixed-up field ultimately points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTarget {
    /// The TRIPS block for the region headed by `head` in `func`.
    Block {
        /// The function.
        func: FuncId,
        /// The region head block.
        head: BbId,
    },
    /// The entry region of `func`.
    FuncEntry(FuncId),
}

/// A field of an emitted instruction to patch once block addresses are
/// known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixupKind {
    /// Patch a branch offset (in 128-byte units, relative to this
    /// block's address).
    Branch(LinkTarget),
    /// Patch a `genu` immediate with bits 31:16 of the target address.
    AddrHi(LinkTarget),
    /// Patch an `app` immediate with bits 15:0 of the target address.
    AddrLo(LinkTarget),
}

/// A pending patch in an emitted block.
#[derive(Debug, Clone, Copy)]
pub struct Fixup {
    /// Index of the instruction within the block body.
    pub inst: u8,
    /// What to patch it with.
    pub kind: FixupKind,
}

/// One emitted (but not yet address-patched) TRIPS block.
#[derive(Debug, Clone)]
pub struct EmittedBlock {
    /// The assembled block; passes [`TripsBlock::validate`].
    pub block: TripsBlock,
    /// Address fixups to apply during layout.
    pub fixups: Vec<Fixup>,
    /// The region head this block implements.
    pub head: BbId,
}

const MAX_BODY: usize = 128;
const MAX_LSIDS: u8 = 32;
const SLOTS_PER_BANK: u8 = 8;

#[derive(Debug, Clone)]
enum SymKind {
    Read { reg: ArchReg },
    Body { op: Opcode, pred: Pred, imm: i32, lsid: u8, exit: u8, fix: Option<FixupKind> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Out {
    /// Operand slot of another sym.
    Op(usize, OperandSlot),
    /// Register-write output.
    Write(ArchReg),
}

#[derive(Debug, Clone)]
struct Sym {
    kind: SymKind,
    outs: Vec<Out>,
    /// IR-level guard this sym was emitted under, used to elide
    /// redundant guarded `mov`s when feeding stores.
    guard: Guard,
}

type PSet = Vec<usize>;

struct Emitter<'a> {
    fid: FuncId,
    alloc: &'a ProgramAlloc,
    syms: Vec<Sym>,
    cur: HashMap<VReg, PSet>,
    defined: HashSet<VReg>,
    reads: HashMap<ArchReg, usize>,
    consts: HashMap<i64, usize>,
    next_lsid: u8,
    store_mask: u32,
}

impl<'a> Emitter<'a> {
    fn body(&mut self, op: Opcode, pred: Pred, imm: i32, guard: Guard) -> usize {
        self.syms.push(Sym {
            kind: SymKind::Body { op, pred, imm, lsid: 0, exit: 0, fix: None },
            outs: Vec::new(),
            guard,
        });
        self.syms.len() - 1
    }

    fn connect(&mut self, from: usize, to: usize, slot: OperandSlot) {
        self.syms[from].outs.push(Out::Op(to, slot));
    }

    fn connect_write(&mut self, from: usize, reg: ArchReg) {
        self.syms[from].outs.push(Out::Write(reg));
    }

    fn read_sym(&mut self, reg: ArchReg) -> usize {
        if let Some(&s) = self.reads.get(&reg) {
            return s;
        }
        self.syms.push(Sym { kind: SymKind::Read { reg }, outs: Vec::new(), guard: Guard::Always });
        let s = self.syms.len() - 1;
        self.reads.insert(reg, s);
        s
    }

    fn producers_of(&mut self, v: VReg) -> Result<PSet, TasmError> {
        if let Some(ps) = self.cur.get(&v) {
            return Ok(ps.clone());
        }
        // Live-in: read the architectural register. The read must NOT
        // enter `cur` — the value map records *definitions*, and a
        // use inside a predicated arm is not one (the arm-merge logic
        // distinguishes arm definitions from the pre-diamond state).
        let reg = *self
            .alloc
            .func(self.fid)
            .map
            .get(&v)
            .ok_or(TasmError::Internal("live-in vreg has no register"))?;
        Ok(vec![self.read_sym(reg)])
    }

    /// Wires the guard's condition into `sym`'s predicate slot and
    /// returns the `Pred` field value.
    fn apply_guard(&mut self, sym: usize, guard: Guard) -> Result<Pred, TasmError> {
        match guard {
            Guard::Always => Ok(Pred::None),
            Guard::Cond { cond, polarity } => {
                for p in self.producers_of(cond)? {
                    self.connect(p, sym, OperandSlot::Predicate);
                }
                Ok(if polarity { Pred::OnTrue } else { Pred::OnFalse })
            }
        }
    }

    fn set_pred(&mut self, sym: usize, pred: Pred) {
        if let SymKind::Body { pred: p, .. } = &mut self.syms[sym].kind {
            *p = pred;
        }
    }

    fn guarded_body(&mut self, op: Opcode, imm: i32, guard: Guard) -> Result<usize, TasmError> {
        let s = self.body(op, Pred::None, imm, guard);
        let pred = self.apply_guard(s, guard)?;
        self.set_pred(s, pred);
        Ok(s)
    }

    /// Materializes a 64-bit constant, returning the sym producing it.
    /// The chain is unpredicated except for a trailing guarded `mov`
    /// when a guard is required and the constant does not fit `movi`
    /// (C-format instructions have no predicate field). Unguarded
    /// constants are common-subexpression-cached within the block.
    fn materialize(&mut self, val: i64, guard: Guard) -> Result<usize, TasmError> {
        if guard == Guard::Always {
            if let Some(&s) = self.consts.get(&val) {
                return Ok(s);
            }
            let s = self.materialize_uncached(val, guard)?;
            self.consts.insert(val, s);
            return Ok(s);
        }
        self.materialize_uncached(val, guard)
    }

    fn materialize_uncached(&mut self, val: i64, guard: Guard) -> Result<usize, TasmError> {
        let fits_i14 = (-(1 << 13)..(1 << 13)).contains(&val);
        if fits_i14 {
            return self.guarded_body(Opcode::Movi, val as i32, guard);
        }
        let chain_end = if (-(1 << 15)..(1 << 15)).contains(&val) {
            self.body(Opcode::Gens, Pred::None, (val as u16) as i32, Guard::Always)
        } else if (i64::from(i32::MIN)..=i64::from(i32::MAX)).contains(&val) {
            let hi =
                self.body(Opcode::Gens, Pred::None, ((val >> 16) as u16) as i32, Guard::Always);
            let lo = self.body(Opcode::App, Pred::None, (val as u16) as i32, Guard::Always);
            self.connect(hi, lo, OperandSlot::Left);
            lo
        } else {
            let u = val as u64;
            let mut cur =
                self.body(Opcode::Genu, Pred::None, ((u >> 48) as u16) as i32, Guard::Always);
            for shift in [32u32, 16, 0] {
                let nxt =
                    self.body(Opcode::App, Pred::None, ((u >> shift) as u16) as i32, Guard::Always);
                self.connect(cur, nxt, OperandSlot::Left);
                cur = nxt;
            }
            cur
        };
        match guard {
            Guard::Always => Ok(chain_end),
            g @ Guard::Cond { .. } => {
                let m = self.guarded_body(Opcode::Mov, 0, g)?;
                self.connect(chain_end, m, OperandSlot::Left);
                Ok(m)
            }
        }
    }

    fn alloc_lsid(&mut self) -> Result<u8, TasmError> {
        if self.next_lsid >= MAX_LSIDS {
            return Err(TasmError::Budget { reason: "more than 32 load/store IDs" });
        }
        let l = self.next_lsid;
        self.next_lsid += 1;
        Ok(l)
    }

    fn set_lsid(&mut self, sym: usize, lsid: u8) {
        if let SymKind::Body { lsid: l, .. } = &mut self.syms[sym].kind {
            *l = lsid;
        }
    }

    fn set_exit(&mut self, sym: usize, exit: u8) {
        if let SymKind::Body { exit: e, .. } = &mut self.syms[sym].kind {
            *e = exit;
        }
    }

    fn set_fix(&mut self, sym: usize, fix: FixupKind) {
        if let SymKind::Body { fix: f, .. } = &mut self.syms[sym].kind {
            *f = Some(fix);
        }
    }

    /// Delivers the value of `refs` to `(to, slot)`. When `guard`
    /// holds, delivery happens only on the guard's path and a `null`
    /// must cover the opposite path separately (stores only).
    fn deliver(
        &mut self,
        refs: &PSet,
        to: usize,
        slot: OperandSlot,
        guard: Guard,
    ) -> Result<(), TasmError> {
        match guard {
            Guard::Always => {
                for &p in refs {
                    self.connect(p, to, slot);
                }
            }
            Guard::Cond { .. } => {
                // If every producer already fires exactly under this
                // guard, connect directly (the Figure 5a pattern);
                // otherwise gate through a guarded mov.
                if refs.iter().all(|&p| self.syms[p].guard == guard) {
                    for &p in refs {
                        self.connect(p, to, slot);
                    }
                } else {
                    let m = self.guarded_body(Opcode::Mov, 0, guard)?;
                    for &p in refs {
                        self.connect(p, m, OperandSlot::Left);
                    }
                    self.connect(m, to, slot);
                }
            }
        }
        Ok(())
    }

    /// Lowers one IR instruction under `guard`.
    fn lower_inst(&mut self, inst: &Inst, guard: Guard) -> Result<(), TasmError> {
        match *inst {
            Inst::Bin { op, dst, a, b } => {
                let pa = self.producers_of(a)?;
                let pb = self.producers_of(b)?;
                let s = self.guarded_body(op, 0, guard)?;
                for p in pa {
                    self.connect(p, s, OperandSlot::Left);
                }
                for p in pb {
                    self.connect(p, s, OperandSlot::Right);
                }
                self.define(dst, vec![s]);
            }
            Inst::Un { op, dst, a } => {
                let pa = self.producers_of(a)?;
                let s = self.guarded_body(op, 0, guard)?;
                for p in pa {
                    self.connect(p, s, OperandSlot::Left);
                }
                self.define(dst, vec![s]);
            }
            Inst::BinImm { op, dst, a, imm } => {
                let pa = self.producers_of(a)?;
                if (-(1 << 13)..(1 << 13)).contains(&imm) {
                    let s = self.guarded_body(op, imm as i32, guard)?;
                    for p in pa {
                        self.connect(p, s, OperandSlot::Left);
                    }
                    self.define(dst, vec![s]);
                } else {
                    let c = self.materialize(imm, Guard::Always)?;
                    let g = wide_imm_op(op)?;
                    let s = self.guarded_body(g, 0, guard)?;
                    for p in pa {
                        self.connect(p, s, OperandSlot::Left);
                    }
                    self.connect(c, s, OperandSlot::Right);
                    self.define(dst, vec![s]);
                }
            }
            Inst::Const { dst, val } => {
                let s = self.materialize(val, guard)?;
                self.define(dst, vec![s]);
            }
            Inst::Load { op, dst, addr, off } => {
                let (base, off) = self.effective_address(addr, off, guard)?;
                let lsid = self.alloc_lsid()?;
                let s = self.guarded_body(op, off, guard)?;
                self.set_lsid(s, lsid);
                for p in base {
                    self.connect(p, s, OperandSlot::Left);
                }
                self.define(dst, vec![s]);
            }
            Inst::Store { op, addr, off, val } => {
                let (base, off) = self.effective_address(addr, off, guard)?;
                let pv = self.producers_of(val)?;
                let lsid = self.alloc_lsid()?;
                self.store_mask |= 1 << lsid;
                // Stores are emitted unpredicated so the block's store
                // count is path-independent; under a guard a `null` on
                // the opposite path nullifies both operands (§4.2).
                let s = self.body(op, Pred::None, off, guard);
                self.set_lsid(s, lsid);
                self.deliver(&base, s, OperandSlot::Left, guard)?;
                self.deliver(&pv, s, OperandSlot::Right, guard)?;
                if let Guard::Cond { cond, polarity } = guard {
                    let opp = Guard::Cond { cond, polarity: !polarity };
                    let n = self.guarded_body(Opcode::Null, 0, opp)?;
                    self.connect(n, s, OperandSlot::Left);
                    self.connect(n, s, OperandSlot::Right);
                }
            }
        }
        Ok(())
    }

    /// Folds a byte offset into the 9-bit load/store immediate or an
    /// explicit address add.
    fn effective_address(
        &mut self,
        addr: VReg,
        off: i32,
        guard: Guard,
    ) -> Result<(PSet, i32), TasmError> {
        let base = self.producers_of(addr)?;
        if (-(1 << 8)..(1 << 8)).contains(&off) {
            return Ok((base, off));
        }
        if (-(1 << 13)..(1 << 13)).contains(&off) {
            let s = self.guarded_body(Opcode::Addi, off, guard)?;
            for p in &base {
                self.connect(*p, s, OperandSlot::Left);
            }
            return Ok((vec![s], 0));
        }
        let c = self.materialize(i64::from(off), Guard::Always)?;
        let s = self.guarded_body(Opcode::Add, 0, guard)?;
        for p in &base {
            self.connect(*p, s, OperandSlot::Left);
        }
        self.connect(c, s, OperandSlot::Right);
        Ok((vec![s], 0))
    }

    fn define(&mut self, v: VReg, refs: PSet) {
        self.cur.insert(v, refs);
        self.defined.insert(v);
    }
}

/// The G-format opcode equivalent of an I-format opcode, for wide
/// immediates.
fn wide_imm_op(op: Opcode) -> Result<Opcode, TasmError> {
    Ok(match op {
        Opcode::Addi => Opcode::Add,
        Opcode::Subi => Opcode::Sub,
        Opcode::Muli => Opcode::Mul,
        Opcode::Divi => Opcode::Div,
        Opcode::Modi => Opcode::Mod,
        Opcode::Andi => Opcode::And,
        Opcode::Ori => Opcode::Or,
        Opcode::Xori => Opcode::Xor,
        Opcode::Slli => Opcode::Sll,
        Opcode::Srli => Opcode::Srl,
        Opcode::Srai => Opcode::Sra,
        Opcode::Teqi => Opcode::Teq,
        Opcode::Tnei => Opcode::Tne,
        Opcode::Tlti => Opcode::Tlt,
        Opcode::Tlei => Opcode::Tle,
        Opcode::Tgti => Opcode::Tgt,
        Opcode::Tgei => Opcode::Tge,
        _ => return Err(TasmError::Internal("no wide-immediate equivalent")),
    })
}

/// Emits one region into a TRIPS block.
///
/// # Errors
///
/// [`TasmError::Budget`] when the region exceeds a hardware budget
/// (the caller shrinks the region); other variants are fatal.
pub fn emit_region(
    prog: &Program,
    fid: FuncId,
    region: &Region,
    alloc: &ProgramAlloc,
    live_out: &HashSet<VReg>,
    quality: Quality,
) -> Result<EmittedBlock, TasmError> {
    let func = prog.func(fid);
    let mut em = Emitter {
        fid,
        alloc,
        syms: Vec::new(),
        cur: HashMap::new(),
        defined: HashSet::new(),
        reads: HashMap::new(),
        consts: HashMap::new(),
        next_lsid: 0,
        store_mask: 0,
    };

    // Call-continuation binding: the call result arrives in the
    // callee's return register.
    if let Some((dst, callee)) = region.ret_binding {
        let r = em.alloc.func(callee).ret;
        let s = em.read_sym(r);
        em.define(dst, vec![s]);
    }

    // Lower the parts, pairing guarded arms around their snapshot.
    let mut i = 0;
    while i < region.parts.len() {
        let (bb, guard) = region.parts[i];
        match guard {
            Guard::Always => {
                for inst in &func.block(bb).insts {
                    em.lower_inst(inst, Guard::Always)?;
                }
                i += 1;
            }
            Guard::Cond { cond, polarity: true } => {
                let snapshot = em.cur.clone();
                for inst in &func.block(bb).insts {
                    em.lower_inst(inst, guard)?;
                }
                let cur_t = std::mem::replace(&mut em.cur, snapshot.clone());
                let cur_f = if let Some(&(
                    fbb,
                    fg @ Guard::Cond {
                        cond: fc,
                        polarity: false,
                    },
                )) = region.parts.get(i + 1).filter(
                    |(_, g)| matches!(g, Guard::Cond { cond: fc, polarity: false } if *fc == cond),
                ) {
                    debug_assert_eq!(fc, cond);
                    for inst in &func.block(fbb).insts {
                        em.lower_inst(inst, fg)?;
                    }
                    i += 2;
                    std::mem::take(&mut em.cur)
                } else {
                    i += 1;
                    snapshot.clone()
                };
                em.cur = merge_paths(&mut em, snapshot, cur_t, cur_f, cond)?;
            }
            Guard::Cond { polarity: false, .. } => {
                // A lone else-side arm (mirrored triangle).
                let snapshot = em.cur.clone();
                for inst in &func.block(bb).insts {
                    em.lower_inst(inst, guard)?;
                }
                let cur_f = std::mem::replace(&mut em.cur, snapshot.clone());
                let cond = match guard {
                    Guard::Cond { cond, .. } => cond,
                    Guard::Always => unreachable!(),
                };
                let cur_t = snapshot.clone();
                em.cur = merge_paths(&mut em, snapshot, cur_t, cur_f, cond)?;
                i += 1;
            }
        }
    }

    // Register writes for values defined here and live afterwards.
    let falloc = alloc.func(fid);
    let mut outs: Vec<VReg> = em.defined.iter().copied().collect();
    outs.sort();
    for v in outs {
        if !live_out.contains(&v) {
            continue;
        }
        let Some(&reg) = falloc.map.get(&v) else {
            continue;
        };
        let refs = em.cur[&v].clone();
        for p in refs {
            em.connect_write(p, reg);
        }
    }

    // Terminator.
    match &region.term {
        Term::Jmp(n) => {
            let b = em.body(Opcode::Bro, Pred::None, 0, Guard::Always);
            em.set_fix(b, FixupKind::Branch(LinkTarget::Block { func: fid, head: *n }));
        }
        Term::Br { cond, t, f } => {
            let pc = em.producers_of(*cond)?;
            let bt = em.body(Opcode::Bro, Pred::OnTrue, 0, Guard::Always);
            em.set_exit(bt, 0);
            em.set_fix(bt, FixupKind::Branch(LinkTarget::Block { func: fid, head: *t }));
            let bf = em.body(Opcode::Bro, Pred::OnFalse, 0, Guard::Always);
            em.set_exit(bf, 1);
            em.set_fix(bf, FixupKind::Branch(LinkTarget::Block { func: fid, head: *f }));
            for p in pc {
                em.connect(p, bt, OperandSlot::Predicate);
                em.connect(p, bf, OperandSlot::Predicate);
            }
        }
        Term::Ret(v) => {
            if let Some(v) = v {
                let refs = em.producers_of(*v)?;
                for p in refs {
                    em.connect_write(p, falloc.ret);
                }
            }
            let link = em.read_sym(falloc.link);
            let b = em.body(Opcode::Ret, Pred::None, 0, Guard::Always);
            em.connect(link, b, OperandSlot::Left);
        }
        Term::Call { func: callee, args, dst: _, next } => {
            let c = alloc.func(*callee);
            let arg_regs = c.args.clone();
            if args.len() != arg_regs.len() {
                return Err(TasmError::Internal("call arity mismatch"));
            }
            for (a, reg) in args.iter().zip(arg_regs) {
                let refs = em.producers_of(*a)?;
                for p in refs {
                    em.connect_write(p, reg);
                }
            }
            // Return address = address of the continuation block,
            // materialized as gens/app and written to the callee's
            // link register.
            let ra_target = LinkTarget::Block { func: fid, head: *next };
            let hi = em.body(Opcode::Genu, Pred::None, 0, Guard::Always);
            em.set_fix(hi, FixupKind::AddrHi(ra_target));
            let lo = em.body(Opcode::App, Pred::None, 0, Guard::Always);
            em.set_fix(lo, FixupKind::AddrLo(ra_target));
            em.connect(hi, lo, OperandSlot::Left);
            em.connect_write(lo, c.link);
            let b = em.body(Opcode::Callo, Pred::None, 0, Guard::Always);
            em.set_fix(b, FixupKind::Branch(LinkTarget::FuncEntry(*callee)));
        }
        Term::Halt => {
            em.body(Opcode::Halt, Pred::None, 0, Guard::Always);
        }
    }

    prune_dead(&mut em);
    expand_fanout(&mut em, quality)?;
    assemble(em, region.head, quality)
}

/// Merges the value maps of the two arms of a diamond (or triangle)
/// guarded by `cond`, inserting guarded `mov`s so that exactly one
/// producer fires per path.
fn merge_paths(
    em: &mut Emitter<'_>,
    snapshot: HashMap<VReg, PSet>,
    cur_t: HashMap<VReg, PSet>,
    cur_f: HashMap<VReg, PSet>,
    cond: VReg,
) -> Result<HashMap<VReg, PSet>, TasmError> {
    let mut keys: HashSet<VReg> = HashSet::new();
    keys.extend(cur_t.keys().copied());
    keys.extend(cur_f.keys().copied());
    keys.extend(snapshot.keys().copied());
    let mut sorted: Vec<VReg> = keys.into_iter().collect();
    sorted.sort();

    let mut merged = HashMap::new();
    for v in sorted {
        let base = snapshot.get(&v);
        let tv = cur_t.get(&v).or(base);
        let fv = cur_f.get(&v).or(base);
        let refs = match (tv, fv) {
            (Some(t), Some(f)) if t == f => t.clone(),
            (Some(t), Some(f)) => {
                let t_changed = base != Some(t);
                let f_changed = base != Some(f);
                let mut refs = Vec::new();
                // A side equal to the snapshot fires on both paths, so
                // it must be gated with a mov predicated on this
                // diamond's condition.
                let side = |em: &mut Emitter<'_>,
                            src: &PSet,
                            changed: bool,
                            polarity: bool|
                 -> Result<Vec<usize>, TasmError> {
                    if changed {
                        Ok(src.clone())
                    } else {
                        let g = Guard::Cond { cond, polarity };
                        let m = em.guarded_body(Opcode::Mov, 0, g)?;
                        for &p in src {
                            em.connect(p, m, OperandSlot::Left);
                        }
                        Ok(vec![m])
                    }
                };
                refs.extend(side(em, t, t_changed, true)?);
                refs.extend(side(em, f, f_changed, false)?);
                refs
            }
            (Some(t), None) => {
                one_sided(em, v, t.clone(), cond, /*defined_on_true=*/ true)?
            }
            (None, Some(f)) => {
                one_sided(em, v, f.clone(), cond, /*defined_on_true=*/ false)?
            }
            (None, None) => continue,
        };
        merged.insert(v, refs);
    }
    Ok(merged)
}

/// A vreg defined on only one arm with no pre-diamond producer: when
/// it is a live-in (has an architectural register), the missing arm's
/// value is the register's current contents — materialize a read gated
/// by a mov predicated on the opposite polarity. A vreg with no
/// register is a path-local temporary and keeps its single side.
fn one_sided(
    em: &mut Emitter<'_>,
    v: VReg,
    mut refs: PSet,
    cond: VReg,
    defined_on_true: bool,
) -> Result<PSet, TasmError> {
    let reg = em.alloc.func(em.fid).map.get(&v).copied();
    if let Some(reg) = reg {
        let read = em.read_sym(reg);
        let g = Guard::Cond { cond, polarity: !defined_on_true };
        let m = em.guarded_body(Opcode::Mov, 0, g)?;
        em.connect(read, m, OperandSlot::Left);
        refs.push(m);
    }
    Ok(refs)
}

/// Removes value-producing syms whose results are never consumed.
fn prune_dead(em: &mut Emitter<'_>) {
    loop {
        let mut dead: Vec<usize> = Vec::new();
        for (i, s) in em.syms.iter().enumerate() {
            let prunable = match &s.kind {
                SymKind::Read { .. } => s.outs.is_empty(),
                SymKind::Body { op, .. } => {
                    s.outs.is_empty() && op.produces_value() && *op != Opcode::Nop
                }
            };
            if prunable {
                dead.push(i);
            }
        }
        if dead.is_empty() {
            return;
        }
        let dead_set: HashSet<usize> = dead.iter().copied().collect();
        for (i, s) in em.syms.iter_mut().enumerate() {
            if dead_set.contains(&i) {
                // Mark dead by turning into a targetless nop shell.
                s.kind = SymKind::Body {
                    op: Opcode::Nop,
                    pred: Pred::None,
                    imm: 0,
                    lsid: 0,
                    exit: 0,
                    fix: None,
                };
                s.outs.clear();
            } else {
                s.outs.retain(|o| !matches!(o, Out::Op(t, _) if dead_set.contains(t)));
            }
        }
        em.reads.retain(|_, s| !dead_set.contains(s));
    }
}

/// How many result targets an instruction word can encode: two for G
/// format, one for I/L/C (only `T0` exists), none for stores and
/// branches.
fn max_outs(kind: &SymKind) -> usize {
    match kind {
        SymKind::Read { .. } => 2,
        SymKind::Body { op, .. } => match op.format() {
            trips_isa::Format::G => 2,
            trips_isa::Format::I | trips_isa::Format::L | trips_isa::Format::C => 1,
            trips_isa::Format::S | trips_isa::Format::B => 0,
        },
    }
}

/// Expands producers with more outputs than their format encodes
/// through `mov` fanout trees (balanced in `Hand` quality, chains in
/// `Compiled`) — the "fanout ops" overhead of Table 3.
fn expand_fanout(em: &mut Emitter<'_>, quality: Quality) -> Result<(), TasmError> {
    let mut i = 0;
    while i < em.syms.len() {
        let cap = max_outs(&em.syms[i].kind);
        if em.syms[i].outs.len() > cap {
            if cap == 0 {
                return Err(TasmError::Internal("store or branch with result targets"));
            }
            let outs = std::mem::take(&mut em.syms[i].outs);
            let guard = em.syms[i].guard;
            let fan = |em: &mut Emitter<'_>, outs: &[Out]| match quality {
                Quality::Hand => fan_tree(em, outs, guard),
                Quality::Compiled => fan_chain(em, outs, guard),
            };
            em.syms[i].outs = if cap == 2 {
                fan(em, &outs)
            } else {
                // Single-target format: route everything through one mov.
                let m = fan_mov(em, guard);
                em.syms[m].outs = fan(em, &outs);
                vec![Out::Op(m, OperandSlot::Left)]
            };
        }
        i += 1;
    }
    Ok(())
}

fn fan_mov(em: &mut Emitter<'_>, guard: Guard) -> usize {
    // Fanout movs are unpredicated: they fire only when their operand
    // arrives, which already encodes the path condition.
    em.syms.push(Sym {
        kind: SymKind::Body {
            op: Opcode::Mov,
            pred: Pred::None,
            imm: 0,
            lsid: 0,
            exit: 0,
            fix: None,
        },
        outs: Vec::new(),
        guard,
    });
    em.syms.len() - 1
}

/// Balanced fanout: produces at most two outs, splitting recursively.
fn fan_tree(em: &mut Emitter<'_>, outs: &[Out], guard: Guard) -> Vec<Out> {
    if outs.len() <= 2 {
        return outs.to_vec();
    }
    let mid = outs.len().div_ceil(2);
    let make_half = |em: &mut Emitter<'_>, half: &[Out]| -> Out {
        if half.len() == 1 {
            half[0]
        } else {
            let m = fan_mov(em, guard);
            em.syms[m].outs = fan_tree(em, half, guard);
            Out::Op(m, OperandSlot::Left)
        }
    };
    let l = make_half(em, &outs[..mid]);
    let r = make_half(em, &outs[mid..]);
    vec![l, r]
}

/// Chained fanout: out0 direct, remainder through a linear mov chain.
fn fan_chain(em: &mut Emitter<'_>, outs: &[Out], guard: Guard) -> Vec<Out> {
    if outs.len() <= 2 {
        return outs.to_vec();
    }
    let m = fan_mov(em, guard);
    em.syms[m].outs = fan_chain(em, &outs[1..], guard);
    vec![outs[0], Out::Op(m, OperandSlot::Left)]
}

/// Spatial placement plus final assembly.
fn assemble(em: Emitter<'_>, head: BbId, quality: Quality) -> Result<EmittedBlock, TasmError> {
    let Emitter { syms, store_mask, .. } = em;

    // Collect body syms (skipping pruned nop shells).
    let body: Vec<usize> = syms
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(&s.kind, SymKind::Body { op, .. } if *op != Opcode::Nop))
        .map(|(i, _)| i)
        .collect();
    if body.len() > MAX_BODY {
        return Err(TasmError::Budget { reason: "more than 128 instructions" });
    }

    // Write-slot allocation (per bank).
    let mut written: Vec<ArchReg> = syms
        .iter()
        .flat_map(|s| s.outs.iter())
        .filter_map(|o| match o {
            Out::Write(r) => Some(*r),
            _ => None,
        })
        .collect();
    written.sort();
    written.dedup();
    let mut write_slot: HashMap<ArchReg, u8> = HashMap::new();
    let mut wcount = [0u8; 4];
    for r in &written {
        let b = r.bank() as usize;
        if wcount[b] >= SLOTS_PER_BANK {
            return Err(TasmError::Budget { reason: "more than 8 write slots in a bank" });
        }
        write_slot.insert(*r, r.bank() * SLOTS_PER_BANK + wcount[b]);
        wcount[b] += 1;
    }

    // Read-slot allocation (per bank), in deterministic register order.
    let mut read_syms: Vec<(ArchReg, usize)> = syms
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match &s.kind {
            SymKind::Read { reg } => Some((*reg, i)),
            _ => None,
        })
        .collect();
    read_syms.sort();
    let mut read_slot: HashMap<usize, u8> = HashMap::new();
    let mut rcount = [0u8; 4];
    for (r, s) in &read_syms {
        let b = r.bank() as usize;
        if rcount[b] >= SLOTS_PER_BANK {
            return Err(TasmError::Budget { reason: "more than 8 read slots in a bank" });
        }
        read_slot.insert(*s, r.bank() * SLOTS_PER_BANK + rcount[b]);
        rcount[b] += 1;
    }

    // Placement: map body sym -> instruction index.
    let place = match quality {
        Quality::Compiled => place_sequential(&body),
        Quality::Hand => place_greedy(&syms, &body, &read_slot),
    };

    // Assemble the block.
    let max_idx = place.values().copied().max().map_or(0, |m| m as usize + 1);
    let mut insts = vec![Instruction::nop(); max_idx];
    let mut fixups = Vec::new();
    let target_of = |o: &Out| -> Target {
        match o {
            Out::Op(t, slot) => Target::Inst { idx: place[t], slot: *slot },
            Out::Write(r) => Target::Write { slot: write_slot[r] },
        }
    };
    for &si in &body {
        let s = &syms[si];
        let SymKind::Body { op, pred, imm, lsid, exit, fix } = &s.kind else { unreachable!() };
        let idx = place[&si];
        let mut t = [Target::None; 2];
        for (k, o) in s.outs.iter().enumerate() {
            t[k] = target_of(o);
        }
        insts[idx as usize] = Instruction {
            opcode: *op,
            pred: *pred,
            targets: t,
            imm: *imm,
            lsid: *lsid,
            exit: *exit,
        };
        if let Some(kind) = fix {
            fixups.push(Fixup { inst: idx, kind: *kind });
        }
    }

    let mut block = TripsBlock { insts, ..TripsBlock::default() };
    block.header.store_mask = store_mask;
    for (reg, si) in &read_syms {
        let s = &syms[*si];
        let mut t = [Target::None; 2];
        for (k, o) in s.outs.iter().enumerate() {
            t[k] = target_of(o);
        }
        let slot = read_slot[si];
        block
            .set_read(slot, ReadInst::new(*reg, t))
            .map_err(|_| TasmError::Internal("read slot/bank mismatch"))?;
    }
    for r in &written {
        block
            .set_write(write_slot[r], WriteInst::new(*r))
            .map_err(|_| TasmError::Internal("write slot/bank mismatch"))?;
    }

    block.validate().map_err(TasmError::InvalidBlock)?;
    Ok(EmittedBlock { block, fixups, head })
}

/// Compiled-quality placement: emission order, striped row-major —
/// ignores locality, as the immature compiler did.
fn place_sequential(body: &[usize]) -> HashMap<usize, u8> {
    body.iter().enumerate().map(|(i, &s)| (s, i as u8)).collect()
}

/// Hand-quality placement: greedy minimum-communication placement of
/// the dataflow graph onto the 4×4 ET grid (8 slots per ET).
fn place_greedy(
    syms: &[Sym],
    body: &[usize],
    read_slot: &HashMap<usize, u8>,
) -> HashMap<usize, u8> {
    let body_set: HashSet<usize> = body.iter().copied().collect();
    // Producer lists per body sym.
    let mut producers: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, s) in syms.iter().enumerate() {
        for o in &s.outs {
            if let Out::Op(t, _) = o {
                if body_set.contains(t) {
                    producers.entry(*t).or_default().push(i);
                }
            }
        }
    }
    // Topological order via Kahn over body-to-body edges.
    let mut indeg: HashMap<usize, usize> = body.iter().map(|&b| (b, 0)).collect();
    for (&t, ps) in &producers {
        let n = ps.iter().filter(|p| body_set.contains(p)).count();
        indeg.insert(t, n);
    }
    let mut ready: Vec<usize> = body.iter().copied().filter(|b| indeg[b] == 0).collect();
    ready.sort();
    let mut order = Vec::with_capacity(body.len());
    let mut seen: HashSet<usize> = HashSet::new();
    while let Some(b) = ready.pop() {
        if !seen.insert(b) {
            continue;
        }
        order.push(b);
        for o in &syms[b].outs {
            if let Out::Op(t, _) = o {
                if body_set.contains(t) {
                    let d = indeg.get_mut(t).unwrap();
                    *d = d.saturating_sub(1);
                    if *d == 0 {
                        ready.push(*t);
                    }
                }
            }
        }
        ready.sort();
    }
    // Safety net for any cycle (should not happen in a dataflow block).
    for &b in body {
        if !seen.contains(&b) {
            order.push(b);
        }
    }

    // OPN coordinates: ET (row, col) sits at OPN (row + 1, col + 1);
    // DTs at column 0; RTs/GT on row 0.
    let opn_of_idx = |idx: u8| -> (i32, i32) {
        let s = InstSlot::from_index(idx);
        (i32::from(s.et.row) + 1, i32::from(s.et.col) + 1)
    };
    let opn_of_read = |slot: u8| -> (i32, i32) { (0, i32::from(slot / 8) + 1) };
    let dist = |a: (i32, i32), b: (i32, i32)| (a.0 - b.0).abs() + (a.1 - b.1).abs();

    let mut placed: HashMap<usize, u8> = HashMap::new();
    let mut used = [false; 128];
    for &b in &order {
        let s = &syms[b];
        let is_mem = matches!(&s.kind, SymKind::Body { op, .. } if op.is_load() || op.is_store());
        let is_branch = matches!(&s.kind, SymKind::Body { op, .. } if op.is_branch());
        let mut best: Option<(i64, u8)> = None;
        for idx in 0..128u8 {
            if used[idx as usize] {
                continue;
            }
            let pos = opn_of_idx(idx);
            let mut cost: i64 = 0;
            if let Some(ps) = producers.get(&b) {
                for &p in ps {
                    if let Some(&pi) = placed.get(&p) {
                        cost += i64::from(dist(opn_of_idx(pi), pos)) * 2;
                    } else if let Some(&slot) = read_slot.get(&p) {
                        cost += i64::from(dist(opn_of_read(slot), pos));
                    }
                }
            }
            if is_mem {
                cost += i64::from(pos.1); // pull toward the DT column
            }
            if is_branch {
                cost += i64::from(pos.0 + pos.1); // pull toward the GT
            }
            // Light tiebreak toward low indices for determinism and
            // dispatch-order friendliness.
            cost = cost * 256 + i64::from(idx);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, idx));
            }
        }
        let (_, idx) = best.expect("more body syms than slots");
        used[idx as usize] = true;
        placed.insert(b, idx);
    }
    placed
}
