//! Region (hyperblock) formation.
//!
//! A *region* is the set of IR basic blocks that will become one TRIPS
//! block. In `Compiled` quality every basic block is its own region —
//! modelling the immature compiler of the paper whose "blocks will be
//! too small" (§5.4). In `Hand` quality the former merges:
//!
//! * **chains** — a block whose every predecessor is already in the
//!   region and which is entered by the region's unconditional exit;
//! * **triangles** — `if (c) { then } join`, if-converted by
//!   predicating the `then` side;
//! * **diamonds** — `if (c) { then } else { else } join`, predicating
//!   both sides;
//!
//! and keeps merging while the trial-emitted block still fits the
//! hardware budgets (128 instructions, 32 load/store IDs, 8 read and 8
//! write slots per register bank). This mirrors hyperblock formation
//! in the TRIPS compiler [Smith et al., CGO 2006].

use std::collections::{HashMap, HashSet};

use crate::ir::{BbId, Func, FuncId, Program, Term, VReg};
use crate::lower::emit::{emit_region, EmittedBlock};
use crate::lower::regalloc::{liveness, Liveness, ProgramAlloc};
use crate::{Quality, TasmError};

/// The predicate guard of a merged basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// Executes on every path through the region.
    Always,
    /// Executes only when `cond` (a 0/1 value) matches `polarity`.
    Cond {
        /// The guarding condition register.
        cond: VReg,
        /// `true` = then-side, `false` = else-side.
        polarity: bool,
    },
}

/// One TRIPS-block-to-be: an ordered list of guarded basic blocks plus
/// the region's effective terminator.
#[derive(Debug, Clone)]
pub struct Region {
    /// The head basic block (the region's identity and branch target).
    pub head: BbId,
    /// The merged blocks in emission order, with their guards.
    pub parts: Vec<(BbId, Guard)>,
    /// The terminator of the region (the last merged block's).
    pub term: Term,
    /// Set when this region is a call continuation: the call's result
    /// register and the callee whose return register holds it.
    pub ret_binding: Option<(VReg, FuncId)>,
    /// The basic block whose `live_out` is the region's `live_out`.
    pub exit_bb: BbId,
}

/// All regions of one function, keyed by head block.
#[derive(Debug)]
pub struct FuncRegions {
    /// The regions, in discovery order (entry first).
    pub regions: Vec<Region>,
    /// Maps a head `BbId` to its index in `regions`.
    pub head_index: HashMap<BbId, usize>,
    /// Block-level liveness, reused by emission.
    pub liveness: Liveness,
}

impl FuncRegions {
    /// The region headed by `bb`.
    ///
    /// # Panics
    ///
    /// Panics if `bb` is not a region head.
    pub fn by_head(&self, bb: BbId) -> &Region {
        &self.regions[self.head_index[&bb]]
    }
}

/// Forms the regions of `func` and trial-emits each to prove it fits.
///
/// # Errors
///
/// Propagates fatal emission errors (for example a single basic block
/// that exceeds hardware budgets even unmerged).
pub fn form_regions(
    prog: &Program,
    fid: FuncId,
    alloc: &ProgramAlloc,
    quality: Quality,
) -> Result<FuncRegions, TasmError> {
    let func = prog.func(fid);
    let lv = liveness(func);
    let preds = func.predecessors();

    let mut regions: Vec<Region> = Vec::new();
    let mut head_index: HashMap<BbId, usize> = HashMap::new();
    let mut worklist: Vec<(BbId, Option<(VReg, FuncId)>)> = vec![(func.entry, None)];
    let mut queued: HashSet<BbId> = HashSet::new();
    queued.insert(func.entry);

    while let Some((head, ret_binding)) = worklist.pop() {
        if head_index.contains_key(&head) {
            continue;
        }
        let region = grow_region(prog, fid, func, &lv, &preds, alloc, quality, head, ret_binding)?;
        // Queue successors as new region heads.
        let mut push = |bb: BbId, rb: Option<(VReg, FuncId)>| {
            if queued.insert(bb) || rb.is_some() {
                worklist.push((bb, rb));
            }
        };
        match &region.term {
            Term::Jmp(n) => push(*n, None),
            Term::Br { t, f, .. } => {
                push(*t, None);
                push(*f, None);
            }
            Term::Call { func: callee, dst, next, .. } => {
                push(*next, dst.map(|d| (d, *callee)));
            }
            Term::Ret(_) | Term::Halt => {}
        }
        head_index.insert(head, regions.len());
        regions.push(region);
    }
    Ok(FuncRegions { regions, head_index, liveness: lv })
}

/// Live-out virtual registers of a region.
pub fn region_live_out(lv: &Liveness, region: &Region) -> HashSet<VReg> {
    lv.live_out[region.exit_bb.0 as usize].clone()
}

/// Trial-emits a region to check hardware budgets.
fn fits(
    prog: &Program,
    fid: FuncId,
    region: &Region,
    lv: &Liveness,
    alloc: &ProgramAlloc,
    quality: Quality,
) -> Result<bool, TasmError> {
    match emit_region(prog, fid, region, alloc, &region_live_out(lv, region), quality) {
        Ok(_) => Ok(true),
        Err(TasmError::Budget { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn grow_region(
    prog: &Program,
    fid: FuncId,
    func: &Func,
    lv: &Liveness,
    preds: &[Vec<BbId>],
    alloc: &ProgramAlloc,
    quality: Quality,
    head: BbId,
    ret_binding: Option<(VReg, FuncId)>,
) -> Result<Region, TasmError> {
    let mut region = Region {
        head,
        parts: vec![(head, Guard::Always)],
        term: func.block(head).term.clone(),
        ret_binding,
        exit_bb: head,
    };
    // The base region must fit on its own.
    if !fits(prog, fid, &region, lv, alloc, quality)? {
        return Err(TasmError::BlockTooLarge { func: func.name.clone(), bb: head.0 });
    }
    if quality == Quality::Compiled {
        return Ok(region);
    }

    let mut consumed: HashSet<BbId> = [head].into();
    loop {
        let candidate = extend_once(func, preds, &region, &consumed);
        let Some((new_parts, new_term, new_exit)) = candidate else {
            break;
        };
        let mut trial = region.clone();
        trial.parts.extend(new_parts.iter().cloned());
        trial.term = new_term;
        trial.exit_bb = new_exit;
        if fits(prog, fid, &trial, lv, alloc, quality)? {
            for (bb, _) in &new_parts {
                consumed.insert(*bb);
            }
            region = trial;
        } else {
            break;
        }
    }
    Ok(region)
}

/// Computes the next merge step (chain, triangle, or diamond), if any.
#[allow(clippy::type_complexity)]
fn extend_once(
    func: &Func,
    preds: &[Vec<BbId>],
    region: &Region,
    consumed: &HashSet<BbId>,
) -> Option<(Vec<(BbId, Guard)>, Term, BbId)> {
    let tail = region.exit_bb;
    match region.term.clone() {
        Term::Jmp(n) => {
            // Chain: all of n's predecessors already merged.
            if consumed.contains(&n) {
                return None;
            }
            if !preds[n.0 as usize].iter().all(|p| consumed.contains(p)) {
                return None;
            }
            Some((vec![(n, Guard::Always)], func.block(n).term.clone(), n))
        }
        Term::Br { cond, t, f } => {
            if t == f || consumed.contains(&t) || consumed.contains(&f) {
                return None;
            }
            // Arms must not redefine the condition register.
            let redefines = |bb: BbId| func.block(bb).insts.iter().any(|i| i.dst() == Some(cond));
            let sole_pred = |bb: BbId| preds[bb.0 as usize] == [tail];
            // Diamond: head → {t, f} → j.
            if sole_pred(t) && sole_pred(f) && !redefines(t) && !redefines(f) {
                if let (Term::Jmp(jt), Term::Jmp(jf)) = (&func.block(t).term, &func.block(f).term) {
                    if jt == jf && !consumed.contains(jt) {
                        let j = *jt;
                        let jp: HashSet<BbId> = preds[j.0 as usize].iter().copied().collect();
                        if jp == [t, f].into() {
                            return Some((
                                vec![
                                    (t, Guard::Cond { cond, polarity: true }),
                                    (f, Guard::Cond { cond, polarity: false }),
                                    (j, Guard::Always),
                                ],
                                func.block(j).term.clone(),
                                j,
                            ));
                        }
                    }
                }
            }
            // Triangle: head → t → f, or head → f directly.
            if sole_pred(t) && !redefines(t) && func.block(t).term == Term::Jmp(f) {
                let fp: HashSet<BbId> = preds[f.0 as usize].iter().copied().collect();
                if fp == [tail, t].into() && !consumed.contains(&f) {
                    return Some((
                        vec![(t, Guard::Cond { cond, polarity: true }), (f, Guard::Always)],
                        func.block(f).term.clone(),
                        f,
                    ));
                }
            }
            // Mirrored triangle: head → f → t.
            if sole_pred(f) && !redefines(f) && func.block(f).term == Term::Jmp(t) {
                let tp: HashSet<BbId> = preds[t.0 as usize].iter().copied().collect();
                if tp == [tail, f].into() && !consumed.contains(&t) {
                    return Some((
                        vec![(f, Guard::Cond { cond, polarity: false }), (t, Guard::Always)],
                        func.block(t).term.clone(),
                        t,
                    ));
                }
            }
            None
        }
        Term::Call { .. } | Term::Ret(_) | Term::Halt => None,
    }
}

/// Returns an [`EmittedBlock`] for every region of a function, in
/// region order.
///
/// # Errors
///
/// Propagates emission failures (which, after successful formation,
/// indicate an internal inconsistency).
pub fn emit_all(
    prog: &Program,
    fid: FuncId,
    fr: &FuncRegions,
    alloc: &ProgramAlloc,
    quality: Quality,
) -> Result<Vec<EmittedBlock>, TasmError> {
    fr.regions
        .iter()
        .map(|r| emit_region(prog, fid, r, alloc, &region_live_out(&fr.liveness, r), quality))
        .collect()
}
