//! The TRIPS backend: IR → regions → blocks → laid-out program image.

pub mod emit;
pub mod regalloc;
pub mod region;

use std::collections::HashMap;

use trips_isa::{ProgramImage, TripsBlock, BLOCK_ALIGN};

use crate::ir::{BbId, FuncId, Program};
use crate::{Quality, TasmError};
use emit::{EmittedBlock, FixupKind, LinkTarget};

/// Base address where code is laid out.
pub const CODE_BASE: u64 = 0x1_0000;

/// One block at its final address.
#[derive(Debug, Clone)]
pub struct PlacedBlock {
    /// The block's header address.
    pub addr: u64,
    /// Owning function.
    pub func: FuncId,
    /// Region head this block implements.
    pub head: BbId,
    /// The final (patched) block.
    pub block: TripsBlock,
}

/// Compilation statistics, for reporting block quality (the paper
/// attributes compiled-code slowdowns to small blocks, §5.4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompileStats {
    /// Blocks produced.
    pub blocks: usize,
    /// Total useful (non-nop) instructions.
    pub insts: usize,
    /// Total register reads in headers.
    pub reads: usize,
    /// Total register writes in headers.
    pub writes: usize,
    /// Mean useful instructions per block.
    pub avg_block_size: f64,
}

/// A fully lowered program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The loadable image (code and globals).
    pub image: ProgramImage,
    /// All blocks in layout order.
    pub blocks: Vec<PlacedBlock>,
    /// Statistics.
    pub stats: CompileStats,
}

/// Compiles an IR program into a TRIPS program image.
///
/// # Errors
///
/// Fails on IR inconsistencies, register-pool exhaustion, basic blocks
/// that exceed hardware budgets even unmerged, or layout overflow.
pub fn compile(prog: &Program, quality: Quality) -> Result<CompiledProgram, TasmError> {
    prog.check().map_err(TasmError::Ir)?;
    let alloc = regalloc::allocate(prog)?;

    // Emit every function's regions.
    let mut emitted: Vec<(FuncId, Vec<EmittedBlock>)> = Vec::new();
    for fi in 0..prog.funcs.len() {
        let fid = FuncId(fi as u32);
        let fr = region::form_regions(prog, fid, &alloc, quality)?;
        let blocks = region::emit_all(prog, fid, &fr, &alloc, quality)?;
        emitted.push((fid, blocks));
    }

    // Layout: functions in id order, each function's entry region
    // first (so `FuncEntry` targets the first block), then the rest in
    // region discovery order.
    let mut addr = CODE_BASE;
    let mut placed: Vec<PlacedBlock> = Vec::new();
    let mut block_addr: HashMap<(FuncId, BbId), u64> = HashMap::new();
    let mut func_entry: HashMap<FuncId, u64> = HashMap::new();
    let mut fixup_sets: Vec<Vec<emit::Fixup>> = Vec::new();
    for (fid, blocks) in emitted {
        let entry_bb = prog.func(fid).entry;
        for eb in blocks {
            debug_assert_eq!(addr % BLOCK_ALIGN, 0);
            if eb.head == entry_bb {
                func_entry.insert(fid, addr);
            }
            block_addr.insert((fid, eb.head), addr);
            addr += eb.block.size_bytes();
            fixup_sets.push(eb.fixups.clone());
            placed.push(PlacedBlock { addr: 0, func: fid, head: eb.head, block: eb.block });
        }
    }
    // Second pass: assign addresses (recompute, same order).
    let mut addr = CODE_BASE;
    for pb in &mut placed {
        pb.addr = addr;
        addr += pb.block.size_bytes();
    }

    // Apply fixups.
    let resolve = |t: LinkTarget| -> Result<u64, TasmError> {
        match t {
            LinkTarget::Block { func, head } => block_addr
                .get(&(func, head))
                .copied()
                .ok_or(TasmError::Internal("fixup to unknown block")),
            LinkTarget::FuncEntry(f) => {
                func_entry.get(&f).copied().ok_or(TasmError::Internal("fixup to unknown function"))
            }
        }
    };
    for (pb, fixups) in placed.iter_mut().zip(&fixup_sets) {
        for fx in fixups {
            let target = resolve(match fx.kind {
                FixupKind::Branch(t) | FixupKind::AddrHi(t) | FixupKind::AddrLo(t) => t,
            })?;
            let inst = &mut pb.block.insts[fx.inst as usize];
            match fx.kind {
                FixupKind::Branch(_) => {
                    let delta = (target as i64 - pb.addr as i64) / BLOCK_ALIGN as i64;
                    if !(-(1 << 19)..(1 << 19)).contains(&delta) {
                        return Err(TasmError::BranchOutOfRange { from: pb.addr, to: target });
                    }
                    inst.imm = delta as i32;
                }
                FixupKind::AddrHi(_) => {
                    if target >> 32 != 0 {
                        return Err(TasmError::Internal("code address above 4 GiB"));
                    }
                    inst.imm = ((target >> 16) & 0xffff) as i32;
                }
                FixupKind::AddrLo(_) => {
                    inst.imm = (target & 0xffff) as i32;
                }
            }
        }
    }

    // Build the image.
    let mut image = ProgramImage::new();
    let mut stats = CompileStats::default();
    for pb in &placed {
        image.add_block(pb.addr, &pb.block);
        stats.blocks += 1;
        stats.insts += pb.block.useful_insts();
        stats.reads += pb.block.header.reads.iter().filter(|r| r.is_some()).count();
        stats.writes += pb.block.header.write_count() as usize;
    }
    stats.avg_block_size =
        if stats.blocks == 0 { 0.0 } else { stats.insts as f64 / stats.blocks as f64 };
    for g in &prog.globals {
        image.add_segment(g.base, g.data.clone());
    }
    image.entry = *func_entry
        .get(&prog.entry)
        .ok_or(TasmError::Internal("entry function has no entry block"))?;

    Ok(CompiledProgram { image, blocks: placed, stats })
}
