//! Liveness analysis and static register allocation.
//!
//! TRIPS converts most def-use pairs into intra-block temporaries that
//! never touch the register file (§3.3 credits this with ~70% of the
//! register-bandwidth reduction). Only values live across block
//! boundaries get architectural registers here.
//!
//! Functions receive *disjoint static register pools* sized so that a
//! callee's registers never collide with any caller on any call path
//! (the IR forbids recursion). This removes the need for a stack and
//! matches how the hand-optimized kernels of the paper were coded.

use std::collections::{HashMap, HashSet};

use trips_isa::{ArchReg, REG_BANKS};

use crate::ir::{Func, FuncId, Program, Term, VReg};
use crate::TasmError;

/// Per-function register assignment.
#[derive(Debug, Clone)]
pub struct FuncAlloc {
    /// Virtual registers that live across basic blocks, mapped to
    /// architectural registers.
    pub map: HashMap<VReg, ArchReg>,
    /// Register the caller writes the return address into.
    pub link: ArchReg,
    /// Register the callee writes its return value into.
    pub ret: ArchReg,
    /// Argument registers, one per parameter.
    pub args: Vec<ArchReg>,
    /// First global pool index used by this function.
    pub base: usize,
    /// Pool registers consumed.
    pub size: usize,
}

/// Register assignment for a whole program.
#[derive(Debug, Clone)]
pub struct ProgramAlloc {
    /// Indexed by function id.
    pub funcs: Vec<FuncAlloc>,
}

impl ProgramAlloc {
    /// The allocation for `f`.
    pub fn func(&self, f: FuncId) -> &FuncAlloc {
        &self.funcs[f.0 as usize]
    }
}

/// Pool index → architectural register, striping across the four
/// banks so block headers stay within the eight read/write slots each
/// bank offers per block.
fn pool_reg(idx: usize) -> Option<ArchReg> {
    if idx >= 128 {
        return None;
    }
    let bank = (idx % REG_BANKS) as u8;
    let within = (idx / REG_BANKS) as u8;
    Some(ArchReg::from_bank_index(bank, within))
}

/// Per-block liveness sets for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]`: registers live on entry to block `b`.
    pub live_in: Vec<HashSet<VReg>>,
    /// `live_out[b]`: registers live on exit from block `b`.
    pub live_out: Vec<HashSet<VReg>>,
}

/// Computes backward liveness at basic-block granularity.
pub fn liveness(func: &Func) -> Liveness {
    let n = func.blocks.len();
    let mut use_: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut def: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    for (i, bb) in func.blocks.iter().enumerate() {
        for inst in &bb.insts {
            for u in inst.uses() {
                if !def[i].contains(&u) {
                    use_[i].insert(u);
                }
            }
            if let Some(d) = inst.dst() {
                def[i].insert(d);
            }
        }
        for u in bb.term.uses() {
            if !def[i].contains(&u) {
                use_[i].insert(u);
            }
        }
        if let Term::Call { dst: Some(d), .. } = &bb.term {
            def[i].insert(*d);
        }
    }
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out = HashSet::new();
            for s in func.blocks[i].term.successors() {
                out.extend(live_in[s.0 as usize].iter().copied());
            }
            let mut inn: HashSet<VReg> = use_[i].clone();
            for v in &out {
                if !def[i].contains(v) {
                    inn.insert(*v);
                }
            }
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
    }
    // Parameters are live-in to the entry block by definition.
    for p in 0..func.nparams {
        live_in[func.entry.0 as usize].insert(VReg(p));
    }
    Liveness { live_in, live_out }
}

/// Allocates registers for every function of `prog`.
///
/// Pool offsets satisfy `offset(callee) >= offset(caller) +
/// size(caller)` along every call edge, so functions on one call path
/// never share registers while functions on disjoint paths may.
///
/// # Errors
///
/// Returns [`TasmError::OutOfRegisters`] if a call path needs more
/// than the 128 architectural registers.
pub fn allocate(prog: &Program) -> Result<ProgramAlloc, TasmError> {
    let n = prog.funcs.len();

    // How many pool slots each function needs: link + ret + params +
    // cross-block vregs (params counted once).
    let mut needs = vec![0usize; n];
    let mut cross: Vec<Vec<VReg>> = vec![Vec::new(); n];
    for (i, f) in prog.funcs.iter().enumerate() {
        let lv = liveness(f);
        let mut set: HashSet<VReg> = HashSet::new();
        for b in 0..f.blocks.len() {
            set.extend(lv.live_in[b].iter().copied());
        }
        // Call result bindings cross a block boundary by construction.
        for bb in &f.blocks {
            if let Term::Call { dst: Some(d), .. } = &bb.term {
                set.insert(*d);
            }
        }
        for p in 0..f.nparams {
            set.insert(VReg(p));
        }
        let mut sorted: Vec<VReg> = set.into_iter().collect();
        sorted.sort();
        needs[i] = 2 + sorted.len(); // link + ret + the rest
        cross[i] = sorted;
    }

    // offset(f) = max over callers c of offset(c) + size(c); process
    // callers before callees (reverse of callees_first).
    let order = prog.callees_first();
    let mut offset = vec![0usize; n];
    for f in order.iter().rev() {
        let fi = f.0 as usize;
        for bb in &prog.funcs[fi].blocks {
            if let Term::Call { func, .. } = &bb.term {
                let ci = func.0 as usize;
                offset[ci] = offset[ci].max(offset[fi] + needs[fi]);
            }
        }
    }

    let mut funcs = Vec::with_capacity(n);
    for i in 0..n {
        let base = offset[i];
        let mut next = base;
        let mut take = || -> Result<ArchReg, TasmError> {
            let r = pool_reg(next).ok_or(TasmError::OutOfRegisters {
                func: prog.funcs[i].name.clone(),
                needed: offset[i] + needs[i],
            })?;
            next += 1;
            Ok(r)
        };
        let link = take()?;
        let ret = take()?;
        let mut map = HashMap::new();
        let mut args = Vec::new();
        for &v in &cross[i] {
            let r = take()?;
            map.insert(v, r);
            if v.0 < prog.funcs[i].nparams {
                // Keep args in declaration order below.
            }
        }
        for p in 0..prog.funcs[i].nparams {
            args.push(map[&VReg(p)]);
        }
        funcs.push(FuncAlloc { map, link, ret, args, base, size: needs[i] });
    }
    Ok(ProgramAlloc { funcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use trips_isa::Opcode;

    #[test]
    fn pool_reg_stripes_banks() {
        assert_eq!(pool_reg(0).unwrap().bank(), 0);
        assert_eq!(pool_reg(1).unwrap().bank(), 1);
        assert_eq!(pool_reg(2).unwrap().bank(), 2);
        assert_eq!(pool_reg(3).unwrap().bank(), 3);
        assert_eq!(pool_reg(4).unwrap(), ArchReg::from_bank_index(0, 1));
        assert_eq!(pool_reg(127).unwrap(), ArchReg::from_bank_index(3, 31));
        assert_eq!(pool_reg(128), None);
    }

    #[test]
    fn temporaries_get_no_register() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let a = f.iconst(1);
        let b = f.iconst(2);
        let c = f.add(a, b); // all three die in this block
        let buf = f.iconst(0x1000);
        f.store(Opcode::Sd, buf, 0, c);
        f.halt();
        f.finish();
        let prog = p.finish();
        let alloc = allocate(&prog).unwrap();
        assert!(alloc.funcs[0].map.is_empty(), "{:?}", alloc.funcs[0].map);
    }

    #[test]
    fn loop_carried_values_get_registers() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let sum = f.fresh();
        let i = f.fresh();
        f.iconst_into(sum, 0);
        f.iconst_into(i, 0);
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(body);
        f.switch_to(body);
        f.bin_into(sum, Opcode::Add, sum, i);
        f.bini_into(i, Opcode::Addi, i, 1);
        let c = f.bini(Opcode::Tlti, i, 10);
        f.br(c, body, done);
        f.switch_to(done);
        let buf = f.iconst(0x1000);
        f.store(Opcode::Sd, buf, 0, sum);
        f.halt();
        f.finish();
        let prog = p.finish();
        let alloc = allocate(&prog).unwrap();
        let m = &alloc.funcs[0].map;
        assert!(m.contains_key(&sum) && m.contains_key(&i), "{m:?}");
        assert!(!m.contains_key(&c), "condition is block-local: {m:?}");
    }

    #[test]
    fn disjoint_pools_along_call_paths() {
        let mut p = ProgramBuilder::new();
        let mut main = p.func("main", 0);
        let x = main.iconst(5);
        let y = main.call(FuncId(1), &[x]);
        let buf = main.iconst(0x1000);
        main.store(Opcode::Sd, buf, 0, y);
        main.halt();
        main.finish();
        let mut g = p.func("g", 1);
        let a = g.param(0);
        let r = g.addi(a, 1);
        g.ret(Some(r));
        g.finish();
        let prog = p.finish();
        let alloc = allocate(&prog).unwrap();
        let (m, c) = (&alloc.funcs[0], &alloc.funcs[1]);
        assert!(c.base >= m.base + m.size, "callee pool overlaps caller");
        let caller_regs: HashSet<ArchReg> = m.map.values().copied().collect();
        assert!(!caller_regs.contains(&c.link));
        assert!(!caller_regs.contains(&c.ret));
        for a in &c.args {
            assert!(!caller_regs.contains(a));
        }
    }

    use crate::ir::FuncId;

    #[test]
    fn liveness_through_branches() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let v = f.iconst(3);
        let c = f.bini(Opcode::Tgti, v, 0);
        let t = f.new_block();
        let e = f.new_block();
        f.br(c, t, e);
        f.switch_to(t);
        let buf1 = f.iconst(0x1000);
        f.store(Opcode::Sd, buf1, 0, v); // v used here
        f.halt();
        f.switch_to(e);
        f.halt();
        f.finish();
        let prog = p.finish();
        let lv = liveness(&prog.funcs[0]);
        assert!(lv.live_in[1].contains(&v), "v live into then-block");
        assert!(!lv.live_in[2].contains(&v), "v dead in else-block");
        assert!(lv.live_out[0].contains(&v));
    }
}
