//! A reference interpreter for the IR.
//!
//! The interpreter defines the *meaning* of every workload: both
//! backends (TRIPS blocks and baseline RISC) must produce machines
//! whose final memory agrees with it. It also traps on reads of
//! undefined virtual registers, enforcing the define-before-use rule
//! the TRIPS backend's if-conversion depends on.

use std::fmt;

use trips_isa::mem::SparseMem;
use trips_isa::semantics::{eval, extend_load};
use trips_isa::Opcode;

use crate::ir::{BbId, FuncId, Inst, Program, Term, VReg};

/// Result of an IR execution.
#[derive(Debug)]
pub struct InterpResult {
    /// Final memory contents.
    pub mem: SparseMem,
    /// Dynamic IR instructions executed (including terminators).
    pub steps: u64,
    /// Dynamic basic blocks executed.
    pub blocks: u64,
    /// Value returned by the entry function, if it returned one.
    pub ret: Option<u64>,
}

/// Errors during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A register was read before any path defined it.
    UndefinedRead {
        /// The function.
        func: FuncId,
        /// The block.
        bb: BbId,
        /// The offending register.
        vreg: VReg,
    },
    /// A branch condition held a value other than 0 or 1.
    NonBooleanCond {
        /// The offending value.
        value: u64,
    },
    /// The step budget was exhausted (probable infinite loop).
    StepLimit,
    /// The entry function returned instead of halting.
    ReturnedFromEntry,
    /// Call-argument count mismatch.
    ArityMismatch {
        /// The callee.
        func: FuncId,
        /// Arguments supplied.
        got: usize,
        /// Parameters expected.
        expected: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UndefinedRead { func, bb, vreg } => {
                write!(f, "read of undefined {vreg} in func {} {bb}", func.0)
            }
            InterpError::NonBooleanCond { value } => {
                write!(f, "branch condition must be 0/1, got {value}")
            }
            InterpError::StepLimit => write!(f, "step limit exhausted"),
            InterpError::ReturnedFromEntry => {
                write!(f, "entry function returned; end programs with halt")
            }
            InterpError::ArityMismatch { func, got, expected } => {
                write!(f, "call to func {} with {got} args, expected {expected}", func.0)
            }
        }
    }
}

impl std::error::Error for InterpError {}

struct Frame {
    func: FuncId,
    regs: Vec<Option<u64>>,
    bb: BbId,
    /// Where to deposit the return value in the caller.
    ret_into: Option<VReg>,
    /// Caller resumes at this block.
    resume: BbId,
}

/// Runs `prog` from its entry function until `halt`, a trap, or
/// `max_steps` dynamic instructions.
///
/// # Errors
///
/// See [`InterpError`].
pub fn run(prog: &Program, max_steps: u64) -> Result<InterpResult, InterpError> {
    let mut mem = SparseMem::new();
    for g in &prog.globals {
        mem.write_bytes(g.base, &g.data);
    }
    let mut steps = 0u64;
    let mut blocks = 0u64;

    let entry = prog.func(prog.entry);
    let mut stack = vec![Frame {
        func: prog.entry,
        regs: vec![None; entry.nvregs as usize],
        bb: entry.entry,
        ret_into: None,
        resume: BbId(0),
    }];
    let mut last_ret: Option<u64> = None;

    'outer: loop {
        let frame = stack.last_mut().expect("frame stack never empty here");
        let func = prog.func(frame.func);
        let bb = func.block(frame.bb);
        blocks += 1;

        let read = |regs: &[Option<u64>], v: VReg, func: FuncId, bb: BbId| {
            regs.get(v.0 as usize).copied().flatten().ok_or(InterpError::UndefinedRead {
                func,
                bb,
                vreg: v,
            })
        };

        for inst in &bb.insts {
            steps += 1;
            if steps > max_steps {
                return Err(InterpError::StepLimit);
            }
            let (fid, bid) = (frame.func, frame.bb);
            match *inst {
                Inst::Bin { op, dst, a, b } => {
                    let va = read(&frame.regs, a, fid, bid)?;
                    let vb = read(&frame.regs, b, fid, bid)?;
                    frame.regs[dst.0 as usize] = Some(eval(op, va, vb, 0));
                }
                Inst::Un { op, dst, a } => {
                    let va = read(&frame.regs, a, fid, bid)?;
                    frame.regs[dst.0 as usize] = Some(eval(op, va, 0, 0));
                }
                Inst::BinImm { op, dst, a, imm } => {
                    let va = read(&frame.regs, a, fid, bid)?;
                    // Wide immediates are materialized by backends; the
                    // interpreter applies them exactly.
                    let v = match op {
                        Opcode::Addi => va.wrapping_add(imm as u64),
                        Opcode::Subi => va.wrapping_sub(imm as u64),
                        Opcode::Muli => va.wrapping_mul(imm as u64),
                        Opcode::Andi => va & imm as u64,
                        Opcode::Ori => va | imm as u64,
                        Opcode::Xori => va ^ imm as u64,
                        _ => eval(op, va, 0, imm as i32),
                    };
                    frame.regs[dst.0 as usize] = Some(v);
                }
                Inst::Const { dst, val } => {
                    frame.regs[dst.0 as usize] = Some(val as u64);
                }
                Inst::Load { op, dst, addr, off } => {
                    let base = read(&frame.regs, addr, fid, bid)?;
                    let ea = base.wrapping_add(off as i64 as u64);
                    let raw = mem.read_uint(ea, op.access_bytes());
                    frame.regs[dst.0 as usize] = Some(extend_load(op, raw));
                }
                Inst::Store { op, addr, off, val } => {
                    let base = read(&frame.regs, addr, fid, bid)?;
                    let v = read(&frame.regs, val, fid, bid)?;
                    let ea = base.wrapping_add(off as i64 as u64);
                    mem.write_uint(ea, v, op.access_bytes());
                }
            }
        }

        steps += 1;
        if steps > max_steps {
            return Err(InterpError::StepLimit);
        }
        match &bb.term {
            Term::Jmp(next) => frame.bb = *next,
            Term::Br { cond, t, f } => {
                let c = read(&frame.regs, *cond, frame.func, frame.bb)?;
                if c > 1 {
                    return Err(InterpError::NonBooleanCond { value: c });
                }
                frame.bb = if c == 1 { *t } else { *f };
            }
            Term::Halt => break 'outer,
            Term::Ret(v) => {
                let val = match v {
                    Some(v) => Some(read(&frame.regs, *v, frame.func, frame.bb)?),
                    None => None,
                };
                let finished = stack.pop().expect("ret with empty stack");
                last_ret = val;
                match stack.last_mut() {
                    None => return Err(InterpError::ReturnedFromEntry),
                    Some(caller) => {
                        if let Some(dst) = finished.ret_into {
                            caller.regs[dst.0 as usize] = val;
                        }
                        caller.bb = finished.resume;
                    }
                }
            }
            Term::Call { func: callee, args, dst, next } => {
                let cf = prog.func(*callee);
                if args.len() != cf.nparams as usize {
                    return Err(InterpError::ArityMismatch {
                        func: *callee,
                        got: args.len(),
                        expected: cf.nparams as usize,
                    });
                }
                let mut regs = vec![None; cf.nvregs as usize];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = Some(read(&frame.regs, *a, frame.func, frame.bb)?);
                }
                let entry_bb = cf.entry;
                let (ret_into, resume) = (*dst, *next);
                stack.push(Frame { func: *callee, regs, bb: entry_bb, ret_into, resume });
            }
        }
    }

    Ok(InterpResult { mem, steps, blocks, ret: last_ret })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use trips_isa::Opcode;

    #[test]
    fn straightline_store() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let a = f.iconst(20);
        let b = f.iconst(22);
        let c = f.add(a, b);
        let buf = f.iconst(0x1000);
        f.store(Opcode::Sd, buf, 0, c);
        f.halt();
        f.finish();
        let r = run(&p.finish(), 1000).unwrap();
        assert_eq!(r.mem.read_u64(0x1000), 42);
    }

    #[test]
    fn loop_sums() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let sum = f.fresh();
        let i = f.fresh();
        f.iconst_into(sum, 0);
        f.iconst_into(i, 0);
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(body);
        f.switch_to(body);
        f.bin_into(sum, Opcode::Add, sum, i);
        f.bini_into(i, Opcode::Addi, i, 1);
        let c = f.bini(Opcode::Tlti, i, 10);
        f.br(c, body, done);
        f.switch_to(done);
        let buf = f.iconst(0x2000);
        f.store(Opcode::Sd, buf, 0, sum);
        f.halt();
        f.finish();
        let r = run(&p.finish(), 10_000).unwrap();
        assert_eq!(r.mem.read_u64(0x2000), 45);
        assert!(r.blocks >= 11);
    }

    #[test]
    fn call_and_return() {
        let mut p = ProgramBuilder::new();
        let mut main = p.func("main", 0);
        let x = main.iconst(5);
        let sq_id = FuncId(1);
        let y = main.call(sq_id, &[x]);
        let buf = main.iconst(0x3000);
        main.store(Opcode::Sd, buf, 0, y);
        main.halt();
        main.finish();
        let mut sq = p.func("square", 1);
        let a = sq.param(0);
        let r = sq.mul(a, a);
        sq.ret(Some(r));
        sq.finish();
        let prog = p.finish();
        prog.check().unwrap();
        let r = run(&prog, 1000).unwrap();
        assert_eq!(r.mem.read_u64(0x3000), 25);
    }

    #[test]
    fn undefined_read_traps() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let ghost = f.fresh();
        let buf = f.iconst(0x1000);
        f.store(Opcode::Sd, buf, 0, ghost);
        f.halt();
        f.finish();
        assert!(matches!(run(&p.finish(), 100), Err(InterpError::UndefinedRead { .. })));
    }

    #[test]
    fn nonboolean_cond_traps() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let two = f.iconst(2);
        let done = f.new_block();
        f.br(two, done, done);
        f.switch_to(done);
        f.halt();
        f.finish();
        assert_eq!(run(&p.finish(), 100).unwrap_err(), InterpError::NonBooleanCond { value: 2 });
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let spin = f.new_block();
        f.jmp(spin);
        f.switch_to(spin);
        f.jmp(spin);
        f.finish();
        assert_eq!(run(&p.finish(), 50).unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn globals_are_loaded() {
        let mut p = ProgramBuilder::new();
        p.global_words(0x4000, &[7, 9]);
        let mut f = p.func("main", 0);
        let base = f.iconst(0x4000);
        let a = f.load(Opcode::Ld, base, 0);
        let b = f.load(Opcode::Ld, base, 8);
        let c = f.add(a, b);
        f.store(Opcode::Sd, base, 16, c);
        f.halt();
        f.finish();
        let r = run(&p.finish(), 100).unwrap();
        assert_eq!(r.mem.read_u64(0x4010), 16);
    }
}
