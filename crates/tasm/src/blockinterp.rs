//! A dataflow reference interpreter for compiled TRIPS images.
//!
//! This executes encoded blocks with the *architectural* semantics of
//! the EDGE ISA — dataflow firing, predication, nullification, LSID
//! memory ordering, block-atomic commit — but no timing. It sits
//! between the IR interpreter and the cycle-level core: toolchain bugs
//! show up as IR-vs-block divergence, core protocol bugs as
//! block-vs-core divergence.

use std::fmt;

use trips_isa::mem::SparseMem;
pub use trips_isa::semantics::Tok;
use trips_isa::semantics::{eval, extend_load};
use trips_isa::{
    decode, decode_header, BranchKind, Opcode, OperandNeeds, OperandSlot, Pred, ProgramImage,
    Target, TripsBlock, CHUNK_BYTES,
};

/// Errors from block-level execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockInterpError {
    /// A block failed to decode at `addr`.
    Decode {
        /// The block address.
        addr: u64,
        /// The decoder's message.
        msg: String,
    },
    /// The block stalled before producing all outputs.
    Deadlock {
        /// The block address.
        addr: u64,
        /// What was still missing.
        missing: String,
    },
    /// A block fired more than one branch.
    MultipleBranches {
        /// The block address.
        addr: u64,
    },
    /// An operand arrived at a slot that already held a token.
    DoubleDelivery {
        /// The block address.
        addr: u64,
        /// The consumer instruction index.
        inst: u8,
    },
    /// The block budget was exhausted (probable infinite loop).
    BlockLimit,
}

impl fmt::Display for BlockInterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockInterpError::Decode { addr, msg } => {
                write!(f, "decode failed at {addr:#x}: {msg}")
            }
            BlockInterpError::Deadlock { addr, missing } => {
                write!(f, "block {addr:#x} deadlocked; missing {missing}")
            }
            BlockInterpError::MultipleBranches { addr } => {
                write!(f, "block {addr:#x} fired more than one branch")
            }
            BlockInterpError::DoubleDelivery { addr, inst } => {
                write!(f, "block {addr:#x}: double operand delivery to N[{inst}]")
            }
            BlockInterpError::BlockLimit => write!(f, "block budget exhausted"),
        }
    }
}

impl std::error::Error for BlockInterpError {}

/// Result of running an image to halt.
#[derive(Debug)]
pub struct BlockRunResult {
    /// Final memory.
    pub mem: SparseMem,
    /// Final architectural registers.
    pub regs: [u64; 128],
    /// Blocks committed.
    pub blocks: u64,
    /// Useful instructions fired (reads and writes not counted, like
    /// the hardware's IPC accounting).
    pub insts: u64,
}

/// Runs `image` from its entry until a `halt` branch commits.
///
/// # Errors
///
/// See [`BlockInterpError`].
pub fn run_image(
    image: &ProgramImage,
    max_blocks: u64,
) -> Result<BlockRunResult, BlockInterpError> {
    run_image_trace(image, max_blocks, |_| {})
}

/// [`run_image`] with a per-block hook: `visit(pc)` fires before each
/// block executes, in architectural order. This is the debugging seam
/// for divergence triage — record the oracle's block-address sequence
/// and diff it against a core's committed-block trace (the flight
/// recorder's `BlockAck` events) to localize where a run left the
/// architectural path.
///
/// # Errors
///
/// See [`BlockInterpError`].
pub fn run_image_trace<F: FnMut(u64)>(
    image: &ProgramImage,
    max_blocks: u64,
    mut visit: F,
) -> Result<BlockRunResult, BlockInterpError> {
    let mut mem = SparseMem::from_image(image);
    let mut regs = [0u64; 128];
    let mut pc = image.entry;
    let mut blocks = 0u64;
    let mut insts = 0u64;
    loop {
        if blocks >= max_blocks {
            return Err(BlockInterpError::BlockLimit);
        }
        visit(pc);
        let block = fetch_block(&mem, pc)?;
        let out = execute_block(&block, &mut regs, &mut mem, pc)?;
        blocks += 1;
        insts += out.fired;
        match out.next {
            NextPc::Halt => {
                return Ok(BlockRunResult { mem, regs, blocks, insts });
            }
            NextPc::At(next) => pc = next,
        }
    }
}

/// Reads and decodes the block at `addr` from simulated memory.
pub fn fetch_block(mem: &SparseMem, addr: u64) -> Result<TripsBlock, BlockInterpError> {
    let mut header = [0u8; CHUNK_BYTES];
    mem.read_bytes(addr, &mut header);
    let (_, chunks) = decode_header(&header)
        .map_err(|e| BlockInterpError::Decode { addr, msg: e.to_string() })?;
    let mut bytes = vec![0u8; CHUNK_BYTES * (1 + chunks)];
    mem.read_bytes(addr, &mut bytes);
    decode(&bytes).map_err(|e| BlockInterpError::Decode { addr, msg: e.to_string() })
}

enum NextPc {
    At(u64),
    Halt,
}

struct BlockOutcome {
    next: NextPc,
    fired: u64,
}

fn slot_ix(slot: OperandSlot) -> usize {
    match slot {
        OperandSlot::Left => 0,
        OperandSlot::Right => 1,
        OperandSlot::Predicate => 2,
    }
}

/// Executes one block against registers and memory, committing its
/// outputs atomically on success.
fn execute_block(
    block: &TripsBlock,
    regs: &mut [u64; 128],
    mem: &mut SparseMem,
    addr: u64,
) -> Result<BlockOutcome, BlockInterpError> {
    let n = block.insts.len();
    let mut ops: Vec<[Option<Tok>; 3]> = vec![[None; 3]; n];
    let mut fired = vec![false; n];
    let mut write_buf: [Option<Tok>; 32] = [None; 32];
    // (lsid, (addr, val, bytes)); None = nullified store.
    type StoreBufEntry = (u8, Option<(u64, u64, u32)>);
    let mut store_buf: Vec<StoreBufEntry> = Vec::new();
    let mut branch: Option<(Opcode, i32, Option<u64>)> = None;
    let mut fired_count = 0u64;

    let mut deliveries: Vec<(Target, Tok)> = Vec::new();
    // Header reads inject register values.
    for r in block.header.reads.iter().flatten() {
        for t in r.targets.iter().filter(|t| !t.is_none()) {
            deliveries.push((*t, Tok::Val(regs[r.reg.num() as usize])));
        }
    }

    loop {
        // Deliver pending tokens.
        while let Some((t, tok)) = deliveries.pop() {
            match t {
                Target::None => {}
                Target::Write { slot } => {
                    if write_buf[slot as usize].is_some() {
                        return Err(BlockInterpError::DoubleDelivery { addr, inst: 128 + slot });
                    }
                    write_buf[slot as usize] = Some(tok);
                }
                Target::Inst { idx, slot } => {
                    let cell = &mut ops[idx as usize][slot_ix(slot)];
                    if cell.is_some() {
                        return Err(BlockInterpError::DoubleDelivery { addr, inst: idx });
                    }
                    *cell = Some(tok);
                }
            }
        }

        // Find a fireable instruction: non-loads first, then the
        // ready load with the smallest LSID whose older stores have
        // all resolved or can never fire.
        let ready = |i: usize| -> bool {
            if fired[i] {
                return false;
            }
            let inst = &block.insts[i];
            if inst.is_nop() {
                return false;
            }
            let needs = inst.opcode.needs();
            let have = &ops[i];
            let data_ok = match needs {
                OperandNeeds::None => true,
                OperandNeeds::Left => have[0].is_some(),
                OperandNeeds::LeftRight => have[0].is_some() && have[1].is_some(),
            };
            let pred_ok = inst.pred == Pred::None || have[2].is_some();
            data_ok && pred_ok
        };
        let pred_allows = |i: usize| -> Option<bool> {
            // None => fire-with-null (null predicate); Some(b) => b.
            let inst = &block.insts[i];
            if inst.pred == Pred::None {
                return Some(true);
            }
            match ops[i][2].expect("checked by ready()") {
                Tok::Null => None,
                Tok::Val(v) => Some(inst.pred.matches(v)),
            }
        };

        let mut candidate: Option<usize> = None;
        for i in 0..n {
            if ready(i) && !block.insts[i].opcode.is_load() {
                candidate = Some(i);
                break;
            }
        }
        if candidate.is_none() {
            // Loads, smallest LSID first, gated on older stores.
            let mut loads: Vec<usize> =
                (0..n).filter(|&i| ready(i) && block.insts[i].opcode.is_load()).collect();
            loads.sort_by_key(|&i| block.insts[i].lsid);
            let can_ever_fire = compute_fireability(block, &ops, &fired);
            'load: for i in loads {
                let lsid = block.insts[i].lsid;
                for j in 0..n {
                    let s = &block.insts[j];
                    if s.opcode.is_store() && s.lsid < lsid && !fired[j] && can_ever_fire[j] {
                        continue 'load; // must wait for this store
                    }
                }
                candidate = Some(i);
                break;
            }
        }

        let Some(i) = candidate else { break };
        let inst = block.insts[i];
        fired[i] = true;

        match pred_allows(i) {
            Some(false) => continue, // mismatched predicate: dead, no output
            allows => {
                let nullified = allows.is_none()
                    || (ops[i][0] == Some(Tok::Null))
                    || (ops[i][1] == Some(Tok::Null));
                fired_count += 1;
                if inst.opcode.is_store() {
                    let rec = if nullified {
                        None
                    } else {
                        let a = ops[i][0].unwrap().value().unwrap();
                        let v = ops[i][1].unwrap().value().unwrap();
                        Some((
                            a.wrapping_add(inst.imm as i64 as u64),
                            v,
                            inst.opcode.access_bytes(),
                        ))
                    };
                    store_buf.push((inst.lsid, rec));
                } else if let Some(kind) = inst.opcode.branch_kind() {
                    if branch.is_some() {
                        return Err(BlockInterpError::MultipleBranches { addr });
                    }
                    let target = match kind {
                        BranchKind::Branch | BranchKind::Call
                            if inst.opcode.format() == trips_isa::Format::G =>
                        {
                            ops[i][0].unwrap().value()
                        }
                        BranchKind::Return => ops[i][0].unwrap().value(),
                        _ => None,
                    };
                    branch = Some((inst.opcode, inst.imm, target));
                } else if inst.opcode.is_load() {
                    let tok = if nullified {
                        Tok::Null
                    } else {
                        let a = ops[i][0].unwrap().value().unwrap();
                        let ea = a.wrapping_add(inst.imm as i64 as u64);
                        // Forward from older stores in this block.
                        let bytes = inst.opcode.access_bytes();
                        let mut raw = mem.read_uint(ea, bytes);
                        let mut best: Option<u8> = None;
                        for (lsid, rec) in &store_buf {
                            if *lsid < inst.lsid {
                                if let Some((sa, sv, sb)) = rec {
                                    if *sa == ea && *sb >= bytes && best.is_none_or(|b| *lsid > b) {
                                        raw = *sv & mask(bytes);
                                        best = Some(*lsid);
                                    }
                                }
                            }
                        }
                        Tok::Val(extend_load(inst.opcode, raw))
                    };
                    for t in inst.live_targets() {
                        deliveries.push((t, tok));
                    }
                } else {
                    // Compute instruction.
                    let tok = if inst.opcode == Opcode::Null || nullified {
                        Tok::Null
                    } else {
                        let l = ops[i][0].and_then(Tok::value).unwrap_or(0);
                        let r = ops[i][1].and_then(Tok::value).unwrap_or(0);
                        Tok::Val(eval(inst.opcode, l, r, inst.imm))
                    };
                    for t in inst.live_targets() {
                        deliveries.push((t, tok));
                    }
                }
            }
        }
    }

    // Completion check.
    let mut missing = String::new();
    for lsid in 0..32u8 {
        if block.header.store_mask & (1 << lsid) != 0 && !store_buf.iter().any(|(l, _)| *l == lsid)
        {
            missing.push_str(&format!("store lsid {lsid}; "));
        }
    }
    for (s, w) in block.header.writes.iter().enumerate() {
        if w.is_some() && write_buf[s].is_none() {
            missing.push_str(&format!("write W[{s}]; "));
        }
    }
    if branch.is_none() {
        missing.push_str("branch; ");
    }
    if !missing.is_empty() {
        return Err(BlockInterpError::Deadlock { addr, missing });
    }

    // Commit: writes, stores in LSID order, then the branch.
    for (s, w) in block.header.writes.iter().enumerate() {
        if let Some(w) = w {
            if let Some(Tok::Val(v)) = write_buf[s] {
                regs[w.reg.num() as usize] = v;
            }
        }
    }
    store_buf.sort_by_key(|(l, _)| *l);
    for (_, rec) in &store_buf {
        if let Some((a, v, b)) = rec {
            mem.write_uint(*a, *v, *b);
        }
    }
    let (op, imm, target) = branch.expect("checked above");
    let next = match op.branch_kind().expect("branch opcode") {
        BranchKind::Halt => NextPc::Halt,
        _ => match op.format() {
            trips_isa::Format::B => NextPc::At(addr.wrapping_add((i64::from(imm) * 128) as u64)),
            _ => NextPc::At(target.expect("register branch with null target")),
        },
    };
    Ok(BlockOutcome { next, fired: fired_count })
}

fn mask(bytes: u32) -> u64 {
    if bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * bytes)) - 1
    }
}

/// Conservative "could this instruction still fire" analysis used to
/// release loads past stores that can never execute.
fn compute_fireability(block: &TripsBlock, ops: &[[Option<Tok>; 3]], fired: &[bool]) -> Vec<bool> {
    let n = block.insts.len();
    // producers[i][slot]: instructions (or header reads, implicit)
    // that could still deliver to (i, slot).
    let mut can = vec![true; n];
    // Iterate to fixpoint: an unfired instruction can fire only if
    // each missing operand has some unfired-but-fireable producer (or
    // a header read, which always delivers — but those were delivered
    // up front, so missing means no read).
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !can[i] || fired[i] {
                continue;
            }
            let inst = &block.insts[i];
            if inst.is_nop() {
                can[i] = false;
                changed = true;
                continue;
            }
            // A predicate that has already arrived and mismatches
            // means the instruction is dead.
            if inst.pred != Pred::None {
                if let Some(Tok::Val(v)) = ops[i][2] {
                    if !inst.pred.matches(v) {
                        can[i] = false;
                        changed = true;
                        continue;
                    }
                }
            }
            let mut needs: Vec<usize> = Vec::new();
            match inst.opcode.needs() {
                OperandNeeds::None => {}
                OperandNeeds::Left => needs.push(0),
                OperandNeeds::LeftRight => {
                    needs.push(0);
                    needs.push(1);
                }
            }
            if inst.pred != Pred::None {
                needs.push(2);
            }
            for slot in needs {
                if ops[i][slot].is_some() {
                    continue;
                }
                // Any live producer?
                let mut alive = false;
                for (j, p) in block.insts.iter().enumerate() {
                    if fired[j] || !can[j] || p.is_nop() {
                        continue;
                    }
                    for t in p.live_targets() {
                        if let Target::Inst { idx, slot: ts } = t {
                            if idx as usize == i && slot_ix(ts) == slot {
                                alive = true;
                            }
                        }
                    }
                }
                if !alive {
                    can[i] = false;
                    changed = true;
                    break;
                }
            }
        }
    }
    can
}
