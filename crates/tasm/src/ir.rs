//! A small register-based intermediate representation.
//!
//! Workloads are written once against this IR and lowered twice: by
//! the TRIPS backend in this crate (into EDGE blocks) and by the RISC
//! backend in `trips-alpha` (into conventional three-address code for
//! the baseline core). The IR is deliberately minimal: 64-bit virtual
//! registers, basic blocks, explicit loads/stores, and calls as block
//! terminators.
//!
//! The IR is *not* SSA: virtual registers may be assigned repeatedly.
//! A virtual register must be defined on every path before any use
//! that can observe both sides of a branch — the interpreter traps on
//! reads of undefined registers, and the TRIPS backend relies on this
//! rule when it if-converts.

use std::fmt;

use trips_isa::{Format, Opcode, OperandNeeds};

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BbId(pub u32);

impl fmt::Display for BbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A function within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FuncId(pub u32);

/// A non-terminator IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `dst = op(a, b)` for a two-operand G-format compute opcode.
    Bin {
        /// The operation (a G-format, `LeftRight` opcode).
        op: Opcode,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// `dst = op(a)` for a one-operand compute opcode.
    Un {
        /// The operation (a G-format, `Left` opcode).
        op: Opcode,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
    },
    /// `dst = op(a, imm)` for an I-format compute opcode.
    BinImm {
        /// The operation (an I-format, `Left` opcode).
        op: Opcode,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
        /// The immediate (any `i64`; backends materialize wide ones).
        imm: i64,
    },
    /// `dst = const`.
    Const {
        /// Destination.
        dst: VReg,
        /// The constant.
        val: i64,
    },
    /// `dst = extend(mem[addr + off])`.
    Load {
        /// A load opcode selecting width and extension.
        op: Opcode,
        /// Destination.
        dst: VReg,
        /// Base address register.
        addr: VReg,
        /// Byte offset.
        off: i32,
    },
    /// `mem[addr + off] = truncate(val)`.
    Store {
        /// A store opcode selecting width.
        op: Opcode,
        /// Base address register.
        addr: VReg,
        /// Byte offset.
        off: i32,
        /// The value to store.
        val: VReg,
    },
}

impl Inst {
    /// The destination register, if the instruction defines one.
    pub fn dst(&self) -> Option<VReg> {
        match *self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::Const { dst, .. }
            | Inst::Load { dst, .. } => Some(dst),
            Inst::Store { .. } => None,
        }
    }

    /// The registers the instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        match *self {
            Inst::Bin { a, b, .. } => vec![a, b],
            Inst::Un { a, .. } | Inst::BinImm { a, .. } => vec![a],
            Inst::Const { .. } => vec![],
            Inst::Load { addr, .. } => vec![addr],
            Inst::Store { addr, val, .. } => vec![addr, val],
        }
    }

    /// Checks opcode/format agreement.
    pub fn check(&self) -> Result<(), IrError> {
        let ok = match *self {
            Inst::Bin { op, .. } => {
                op.format() == Format::G && op.needs() == OperandNeeds::LeftRight && !op.is_branch()
            }
            Inst::Un { op, .. } => {
                op.format() == Format::G && op.needs() == OperandNeeds::Left && !op.is_branch()
            }
            Inst::BinImm { op, .. } => op.format() == Format::I && op.needs() == OperandNeeds::Left,
            Inst::Const { .. } => true,
            Inst::Load { op, .. } => op.is_load(),
            Inst::Store { op, .. } => op.is_store(),
        };
        if ok {
            Ok(())
        } else {
            Err(IrError::BadOpcode(*self))
        }
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BbId),
    /// Conditional branch; `cond` must hold `0` or `1` (produced by a
    /// test opcode).
    Br {
        /// The 0/1 condition.
        cond: VReg,
        /// Successor when `cond == 1`.
        t: BbId,
        /// Successor when `cond == 0`.
        f: BbId,
    },
    /// Return to the caller, optionally with a value.
    Ret(Option<VReg>),
    /// Call `func(args…)`, then continue at `next` with `dst` bound to
    /// the return value (if any). Calls end blocks because they end
    /// TRIPS blocks (`callo`).
    Call {
        /// The callee.
        func: FuncId,
        /// Argument registers.
        args: Vec<VReg>,
        /// Register bound to the return value in `next`.
        dst: Option<VReg>,
        /// The continuation block.
        next: BbId,
    },
    /// Stop the machine (the whole simulation).
    Halt,
}

impl Term {
    /// Successor blocks within the same function.
    pub fn successors(&self) -> Vec<BbId> {
        match self {
            Term::Jmp(b) => vec![*b],
            Term::Br { t, f, .. } => vec![*t, *f],
            Term::Call { next, .. } => vec![*next],
            Term::Ret(_) | Term::Halt => vec![],
        }
    }

    /// Registers the terminator reads.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Term::Br { cond, .. } => vec![*cond],
            Term::Ret(Some(v)) => vec![*v],
            Term::Call { args, .. } => args.clone(),
            _ => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bb {
    /// The instructions in order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Term,
}

/// A function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Func {
    /// Name, for diagnostics and disassembly.
    pub name: String,
    /// Number of parameters; parameters are `VReg(0)..VReg(n)`.
    pub nparams: u32,
    /// Basic blocks; `BbId` indexes this vector.
    pub blocks: Vec<Bb>,
    /// The entry block.
    pub entry: BbId,
    /// Number of virtual registers used.
    pub nvregs: u32,
}

impl Func {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BbId) -> &Bb {
        &self.blocks[id.0 as usize]
    }

    /// Predecessor map: `preds[b]` lists blocks branching to `b`.
    pub fn predecessors(&self) -> Vec<Vec<BbId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, bb) in self.blocks.iter().enumerate() {
            for s in bb.term.successors() {
                preds[s.0 as usize].push(BbId(i as u32));
            }
        }
        preds
    }
}

/// Initialized global data at an absolute address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Base byte address.
    pub base: u64,
    /// Contents.
    pub data: Vec<u8>,
}

/// A whole program: functions plus global data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The functions; `FuncId` indexes this vector.
    pub funcs: Vec<Func>,
    /// Index of the entry function (executed with no arguments).
    pub entry: FuncId,
    /// Initialized data.
    pub globals: Vec<Global>,
}

impl Program {
    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func(&self, id: FuncId) -> &Func {
        &self.funcs[id.0 as usize]
    }

    /// Structural validation: every id in range, opcode formats legal,
    /// call graph acyclic (the backends use static register pools and
    /// so reject recursion).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn check(&self) -> Result<(), IrError> {
        if self.entry.0 as usize >= self.funcs.len() {
            return Err(IrError::BadFunc(self.entry));
        }
        for (fi, f) in self.funcs.iter().enumerate() {
            if f.entry.0 as usize >= f.blocks.len() {
                return Err(IrError::BadBlock(FuncId(fi as u32), f.entry));
            }
            for bb in &f.blocks {
                for i in &bb.insts {
                    i.check()?;
                }
                for s in bb.term.successors() {
                    if s.0 as usize >= f.blocks.len() {
                        return Err(IrError::BadBlock(FuncId(fi as u32), s));
                    }
                }
                if let Term::Call { func, .. } = &bb.term {
                    if func.0 as usize >= self.funcs.len() {
                        return Err(IrError::BadFunc(*func));
                    }
                }
            }
        }
        self.check_acyclic_calls()?;
        Ok(())
    }

    fn check_acyclic_calls(&self) -> Result<(), IrError> {
        // Kahn's algorithm over the call graph.
        let n = self.funcs.len();
        let mut callees = vec![Vec::new(); n];
        for (fi, f) in self.funcs.iter().enumerate() {
            for bb in &f.blocks {
                if let Term::Call { func, .. } = &bb.term {
                    callees[fi].push(func.0 as usize);
                }
            }
        }
        let mut indeg = vec![0usize; n];
        for cs in &callees {
            for &c in cs {
                indeg[c] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = ready.pop() {
            seen += 1;
            for &c in &callees[i] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    ready.push(c);
                }
            }
        }
        if seen == n {
            Ok(())
        } else {
            Err(IrError::RecursiveCalls)
        }
    }

    /// Topological order of functions with callees before callers (for
    /// static register-pool assignment).
    ///
    /// # Panics
    ///
    /// Panics if the call graph is cyclic; run [`Program::check`]
    /// first.
    pub fn callees_first(&self) -> Vec<FuncId> {
        let n = self.funcs.len();
        let mut callees = vec![Vec::new(); n];
        for (fi, f) in self.funcs.iter().enumerate() {
            for bb in &f.blocks {
                if let Term::Call { func, .. } = &bb.term {
                    callees[fi].push(func.0 as usize);
                }
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 new, 1 visiting, 2 done
        fn visit(i: usize, callees: &[Vec<usize>], state: &mut [u8], order: &mut Vec<FuncId>) {
            assert_ne!(state[i], 1, "recursive call graph");
            if state[i] == 2 {
                return;
            }
            state[i] = 1;
            for &c in &callees[i] {
                visit(c, callees, state, order);
            }
            state[i] = 2;
            order.push(FuncId(i as u32));
        }
        for i in 0..n {
            visit(i, &callees, &mut state, &mut order);
        }
        order
    }
}

/// Errors from IR validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An instruction uses an opcode of the wrong format.
    BadOpcode(Inst),
    /// A function id out of range.
    BadFunc(FuncId),
    /// A block id out of range.
    BadBlock(FuncId, BbId),
    /// The call graph contains a cycle.
    RecursiveCalls,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadOpcode(i) => write!(f, "opcode/format mismatch in {i:?}"),
            IrError::BadFunc(id) => write!(f, "function id {} out of range", id.0),
            IrError::BadBlock(fid, b) => {
                write!(f, "block {b} out of range in function {}", fid.0)
            }
            IrError::RecursiveCalls => {
                write!(f, "recursive call graph (static register pools forbid recursion)")
            }
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str) -> Func {
        Func {
            name: name.into(),
            nparams: 0,
            blocks: vec![Bb { insts: vec![], term: Term::Ret(None) }],
            entry: BbId(0),
            nvregs: 0,
        }
    }

    #[test]
    fn check_catches_bad_block_id() {
        let mut f = leaf("f");
        f.blocks[0].term = Term::Jmp(BbId(9));
        let p = Program { funcs: vec![f], entry: FuncId(0), globals: vec![] };
        assert_eq!(p.check(), Err(IrError::BadBlock(FuncId(0), BbId(9))));
    }

    #[test]
    fn check_catches_recursion() {
        let mut f = leaf("f");
        f.blocks[0].term = Term::Call { func: FuncId(0), args: vec![], dst: None, next: BbId(0) };
        let p = Program { funcs: vec![f], entry: FuncId(0), globals: vec![] };
        assert_eq!(p.check(), Err(IrError::RecursiveCalls));
    }

    #[test]
    fn check_catches_format_mismatch() {
        let bad = Inst::Bin { op: Opcode::Mov, dst: VReg(0), a: VReg(1), b: VReg(2) };
        assert!(bad.check().is_err());
        let good = Inst::Un { op: Opcode::Mov, dst: VReg(0), a: VReg(1) };
        assert!(good.check().is_ok());
        assert!(Inst::BinImm { op: Opcode::Addi, dst: VReg(0), a: VReg(1), imm: 3 }
            .check()
            .is_ok());
        assert!(Inst::BinImm { op: Opcode::Add, dst: VReg(0), a: VReg(1), imm: 3 }
            .check()
            .is_err());
    }

    #[test]
    fn callees_first_orders_leaves_first() {
        let mut main = leaf("main");
        main.blocks[0].term =
            Term::Call { func: FuncId(1), args: vec![], dst: None, next: BbId(1) };
        main.blocks.push(Bb { insts: vec![], term: Term::Halt });
        let helper = leaf("helper");
        let p = Program { funcs: vec![main, helper], entry: FuncId(0), globals: vec![] };
        p.check().unwrap();
        let order = p.callees_first();
        assert_eq!(order, vec![FuncId(1), FuncId(0)]);
    }

    #[test]
    fn uses_and_dst() {
        let i = Inst::Store { op: Opcode::Sd, addr: VReg(1), off: 8, val: VReg(2) };
        assert_eq!(i.dst(), None);
        assert_eq!(i.uses(), vec![VReg(1), VReg(2)]);
        let t = Term::Br { cond: VReg(3), t: BbId(0), f: BbId(1) };
        assert_eq!(t.uses(), vec![VReg(3)]);
        assert_eq!(t.successors(), vec![BbId(0), BbId(1)]);
    }
}
