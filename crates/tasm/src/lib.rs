//! # trips-tasm — the TRIPS block toolchain
//!
//! The paper's evaluation runs code produced by the Scale-based TRIPS
//! compiler and by hand optimization of its output (§5.4). This crate
//! is the reproduction's equivalent: a small [`ir`] in which the
//! workload suite is written once, lowered into EDGE blocks by the
//! [`lower`] backend at either of two [`Quality`] levels:
//!
//! * [`Quality::Compiled`] — one TRIPS block per IR basic block,
//!   sequential instruction placement, chained fanout. Blocks come out
//!   small and communication-heavy, modelling the immature compiler
//!   whose "blocks will be too small" (§5.4).
//! * [`Quality::Hand`] — hyperblock formation (chain merging,
//!   if-conversion of triangles and diamonds), greedy
//!   minimum-communication placement on the 4×4 ET grid, balanced
//!   fanout trees. Models the hand-optimized kernels.
//!
//! Two reference interpreters anchor correctness: [`interp`] executes
//! the IR directly, and [`blockinterp`] executes compiled images with
//! architectural EDGE semantics (dataflow firing, predication,
//! nullification, LSID ordering). The cycle-level core in `trips-core`
//! must agree with both.
//!
//! ```
//! use trips_tasm::{compile, interp, blockinterp, ProgramBuilder, Quality, Opcode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = ProgramBuilder::new();
//! let mut f = p.func("main", 0);
//! let a = f.iconst(40);
//! let b = f.addi(a, 2);
//! let buf = f.iconst(0x10_0000);
//! f.store(Opcode::Sd, buf, 0, b);
//! f.halt();
//! f.finish();
//! let prog = p.finish();
//!
//! let reference = interp::run(&prog, 10_000)?;
//! let compiled = compile(&prog, Quality::Hand)?;
//! let executed = blockinterp::run_image(&compiled.image, 10_000)?;
//! assert_eq!(executed.mem.read_u64(0x10_0000), 42);
//! assert_eq!(reference.mem.read_u64(0x10_0000), 42);
//! # Ok(())
//! # }
//! ```

pub mod blockinterp;
mod builder;
pub mod interp;
pub mod ir;
pub mod lower;

pub use builder::{FuncBuilder, ProgramBuilder};
pub use ir::{Bb, BbId, Func, FuncId, Global, Inst, IrError, Program, Term, VReg};
pub use lower::{compile, CompileStats, CompiledProgram, PlacedBlock, CODE_BASE};
pub use trips_isa::Opcode;

use std::fmt;

/// Code-quality level of the TRIPS backend, modelling the paper's
/// compiled (TCC) versus hand-optimized code split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quality {
    /// Immature-compiler code: small blocks, naive placement.
    Compiled,
    /// Hand-optimized code: hyperblocks, locality-aware placement.
    Hand,
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Quality::Compiled => "compiled",
            Quality::Hand => "hand",
        })
    }
}

/// Errors from the TRIPS backend.
#[derive(Debug)]
pub enum TasmError {
    /// Structural IR problem.
    Ir(IrError),
    /// A hardware budget was exceeded; used internally to stop region
    /// growth and reported only when a single basic block cannot fit.
    Budget {
        /// Which budget.
        reason: &'static str,
    },
    /// A single basic block exceeds hardware budgets even unmerged;
    /// restructure the workload into smaller blocks.
    BlockTooLarge {
        /// The function.
        func: String,
        /// The offending block id.
        bb: u32,
    },
    /// A call path needs more than 128 architectural registers.
    OutOfRegisters {
        /// The function whose pool overflowed.
        func: String,
        /// Registers the path would need.
        needed: usize,
    },
    /// A branch target is beyond the ±64 MiB reach of the 20-bit
    /// block offset.
    BranchOutOfRange {
        /// Branching block address.
        from: u64,
        /// Target address.
        to: u64,
    },
    /// The generated block failed ISA validation (an internal bug).
    InvalidBlock(trips_isa::BlockError),
    /// An internal invariant failed.
    Internal(&'static str),
}

impl fmt::Display for TasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TasmError::Ir(e) => write!(f, "ir error: {e}"),
            TasmError::Budget { reason } => write!(f, "hardware budget exceeded: {reason}"),
            TasmError::BlockTooLarge { func, bb } => {
                write!(f, "basic block bb{bb} of {func} exceeds hardware budgets even unmerged")
            }
            TasmError::OutOfRegisters { func, needed } => {
                write!(f, "register pool exhausted at {func}: call path needs {needed} registers")
            }
            TasmError::BranchOutOfRange { from, to } => {
                write!(f, "branch from {from:#x} to {to:#x} out of 20-bit range")
            }
            TasmError::InvalidBlock(e) => write!(f, "generated block failed validation: {e}"),
            TasmError::Internal(m) => write!(f, "internal toolchain error: {m}"),
        }
    }
}

impl std::error::Error for TasmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TasmError::Ir(e) => Some(e),
            TasmError::InvalidBlock(e) => Some(e),
            _ => None,
        }
    }
}
