//! Ergonomic construction of IR programs.
//!
//! [`ProgramBuilder`] and [`FuncBuilder`] let workload generators
//! write kernels as straight-line Rust:
//!
//! ```
//! use trips_tasm::{ProgramBuilder, Opcode};
//!
//! let mut p = ProgramBuilder::new();
//! let mut f = p.func("sum3", 0);
//! let a = f.iconst(1);
//! let b = f.iconst(2);
//! let c = f.add(a, b);
//! let d = f.addi(c, 3);
//! let buf = f.iconst(0x10_0000);
//! f.store(Opcode::Sd, buf, 0, d);
//! f.halt();
//! f.finish();
//! let prog = p.finish();
//! assert!(prog.check().is_ok());
//! ```

use crate::ir::{Bb, BbId, Func, FuncId, Global, Inst, Program, Term, VReg};
use trips_isa::Opcode;

/// Builds a [`Program`] incrementally.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    funcs: Vec<Option<Func>>,
    entry: FuncId,
    globals: Vec<Global>,
}

impl ProgramBuilder {
    /// An empty program builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Starts a new function with `nparams` parameters; parameters are
    /// `VReg(0)..VReg(nparams)`. The first function created is the
    /// program entry unless [`ProgramBuilder::set_entry`] says
    /// otherwise.
    pub fn func(&mut self, name: &str, nparams: u32) -> FuncBuilder<'_> {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(None);
        FuncBuilder {
            owner: self,
            id,
            name: name.to_string(),
            nparams,
            blocks: vec![Bb { insts: vec![], term: Term::Halt }],
            cur: BbId(0),
            terminated: vec![false],
            next_vreg: nparams,
        }
    }

    /// Pre-declares a function id (for forward calls), to be defined
    /// later with [`ProgramBuilder::func`] in declaration order.
    pub fn next_func_id(&self) -> FuncId {
        FuncId(self.funcs.len() as u32)
    }

    /// Sets the entry function.
    pub fn set_entry(&mut self, f: FuncId) {
        self.entry = f;
    }

    /// Adds initialized global data at an absolute address.
    pub fn global(&mut self, base: u64, data: Vec<u8>) {
        self.globals.push(Global { base, data });
    }

    /// Adds a global of 64-bit little-endian words.
    pub fn global_words(&mut self, base: u64, words: &[u64]) {
        let mut data = Vec::with_capacity(words.len() * 8);
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        self.global(base, data);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if any started function was not finished.
    pub fn finish(self) -> Program {
        let funcs = self
            .funcs
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.unwrap_or_else(|| panic!("function {i} never finished")))
            .collect();
        Program { funcs, entry: self.entry, globals: self.globals }
    }
}

/// Builds one function. Create with [`ProgramBuilder::func`]; call
/// [`FuncBuilder::finish`] when done.
#[derive(Debug)]
pub struct FuncBuilder<'p> {
    owner: &'p mut ProgramBuilder,
    id: FuncId,
    name: String,
    nparams: u32,
    blocks: Vec<Bb>,
    cur: BbId,
    terminated: Vec<bool>,
    next_vreg: u32,
}

impl<'p> FuncBuilder<'p> {
    /// This function's id (usable for calls before it is finished).
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Parameter `i` as a register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nparams`.
    pub fn param(&self, i: u32) -> VReg {
        assert!(i < self.nparams, "param {i} out of range");
        VReg(i)
    }

    /// A fresh virtual register.
    pub fn fresh(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Creates a new, empty basic block (does not switch to it).
    pub fn new_block(&mut self) -> BbId {
        let id = BbId(self.blocks.len() as u32);
        self.blocks.push(Bb { insts: vec![], term: Term::Halt });
        self.terminated.push(false);
        id
    }

    /// Switches the insertion point to `bb`.
    ///
    /// # Panics
    ///
    /// Panics if `bb` is already terminated.
    pub fn switch_to(&mut self, bb: BbId) {
        assert!(!self.terminated[bb.0 as usize], "{bb} already terminated");
        self.cur = bb;
    }

    /// The current insertion block.
    pub fn current(&self) -> BbId {
        self.cur
    }

    fn push(&mut self, inst: Inst) {
        assert!(
            !self.terminated[self.cur.0 as usize],
            "emitting into terminated block {}",
            self.cur
        );
        inst.check().expect("ill-formed instruction");
        self.blocks[self.cur.0 as usize].insts.push(inst);
    }

    fn terminate(&mut self, term: Term) {
        assert!(!self.terminated[self.cur.0 as usize], "double terminator in block {}", self.cur);
        self.blocks[self.cur.0 as usize].term = term;
        self.terminated[self.cur.0 as usize] = true;
    }

    /// `dst = op(a, b)`.
    pub fn bin(&mut self, op: Opcode, a: VReg, b: VReg) -> VReg {
        let dst = self.fresh();
        self.push(Inst::Bin { op, dst, a, b });
        dst
    }

    /// `dst = op(a, b)` into an existing register (for loop-carried
    /// values).
    pub fn bin_into(&mut self, dst: VReg, op: Opcode, a: VReg, b: VReg) {
        self.push(Inst::Bin { op, dst, a, b });
    }

    /// `dst = op(a)`.
    pub fn un(&mut self, op: Opcode, a: VReg) -> VReg {
        let dst = self.fresh();
        self.push(Inst::Un { op, dst, a });
        dst
    }

    /// `dst = op(a, imm)`.
    pub fn bini(&mut self, op: Opcode, a: VReg, imm: i64) -> VReg {
        let dst = self.fresh();
        self.push(Inst::BinImm { op, dst, a, imm });
        dst
    }

    /// `dst = op(a, imm)` into an existing register.
    pub fn bini_into(&mut self, dst: VReg, op: Opcode, a: VReg, imm: i64) {
        self.push(Inst::BinImm { op, dst, a, imm });
    }

    /// `a + b`.
    pub fn add(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(Opcode::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(Opcode::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(Opcode::Mul, a, b)
    }

    /// `a + imm`.
    pub fn addi(&mut self, a: VReg, imm: i64) -> VReg {
        self.bini(Opcode::Addi, a, imm)
    }

    /// Copy `a` into a fresh register.
    pub fn mov(&mut self, a: VReg) -> VReg {
        self.un(Opcode::Mov, a)
    }

    /// Copy `a` into `dst`.
    pub fn mov_into(&mut self, dst: VReg, a: VReg) {
        self.push(Inst::Un { op: Opcode::Mov, dst, a });
    }

    /// Materializes a constant.
    pub fn iconst(&mut self, val: i64) -> VReg {
        let dst = self.fresh();
        self.push(Inst::Const { dst, val });
        dst
    }

    /// Materializes a constant into an existing register.
    pub fn iconst_into(&mut self, dst: VReg, val: i64) {
        self.push(Inst::Const { dst, val });
    }

    /// Materializes an `f64` constant (as its bit pattern).
    pub fn fconst(&mut self, val: f64) -> VReg {
        self.iconst(val.to_bits() as i64)
    }

    /// `dst = extend(mem[addr + off])`.
    pub fn load(&mut self, op: Opcode, addr: VReg, off: i32) -> VReg {
        let dst = self.fresh();
        self.push(Inst::Load { op, dst, addr, off });
        dst
    }

    /// `mem[addr + off] = val`.
    pub fn store(&mut self, op: Opcode, addr: VReg, off: i32, val: VReg) {
        self.push(Inst::Store { op, addr, off, val });
    }

    /// Terminates with an unconditional jump.
    pub fn jmp(&mut self, bb: BbId) {
        self.terminate(Term::Jmp(bb));
    }

    /// Terminates with a conditional branch; `cond` must be 0/1.
    pub fn br(&mut self, cond: VReg, t: BbId, f: BbId) {
        self.terminate(Term::Br { cond, t, f });
    }

    /// Terminates with a return.
    pub fn ret(&mut self, val: Option<VReg>) {
        self.terminate(Term::Ret(val));
    }

    /// Terminates with a halt.
    pub fn halt(&mut self) {
        self.terminate(Term::Halt);
    }

    /// Terminates with a call and switches to the (fresh) continuation
    /// block; returns the register bound to the callee's return value.
    pub fn call(&mut self, func: FuncId, args: &[VReg]) -> VReg {
        let dst = self.fresh();
        let next = self.new_block();
        self.terminate(Term::Call { func, args: args.to_vec(), dst: Some(dst), next });
        self.cur = next;
        dst
    }

    /// Like [`FuncBuilder::call`] but discarding any return value.
    pub fn call_void(&mut self, func: FuncId, args: &[VReg]) {
        let next = self.new_block();
        self.terminate(Term::Call { func, args: args.to_vec(), dst: None, next });
        self.cur = next;
    }

    /// Finalizes the function into the program.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    pub fn finish(self) {
        for (i, t) in self.terminated.iter().enumerate() {
            assert!(t, "block bb{i} of {} lacks a terminator", self.name);
        }
        let f = Func {
            name: self.name,
            nparams: self.nparams,
            blocks: self.blocks,
            entry: BbId(0),
            nvregs: self.next_vreg,
        };
        self.owner.funcs[self.id.0 as usize] = Some(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Term;

    #[test]
    fn builds_a_loop() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("count", 0);
        let i = f.fresh();
        f.iconst_into(i, 0);
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(body);
        f.switch_to(body);
        f.bini_into(i, Opcode::Addi, i, 1);
        let c = f.bini(Opcode::Tlti, i, 10);
        f.br(c, body, done);
        f.switch_to(done);
        f.halt();
        f.finish();
        let prog = p.finish();
        prog.check().unwrap();
        assert_eq!(prog.funcs[0].blocks.len(), 3);
        assert!(matches!(prog.funcs[0].blocks[1].term, Term::Br { .. }));
    }

    #[test]
    fn call_switches_to_continuation() {
        let mut p = ProgramBuilder::new();
        let main_id = p.next_func_id();
        let mut main = p.func("main", 0);
        assert_eq!(main.id(), main_id);
        let one = main.iconst(1);
        let r = main.call(FuncId(1), &[one]);
        let buf = main.iconst(0x1000);
        main.store(Opcode::Sd, buf, 0, r);
        main.halt();
        main.finish();
        let mut inc = p.func("inc", 1);
        assert_eq!(inc.id(), FuncId(1)); // ids follow allocation order
        let a = inc.param(0);
        let b = inc.addi(a, 1);
        inc.ret(Some(b));
        inc.finish();
        let prog = p.finish();
        prog.check().unwrap();
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("bad", 0);
        let _orphan = f.new_block();
        f.halt();
        f.finish();
    }

    #[test]
    #[should_panic(expected = "double terminator")]
    fn double_terminator_panics() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("bad", 0);
        f.halt();
        f.halt();
    }
}
