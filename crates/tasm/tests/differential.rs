//! Differential tests: the IR interpreter and the block-level EDGE
//! interpreter must agree on final memory for every program, at both
//! code-quality levels.

use trips_tasm::{blockinterp, compile, interp, Opcode, ProgramBuilder, Quality};

const OUT: u64 = 0x10_0000;

fn check(p: trips_tasm::Program, cells: &[u64]) {
    let reference = interp::run(&p, 2_000_000).expect("IR interp failed");
    for q in [Quality::Compiled, Quality::Hand] {
        let c = compile(&p, q).unwrap_or_else(|e| panic!("compile({q}) failed: {e}"));
        let r = blockinterp::run_image(&c.image, 500_000)
            .unwrap_or_else(|e| panic!("blockinterp({q}) failed: {e}"));
        for (i, &cell) in cells.iter().enumerate() {
            assert_eq!(
                r.mem.read_u64(cell),
                reference.mem.read_u64(cell),
                "quality {q}, cell {i} at {cell:#x}"
            );
        }
    }
}

#[test]
fn straightline_arith() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let a = f.iconst(123456);
    let b = f.iconst(-7);
    let c = f.mul(a, b);
    let d = f.bini(Opcode::Xori, c, 0x5a5a);
    let two = f.iconst(2);
    let e = f.bin(Opcode::Sra, d, two);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, e);
    f.halt();
    f.finish();
    check(p.finish(), &[OUT]);
}

#[test]
fn wide_constants() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let buf = f.iconst(OUT as i64);
    for (i, val) in [
        0i64,
        1,
        -1,
        8191,
        -8192,
        8192,
        0x7fff,
        -0x8000,
        0x12345,
        -0x12345,
        0x7fff_ffff,
        -0x8000_0000,
        0x1_0000_0000,
        0x0123_4567_89ab_cdef,
        -0x0123_4567_89ab_cdef,
        i64::MIN,
        i64::MAX,
    ]
    .iter()
    .enumerate()
    {
        let v = f.iconst(*val);
        f.store(Opcode::Sd, buf, (i * 8) as i32, v);
    }
    f.halt();
    f.finish();
    check(p.finish(), &(0..17).map(|i| OUT + 8 * i).collect::<Vec<_>>());
}

#[test]
fn counted_loop() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let sum = f.fresh();
    let i = f.fresh();
    f.iconst_into(sum, 0);
    f.iconst_into(i, 0);
    let body = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    let sq = f.mul(i, i);
    f.bin_into(sum, Opcode::Add, sum, sq);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 50);
    f.br(c, body, done);
    f.switch_to(done);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, sum);
    f.halt();
    f.finish();
    check(p.finish(), &[OUT]);
}

#[test]
fn diamond_if_else() {
    // for i in 0..20 { out[i] = if a[i] odd { a[i]*3+1 } else { a[i]/2 } }
    let mut p = ProgramBuilder::new();
    p.global_words(0x20_0000, &(0..20u64).map(|i| i * 7 + 3).collect::<Vec<_>>());
    let mut f = p.func("main", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let body = f.new_block();
    let then_b = f.new_block();
    let else_b = f.new_block();
    let join = f.new_block();
    let done = f.new_block();
    f.jmp(body);

    f.switch_to(body);
    let a_base = f.iconst(0x20_0000);
    let off = f.bini(Opcode::Slli, i, 3);
    let addr = f.add(a_base, off);
    let a = f.load(Opcode::Ld, addr, 0);
    let bit = f.bini(Opcode::Andi, a, 1);
    let odd = f.bini(Opcode::Teqi, bit, 1);
    let res = f.fresh();
    f.br(odd, then_b, else_b);

    f.switch_to(then_b);
    let t1 = f.bini(Opcode::Muli, a, 3);
    f.bini_into(res, Opcode::Addi, t1, 1);
    f.jmp(join);

    f.switch_to(else_b);
    f.bini_into(res, Opcode::Srai, a, 1);
    f.jmp(join);

    f.switch_to(join);
    let out_base = f.iconst(OUT as i64);
    let oaddr = f.add(out_base, off);
    f.store(Opcode::Sd, oaddr, 0, res);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 20);
    f.br(c, body, done);

    f.switch_to(done);
    f.halt();
    f.finish();
    check(p.finish(), &(0..20).map(|i| OUT + 8 * i).collect::<Vec<_>>());
}

#[test]
fn triangle_conditional_store() {
    // out[i] written only when a[i] > 50 — exercises nullified stores.
    let mut p = ProgramBuilder::new();
    p.global_words(0x20_0000, &(0..16u64).map(|i| i * 13 % 101).collect::<Vec<_>>());
    let mut f = p.func("main", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let body = f.new_block();
    let then_b = f.new_block();
    let join = f.new_block();
    let done = f.new_block();
    f.jmp(body);

    f.switch_to(body);
    let a_base = f.iconst(0x20_0000);
    let off = f.bini(Opcode::Slli, i, 3);
    let addr = f.add(a_base, off);
    let a = f.load(Opcode::Ld, addr, 0);
    let big = f.bini(Opcode::Tgti, a, 50);
    f.br(big, then_b, join);

    f.switch_to(then_b);
    let out_base = f.iconst(OUT as i64);
    let oaddr = f.add(out_base, off);
    f.store(Opcode::Sd, oaddr, 0, a);
    f.jmp(join);

    f.switch_to(join);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 16);
    f.br(c, body, done);

    f.switch_to(done);
    f.halt();
    f.finish();
    check(p.finish(), &(0..16).map(|i| OUT + 8 * i).collect::<Vec<_>>());
}

#[test]
fn nested_calls() {
    let mut p = ProgramBuilder::new();
    let mut main = p.func("main", 0);
    let x = main.iconst(10);
    let r = main.call(trips_tasm::FuncId(1), &[x]);
    let buf = main.iconst(OUT as i64);
    main.store(Opcode::Sd, buf, 0, r);
    main.halt();
    main.finish();

    // f(x) = g(x) + g(x+1)
    let mut f = p.func("f", 1);
    let a = f.param(0);
    let r1 = f.call(trips_tasm::FuncId(2), &[a]);
    let a1 = f.addi(a, 1);
    let r2 = f.call(trips_tasm::FuncId(2), &[a1]);
    let s = f.add(r1, r2);
    f.ret(Some(s));
    f.finish();

    // g(x) = x*x + 7
    let mut g = p.func("g", 1);
    let a = g.param(0);
    let sq = g.mul(a, a);
    let r = g.addi(sq, 7);
    g.ret(Some(r));
    g.finish();

    check(p.finish(), &[OUT]);
}

#[test]
fn memory_ordering_store_then_load() {
    // Write then read the same location within one block region —
    // exercises LSID ordering and store-to-load forwarding.
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let buf = f.iconst(OUT as i64);
    let a = f.iconst(111);
    f.store(Opcode::Sd, buf, 0, a);
    let b = f.load(Opcode::Ld, buf, 0);
    let c = f.addi(b, 1);
    f.store(Opcode::Sd, buf, 8, c);
    let d = f.load(Opcode::Ld, buf, 8);
    let e = f.addi(d, 1);
    f.store(Opcode::Sd, buf, 16, e);
    f.halt();
    f.finish();
    check(p.finish(), &[OUT, OUT + 8, OUT + 16]);
}

#[test]
fn subword_memory() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let buf = f.iconst(OUT as i64);
    let v = f.iconst(-2);
    f.store(Opcode::Sb, buf, 0, v);
    f.store(Opcode::Sh, buf, 8, v);
    f.store(Opcode::Sw, buf, 16, v);
    let b = f.load(Opcode::Lb, buf, 0);
    let bu = f.load(Opcode::Lbu, buf, 0);
    let h = f.load(Opcode::Lh, buf, 8);
    let hu = f.load(Opcode::Lhu, buf, 8);
    let w = f.load(Opcode::Lw, buf, 16);
    let wu = f.load(Opcode::Lwu, buf, 16);
    f.store(Opcode::Sd, buf, 24, b);
    f.store(Opcode::Sd, buf, 32, bu);
    f.store(Opcode::Sd, buf, 40, h);
    f.store(Opcode::Sd, buf, 48, hu);
    f.store(Opcode::Sd, buf, 56, w);
    f.store(Opcode::Sd, buf, 64, wu);
    f.halt();
    f.finish();
    check(p.finish(), &(0..9).map(|i| OUT + 8 * i).collect::<Vec<_>>());
}

#[test]
fn float_kernel() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let x = f.fconst(1.5);
    let y = f.fconst(-2.25);
    let s = f.bin(Opcode::Fadd, x, y);
    let m = f.bin(Opcode::Fmul, s, s);
    let d = f.bin(Opcode::Fdiv, m, y);
    let q = f.un(Opcode::Fsqrt, m);
    let i = f.un(Opcode::Ftoi, d);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, s);
    f.store(Opcode::Sd, buf, 8, m);
    f.store(Opcode::Sd, buf, 16, d);
    f.store(Opcode::Sd, buf, 24, q);
    f.store(Opcode::Sd, buf, 32, i);
    f.halt();
    f.finish();
    check(p.finish(), &(0..5).map(|i| OUT + 8 * i).collect::<Vec<_>>());
}

#[test]
fn deep_fanout() {
    // One value consumed 20 times — exercises fanout trees and chains.
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let v = f.iconst(3);
    let buf = f.iconst(OUT as i64);
    let mut acc = f.iconst(0);
    for k in 0..20 {
        let t = f.bini(Opcode::Muli, v, k + 1);
        acc = f.add(acc, t);
    }
    f.store(Opcode::Sd, buf, 0, acc);
    f.halt();
    f.finish();
    check(p.finish(), &[OUT]);
}

#[test]
fn hand_quality_merges_blocks() {
    // Structural check: the diamond loop above must produce fewer
    // blocks at Hand quality than at Compiled quality.
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let body = f.new_block();
    let t = f.new_block();
    let e = f.new_block();
    let j = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    let bit = f.bini(Opcode::Andi, i, 1);
    let odd = f.bini(Opcode::Teqi, bit, 1);
    let r = f.fresh();
    f.br(odd, t, e);
    f.switch_to(t);
    f.bini_into(r, Opcode::Muli, i, 3);
    f.jmp(j);
    f.switch_to(e);
    f.bini_into(r, Opcode::Muli, i, 5);
    f.jmp(j);
    f.switch_to(j);
    let buf = f.iconst(OUT as i64);
    let off = f.bini(Opcode::Slli, i, 3);
    let a = f.add(buf, off);
    f.store(Opcode::Sd, a, 0, r);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 8);
    f.br(c, body, done);
    f.switch_to(done);
    f.halt();
    f.finish();
    let prog = p.finish();

    let compiled = compile(&prog, Quality::Compiled).unwrap();
    let hand = compile(&prog, Quality::Hand).unwrap();
    assert!(
        hand.stats.blocks < compiled.stats.blocks,
        "hand {} vs compiled {}",
        hand.stats.blocks,
        compiled.stats.blocks
    );
    assert!(hand.stats.avg_block_size > compiled.stats.avg_block_size);
    check(prog, &(0..8).map(|i| OUT + 8 * i).collect::<Vec<_>>());
}
