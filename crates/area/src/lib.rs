//! # trips-area — the physical-design model
//!
//! The TRIPS chip is a 170 M-transistor, 18.30 mm × 18.37 mm ASIC in
//! IBM's CU-11 130 nm process, built from 106 copies of 11 tile types
//! (§5). This crate regenerates the paper's physical-design artifacts
//! from the same configuration the simulator runs:
//!
//! * **Table 1** — per-tile cell counts, array bits, sizes, and chip
//!   area shares. Array bits are *derived* from the
//!   microarchitectural configuration (predictor tables, cache banks,
//!   queues); cell counts and layout densities are calibrated against
//!   the published tile characteristics.
//! * **Table 2** — the control- and data-network link widths, from
//!   [`trips_micronet::widths`].
//! * **Figure 6** — an ASCII rendition of the chip floorplan.
//! * The §5.2 overhead observations: the OPN at ~12% of processor
//!   area, the OCN at ~14% of chip area, and the replicated LSQs at
//!   ~13% of the processor core (≈40% of each DT).

mod chip;
mod floorplan;
mod tiles;

pub use chip::{
    chip_summary, core_area_mm2, networks_table, render_table1, table1, ChipSummary, NetworkRow,
    Table1Row,
};
pub use floorplan::floorplan;
pub use tiles::{tile_specs, ChipConfig, TileKind, TileSpec};
