//! An ASCII rendition of the Figure 6 chip floorplan.

use crate::tiles::ChipConfig;

/// The fixed left edge of the die: controllers and the central OCN
/// column of memory tiles (their counts do not follow the core
/// geometry).
const LEFT: [&str; 12] = [
    "| DMA | MT  MT |  EBC |",
    "|-----+--------+------+",
    "| SDC | MT  MT |      |",
    "|-----+--------+ OCN  |",
    "|     | MT  MT | (4x10|",
    "|     |        | mesh,|",
    "|     | MT  MT | 24 NT|",
    "|     |        | ring)|",
    "|     | MT  MT |      |",
    "|-----+--------+------+",
    "| SDC | MT  MT |      |",
    "|-----+--------+ C2C  |",
];
/// A pass-through left row for dies whose processor blocks are taller
/// than the memory column.
const LEFT_BLANK: &str = "|     |        |      |";
/// Last row of the fixed left edge.
const LEFT_LAST: &str = "| DMA | MT  MT |      |";

/// Renders the chip floorplan: the processor cores flank the central
/// OCN column of memory tiles, with the controllers on the left edge
/// (Figure 6). The per-core tile array is drawn from the same
/// [`trips_core::CoreGeometry`] the simulator runs: a header row with
/// the GT and the RT banks, then one row per ET row led by its IT and
/// DT.
pub fn floorplan(cfg: &ChipConfig) -> String {
    let g = cfg.core.geometry;
    let mut procs: Vec<String> = Vec::new();
    for k in 0..cfg.cores {
        procs.push(format!("            PROC {k}"));
        let mut head = String::from("   I  G");
        for _ in 0..g.num_rts() {
            head.push_str("  R");
        }
        procs.push(head);
        for _ in 0..g.et_rows {
            let mut row = String::from("   I  D");
            for _ in 0..g.et_cols {
                row.push_str("  E");
            }
            procs.push(row);
        }
    }

    let lw = LEFT[0].len();
    let rw = procs.iter().map(String::len).max().unwrap_or(0).max(25) + 2;
    let rows = (LEFT.len() + 1).max(procs.len());
    let border = format!("+{}+\n", "-".repeat(lw + rw - 1));

    let mut s = String::new();
    s.push_str(&border);
    for i in 0..rows {
        let left =
            if i + 1 == rows { LEFT_LAST } else { LEFT.get(i).copied().unwrap_or(LEFT_BLANK) };
        let right = procs.get(i).map(String::as_str).unwrap_or("");
        s.push_str(&format!("{left}{right:<rw$}|\n"));
    }
    s.push_str(&border);
    s.push_str(&format!(
        "  {} cores ({} geometry), {} MTs of {} KB ({}-way), {} NTs; die 18.30 x 18.37 mm\n",
        cfg.cores,
        g.name(),
        cfg.mt_banks,
        cfg.mt_bank_kb,
        cfg.mt_ways,
        cfg.nts
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_core::{CoreConfig, CoreGeometry};

    #[test]
    fn floorplan_mentions_both_cores_and_the_ocn() {
        let s = floorplan(&ChipConfig::prototype());
        assert!(s.contains("PROC 0"));
        assert!(s.contains("PROC 1"));
        assert!(s.contains("OCN"));
        assert!(s.contains("16 MTs of 64 KB"));
        assert!(s.contains("I  G  R  R  R  R"), "prototype header row: GT plus four RTs\n{s}");
        assert!(s.contains("I  D  E  E  E  E"), "prototype ET row: IT, DT, four ETs\n{s}");
    }

    #[test]
    fn floorplan_follows_the_geometry() {
        let mini = ChipConfig {
            core: CoreConfig::with_geometry(CoreGeometry::mini()),
            ..ChipConfig::prototype()
        };
        let s = floorplan(&mini);
        assert!(s.contains("I  G  R  R"), "mini header row: GT plus two RTs\n{s}");
        assert!(s.contains("I  D  E  E"), "mini ET row: IT, DT, two ETs\n{s}");
        assert!(!s.contains("E  E  E  E"), "a mini row has only two ETs\n{s}");
        assert!(s.contains("(mini geometry)"));
    }
}
