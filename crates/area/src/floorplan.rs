//! An ASCII rendition of the Figure 6 chip floorplan.

use crate::tiles::ChipConfig;

/// Renders the chip floorplan: two processor cores flank the central
/// OCN column of memory tiles, with the controllers on the left edge
/// (Figure 6).
pub fn floorplan(cfg: &ChipConfig) -> String {
    let mut s = String::new();
    s.push_str("+------------------------------------------------------------------+\n");
    s.push_str("| DMA | MT  MT |  EBC |            PROC 0                           |\n");
    s.push_str("|-----+--------+------+   I  G  R  R  R  R                          |\n");
    s.push_str("| SDC | MT  MT |      |   I  D  E  E  E  E                          |\n");
    s.push_str("|-----+--------+ OCN  |   I  D  E  E  E  E                          |\n");
    s.push_str("|     | MT  MT | (4x10|   I  D  E  E  E  E                          |\n");
    s.push_str("|     |        | mesh,|   I  D  E  E  E  E                          |\n");
    s.push_str("|     | MT  MT | 24 NT|                                             |\n");
    s.push_str("|     |        | ring)|            PROC 1                           |\n");
    s.push_str("|     | MT  MT |      |   I  G  R  R  R  R                          |\n");
    s.push_str("|-----+--------+------+   I  D  E  E  E  E                          |\n");
    s.push_str("| SDC | MT  MT |      |   I  D  E  E  E  E                          |\n");
    s.push_str("|-----+--------+ C2C  |   I  D  E  E  E  E                          |\n");
    s.push_str("| DMA | MT  MT |      |   I  D  E  E  E  E                          |\n");
    s.push_str("+------------------------------------------------------------------+\n");
    s.push_str(&format!(
        "  {} cores, {} MTs of {} KB ({}-way), {} NTs; die 18.30 x 18.37 mm\n",
        cfg.cores, cfg.mt_banks, cfg.mt_bank_kb, cfg.mt_ways, cfg.nts
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floorplan_mentions_both_cores_and_the_ocn() {
        let s = floorplan(&ChipConfig::prototype());
        assert!(s.contains("PROC 0"));
        assert!(s.contains("PROC 1"));
        assert!(s.contains("OCN"));
        assert!(s.contains("16 MTs of 64 KB"));
    }
}
