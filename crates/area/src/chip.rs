//! Chip-level aggregation: Table 1, Table 2, and the §5.2 overhead
//! observations.

use trips_micronet::widths::{NetworkSpec, NETWORKS};

use crate::tiles::{tile_specs, ChipConfig, TileKind, TileSpec};

/// One printed row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Tile label.
    pub tile: &'static str,
    /// Placeable instances.
    pub cell_count: u64,
    /// Dense array bits.
    pub array_bits: u64,
    /// Area in mm².
    pub size_mm2: f64,
    /// Copies chip-wide.
    pub tile_count: usize,
    /// Percent of total chip area.
    pub pct_chip_area: f64,
}

/// Whole-chip summary derived from the tile inventory.
#[derive(Debug, Clone)]
pub struct ChipSummary {
    /// Total placeable cells (all tile copies).
    pub total_cells: u64,
    /// Total array bits.
    pub total_bits: u64,
    /// Sum of placed tile area.
    pub tile_area_mm2: f64,
    /// Die area including top-level wiring and pad ring (the chip is
    /// 18.30 mm × 18.37 mm).
    pub die_area_mm2: f64,
    /// OPN share of one processor core's area (§5.2: ~12%).
    pub opn_pct_of_core: f64,
    /// OCN share of total chip area (§5.2: ~14%).
    pub ocn_pct_of_chip: f64,
    /// LSQ share of one processor core's area (§5.2: ~13%).
    pub lsq_pct_of_core: f64,
    /// LSQ share of each DT (§7: ~40%).
    pub lsq_pct_of_dt: f64,
}

/// The die area of the prototype.
pub const DIE_MM2: f64 = 18.30 * 18.37;

fn spec(specs: &[TileSpec], kind: TileKind) -> &TileSpec {
    specs.iter().find(|s| s.kind == kind).expect("all kinds present")
}

/// Regenerates Table 1 for a configuration.
pub fn table1(cfg: &ChipConfig) -> (Vec<Table1Row>, ChipSummary) {
    let specs = tile_specs(cfg);
    let tile_area: f64 = specs.iter().map(|s| s.size_mm2 * s.count as f64).sum();
    let rows = specs
        .iter()
        .map(|s| Table1Row {
            tile: s.kind.label(),
            cell_count: s.cell_count,
            array_bits: s.array_bits,
            size_mm2: s.size_mm2,
            tile_count: s.count,
            // Table 1 percentages are of the placed tile area.
            pct_chip_area: 100.0 * s.size_mm2 * s.count as f64 / tile_area,
        })
        .collect();

    // A processor core: GT + 4 RT + 5 IT + 4 DT + 16 ET.
    let core_area = spec(&specs, TileKind::Gt).size_mm2
        + 4.0 * spec(&specs, TileKind::Rt).size_mm2
        + 5.0 * spec(&specs, TileKind::It).size_mm2
        + 4.0 * spec(&specs, TileKind::Dt).size_mm2
        + 16.0 * spec(&specs, TileKind::Et).size_mm2;

    // OPN: routers and buffering at 25 of the 30 processor tiles plus
    // eight 141-bit links each (§5.2 puts it near 12% of core area).
    let opn_router_mm2 = 0.45;
    let opn_area = 25.0 * opn_router_mm2;

    // OCN: 4-ported routers with four virtual channels at the MTs and
    // NTs (§5.2: ~14% of the chip).
    let ocn_router_mm2 = 1.17;
    let ocn_area = (cfg.mt_banks + cfg.nts) as f64 * ocn_router_mm2;

    // LSQ: the 256-entry replicated queues built from discrete latches
    // occupy ~40% of each DT (§7).
    let lsq_pct_of_dt = 40.0;
    let lsq_area = 4.0 * spec(&specs, TileKind::Dt).size_mm2 * (lsq_pct_of_dt / 100.0);

    let summary = ChipSummary {
        total_cells: specs.iter().map(|s| s.cell_count * s.count as u64).sum(),
        total_bits: specs.iter().map(|s| s.array_bits * s.count as u64).sum(),
        tile_area_mm2: tile_area,
        die_area_mm2: DIE_MM2,
        opn_pct_of_core: 100.0 * opn_area / core_area,
        ocn_pct_of_chip: 100.0 * ocn_area / DIE_MM2,
        lsq_pct_of_core: 100.0 * lsq_area / core_area,
        lsq_pct_of_dt,
    };
    (rows, summary)
}

/// One printed row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct NetworkRow {
    /// The network.
    pub spec: NetworkSpec,
}

/// Regenerates Table 2 (network name, purpose, width).
pub fn networks_table() -> Vec<NetworkRow> {
    NETWORKS.iter().map(|&spec| NetworkRow { spec }).collect()
}

/// The chip summary for the prototype configuration.
pub fn chip_summary() -> ChipSummary {
    table1(&ChipConfig::prototype()).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_track_table1() {
        let (rows, _) = table1(&ChipConfig::prototype());
        let expect = [
            ("GT", 1.8),
            ("RT", 2.9),
            ("IT", 2.9),
            ("DT", 21.0),
            ("ET", 28.0),
            ("MT", 30.7),
            ("NT", 7.1),
            ("SDC", 3.4),
            ("DMA", 0.8),
            ("EBC", 0.3),
            ("C2C", 0.7),
        ];
        for ((label, pct), row) in expect.iter().zip(&rows) {
            assert_eq!(*label, row.tile);
            assert!(
                (row.pct_chip_area - pct).abs() < 0.5,
                "{label}: model {:.1}% vs paper {pct}%",
                row.pct_chip_area
            );
        }
    }

    #[test]
    fn totals_track_the_chip() {
        let (_, s) = table1(&ChipConfig::prototype());
        // 5.8M cells, 11.5M array bits, ~334 mm² of placed tiles.
        assert!((s.total_cells as f64 - 5.8e6).abs() / 5.8e6 < 0.05, "{}", s.total_cells);
        assert!((s.total_bits as f64 - 11.5e6).abs() / 11.5e6 < 0.05, "{}", s.total_bits);
        assert!((s.tile_area_mm2 - 334.0).abs() / 334.0 < 0.05, "{}", s.tile_area_mm2);
    }

    #[test]
    fn section_5_2_overheads() {
        let s = chip_summary();
        assert!((s.opn_pct_of_core - 12.0).abs() < 1.5, "OPN {:.1}%", s.opn_pct_of_core);
        assert!((s.ocn_pct_of_chip - 14.0).abs() < 1.5, "OCN {:.1}%", s.ocn_pct_of_chip);
        // §5.2's "13% of the processor core" and §7's "40% of the
        // DTs" are mutually approximate; the model lands between.
        assert!((s.lsq_pct_of_core - 13.0).abs() < 2.5, "LSQ {:.1}%", s.lsq_pct_of_core);
        assert_eq!(s.lsq_pct_of_dt, 40.0);
    }

    #[test]
    fn table2_has_eight_networks() {
        assert_eq!(networks_table().len(), 8);
    }
}
