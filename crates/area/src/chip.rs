//! Chip-level aggregation: Table 1, Table 2, and the §5.2 overhead
//! observations.

use trips_micronet::widths::{NetworkSpec, NETWORKS};

use crate::tiles::{tile_specs, ChipConfig, TileKind, TileSpec};

/// One printed row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Tile label.
    pub tile: &'static str,
    /// Placeable instances.
    pub cell_count: u64,
    /// Dense array bits.
    pub array_bits: u64,
    /// Area in mm².
    pub size_mm2: f64,
    /// Copies chip-wide.
    pub tile_count: usize,
    /// Percent of total chip area.
    pub pct_chip_area: f64,
}

/// Whole-chip summary derived from the tile inventory.
#[derive(Debug, Clone)]
pub struct ChipSummary {
    /// Total placeable cells (all tile copies).
    pub total_cells: u64,
    /// Total array bits.
    pub total_bits: u64,
    /// Sum of placed tile area.
    pub tile_area_mm2: f64,
    /// Die area including top-level wiring and pad ring (the chip is
    /// 18.30 mm × 18.37 mm).
    pub die_area_mm2: f64,
    /// OPN share of one processor core's area (§5.2: ~12%).
    pub opn_pct_of_core: f64,
    /// OCN share of total chip area (§5.2: ~14%).
    pub ocn_pct_of_chip: f64,
    /// LSQ share of one processor core's area (§5.2: ~13%).
    pub lsq_pct_of_core: f64,
    /// LSQ share of each DT (§7: ~40%).
    pub lsq_pct_of_dt: f64,
}

/// The die area of the prototype.
pub const DIE_MM2: f64 = 18.30 * 18.37;

fn spec(specs: &[TileSpec], kind: TileKind) -> &TileSpec {
    specs.iter().find(|s| s.kind == kind).expect("all kinds present")
}

/// The placed area of one processor core: the GT plus every RT, IT,
/// DT, and ET of its geometry (prototype: 1 + 4 + 5 + 4 + 16 tiles).
fn core_area_of(specs: &[TileSpec], g: trips_core::CoreGeometry) -> f64 {
    spec(specs, TileKind::Gt).size_mm2
        + g.num_rts() as f64 * spec(specs, TileKind::Rt).size_mm2
        + g.num_its() as f64 * spec(specs, TileKind::It).size_mm2
        + g.num_dts() as f64 * spec(specs, TileKind::Dt).size_mm2
        + g.num_ets() as f64 * spec(specs, TileKind::Et).size_mm2
}

/// The placed area of one processor core for a configuration — the
/// paretosweep's area axis, derived from the same `CoreGeometry` the
/// simulator runs.
pub fn core_area_mm2(cfg: &ChipConfig) -> f64 {
    core_area_of(&tile_specs(cfg), cfg.core.geometry)
}

/// Regenerates Table 1 for a configuration.
pub fn table1(cfg: &ChipConfig) -> (Vec<Table1Row>, ChipSummary) {
    let specs = tile_specs(cfg);
    let tile_area: f64 = specs.iter().map(|s| s.size_mm2 * s.count as f64).sum();
    let rows = specs
        .iter()
        .map(|s| Table1Row {
            tile: s.kind.label(),
            cell_count: s.cell_count,
            array_bits: s.array_bits,
            size_mm2: s.size_mm2,
            tile_count: s.count,
            // Table 1 percentages are of the placed tile area.
            pct_chip_area: 100.0 * s.size_mm2 * s.count as f64 / tile_area,
        })
        .collect();

    // A processor core (prototype: GT + 4 RT + 5 IT + 4 DT + 16 ET).
    let g = cfg.core.geometry;
    let core_area = core_area_of(&specs, g);

    // OPN: routers and buffering at every node of the operand mesh
    // (prototype: 25 of the 30 processor tiles) plus eight 141-bit
    // links each (§5.2 puts it near 12% of core area).
    let opn_router_mm2 = 0.45;
    let opn_area = (g.mesh_rows() * g.mesh_cols()) as f64 * opn_router_mm2;

    // OCN: 4-ported routers with four virtual channels at the MTs and
    // NTs (§5.2: ~14% of the chip).
    let ocn_router_mm2 = 1.17;
    let ocn_area = (cfg.mt_banks + cfg.nts) as f64 * ocn_router_mm2;

    // LSQ: the replicated queues built from discrete latches occupy
    // ~40% of each DT (§7; 256 entries on the prototype).
    let lsq_pct_of_dt = 40.0;
    let lsq_area =
        g.num_dts() as f64 * spec(&specs, TileKind::Dt).size_mm2 * (lsq_pct_of_dt / 100.0);

    let summary = ChipSummary {
        total_cells: specs.iter().map(|s| s.cell_count * s.count as u64).sum(),
        total_bits: specs.iter().map(|s| s.array_bits * s.count as u64).sum(),
        tile_area_mm2: tile_area,
        die_area_mm2: DIE_MM2,
        opn_pct_of_core: 100.0 * opn_area / core_area,
        ocn_pct_of_chip: 100.0 * ocn_area / DIE_MM2,
        lsq_pct_of_core: 100.0 * lsq_area / core_area,
        lsq_pct_of_dt,
    };
    (rows, summary)
}

/// One printed row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct NetworkRow {
    /// The network.
    pub spec: NetworkSpec,
}

/// Regenerates Table 2 (network name, purpose, width).
pub fn networks_table() -> Vec<NetworkRow> {
    NETWORKS.iter().map(|&spec| NetworkRow { spec }).collect()
}

/// Renders Table 1 for a configuration exactly as the `table1` binary
/// prints it — header, one line per tile, and the chip totals line.
pub fn render_table1(cfg: &ChipConfig) -> String {
    use std::fmt::Write;
    let (rows, summary) = table1(cfg);
    let mut s = String::new();
    writeln!(
        s,
        "{:<6} {:>11} {:>11} {:>10} {:>11} {:>12}",
        "Tile", "Cell Count", "Array Bits", "Size(mm2)", "Tile Count", "% Chip Area"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            s,
            "{:<6} {:>10}K {:>10}K {:>10.1} {:>11} {:>12.1}",
            r.tile,
            r.cell_count / 1000,
            r.array_bits / 1000,
            r.size_mm2,
            r.tile_count,
            r.pct_chip_area
        )
        .unwrap();
    }
    writeln!(
        s,
        "{:<6} {:>10.1}M {:>9.1}M {:>10.0} {:>11} {:>12.1}",
        "Chip",
        summary.total_cells as f64 / 1e6,
        summary.total_bits as f64 / 1e6,
        summary.tile_area_mm2,
        rows.iter().map(|r| r.tile_count).sum::<usize>(),
        100.0
    )
    .unwrap();
    s
}

/// The chip summary for the prototype configuration.
pub fn chip_summary() -> ChipSummary {
    table1(&ChipConfig::prototype()).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiles::array_bits;

    #[test]
    fn percentages_track_table1() {
        let (rows, _) = table1(&ChipConfig::prototype());
        let expect = [
            ("GT", 1.8),
            ("RT", 2.9),
            ("IT", 2.9),
            ("DT", 21.0),
            ("ET", 28.0),
            ("MT", 30.7),
            ("NT", 7.1),
            ("SDC", 3.4),
            ("DMA", 0.8),
            ("EBC", 0.3),
            ("C2C", 0.7),
        ];
        for ((label, pct), row) in expect.iter().zip(&rows) {
            assert_eq!(*label, row.tile);
            assert!(
                (row.pct_chip_area - pct).abs() < 0.5,
                "{label}: model {:.1}% vs paper {pct}%",
                row.pct_chip_area
            );
        }
    }

    #[test]
    fn totals_track_the_chip() {
        let (_, s) = table1(&ChipConfig::prototype());
        // 5.8M cells, 11.5M array bits, ~334 mm² of placed tiles.
        assert!((s.total_cells as f64 - 5.8e6).abs() / 5.8e6 < 0.05, "{}", s.total_cells);
        assert!((s.total_bits as f64 - 11.5e6).abs() / 11.5e6 < 0.05, "{}", s.total_bits);
        assert!((s.tile_area_mm2 - 334.0).abs() / 334.0 < 0.05, "{}", s.tile_area_mm2);
    }

    #[test]
    fn section_5_2_overheads() {
        let s = chip_summary();
        assert!((s.opn_pct_of_core - 12.0).abs() < 1.5, "OPN {:.1}%", s.opn_pct_of_core);
        assert!((s.ocn_pct_of_chip - 14.0).abs() < 1.5, "OCN {:.1}%", s.ocn_pct_of_chip);
        // §5.2's "13% of the processor core" and §7's "40% of the
        // DTs" are mutually approximate; the model lands between.
        assert!((s.lsq_pct_of_core - 13.0).abs() < 2.5, "LSQ {:.1}%", s.lsq_pct_of_core);
        assert_eq!(s.lsq_pct_of_dt, 40.0);
    }

    #[test]
    fn table2_has_eight_networks() {
        assert_eq!(networks_table().len(), 8);
    }

    /// The published Table 1 regenerates byte-for-byte from the
    /// prototype `CoreGeometry`. Every array-bit census is now a
    /// geometry formula; this gate catches any formula that drifts at
    /// the 4x4/8-frame point, where it must reduce to the paper.
    #[test]
    fn prototype_table1_is_byte_identical_to_the_published_table() {
        let expect = "\
Tile    Cell Count  Array Bits  Size(mm2)  Tile Count  % Chip Area
GT             52K         88K        3.3           2          2.0
RT             26K         14K        1.2           8          3.0
IT              5K        135K        1.1          10          3.1
DT            119K         89K        8.8           8         20.9
ET             84K         12K        2.9          32         27.6
MT             60K        547K        6.5          16         31.2
NT             23K          0K        1.0          24          7.0
SDC            64K          6K        5.8           2          3.5
DMA            30K          4K        1.3           2          0.8
EBC            29K          0K        1.0           1          0.3
C2C            48K          0K        2.2           1          0.6
Chip          5.8M      11.5M        335         106        100.0
";
        assert_eq!(render_table1(&ChipConfig::prototype()), expect);
        // And the exact computable array-bit censuses behind the
        // rounded display: each is the geometry formula evaluated at
        // the prototype point.
        let cfg = ChipConfig::prototype();
        assert_eq!(array_bits(TileKind::Rt, &cfg), 14336); // 4*32*64 + 8*8*72 + 8*8*24
        assert_eq!(array_bits(TileKind::It, &cfg), 135_168); // 16K*8 + 128*32
        assert_eq!(array_bits(TileKind::Et, &cfg), 12_060); // 64*165 + 1500
    }
}
