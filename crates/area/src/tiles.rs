//! Per-tile area modelling.
//!
//! Array bits are computed from the microarchitectural configuration —
//! the same `CoreConfig` the simulator runs — so a change to, say, the
//! predictor sizing or the LSQ depth shows up in the regenerated
//! Table 1. Logic cell counts and layout densities are calibrated
//! constants (an area model always needs a technology calibration; the
//! published tile data of Table 1 is ours).

use trips_core::CoreConfig;

/// The eleven tile types of the chip (§5.1: "the entire TRIPS design
/// is composed of only 11 different types of tiles").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileKind {
    /// Global control tile.
    Gt,
    /// Register tile.
    Rt,
    /// Instruction tile.
    It,
    /// Data tile.
    Dt,
    /// Execution tile.
    Et,
    /// Secondary-memory tile (NUCA bank).
    Mt,
    /// OCN network interface tile.
    Nt,
    /// SDRAM controller.
    Sdc,
    /// DMA controller.
    Dma,
    /// External bus controller.
    Ebc,
    /// Chip-to-chip controller.
    C2c,
}

impl TileKind {
    /// All kinds in Table 1 order.
    pub const ALL: [TileKind; 11] = [
        TileKind::Gt,
        TileKind::Rt,
        TileKind::It,
        TileKind::Dt,
        TileKind::Et,
        TileKind::Mt,
        TileKind::Nt,
        TileKind::Sdc,
        TileKind::Dma,
        TileKind::Ebc,
        TileKind::C2c,
    ];

    /// Table 1 label.
    pub fn label(self) -> &'static str {
        match self {
            TileKind::Gt => "GT",
            TileKind::Rt => "RT",
            TileKind::It => "IT",
            TileKind::Dt => "DT",
            TileKind::Et => "ET",
            TileKind::Mt => "MT",
            TileKind::Nt => "NT",
            TileKind::Sdc => "SDC",
            TileKind::Dma => "DMA",
            TileKind::Ebc => "EBC",
            TileKind::C2c => "C2C",
        }
    }
}

/// Chip-level configuration: two processor cores plus the secondary
/// memory system.
#[derive(Debug, Clone)]
pub struct ChipConfig {
    /// The processor-core configuration (both cores identical).
    pub core: CoreConfig,
    /// Processor cores on the chip.
    pub cores: usize,
    /// Secondary-memory (NUCA) banks.
    pub mt_banks: usize,
    /// Kilobytes per NUCA bank.
    pub mt_bank_kb: usize,
    /// NUCA bank associativity.
    pub mt_ways: usize,
    /// OCN network interface tiles.
    pub nts: usize,
    /// SMT threads per core (register file copies).
    pub threads: usize,
}

impl ChipConfig {
    /// The prototype: 2 cores, 16 × 64 KB NUCA banks, 24 NTs, 4-way
    /// SMT register files. Pinned to the prototype die — the published
    /// Table 1 must regenerate byte-identically regardless of
    /// `TRIPS_GEOMETRY`.
    pub fn prototype() -> ChipConfig {
        ChipConfig {
            core: CoreConfig::prototype_pinned(),
            cores: 2,
            mt_banks: 16,
            mt_bank_kb: 64,
            mt_ways: 4,
            nts: 24,
            threads: 4,
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileSpec {
    /// Tile type.
    pub kind: TileKind,
    /// Placeable logic instances (complexity estimate).
    pub cell_count: u64,
    /// Bits held in dense register/SRAM arrays.
    pub array_bits: u64,
    /// Tile area in mm².
    pub size_mm2: f64,
    /// Copies across the whole chip.
    pub count: usize,
}

/// Calibrated logic-cell counts per tile (Table 1's Cell Count
/// column): logic complexity is not derivable from the configuration,
/// so these are the published values.
fn cell_count(kind: TileKind) -> u64 {
    match kind {
        TileKind::Gt => 52_000,
        TileKind::Rt => 26_000,
        TileKind::It => 5_000,
        TileKind::Dt => 119_000,
        TileKind::Et => 84_000,
        TileKind::Mt => 60_000,
        TileKind::Nt => 23_000,
        TileKind::Sdc => 64_000,
        TileKind::Dma => 30_000,
        TileKind::Ebc => 29_000,
        TileKind::C2c => 48_000,
    }
}

/// Layout-inefficiency factor per tile: ratio of placed area to the
/// raw cell+bit estimate. The DT's factor is dominated by its LSQ CAM,
/// which had to be built from discrete latches because the ASIC
/// library offered no dense CAM (§5.2) — the LSQ ends up ~40% of the
/// tile.
fn layout_factor(kind: TileKind) -> f64 {
    match kind {
        TileKind::Gt => 1.35,
        TileKind::Rt => 1.26,
        TileKind::It => 0.82,
        TileKind::Dt => 1.87,
        TileKind::Et => 1.0,
        TileKind::Mt => 1.0,
        TileKind::Nt => 1.29,
        TileKind::Sdc => 2.69,
        TileKind::Dma => 1.27,
        TileKind::Ebc => 1.02,
        TileKind::C2c => 1.36,
    }
}

/// mm² per placed logic cell (fitted to the ET, which is nearly all
/// logic).
const MM2_PER_CELL: f64 = 3.32e-5;
/// mm² per dense array bit (fitted to the MT, which is nearly all
/// SRAM).
const MM2_PER_BIT: f64 = 8.3e-6;

/// Derives each tile's array-bit census from the configuration.
pub fn array_bits(kind: TileKind, cfg: &ChipConfig) -> u64 {
    let c = &cfg.core;
    let p = &c.predictor;
    match kind {
        TileKind::Gt => {
            // Exit predictor: local/gshare entries carry a 3-bit exit
            // plus confidence; chooser is 2-bit + tag bit.
            let exit = (p.local_entries * 9 + p.gshare_entries * 4 + p.chooser_entries * 3) as u64;
            // Target predictor: BTB/CTB tagged targets, RAS addresses,
            // type table.
            let target = (p.btb_entries * 40
                + p.ctb_entries * 48
                + p.ras_entries * 57
                + p.btype_entries * 3) as u64;
            // I-TLB, eight block PCs, I-cache tag array, control regs.
            let tags = 128 * 20;
            let misc = 8 * 40 + 16 * 64 + 640;
            exit + target + tags as u64 + misc as u64
        }
        TileKind::Rt => {
            // Per-thread register banks plus per-frame read/write
            // queues, all sized by the tile-array geometry (prototype:
            // 32x64b banks, 8 frames x 8 header slots per RT).
            let g = c.geometry;
            let regs = (cfg.threads * g.regs_per_bank() * 64) as u64;
            let wq = (g.frames * g.slots_per_rt() * (64 + 6 + 2)) as u64;
            let rq = (g.frames * g.slots_per_rt() * (22 + 2)) as u64;
            regs + wq + rq
        }
        TileKind::It => {
            // 16 KB I-cache bank plus the 128-bit × 32 refill buffer.
            (16 * 1024 * 8 + 128 * 32) as u64
        }
        TileKind::Dt => {
            // 8 KB data bank + tags, dependence predictor, TLB, MSHR,
            // write buffer. (The LSQ is latches, counted as cells.)
            let data = (c.l1d_sets * c.l1d_ways * 64 * 8) as u64;
            let tags = (c.l1d_sets * c.l1d_ways * 25) as u64;
            let deppred = c.deppred_entries as u64;
            let tlb = 16 * 80u64;
            let mshr = (c.mshr_lines * 4 * (64 + 40)) as u64;
            let wb = 64 * 8 + 40;
            // The LSQ's address CAM is discrete latches (cells), but
            // its 64-bit data payload per entry is a dense array.
            let lsq_data = (c.lsq_entries * 64) as u64;
            data + tags + deppred + tlb + mshr + wb as u64 + lsq_data
        }
        TileKind::Et => {
            // frames x rs_per_frame reservation stations (64 on the
            // prototype): two 64-bit operands, a predicate bit, and
            // the 32-bit instruction plus status.
            (c.geometry.frames * c.geometry.rs_per_frame * (2 * 64 + 1 + 32 + 4)) as u64 + 1500
        }
        TileKind::Mt => {
            let data = (cfg.mt_bank_kb * 1024 * 8) as u64;
            let lines = (cfg.mt_bank_kb * 1024 / 64) as u64;
            let tags = lines * 22;
            data + tags + 300
        }
        TileKind::Nt => 0,
        TileKind::Sdc => 6_000,
        TileKind::Dma => 4_000,
        TileKind::Ebc => 0,
        TileKind::C2c => 0,
    }
}

/// Chip-wide copy counts.
fn tile_count(kind: TileKind, cfg: &ChipConfig) -> usize {
    let g = cfg.core.geometry;
    match kind {
        TileKind::Gt => cfg.cores,
        TileKind::Rt => cfg.cores * g.num_rts(),
        TileKind::It => cfg.cores * g.num_its(),
        TileKind::Dt => cfg.cores * g.num_dts(),
        TileKind::Et => cfg.cores * g.num_ets(),
        TileKind::Mt => cfg.mt_banks,
        TileKind::Nt => cfg.nts,
        TileKind::Sdc => 2,
        TileKind::Dma => 2,
        TileKind::Ebc => 1,
        TileKind::C2c => 1,
    }
}

/// The full Table 1 inventory for a chip configuration.
pub fn tile_specs(cfg: &ChipConfig) -> Vec<TileSpec> {
    TileKind::ALL
        .iter()
        .map(|&kind| {
            let cells = cell_count(kind);
            let bits = array_bits(kind, cfg);
            let raw = cells as f64 * MM2_PER_CELL + bits as f64 * MM2_PER_BIT;
            TileSpec {
                kind,
                cell_count: cells,
                array_bits: bits,
                size_mm2: raw * layout_factor(kind),
                count: tile_count(kind, cfg),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published Table 1 values: (kind, array_kbits, size_mm2, count,
    /// pct_area).
    const PAPER: [(TileKind, f64, f64, usize); 11] = [
        (TileKind::Gt, 93.0, 3.1, 2),
        (TileKind::Rt, 14.0, 1.2, 8),
        (TileKind::It, 135.0, 1.0, 10),
        (TileKind::Dt, 89.0, 8.8, 8),
        (TileKind::Et, 13.0, 2.9, 32),
        (TileKind::Mt, 542.0, 6.5, 16),
        (TileKind::Nt, 0.0, 1.0, 24),
        (TileKind::Sdc, 6.0, 5.8, 2),
        (TileKind::Dma, 4.0, 1.3, 2),
        (TileKind::Ebc, 0.0, 1.0, 1),
        (TileKind::C2c, 0.0, 2.2, 1),
    ];

    #[test]
    fn array_bits_track_the_paper_within_ten_percent() {
        let cfg = ChipConfig::prototype();
        for (kind, paper_kbits, _, _) in PAPER {
            if paper_kbits == 0.0 {
                continue;
            }
            let model = array_bits(kind, &cfg) as f64 / 1000.0;
            let err = (model - paper_kbits).abs() / paper_kbits;
            assert!(
                err < 0.10,
                "{}: model {model:.1}K vs paper {paper_kbits}K ({:.0}% off)",
                kind.label(),
                err * 100.0
            );
        }
    }

    #[test]
    fn tile_sizes_track_the_paper_within_ten_percent() {
        let cfg = ChipConfig::prototype();
        let specs = tile_specs(&cfg);
        for ((kind, _, paper_mm2, _), spec) in PAPER.iter().zip(&specs) {
            assert_eq!(*kind, spec.kind);
            let err = (spec.size_mm2 - paper_mm2).abs() / paper_mm2;
            assert!(
                err < 0.10,
                "{}: model {:.2} vs paper {paper_mm2} mm² ({:.0}% off)",
                kind.label(),
                spec.size_mm2,
                err * 100.0
            );
        }
    }

    #[test]
    fn tile_counts_sum_to_106() {
        let cfg = ChipConfig::prototype();
        let total: usize = tile_specs(&cfg).iter().map(|s| s.count).sum();
        assert_eq!(total, 106);
    }

    #[test]
    fn predictor_resize_shows_up_in_gt_bits() {
        let mut cfg = ChipConfig::prototype();
        let before = array_bits(TileKind::Gt, &cfg);
        cfg.core.predictor.gshare_entries *= 2;
        let after = array_bits(TileKind::Gt, &cfg);
        assert!(after > before, "the model derives from the configuration");
    }
}
