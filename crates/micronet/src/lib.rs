//! # trips-micronet — micronetworks for distributed microarchitectures
//!
//! The TRIPS processor replaces global wires and broadcast busses with
//! *micronets*: switched, flow-controlled networks whose clients are
//! the tiles of the processor (§1, §3 of the MICRO-39 paper). This
//! crate provides the network substrate the processor model is built
//! on:
//!
//! * [`Link`] — a registered, nearest-neighbour, credit-flow-controlled
//!   wire segment with one-cycle latency, the primitive from which the
//!   six control micronets (GDN, GCN, GSN, GRN, DSN, ESN) are wired.
//! * [`Mesh`] — a two-dimensional mesh of single-flit wormhole routers
//!   with Y-X dimension-order routing, used for the operand network
//!   (OPN): a 5×5 mesh with separate control/data phits delivering one
//!   64-bit operand per link per cycle.
//! * [`PacketMesh`] — a multi-flit packet mesh with virtual channels,
//!   used for the on-chip network (OCN): the 4×10, 16-byte-link,
//!   4-virtual-channel network of the secondary memory system.
//! * [`widths`] — the bit widths of every TRIPS micronet (Table 2),
//!   derived from the message definitions and consumed by the area
//!   model.
//!
//! All components are deterministic: ticked once per cycle with
//! fixed-order, round-robin arbitration, so a simulation run is
//! exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use trips_micronet::{Coord, Mesh, MeshMsg};
//!
//! let mut opn: Mesh<&'static str> = Mesh::new(5, 5, 4);
//! let src = Coord { row: 0, col: 0 };
//! let dst = Coord { row: 4, col: 4 };
//! assert!(opn.inject(0, MeshMsg::new(src, dst, "operand")));
//! let mut cycle = 0;
//! let msg = loop {
//!     opn.tick(cycle);
//!     cycle += 1;
//!     if let Some(m) = opn.eject(dst) {
//!         break m;
//!     }
//!     assert!(cycle < 100, "message lost");
//! };
//! assert_eq!(msg.payload, "operand");
//! assert_eq!(msg.hops, 8); // manhattan distance in the 5x5 mesh
//! ```

mod chain;
mod fault;
mod link;
mod mesh;
mod packet;
pub mod widths;

pub use chain::Chain;
pub use fault::{ChainFaultConfig, FaultPort, LinkFaultConfig, MeshFaultConfig, PortStall};
pub use link::Link;
pub use mesh::{Coord, Mesh, MeshMsg, MeshStats};
pub use packet::{PacketMesh, PacketMsg, PacketStats, MAX_TAGS, VIRTUAL_CHANNELS};
