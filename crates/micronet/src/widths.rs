//! The TRIPS control and data networks (Table 2 of the paper).
//!
//! These specifications are consumed by the area model (which charges
//! wiring and router area per network) and printed verbatim by the
//! `table2` bench target.

/// Specification of one micronetwork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Short name, e.g. `"GDN"`.
    pub abbrev: &'static str,
    /// Full name.
    pub name: &'static str,
    /// What the network is used for (the "Use" column of Table 2).
    pub purpose: &'static str,
    /// Link width in wires.
    pub bits: u16,
    /// Links per routed tile (`1` for point-to-point chains; the OPN
    /// and OCN have eight links — four in, four out — at each router).
    pub links_per_tile: u8,
    /// True for the two data networks, which carry routers and
    /// per-port buffering; control networks are wires plus a small
    /// amount of logic.
    pub routed: bool,
}

/// All seven processor micronetworks plus the on-chip network, in the
/// order of Table 2.
pub const NETWORKS: [NetworkSpec; 8] = [
    NetworkSpec {
        abbrev: "GDN",
        name: "Global Dispatch Network",
        purpose: "I-fetch",
        bits: 205,
        links_per_tile: 1,
        routed: false,
    },
    NetworkSpec {
        abbrev: "GSN",
        name: "Global Status Network",
        purpose: "Block status",
        bits: 6,
        links_per_tile: 1,
        routed: false,
    },
    NetworkSpec {
        abbrev: "GCN",
        name: "Global Control Network",
        purpose: "Commit/flush",
        bits: 13,
        links_per_tile: 1,
        routed: false,
    },
    NetworkSpec {
        abbrev: "GRN",
        name: "Global Refill Network",
        purpose: "I-cache refill",
        bits: 36,
        links_per_tile: 1,
        routed: false,
    },
    NetworkSpec {
        abbrev: "DSN",
        name: "Data Status Network",
        purpose: "Store completion",
        bits: 72,
        links_per_tile: 1,
        routed: false,
    },
    NetworkSpec {
        abbrev: "ESN",
        name: "External Store Network",
        purpose: "L1 misses",
        bits: 10,
        links_per_tile: 1,
        routed: false,
    },
    NetworkSpec {
        abbrev: "OPN",
        name: "Operand Network",
        purpose: "Operand routing",
        bits: 141,
        links_per_tile: 8,
        routed: true,
    },
    NetworkSpec {
        abbrev: "OCN",
        name: "On-chip Network",
        purpose: "Memory traffic",
        bits: 138,
        links_per_tile: 8,
        routed: true,
    },
];

/// Looks up a network by abbreviation.
pub fn by_abbrev(abbrev: &str) -> Option<&'static NetworkSpec> {
    NETWORKS.iter().find(|n| n.abbrev == abbrev)
}

/// The OPN data payload width: one 64-bit operand per link per cycle.
pub const OPN_OPERAND_BITS: u16 = 64;

/// The OCN link width in bytes (16-byte data links).
pub const OCN_FLIT_BYTES: u16 = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_networks() {
        for abbrev in ["GDN", "GSN", "GCN", "GRN", "DSN", "ESN", "OPN", "OCN"] {
            assert!(by_abbrev(abbrev).is_some(), "{abbrev} missing");
        }
        assert_eq!(by_abbrev("XXX"), None);
    }

    #[test]
    fn widths_match_the_paper() {
        assert_eq!(by_abbrev("GDN").unwrap().bits, 205);
        assert_eq!(by_abbrev("GSN").unwrap().bits, 6);
        assert_eq!(by_abbrev("GCN").unwrap().bits, 13);
        assert_eq!(by_abbrev("GRN").unwrap().bits, 36);
        assert_eq!(by_abbrev("DSN").unwrap().bits, 72);
        assert_eq!(by_abbrev("ESN").unwrap().bits, 10);
        assert_eq!(by_abbrev("OPN").unwrap().bits, 141);
        assert_eq!(by_abbrev("OCN").unwrap().bits, 138);
    }

    #[test]
    fn only_data_networks_are_routed() {
        for n in &NETWORKS {
            assert_eq!(n.routed, n.abbrev == "OPN" || n.abbrev == "OCN");
            assert_eq!(n.links_per_tile, if n.routed { 8 } else { 1 });
        }
    }

    #[test]
    fn opn_control_header_plus_payload_fits_link() {
        // 64-bit operand + destination/slot control information must
        // fit the 141 physical wires.
        assert!(OPN_OPERAND_BITS < by_abbrev("OPN").unwrap().bits);
    }
}
