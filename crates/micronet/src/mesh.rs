//! A single-flit wormhole-routed mesh: the model for the operand
//! network (OPN).
//!
//! The OPN is a 5×5 mesh connecting the GT, RTs, DTs, and ETs with
//! separate control and data channels; the control header phit is
//! launched one cycle ahead of the data payload so the consuming tile
//! can wake its target instruction early (§3). This model carries each
//! operand as a single message with one-cycle hops, one message per
//! link per cycle, small input buffers with credit flow control, and
//! deterministic round-robin arbitration — enough fidelity to
//! reproduce the hop-latency and contention components of the paper's
//! critical-path breakdown (Table 3).

use std::collections::VecDeque;

use crate::fault::{MeshFaultConfig, MeshFaultState};

/// Position of a router in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Row (increases southward).
    pub row: u8,
    /// Column (increases eastward).
    pub col: u8,
}

impl Coord {
    /// Manhattan distance to `other` — the minimum hop count.
    pub fn distance(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) as u32 + self.col.abs_diff(other.col) as u32
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A message travelling through a [`Mesh`].
#[derive(Debug, Clone)]
pub struct MeshMsg<P> {
    /// Injecting node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// The carried value.
    pub payload: P,
    /// Cycle the message entered the network.
    pub injected_at: u64,
    /// Router-to-router link traversals so far.
    pub hops: u32,
    /// Cycles spent waiting for links beyond the minimum (contention),
    /// finalized when the message reaches its destination.
    pub queued: u32,
}

impl<P> MeshMsg<P> {
    /// A new message from `src` to `dst`.
    pub fn new(src: Coord, dst: Coord, payload: P) -> MeshMsg<P> {
        MeshMsg { src, dst, payload, injected_at: 0, hops: 0, queued: 0 }
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Messages accepted into the network.
    pub injected: u64,
    /// Messages delivered to their destination's eject queue.
    pub ejected: u64,
    /// Rejected injection attempts (local buffer full).
    pub inject_fails: u64,
    /// Sum of per-message hop counts.
    pub total_hops: u64,
    /// Sum of per-message contention cycles.
    pub total_queued: u64,
    /// Sum of per-message latencies (inject to eject-queue entry).
    pub total_latency: u64,
}

impl MeshStats {
    /// Accumulates `other` into `self` — the one place mesh statistics
    /// are folded, whether across parallel operand networks or across
    /// independent runs.
    pub fn merge(&mut self, other: &MeshStats) {
        self.injected += other.injected;
        self.ejected += other.ejected;
        self.inject_fails += other.inject_fails;
        self.total_hops += other.total_hops;
        self.total_queued += other.total_queued;
        self.total_latency += other.total_latency;
    }

    /// Mean hops per delivered message.
    pub fn avg_hops(&self) -> f64 {
        if self.ejected == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.ejected as f64
        }
    }

    /// Mean contention cycles per delivered message.
    pub fn avg_queued(&self) -> f64 {
        if self.ejected == 0 {
            0.0
        } else {
            self.total_queued as f64 / self.ejected as f64
        }
    }
}

/// Input ports of a router. `LOCAL` doubles as the injection port.
const LOCAL: usize = 0;
const NORTH: usize = 1;
const EAST: usize = 2;
const SOUTH: usize = 3;
const WEST: usize = 4;
const PORTS: usize = 5;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Out {
    Eject,
    North,
    East,
    South,
    West,
}

struct Router<P> {
    inputs: [VecDeque<MeshMsg<P>>; PORTS],
    eject: VecDeque<MeshMsg<P>>,
    rr: [usize; PORTS],
}

impl<P> Router<P> {
    fn new() -> Router<P> {
        Router { inputs: Default::default(), eject: VecDeque::new(), rr: [0; PORTS] }
    }
}

/// A W×H mesh of single-flit routers with Y-X dimension-order routing.
///
/// Determinism: routers are processed in row-major order each cycle,
/// output ports in a fixed order, and competing inputs are granted in
/// round-robin order; capacity checks use the buffer occupancy
/// snapshotted at the start of the cycle. Dimension-order routing on a
/// mesh is deadlock-free, and the eject queues are unbounded, so every
/// injected message is eventually delivered.
pub struct Mesh<P> {
    rows: u8,
    cols: u8,
    fifo_cap: usize,
    routers: Vec<Router<P>>,
    /// Aggregate statistics.
    pub stats: MeshStats,
    in_flight: usize,
    /// Bit `r` set iff any input FIFO of router `r` is non-empty.
    /// Lets the tick arbitrate only occupied routers: a router whose
    /// inputs are all empty can neither grant nor move anything, so
    /// skipping it is invisible. Only meshes of ≤64 routers maintain
    /// a meaningful mask (the OPN is 25); larger meshes fall back to
    /// the full sweep.
    occ: u64,
    /// Bit `r` set iff router `r`'s eject queue is non-empty — the
    /// same trick as `occ` for [`Mesh::has_delivered`], which the
    /// core's activity scan asks for every destination tile every
    /// scanned cycle. Maintained at the two mutation sites (the tick's
    /// eject arm sets it, [`Mesh::eject`] clears it on the last
    /// message) and audited against the queues like `occ`. Meaningful
    /// only for meshes of ≤64 routers; larger meshes answer from the
    /// queue itself.
    delivered: u64,
    /// Installed timing faults (`None` on the production path).
    fault: Option<MeshFaultState>,
    // Per-tick scratch, retained across ticks so the hot path never
    // touches the allocator: start-of-cycle occupancy snapshot,
    // granted-input markers, and the move list.
    scratch_len: Vec<[usize; PORTS]>,
    scratch_incoming: Vec<[bool; PORTS]>,
    scratch_moves: Vec<(usize, usize, Out)>,
}

impl<P> Mesh<P> {
    /// A `rows`×`cols` mesh with input FIFOs of `fifo_cap` messages.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `fifo_cap == 0`.
    pub fn new(rows: u8, cols: u8, fifo_cap: usize) -> Mesh<P> {
        assert!(rows > 0 && cols > 0 && fifo_cap > 0, "degenerate mesh");
        let n = rows as usize * cols as usize;
        Mesh {
            rows,
            cols,
            fifo_cap,
            routers: (0..n).map(|_| Router::new()).collect(),
            stats: MeshStats::default(),
            in_flight: 0,
            occ: 0,
            delivered: 0,
            fault: None,
            scratch_len: vec![[0; PORTS]; n],
            scratch_incoming: vec![[false; PORTS]; n],
            scratch_moves: Vec::with_capacity(n),
        }
    }

    fn idx(&self, c: Coord) -> usize {
        assert!(c.row < self.rows && c.col < self.cols, "coord {c} outside mesh");
        c.row as usize * self.cols as usize + c.col as usize
    }

    /// Mesh height.
    pub fn rows(&self) -> u8 {
        self.rows
    }

    /// Mesh width.
    pub fn cols(&self) -> u8 {
        self.cols
    }

    /// Messages currently inside routers (excluding eject queues).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// True when a tick would move anything — the clock-gating
    /// predicate. A mesh with no message inside any router is
    /// architecturally inert until the next injection.
    pub fn active(&self) -> bool {
        self.in_flight > 0
    }

    /// Cycle of the mesh's next state change, for the epoch-skipping
    /// scheduler. A mesh moves packets every cycle it has any message
    /// inside a router, so the answer is either "now" or "never until
    /// the next injection" — there are no timed-future events inside
    /// the mesh itself. Delivered-but-unconsumed messages in eject
    /// queues are *not* events here: they wake the destination tile
    /// through [`Mesh::has_delivered`], not the mesh.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.in_flight > 0 {
            Some(now)
        } else {
            None
        }
    }

    /// True if a delivered message awaits consumption at `node` —
    /// a destination tile must be clocked while this holds. One bit
    /// test on the `delivered` mask (the activity scan asks this for
    /// every tile every scanned cycle).
    pub fn has_delivered(&self, node: Coord) -> bool {
        let i = self.idx(node);
        if i < 64 {
            self.delivered & (1 << i) != 0
        } else {
            !self.routers[i].eject.is_empty()
        }
    }

    /// True if the caller can inject at `src` this cycle.
    pub fn can_inject(&self, src: Coord) -> bool {
        self.routers[self.idx(src)].inputs[LOCAL].len() < self.fifo_cap
    }

    /// Installs (or clears) a timing-fault configuration. Faults stall
    /// output ports and perturb arbitration; they never drop, corrupt,
    /// or reorder a same-queue flow. With `None` the tick path is
    /// bit-identical to a mesh that never had the hook.
    pub fn set_fault(&mut self, cfg: Option<&MeshFaultConfig>) {
        self.fault = cfg.map(|c| MeshFaultState::new(c, self.rows, self.cols));
    }

    /// Audits the conservation invariant: counter-tracked in-flight
    /// messages must equal the recounted router-buffer occupancy, and
    /// every injected message must be accounted for as ejected or
    /// in flight (`injected = ejected + in_flight`, where `ejected`
    /// includes eject-queue entries the destination has not drained).
    ///
    /// # Errors
    ///
    /// A description of the first violated equation.
    pub fn audit(&self) -> Result<(), String> {
        let recount: usize =
            self.routers.iter().map(|r| r.inputs.iter().map(VecDeque::len).sum::<usize>()).sum();
        if recount != self.in_flight {
            return Err(format!(
                "in-flight counter {} != recounted router occupancy {recount}",
                self.in_flight
            ));
        }
        if self.stats.injected != self.stats.ejected + self.in_flight as u64 {
            return Err(format!(
                "conservation broken: injected {} != ejected {} + in-flight {}",
                self.stats.injected, self.stats.ejected, self.in_flight
            ));
        }
        for (r, router) in self.routers.iter().enumerate().take(64) {
            let nonempty = router.inputs.iter().any(|q| !q.is_empty());
            if nonempty != (self.occ & (1 << r) != 0) {
                return Err(format!(
                    "occupancy mask bit {r} is {} but router inputs are {}",
                    self.occ & (1 << r) != 0,
                    if nonempty { "non-empty" } else { "empty" },
                ));
            }
            let has_eject = !router.eject.is_empty();
            if has_eject != (self.delivered & (1 << r) != 0) {
                return Err(format!(
                    "delivered mask bit {r} is {} but the eject queue holds {} message(s)",
                    self.delivered & (1 << r) != 0,
                    router.eject.len(),
                ));
            }
        }
        Ok(())
    }

    /// The oldest message still inside the network (router buffers or
    /// an eject queue no tile has drained): `(injected_at, src, dst,
    /// delivered)`. `delivered` is true when the message sits in an
    /// eject queue — i.e. the network did its job and the destination
    /// tile never consumed it. Used by the hang diagnoser.
    pub fn oldest_in_flight(&self) -> Option<(u64, Coord, Coord, bool)> {
        let mut best: Option<(u64, Coord, Coord, bool)> = None;
        let mut consider = |m: &MeshMsg<P>, delivered: bool| {
            if best.is_none_or(|(t, ..)| m.injected_at < t) {
                best = Some((m.injected_at, m.src, m.dst, delivered));
            }
        };
        for router in &self.routers {
            for input in &router.inputs {
                for m in input {
                    consider(m, false);
                }
            }
            for m in &router.eject {
                consider(m, true);
            }
        }
        best
    }

    /// Messages sitting in eject queues awaiting consumption by their
    /// destination tiles.
    pub fn undrained(&self) -> usize {
        self.routers.iter().map(|r| r.eject.len()).sum()
    }

    /// Injects a message at its source node. Returns `false` (and
    /// counts a failure) if the local input buffer is full.
    pub fn inject(&mut self, now: u64, mut msg: MeshMsg<P>) -> bool {
        let i = self.idx(msg.src);
        let _ = self.idx(msg.dst); // validate
        if self.routers[i].inputs[LOCAL].len() >= self.fifo_cap {
            self.stats.inject_fails += 1;
            return false;
        }
        msg.injected_at = now;
        msg.hops = 0;
        self.routers[i].inputs[LOCAL].push_back(msg);
        if i < 64 {
            self.occ |= 1 << i;
        }
        self.stats.injected += 1;
        self.in_flight += 1;
        true
    }

    /// Pops the next delivered message at `node`, if any.
    pub fn eject(&mut self, node: Coord) -> Option<MeshMsg<P>> {
        let i = self.idx(node);
        let msg = self.routers[i].eject.pop_front();
        if msg.is_some() && i < 64 && self.routers[i].eject.is_empty() {
            self.delivered &= !(1 << i);
        }
        msg
    }

    /// Peeks the next delivered message at `node` without consuming it.
    pub fn peek_eject(&self, node: Coord) -> Option<&MeshMsg<P>> {
        self.routers[self.idx(node)].eject.front()
    }

    fn route(&self, at: Coord, dst: Coord) -> Out {
        // Y-X dimension order: vertical first, then horizontal.
        if dst.row < at.row {
            Out::North
        } else if dst.row > at.row {
            Out::South
        } else if dst.col > at.col {
            Out::East
        } else if dst.col < at.col {
            Out::West
        } else {
            Out::Eject
        }
    }

    fn neighbor(&self, at: Coord, out: Out) -> (usize, usize) {
        let (c, in_port) = match out {
            Out::North => (Coord { row: at.row - 1, col: at.col }, SOUTH),
            Out::South => (Coord { row: at.row + 1, col: at.col }, NORTH),
            Out::East => (Coord { row: at.row, col: at.col + 1 }, WEST),
            Out::West => (Coord { row: at.row, col: at.col - 1 }, EAST),
            Out::Eject => unreachable!("eject has no neighbor"),
        };
        (self.idx(c), in_port)
    }

    /// Advances the network one cycle: every router forwards at most
    /// one message per output port, one message per input FIFO.
    pub fn tick(&mut self, now: u64) {
        if self.in_flight == 0 {
            return;
        }
        let n = self.routers.len();
        // Reuse the retained scratch buffers (no per-tick allocation);
        // they are moved out for the duration of the arbitration loop
        // to keep the borrow checker happy, then put back.
        let mut start_len = std::mem::take(&mut self.scratch_len);
        let mut incoming = std::mem::take(&mut self.scratch_incoming);
        let mut moves = std::mem::take(&mut self.scratch_moves);
        moves.clear();
        // Fault hook: the state is moved out for the arbitration loop
        // (it borrows mutably alongside the routers) and restored at
        // the end of the tick.
        let mut fault = self.fault.take();
        if let Some(f) = fault.as_mut() {
            if f.rotate() {
                for router in &mut self.routers {
                    for rr in &mut router.rr {
                        *rr = f.draw(PORTS);
                    }
                }
            }
        }
        // A router with all-empty inputs can neither grant nor move
        // anything, so with no fault installed arbitration visits only
        // occupied routers, in the same row-major order — empty
        // routers are no-ops, so the grants are identical. The fast
        // path also skips the start-of-cycle occupancy snapshot:
        // moves are deferred until after all arbitration, so the live
        // FIFO lengths it reads *are* the start-of-cycle lengths. The
        // `incoming` scratch is all-false here by invariant — every
        // entry any arbitration sets corresponds to one recorded
        // forward move, and the move loop below clears it after use.
        // A fault hook draws from its PRNG on every `stalled` probe,
        // so faulted meshes keep the full legacy sweep to preserve the
        // draw sequence.
        if fault.is_none() && n <= 64 {
            #[cfg(debug_assertions)]
            for entry in incoming.iter() {
                debug_assert_eq!(entry, &[false; PORTS], "incoming scratch left dirty");
            }
            let mut m = self.occ;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                m &= m - 1;
                self.arbitrate_router_fast(r, &mut incoming, &mut moves);
            }
        } else {
            for (r, router) in self.routers.iter().enumerate() {
                incoming[r] = [false; PORTS];
                for (len, input) in start_len[r].iter_mut().zip(&router.inputs) {
                    *len = input.len();
                }
            }
            for r in 0..n {
                self.arbitrate_router(r, now, &mut fault, &start_len, &mut incoming, &mut moves);
            }
        }

        for &(r, p, out) in &moves {
            let mut msg = self.routers[r].inputs[p].pop_front().unwrap();
            if r < 64 && self.routers[r].inputs.iter().all(VecDeque::is_empty) {
                self.occ &= !(1 << r);
            }
            match out {
                Out::Eject => {
                    let latency = now.saturating_sub(msg.injected_at) as u32;
                    msg.queued = latency.saturating_sub(msg.hops);
                    self.stats.ejected += 1;
                    self.stats.total_hops += u64::from(msg.hops);
                    self.stats.total_queued += u64::from(msg.queued);
                    self.stats.total_latency += u64::from(latency);
                    self.in_flight -= 1;
                    self.routers[r].eject.push_back(msg);
                    if r < 64 {
                        self.delivered |= 1 << r;
                    }
                }
                _ => {
                    let at = Coord {
                        row: (r / self.cols as usize) as u8,
                        col: (r % self.cols as usize) as u8,
                    };
                    let (nb, port) = self.neighbor(at, out);
                    msg.hops += 1;
                    self.routers[nb].inputs[port].push_back(msg);
                    if nb < 64 {
                        self.occ |= 1 << nb;
                    }
                    // Restore the all-false `incoming` invariant the
                    // snapshot-free fast path relies on. Every set
                    // entry corresponds to exactly one forward move,
                    // so this sweep clears them all (harmless on the
                    // legacy path, which re-zeroes at snapshot time).
                    incoming[nb][port] = false;
                }
            }
        }
        self.scratch_len = start_len;
        self.scratch_incoming = incoming;
        self.scratch_moves = moves;
        self.fault = fault;
    }

    /// One router's output arbitration for this cycle: grants at most
    /// one input per output port and records the winning moves.
    /// Factored out of [`Mesh::tick`] so the occupancy fast path and
    /// the full sweep share one body.
    fn arbitrate_router(
        &mut self,
        r: usize,
        now: u64,
        fault: &mut Option<MeshFaultState>,
        start_len: &[[usize; PORTS]],
        incoming: &mut [[bool; PORTS]],
        moves: &mut Vec<(usize, usize, Out)>,
    ) {
        let at = Coord { row: (r / self.cols as usize) as u8, col: (r % self.cols as usize) as u8 };
        let mut input_used = [false; PORTS];
        for (oi, out) in
            [Out::Eject, Out::North, Out::East, Out::South, Out::West].into_iter().enumerate()
        {
            // An injected stall burst holds the whole output port:
            // nothing is granted, waiting messages stay queued.
            if let Some(f) = fault.as_mut() {
                if f.stalled(r, oi, now) {
                    continue;
                }
            }
            // Capacity at the downstream buffer, checked against
            // the start-of-cycle snapshot.
            let dest = if out == Out::Eject {
                None
            } else {
                let row_ok = match out {
                    Out::North => at.row > 0,
                    Out::South => at.row + 1 < self.rows,
                    Out::East => at.col + 1 < self.cols,
                    Out::West => at.col > 0,
                    Out::Eject => true,
                };
                if !row_ok {
                    continue;
                }
                Some(self.neighbor(at, out))
            };
            if let Some((nb, port)) = dest {
                if incoming[nb][port] || start_len[nb][port] >= self.fifo_cap {
                    continue;
                }
            }
            // Round-robin over input FIFOs whose head routes here.
            let base = self.routers[r].rr[oi];
            for k in 0..PORTS {
                let p = (base + k) % PORTS;
                if input_used[p] {
                    continue;
                }
                let Some(head) = self.routers[r].inputs[p].front() else {
                    continue;
                };
                if self.route(at, head.dst) != out {
                    continue;
                }
                input_used[p] = true;
                self.routers[r].rr[oi] = (p + 1) % PORTS;
                if let Some((nb, port)) = dest {
                    incoming[nb][port] = true;
                }
                moves.push((r, p, out));
                break;
            }
        }
    }

    /// The fault-free arbitration of [`Mesh::arbitrate_router`],
    /// restructured so cost follows occupancy instead of port count.
    /// Three mechanical differences, none visible in the grants:
    ///
    /// * each occupied input's head is routed **once** up front (the
    ///   legacy loop re-routes every head for every output port; a
    ///   head's route cannot change mid-arbitration, so the 5×5 route
    ///   matrix collapses to one entry per occupied input);
    /// * output ports no head requests are skipped entirely — the
    ///   legacy scan for such a port finds no candidate and changes
    ///   nothing, and with no fault installed there is no PRNG to
    ///   keep in step;
    /// * downstream capacity reads the live FIFO length instead of a
    ///   snapshot — moves are deferred until all arbitration is done,
    ///   so the live lengths *are* the start-of-cycle lengths.
    fn arbitrate_router_fast(
        &mut self,
        r: usize,
        incoming: &mut [[bool; PORTS]],
        moves: &mut Vec<(usize, usize, Out)>,
    ) {
        const UNROUTED: u8 = u8::MAX;
        let at = Coord { row: (r / self.cols as usize) as u8, col: (r % self.cols as usize) as u8 };
        let mut want = [UNROUTED; PORTS];
        let mut requested = 0u8;
        for (p, input) in self.routers[r].inputs.iter().enumerate() {
            if let Some(head) = input.front() {
                let oi = match self.route(at, head.dst) {
                    Out::Eject => 0,
                    Out::North => 1,
                    Out::East => 2,
                    Out::South => 3,
                    Out::West => 4,
                };
                want[p] = oi as u8;
                requested |= 1 << oi;
            }
        }
        for (oi, out) in
            [Out::Eject, Out::North, Out::East, Out::South, Out::West].into_iter().enumerate()
        {
            if requested & (1 << oi) == 0 {
                continue;
            }
            let dest = if out == Out::Eject {
                None
            } else {
                let row_ok = match out {
                    Out::North => at.row > 0,
                    Out::South => at.row + 1 < self.rows,
                    Out::East => at.col + 1 < self.cols,
                    Out::West => at.col > 0,
                    Out::Eject => true,
                };
                if !row_ok {
                    continue;
                }
                Some(self.neighbor(at, out))
            };
            if let Some((nb, port)) = dest {
                if incoming[nb][port] || self.routers[nb].inputs[port].len() >= self.fifo_cap {
                    continue;
                }
            }
            let base = self.routers[r].rr[oi];
            for k in 0..PORTS {
                let p = (base + k) % PORTS;
                if want[p] != oi as u8 {
                    continue;
                }
                want[p] = UNROUTED; // granted; never a candidate again
                self.routers[r].rr[oi] = (p + 1) % PORTS;
                if let Some((nb, port)) = dest {
                    incoming[nb][port] = true;
                }
                moves.push((r, p, out));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_until<P>(mesh: &mut Mesh<P>, dst: Coord, start: u64, limit: u64) -> (MeshMsg<P>, u64) {
        let mut t = start;
        loop {
            mesh.tick(t);
            t += 1;
            if let Some(m) = mesh.eject(dst) {
                return (m, t);
            }
            assert!(t < start + limit, "message not delivered within {limit} cycles");
        }
    }

    #[test]
    fn delivers_with_manhattan_hops() {
        let mut m: Mesh<u32> = Mesh::new(5, 5, 4);
        let src = Coord { row: 1, col: 1 };
        let dst = Coord { row: 3, col: 4 };
        assert!(m.inject(0, MeshMsg::new(src, dst, 7)));
        let (msg, t) = drive_until(&mut m, dst, 0, 100);
        assert_eq!(msg.payload, 7);
        assert_eq!(msg.hops, 5);
        assert_eq!(msg.queued, 0);
        assert_eq!(t, 6, "hops + 1 visible latency");
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn self_delivery_takes_one_cycle() {
        let mut m: Mesh<u32> = Mesh::new(5, 5, 4);
        let at = Coord { row: 2, col: 2 };
        m.inject(10, MeshMsg::new(at, at, 1));
        m.tick(10);
        let msg = m.eject(at).unwrap();
        assert_eq!(msg.hops, 0);
        assert_eq!(msg.queued, 0);
    }

    #[test]
    fn y_x_routing_goes_vertical_first() {
        let mut m: Mesh<u32> = Mesh::new(3, 3, 4);
        // Two messages crossing: with Y-X they never share a link.
        m.inject(0, MeshMsg::new(Coord { row: 0, col: 0 }, Coord { row: 2, col: 2 }, 1));
        m.inject(0, MeshMsg::new(Coord { row: 2, col: 0 }, Coord { row: 0, col: 2 }, 2));
        for t in 0..20 {
            m.tick(t);
        }
        assert_eq!(m.stats.ejected, 2);
        assert_eq!(m.stats.total_queued, 0, "no contention for disjoint Y-X paths");
    }

    #[test]
    fn contention_is_counted() {
        let mut m: Mesh<u32> = Mesh::new(1, 4, 4);
        let dst = Coord { row: 0, col: 3 };
        // Two messages from the same node to the same destination must
        // serialize on the single east link.
        m.inject(0, MeshMsg::new(Coord { row: 0, col: 0 }, dst, 1));
        m.inject(0, MeshMsg::new(Coord { row: 0, col: 0 }, dst, 2));
        for t in 0..30 {
            m.tick(t);
        }
        assert_eq!(m.stats.ejected, 2);
        assert!(m.stats.total_queued >= 1, "second message must have queued");
    }

    #[test]
    fn throughput_one_per_link_per_cycle() {
        let mut m: Mesh<u64> = Mesh::new(1, 2, 4);
        let src = Coord { row: 0, col: 0 };
        let dst = Coord { row: 0, col: 1 };
        let mut sent = 0u64;
        let mut got = 0u64;
        for t in 0..200u64 {
            if m.can_inject(src) {
                m.inject(t, MeshMsg::new(src, dst, sent));
                sent += 1;
            }
            m.tick(t);
            while let Some(msg) = m.eject(dst) {
                assert_eq!(msg.payload, got, "in-order delivery on one path");
                got += 1;
            }
        }
        assert!(got >= 190, "sustained ~1/cycle, got {got}");
    }

    #[test]
    fn backpressure_blocks_injection() {
        let mut m: Mesh<u32> = Mesh::new(1, 2, 2);
        let src = Coord { row: 0, col: 0 };
        let dst = Coord { row: 0, col: 1 };
        // Fill the local FIFO without ever ticking: capacity 2.
        assert!(m.inject(0, MeshMsg::new(src, dst, 1)));
        assert!(m.inject(0, MeshMsg::new(src, dst, 2)));
        assert!(!m.can_inject(src));
        assert!(!m.inject(0, MeshMsg::new(src, dst, 3)));
        assert_eq!(m.stats.inject_fails, 1);
    }

    #[test]
    fn many_random_messages_all_delivered() {
        let mut rng = trips_harness::Rng::new(42);
        let mut m: Mesh<usize> = Mesh::new(5, 5, 4);
        let mut pending: Vec<MeshMsg<usize>> = (0..500)
            .map(|i| {
                let src = Coord { row: rng.range_u8(0, 5), col: rng.range_u8(0, 5) };
                let dst = Coord { row: rng.range_u8(0, 5), col: rng.range_u8(0, 5) };
                MeshMsg::new(src, dst, i)
            })
            .collect();
        pending.reverse();
        let mut delivered = 0;
        for t in 0..5000u64 {
            while let Some(msg) = pending.last() {
                let src = msg.src;
                if !m.can_inject(src) {
                    break;
                }
                m.inject(t, pending.pop().unwrap());
            }
            m.tick(t);
            for r in 0..5 {
                for c in 0..5 {
                    while let Some(msg) = m.eject(Coord { row: r, col: c }) {
                        assert_eq!(msg.dst, Coord { row: r, col: c });
                        assert_eq!(msg.hops, msg.src.distance(msg.dst));
                        delivered += 1;
                    }
                }
            }
        }
        assert_eq!(delivered, 500);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn permanent_eject_stall_blocks_delivery() {
        use crate::fault::{FaultPort, MeshFaultConfig, PortStall};
        let mut m: Mesh<u32> = Mesh::new(5, 5, 4);
        let dst = Coord { row: 2, col: 2 };
        m.set_fault(Some(&MeshFaultConfig {
            seed: 3,
            rotate_arbitration: false,
            stalls: vec![PortStall {
                router: dst,
                port: FaultPort::Eject,
                num: 1,
                den: 1,
                max_burst: 8,
            }],
        }));
        m.inject(0, MeshMsg::new(Coord { row: 0, col: 0 }, dst, 9));
        for t in 0..500 {
            m.tick(t);
        }
        assert!(m.eject(dst).is_none(), "permanently stalled eject port must never deliver");
        assert_eq!(m.in_flight(), 1, "the message waits upstream, undropped");
        m.audit().expect("conservation holds while stalled");
    }

    #[test]
    fn faulted_mesh_still_delivers_everything() {
        use crate::fault::{FaultPort, MeshFaultConfig, PortStall};
        let run = |fault: bool| {
            let mut rng = trips_harness::Rng::new(11);
            let mut m: Mesh<usize> = Mesh::new(5, 5, 4);
            if fault {
                m.set_fault(Some(&MeshFaultConfig {
                    seed: 99,
                    rotate_arbitration: true,
                    stalls: vec![
                        PortStall {
                            router: Coord { row: 2, col: 2 },
                            port: FaultPort::South,
                            num: 1,
                            den: 3,
                            max_burst: 6,
                        },
                        PortStall {
                            router: Coord { row: 0, col: 0 },
                            port: FaultPort::Eject,
                            num: 1,
                            den: 4,
                            max_burst: 4,
                        },
                    ],
                }));
            }
            let mut delivered = 0;
            let mut latency = 0u64;
            for i in 0..300usize {
                let src = Coord { row: rng.range_u8(0, 5), col: rng.range_u8(0, 5) };
                let dst = Coord { row: rng.range_u8(0, 5), col: rng.range_u8(0, 5) };
                let t = i as u64 * 2;
                if m.can_inject(src) {
                    m.inject(t, MeshMsg::new(src, dst, i));
                }
                m.tick(t);
                m.tick(t + 1);
                for r in 0..5 {
                    for c in 0..5 {
                        while let Some(msg) = m.eject(Coord { row: r, col: c }) {
                            delivered += 1;
                            latency += u64::from(msg.hops) + u64::from(msg.queued);
                        }
                    }
                }
            }
            for t in 600..5000u64 {
                m.tick(t);
                for r in 0..5 {
                    for c in 0..5 {
                        while m.eject(Coord { row: r, col: c }).is_some() {
                            delivered += 1;
                        }
                    }
                }
            }
            m.audit().expect("conservation holds under faults");
            assert_eq!(m.in_flight(), 0, "bounded bursts must drain");
            (delivered, latency)
        };
        let (clean_n, clean_lat) = run(false);
        let (fault_n, fault_lat) = run(true);
        assert_eq!(clean_n, fault_n, "faults delay, never drop");
        assert!(fault_lat > clean_lat, "stall bursts must cost visible latency");
    }

    #[test]
    fn fault_injection_is_deterministic() {
        use crate::fault::{FaultPort, MeshFaultConfig, PortStall};
        let run = || {
            let mut m: Mesh<u32> = Mesh::new(4, 4, 2);
            m.set_fault(Some(&MeshFaultConfig {
                seed: 1234,
                rotate_arbitration: true,
                stalls: vec![PortStall {
                    router: Coord { row: 1, col: 1 },
                    port: FaultPort::East,
                    num: 1,
                    den: 2,
                    max_burst: 5,
                }],
            }));
            for t in 0..100u64 {
                let src = Coord { row: (t % 4) as u8, col: ((t / 4) % 4) as u8 };
                let dst = Coord { row: ((t / 2) % 4) as u8, col: (t % 4) as u8 };
                m.inject(t, MeshMsg::new(src, dst, t as u32));
                m.tick(t);
                for r in 0..4 {
                    for c in 0..4 {
                        while m.eject(Coord { row: r, col: c }).is_some() {}
                    }
                }
            }
            m.stats
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn determinism_same_inputs_same_stats() {
        let run = || {
            let mut m: Mesh<u32> = Mesh::new(4, 4, 2);
            for t in 0..100u64 {
                let src = Coord { row: (t % 4) as u8, col: ((t / 4) % 4) as u8 };
                let dst = Coord { row: ((t / 2) % 4) as u8, col: (t % 4) as u8 };
                m.inject(t, MeshMsg::new(src, dst, t as u32));
                m.tick(t);
                for r in 0..4 {
                    for c in 0..4 {
                        while m.eject(Coord { row: r, col: c }).is_some() {}
                    }
                }
            }
            m.stats
        };
        assert_eq!(run(), run());
    }
}
