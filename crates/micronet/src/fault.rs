//! Timing-fault injection for the micronets.
//!
//! The paper's distributed protocols claim correctness under *any*
//! message timing the networks can produce, not just the timings a
//! healthy fabric happens to exhibit (§4 assumes nothing beyond
//! per-link FIFO delivery). The hooks in this module let a fuzzing
//! harness perturb *when* messages move — stall bursts on mesh router
//! output ports, extra delay on chain messages, randomized round-robin
//! arbitration — while never touching message *contents* and never
//! reordering a same-link flow. Every hook is an `Option` that
//! defaults to `None`: with no fault installed the hot paths take one
//! always-false branch and are bit-identical to the unhooked code
//! (enforced by the `fault_injection` zero-overhead suite).
//!
//! Faults are seeded ([`trips_harness::Rng`], SplitMix64) and the
//! simulator is deterministic, so a `(seed, plan)` pair replays the
//! exact same perturbed execution every time.

use trips_harness::Rng;

use crate::mesh::Coord;

/// Output ports of a mesh router that a timing fault can stall.
///
/// `Eject` is the local delivery port: stalling it models destination
/// inbox backpressure (the consuming tile refusing delivery), which
/// then propagates backwards through the router FIFOs exactly like
/// real credit exhaustion. The compass ports model a slow or contended
/// inter-router link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPort {
    /// The local delivery port into the destination's eject queue.
    Eject,
    /// Link to the router one row north.
    North,
    /// Link to the router one column east.
    East,
    /// Link to the router one row south.
    South,
    /// Link to the router one column west.
    West,
}

impl FaultPort {
    /// All ports, in the mesh's output-arbitration order.
    pub const ALL: [FaultPort; 5] =
        [FaultPort::Eject, FaultPort::North, FaultPort::East, FaultPort::South, FaultPort::West];

    /// Index in the mesh's output-port order.
    pub(crate) fn index(self) -> usize {
        match self {
            FaultPort::Eject => 0,
            FaultPort::North => 1,
            FaultPort::East => 2,
            FaultPort::South => 3,
            FaultPort::West => 4,
        }
    }
}

/// A stall fault on one router output port.
///
/// While no burst is active, each cycle the port starts a stall burst
/// with probability `num/den`; a burst lasts `1..=max_burst` cycles
/// during which the port grants nothing (messages wait upstream in
/// their FIFOs — they are delayed, never dropped or reordered within
/// a queue). `num >= den` re-arms a new burst at every expiry: a
/// permanently dead link, for deliberate-deadlock tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortStall {
    /// Router whose output port is faulted.
    pub router: Coord,
    /// The faulted output port.
    pub port: FaultPort,
    /// Burst-start probability numerator.
    pub num: u64,
    /// Burst-start probability denominator.
    pub den: u64,
    /// Maximum burst length in cycles (at least 1 is used).
    pub max_burst: u64,
}

/// Fault configuration for one [`Mesh`](crate::Mesh).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeshFaultConfig {
    /// Seed for this mesh's private fault PRNG.
    pub seed: u64,
    /// Re-randomize every router's round-robin arbitration pointers
    /// each cycle. This perturbs which *competing* input wins a port —
    /// same-flow messages share one input FIFO and stay ordered.
    pub rotate_arbitration: bool,
    /// Stall bursts on specific output ports.
    pub stalls: Vec<PortStall>,
}

/// Fault configuration for one [`Chain`](crate::Chain).
///
/// Each sent message gains `1..=max_extra` cycles of delay with
/// probability `num/den`. Delivery at each inbox is then clamped to
/// send order (a running per-inbox arrival floor), so a delayed
/// message is never overtaken by a later send — the per-link FIFO
/// guarantee the §4 protocols rely on survives the perturbation.
/// `num == 0` makes the fault inert: no draws, no clamping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFaultConfig {
    /// Seed for this chain's private fault PRNG.
    pub seed: u64,
    /// Extra-delay probability numerator (0 disables the fault).
    pub num: u64,
    /// Extra-delay probability denominator.
    pub den: u64,
    /// Maximum extra delay in cycles (at least 1 is used).
    pub max_extra: u64,
}

/// Fault configuration for one [`Link`](crate::Link): as
/// [`ChainFaultConfig`], but no clamping is needed — a link's queue is
/// drained strictly front-first, so per-message extra delay can never
/// reorder it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaultConfig {
    /// Seed for this link's private fault PRNG.
    pub seed: u64,
    /// Extra-delay probability numerator (0 disables the fault).
    pub num: u64,
    /// Extra-delay probability denominator.
    pub den: u64,
    /// Maximum extra delay in cycles (at least 1 is used).
    pub max_extra: u64,
}

/// Compiled per-mesh fault state: per-router/per-port stall parameters
/// and burst deadlines, plus the arbitration-rotation switch.
#[derive(Debug, Clone)]
pub(crate) struct MeshFaultState {
    rng: Rng,
    rotate: bool,
    /// `params[router][port]` = `(num, den, max_burst)`.
    params: Vec<[Option<(u64, u64, u64)>; 5]>,
    /// Cycle each active burst ends (exclusive).
    until: Vec<[u64; 5]>,
}

impl MeshFaultState {
    pub(crate) fn new(cfg: &MeshFaultConfig, rows: u8, cols: u8) -> MeshFaultState {
        let n = rows as usize * cols as usize;
        let mut params = vec![[None; 5]; n];
        for s in &cfg.stalls {
            assert!(
                s.router.row < rows && s.router.col < cols,
                "fault on {} outside mesh",
                s.router
            );
            let r = s.router.row as usize * cols as usize + s.router.col as usize;
            params[r][s.port.index()] = Some((s.num, s.den, s.max_burst.max(1)));
        }
        MeshFaultState {
            rng: Rng::new(cfg.seed),
            rotate: cfg.rotate_arbitration,
            params,
            until: vec![[0; 5]; n],
        }
    }

    /// Whether round-robin pointers should be re-randomized this tick;
    /// draws come from the fault PRNG via [`MeshFaultState::draw`].
    pub(crate) fn rotate(&self) -> bool {
        self.rotate
    }

    /// A raw draw from the fault PRNG (for arbitration rotation).
    pub(crate) fn draw(&mut self, n: usize) -> usize {
        self.rng.range_usize(0, n)
    }

    /// True if output port `oi` of router `r` is stalled at `now`,
    /// starting a new burst when the per-cycle coin lands.
    pub(crate) fn stalled(&mut self, r: usize, oi: usize, now: u64) -> bool {
        if now < self.until[r][oi] {
            return true;
        }
        let Some((num, den, max_burst)) = self.params[r][oi] else {
            return false;
        };
        if num > 0 && self.rng.chance(num, den) {
            let len = 1 + self.rng.range_u64(0, max_burst);
            self.until[r][oi] = now.saturating_add(len);
            return true;
        }
        false
    }
}

/// Compiled per-chain fault state: the PRNG plus the per-inbox arrival
/// floors enforcing send-order delivery.
#[derive(Debug, Clone)]
pub(crate) struct ChainFaultState {
    rng: Rng,
    num: u64,
    den: u64,
    max_extra: u64,
    floor: Vec<u64>,
}

impl ChainFaultState {
    pub(crate) fn new(cfg: &ChainFaultConfig, inboxes: usize) -> ChainFaultState {
        ChainFaultState {
            rng: Rng::new(cfg.seed),
            num: cfg.num,
            den: cfg.den,
            max_extra: cfg.max_extra.max(1),
            floor: vec![0; inboxes],
        }
    }

    /// Perturbs a scheduled arrival at inbox `to`: maybe adds extra
    /// delay, then clamps to the inbox's running arrival floor so a
    /// later send never arrives before an earlier one.
    pub(crate) fn perturb(&mut self, to: usize, at: u64) -> u64 {
        if self.num == 0 {
            return at;
        }
        let mut at = at;
        if self.rng.chance(self.num, self.den) {
            at += 1 + self.rng.range_u64(0, self.max_extra);
        }
        at = at.max(self.floor[to]);
        self.floor[to] = at;
        at
    }
}

/// Compiled per-link fault state.
#[derive(Debug, Clone)]
pub(crate) struct LinkFaultState {
    rng: Rng,
    num: u64,
    den: u64,
    max_extra: u64,
}

impl LinkFaultState {
    pub(crate) fn new(cfg: &LinkFaultConfig) -> LinkFaultState {
        LinkFaultState {
            rng: Rng::new(cfg.seed),
            num: cfg.num,
            den: cfg.den,
            max_extra: cfg.max_extra.max(1),
        }
    }

    /// Extra cycles of delay for the message being sent now.
    pub(crate) fn extra(&mut self) -> u64 {
        if self.num > 0 && self.rng.chance(self.num, self.den) {
            1 + self.rng.range_u64(0, self.max_extra)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanent_stall_rearm() {
        let cfg = MeshFaultConfig {
            seed: 1,
            rotate_arbitration: false,
            stalls: vec![PortStall {
                router: Coord { row: 0, col: 0 },
                port: FaultPort::Eject,
                num: 1,
                den: 1,
                max_burst: 1,
            }],
        };
        let mut st = MeshFaultState::new(&cfg, 2, 2);
        for now in 0..100 {
            assert!(st.stalled(0, 0, now), "num == den must stall every cycle");
        }
        assert!(!st.stalled(0, 1, 5), "unfaulted port never stalls");
    }

    #[test]
    fn chain_floor_preserves_send_order() {
        let cfg = ChainFaultConfig { seed: 7, num: 1, den: 2, max_extra: 9 };
        let mut st = ChainFaultState::new(&cfg, 3);
        let mut last = 0;
        for t in 0..200u64 {
            let at = st.perturb(1, t + 1);
            assert!(at >= last, "arrival floor must be monotone per inbox");
            assert!(at > t, "faults only delay, never accelerate");
            last = at;
        }
    }

    #[test]
    fn inert_chain_fault_is_identity() {
        let cfg = ChainFaultConfig { seed: 7, num: 0, den: 1, max_extra: 9 };
        let mut st = ChainFaultState::new(&cfg, 2);
        for t in [5, 3, 11, 2] {
            assert_eq!(st.perturb(0, t), t, "num == 0 must not clamp or delay");
        }
    }
}
