//! Pipelined nearest-neighbour chains: the model for the TRIPS
//! control micronets.
//!
//! The GDN, GSN, GCN, GRN, DSN, and ESN connect tiles in rows, columns,
//! or trees of point-to-point links; messages traverse one tile per
//! cycle (§3). A [`Chain`] models one such linear path: a message sent
//! from position `a` to position `b` is receivable `max(|a-b|, 1)`
//! cycles later, in send order. The paper measures the control
//! networks' overheads as insignificant next to the operand network
//! (§5.2), so — unlike [`Mesh`](crate::Mesh) — chains model latency
//! but not link contention.

use std::collections::VecDeque;

use crate::fault::{ChainFaultConfig, ChainFaultState};

/// A linear chain of `n` tile positions with one-cycle hops.
#[derive(Debug, Clone)]
pub struct Chain<T> {
    inboxes: Vec<VecDeque<(u64, u64, T)>>,
    seq: u64,
    /// Total messages sent, for utilization statistics.
    pub total_sent: u64,
    /// Installed timing fault (`None` on the production path).
    fault: Option<ChainFaultState>,
}

impl<T> Chain<T> {
    /// A chain with positions `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Chain<T> {
        assert!(n > 0, "empty chain");
        Chain {
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            seq: 0,
            total_sent: 0,
            fault: None,
        }
    }

    /// Installs (or clears) a timing fault: probabilistic extra delay
    /// with per-inbox send-order clamping (see [`ChainFaultConfig`]).
    /// With `None` — or `num == 0` — sends are bit-identical to a
    /// chain that never had the hook.
    pub fn set_fault(&mut self, cfg: Option<&ChainFaultConfig>) {
        let n = self.inboxes.len();
        self.fault = cfg.map(|c| ChainFaultState::new(c, n));
    }

    /// Applies the installed fault (if any) to a scheduled arrival.
    fn perturb(&mut self, to: usize, at: u64) -> u64 {
        match &mut self.fault {
            Some(f) => f.perturb(to, at),
            None => at,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.inboxes.len()
    }

    /// True if the chain has no positions (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.inboxes.is_empty()
    }

    /// Sends `msg` from `from` to `to`; receivable `max(distance, 1)`
    /// cycles later.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range.
    pub fn send(&mut self, now: u64, from: usize, to: usize, msg: T) {
        assert!(from < self.len() && to < self.len(), "chain position out of range");
        let dist = from.abs_diff(to).max(1) as u64;
        let at = self.perturb(to, now + dist);
        let seq = self.seq;
        self.seq += 1;
        self.total_sent += 1;
        // Keep each inbox sorted by (time, seq); sends are usually in
        // increasing time order so push_back then bubble is cheap.
        let inbox = &mut self.inboxes[to];
        let pos = inbox.partition_point(|&(t, s, _)| (t, s) <= (at, seq));
        inbox.insert(pos, (at, seq, msg));
    }

    /// Sends `msg` to `to` with an explicit `delay` in cycles, for
    /// paths whose physical distance differs from the chain-linear one
    /// (e.g. the GCN wavefront, which spreads at the two-dimensional
    /// manhattan distance from the GT).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or `delay == 0`.
    pub fn send_delayed(&mut self, now: u64, to: usize, delay: u64, msg: T) {
        assert!(to < self.len(), "chain position out of range");
        assert!(delay > 0, "zero-delay sends would break cycle accounting");
        let at = self.perturb(to, now + delay);
        let seq = self.seq;
        self.seq += 1;
        self.total_sent += 1;
        let inbox = &mut self.inboxes[to];
        let pos = inbox.partition_point(|&(t, s, _)| (t, s) <= (at, seq));
        inbox.insert(pos, (at, seq, msg));
    }

    /// Receives the oldest message available at `pos` by cycle `now`.
    pub fn recv(&mut self, now: u64, pos: usize) -> Option<T> {
        let inbox = &mut self.inboxes[pos];
        match inbox.front() {
            Some(&(at, _, _)) if at <= now => inbox.pop_front().map(|(_, _, m)| m),
            _ => None,
        }
    }

    /// True if no messages are pending anywhere.
    pub fn idle(&self) -> bool {
        self.inboxes.iter().all(VecDeque::is_empty)
    }

    /// True if any message (mature or still in flight) is bound for
    /// `pos`. This is the clock-gating wakeup test for the tile at
    /// that position: conservative — the tile is clocked from the
    /// moment a message is addressed to it, not only once the message
    /// arrives — so a gated tile can never sleep through a delivery.
    pub fn has_pending_at(&self, pos: usize) -> bool {
        !self.inboxes[pos].is_empty()
    }

    /// Messages pending across all positions.
    pub fn pending(&self) -> usize {
        self.inboxes.iter().map(VecDeque::len).sum()
    }

    /// The oldest undelivered message: `(arrival_cycle, position)`.
    /// Inboxes are sorted by (time, seq), so the head of each is its
    /// oldest. Used by the hang diagnoser.
    pub fn oldest_pending(&self) -> Option<(u64, usize)> {
        self.inboxes
            .iter()
            .enumerate()
            .filter_map(|(pos, inbox)| inbox.front().map(|&(at, seq, _)| (at, seq, pos)))
            .min()
            .map(|(at, _, pos)| (at, pos))
    }
}

impl<T: Clone> Chain<T> {
    /// Broadcasts `msg` from `from` to every other position, arriving
    /// at each after its chain distance — the GCN flush/commit wave
    /// propagating "one hop per cycle across the array" (§4.3).
    pub fn broadcast(&mut self, now: u64, from: usize, msg: T) {
        for to in 0..self.len() {
            if to != from {
                self.send(now, from, to, msg.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_distance() {
        let mut c: Chain<u32> = Chain::new(5);
        c.send(10, 0, 3, 7);
        assert_eq!(c.recv(12, 3), None);
        assert_eq!(c.recv(13, 3), Some(7));
    }

    #[test]
    fn same_position_costs_one_cycle() {
        let mut c: Chain<u32> = Chain::new(2);
        c.send(0, 1, 1, 9);
        assert_eq!(c.recv(0, 1), None);
        assert_eq!(c.recv(1, 1), Some(9));
    }

    #[test]
    fn fifo_by_arrival_then_send_order() {
        let mut c: Chain<u32> = Chain::new(4);
        c.send(0, 3, 0, 1); // arrives at 3
        c.send(1, 1, 0, 2); // arrives at 2
        c.send(3, 0, 0, 3); // arrives at 4
        assert_eq!(c.recv(10, 0), Some(2));
        assert_eq!(c.recv(10, 0), Some(1));
        assert_eq!(c.recv(10, 0), Some(3));
        assert!(c.idle());
    }

    #[test]
    fn faulted_chain_delays_but_keeps_send_order_per_inbox() {
        let mut c: Chain<u32> = Chain::new(5);
        c.set_fault(Some(&ChainFaultConfig { seed: 5, num: 1, den: 2, max_extra: 7 }));
        for v in 0..50u32 {
            // Alternate senders so natural arrivals would interleave.
            let from = if v % 2 == 0 { 0 } else { 4 };
            c.send(u64::from(v), from, 2, v);
        }
        let mut got = Vec::new();
        for t in 0..500u64 {
            while let Some(v) = c.recv(t, 2) {
                got.push(v);
            }
        }
        assert_eq!(got, (0..50).collect::<Vec<u32>>(), "delivery must follow send order");
    }

    #[test]
    fn inert_fault_changes_nothing() {
        let send_all = |c: &mut Chain<u32>| {
            c.send(0, 3, 0, 1);
            c.send(1, 1, 0, 2);
            c.send(3, 0, 0, 3);
            let mut got = Vec::new();
            for t in 0..20 {
                while let Some(v) = c.recv(t, 0) {
                    got.push(v);
                }
            }
            got
        };
        let mut plain: Chain<u32> = Chain::new(4);
        let mut hooked: Chain<u32> = Chain::new(4);
        hooked.set_fault(Some(&ChainFaultConfig { seed: 9, num: 0, den: 1, max_extra: 9 }));
        assert_eq!(send_all(&mut plain), send_all(&mut hooked));
    }

    #[test]
    fn broadcast_wave() {
        let mut c: Chain<&'static str> = Chain::new(4);
        c.broadcast(0, 0, "flush");
        assert_eq!(c.recv(1, 1), Some("flush"));
        assert_eq!(c.recv(1, 2), None, "wave has not reached position 2");
        assert_eq!(c.recv(2, 2), Some("flush"));
        assert_eq!(c.recv(3, 3), Some("flush"));
        assert_eq!(c.recv(5, 0), None, "sender does not hear its own broadcast");
    }
}
