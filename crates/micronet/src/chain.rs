//! Pipelined nearest-neighbour chains: the model for the TRIPS
//! control micronets.
//!
//! The GDN, GSN, GCN, GRN, DSN, and ESN connect tiles in rows, columns,
//! or trees of point-to-point links; messages traverse one tile per
//! cycle (§3). A [`Chain`] models one such linear path: a message sent
//! from position `a` to position `b` is receivable `max(|a-b|, 1)`
//! cycles later, in send order. The paper measures the control
//! networks' overheads as insignificant next to the operand network
//! (§5.2), so — unlike [`Mesh`](crate::Mesh) — chains model latency
//! but not link contention.
//!
//! Storage is a single arena shared by every position: one slab of
//! slots threaded into per-position intrusive lists sorted by
//! `(arrival, seq)`. The common case — sends arrive in increasing
//! time order — appends at the tail in O(1), and the queries the
//! scheduler hammers every cycle (`idle`, `pending`,
//! `has_pending_at`, [`Chain::next_arrival`]) are O(1) counter or
//! head-pointer reads instead of per-`VecDeque` scans.

use crate::fault::{ChainFaultConfig, ChainFaultState};

/// Sentinel "null" slot index for the intrusive lists.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<T> {
    at: u64,
    seq: u64,
    next: u32,
    /// `None` only while the slot sits on the free list.
    msg: Option<T>,
}

/// A linear chain of `n` tile positions with one-cycle hops.
#[derive(Debug, Clone)]
pub struct Chain<T> {
    /// Arena of message slots shared by all positions.
    slots: Vec<Slot<T>>,
    /// Head of the free list through `slots` (`NIL` when exhausted).
    free: u32,
    /// Per-position list heads, sorted by `(at, seq)`.
    heads: Vec<u32>,
    /// Per-position list tails (`NIL` iff the head is).
    tails: Vec<u32>,
    /// Undelivered messages across all positions.
    pending_count: usize,
    seq: u64,
    /// Total messages sent, for utilization statistics.
    pub total_sent: u64,
    /// Installed timing fault (`None` on the production path).
    fault: Option<ChainFaultState>,
}

impl<T> Chain<T> {
    /// A chain with positions `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Chain<T> {
        assert!(n > 0, "empty chain");
        Chain {
            slots: Vec::new(),
            free: NIL,
            heads: vec![NIL; n],
            tails: vec![NIL; n],
            pending_count: 0,
            seq: 0,
            total_sent: 0,
            fault: None,
        }
    }

    /// Installs (or clears) a timing fault: probabilistic extra delay
    /// with per-inbox send-order clamping (see [`ChainFaultConfig`]).
    /// With `None` — or `num == 0` — sends are bit-identical to a
    /// chain that never had the hook.
    pub fn set_fault(&mut self, cfg: Option<&ChainFaultConfig>) {
        let n = self.heads.len();
        self.fault = cfg.map(|c| ChainFaultState::new(c, n));
    }

    /// Applies the installed fault (if any) to a scheduled arrival.
    fn perturb(&mut self, to: usize, at: u64) -> u64 {
        match &mut self.fault {
            Some(f) => f.perturb(to, at),
            None => at,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True if the chain has no positions (never: constructor forbids).
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Takes a slot off the free list (or grows the arena) and fills
    /// it, returning its index.
    fn alloc(&mut self, at: u64, seq: u64, msg: T) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let slot = &mut self.slots[idx as usize];
            self.free = slot.next;
            slot.at = at;
            slot.seq = seq;
            slot.next = NIL;
            slot.msg = Some(msg);
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("chain arena overflow");
            self.slots.push(Slot { at, seq, next: NIL, msg: Some(msg) });
            idx
        }
    }

    /// Links slot `idx` into position `to`'s list, keeping it sorted
    /// by `(at, seq)`. Sends usually arrive in increasing time order,
    /// so the tail append is the hot path.
    fn link(&mut self, to: usize, idx: u32) {
        let (at, seq) = {
            let s = &self.slots[idx as usize];
            (s.at, s.seq)
        };
        let tail = self.tails[to];
        if tail == NIL {
            self.heads[to] = idx;
            self.tails[to] = idx;
        } else {
            let t = &self.slots[tail as usize];
            if (t.at, t.seq) <= (at, seq) {
                self.slots[tail as usize].next = idx;
                self.tails[to] = idx;
            } else {
                // Out-of-order arrival (fault perturbation): walk from
                // the head to find the insertion point.
                let head = self.heads[to];
                let h = &self.slots[head as usize];
                if (at, seq) < (h.at, h.seq) {
                    self.slots[idx as usize].next = head;
                    self.heads[to] = idx;
                } else {
                    let mut prev = head;
                    loop {
                        let next = self.slots[prev as usize].next;
                        if next == NIL {
                            break;
                        }
                        let n = &self.slots[next as usize];
                        if (at, seq) < (n.at, n.seq) {
                            break;
                        }
                        prev = next;
                    }
                    let after = self.slots[prev as usize].next;
                    self.slots[idx as usize].next = after;
                    self.slots[prev as usize].next = idx;
                    if after == NIL {
                        self.tails[to] = idx;
                    }
                }
            }
        }
        self.pending_count += 1;
    }

    /// Sends `msg` from `from` to `to`; receivable `max(distance, 1)`
    /// cycles later.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range.
    pub fn send(&mut self, now: u64, from: usize, to: usize, msg: T) {
        assert!(from < self.len() && to < self.len(), "chain position out of range");
        let dist = from.abs_diff(to).max(1) as u64;
        let at = self.perturb(to, now + dist);
        let seq = self.seq;
        self.seq += 1;
        self.total_sent += 1;
        let idx = self.alloc(at, seq, msg);
        self.link(to, idx);
    }

    /// Sends `msg` to `to` with an explicit `delay` in cycles, for
    /// paths whose physical distance differs from the chain-linear one
    /// (e.g. the GCN wavefront, which spreads at the two-dimensional
    /// manhattan distance from the GT).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or `delay == 0`.
    pub fn send_delayed(&mut self, now: u64, to: usize, delay: u64, msg: T) {
        assert!(to < self.len(), "chain position out of range");
        assert!(delay > 0, "zero-delay sends would break cycle accounting");
        let at = self.perturb(to, now + delay);
        let seq = self.seq;
        self.seq += 1;
        self.total_sent += 1;
        let idx = self.alloc(at, seq, msg);
        self.link(to, idx);
    }

    /// Receives the oldest message available at `pos` by cycle `now`.
    pub fn recv(&mut self, now: u64, pos: usize) -> Option<T> {
        let head = self.heads[pos];
        if head == NIL || self.slots[head as usize].at > now {
            return None;
        }
        let slot = &mut self.slots[head as usize];
        let msg = slot.msg.take();
        self.heads[pos] = slot.next;
        slot.next = self.free;
        self.free = head;
        if self.heads[pos] == NIL {
            self.tails[pos] = NIL;
        }
        self.pending_count -= 1;
        msg
    }

    /// True if no messages are pending anywhere. O(1).
    pub fn idle(&self) -> bool {
        self.pending_count == 0
    }

    /// True if any message (mature or still in flight) is bound for
    /// `pos`. This is the clock-gating wakeup test for the tile at
    /// that position: conservative — the tile is clocked from the
    /// moment a message is addressed to it, not only once the message
    /// arrives — so a gated tile can never sleep through a delivery.
    pub fn has_pending_at(&self, pos: usize) -> bool {
        self.heads[pos] != NIL
    }

    /// Messages pending across all positions. O(1).
    pub fn pending(&self) -> usize {
        self.pending_count
    }

    /// Arrival cycle of the earliest message bound for `pos`, if any.
    /// The per-position lists are sorted by `(arrival, seq)`, so this
    /// is the head's timestamp: the cycle at which the tile at `pos`
    /// must be awake to receive it.
    pub fn next_arrival(&self, pos: usize) -> Option<u64> {
        let head = self.heads[pos];
        if head == NIL {
            None
        } else {
            Some(self.slots[head as usize].at)
        }
    }

    /// Arrival cycle of the earliest undelivered message anywhere on
    /// the chain — the next cycle at which this net can change any
    /// tile's input state. `None` when the chain is idle.
    pub fn next_event(&self) -> Option<u64> {
        if self.pending_count == 0 {
            return None;
        }
        self.heads.iter().filter(|&&h| h != NIL).map(|&h| self.slots[h as usize].at).min()
    }

    /// The oldest undelivered message: `(arrival_cycle, position)`.
    /// Position lists are sorted by (time, seq), so the head of each
    /// is its oldest. Used by the hang diagnoser.
    pub fn oldest_pending(&self) -> Option<(u64, usize)> {
        self.heads
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h != NIL)
            .map(|(pos, &h)| {
                let s = &self.slots[h as usize];
                (s.at, s.seq, pos)
            })
            .min()
            .map(|(at, _, pos)| (at, pos))
    }
}

impl<T: Clone> Chain<T> {
    /// Broadcasts `msg` from `from` to every other position, arriving
    /// at each after its chain distance — the GCN flush/commit wave
    /// propagating "one hop per cycle across the array" (§4.3).
    pub fn broadcast(&mut self, now: u64, from: usize, msg: T) {
        for to in 0..self.len() {
            if to != from {
                self.send(now, from, to, msg.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_distance() {
        let mut c: Chain<u32> = Chain::new(5);
        c.send(10, 0, 3, 7);
        assert_eq!(c.recv(12, 3), None);
        assert_eq!(c.recv(13, 3), Some(7));
    }

    #[test]
    fn same_position_costs_one_cycle() {
        let mut c: Chain<u32> = Chain::new(2);
        c.send(0, 1, 1, 9);
        assert_eq!(c.recv(0, 1), None);
        assert_eq!(c.recv(1, 1), Some(9));
    }

    #[test]
    fn fifo_by_arrival_then_send_order() {
        let mut c: Chain<u32> = Chain::new(4);
        c.send(0, 3, 0, 1); // arrives at 3
        c.send(1, 1, 0, 2); // arrives at 2
        c.send(3, 0, 0, 3); // arrives at 4
        assert_eq!(c.recv(10, 0), Some(2));
        assert_eq!(c.recv(10, 0), Some(1));
        assert_eq!(c.recv(10, 0), Some(3));
        assert!(c.idle());
    }

    #[test]
    fn faulted_chain_delays_but_keeps_send_order_per_inbox() {
        let mut c: Chain<u32> = Chain::new(5);
        c.set_fault(Some(&ChainFaultConfig { seed: 5, num: 1, den: 2, max_extra: 7 }));
        for v in 0..50u32 {
            // Alternate senders so natural arrivals would interleave.
            let from = if v % 2 == 0 { 0 } else { 4 };
            c.send(u64::from(v), from, 2, v);
        }
        let mut got = Vec::new();
        for t in 0..500u64 {
            while let Some(v) = c.recv(t, 2) {
                got.push(v);
            }
        }
        assert_eq!(got, (0..50).collect::<Vec<u32>>(), "delivery must follow send order");
    }

    #[test]
    fn inert_fault_changes_nothing() {
        let send_all = |c: &mut Chain<u32>| {
            c.send(0, 3, 0, 1);
            c.send(1, 1, 0, 2);
            c.send(3, 0, 0, 3);
            let mut got = Vec::new();
            for t in 0..20 {
                while let Some(v) = c.recv(t, 0) {
                    got.push(v);
                }
            }
            got
        };
        let mut plain: Chain<u32> = Chain::new(4);
        let mut hooked: Chain<u32> = Chain::new(4);
        hooked.set_fault(Some(&ChainFaultConfig { seed: 9, num: 0, den: 1, max_extra: 9 }));
        assert_eq!(send_all(&mut plain), send_all(&mut hooked));
    }

    #[test]
    fn broadcast_wave() {
        let mut c: Chain<&'static str> = Chain::new(4);
        c.broadcast(0, 0, "flush");
        assert_eq!(c.recv(1, 1), Some("flush"));
        assert_eq!(c.recv(1, 2), None, "wave has not reached position 2");
        assert_eq!(c.recv(2, 2), Some("flush"));
        assert_eq!(c.recv(3, 3), Some("flush"));
        assert_eq!(c.recv(5, 0), None, "sender does not hear its own broadcast");
    }

    #[test]
    fn next_arrival_tracks_the_head() {
        let mut c: Chain<u32> = Chain::new(4);
        assert_eq!(c.next_arrival(0), None);
        assert_eq!(c.next_event(), None);
        c.send(0, 3, 0, 1); // arrives at 3
        c.send(1, 1, 0, 2); // arrives at 2
        c.send(0, 0, 2, 9); // arrives at 2, other position
        assert_eq!(c.next_arrival(0), Some(2));
        assert_eq!(c.next_arrival(2), Some(2));
        assert_eq!(c.next_arrival(1), None);
        assert_eq!(c.next_event(), Some(2));
        assert_eq!(c.recv(2, 0), Some(2));
        assert_eq!(c.next_arrival(0), Some(3), "head advances past the received message");
        assert_eq!(c.recv(3, 0), Some(1));
        assert_eq!(c.recv(2, 2), Some(9));
        assert_eq!(c.next_event(), None);
        assert!(c.idle());
    }

    #[test]
    fn arena_recycles_slots() {
        let mut c: Chain<u32> = Chain::new(2);
        for round in 0..100u64 {
            c.send(round * 10, 0, 1, round as u32);
            assert_eq!(c.pending(), 1);
            assert_eq!(c.recv(round * 10 + 1, 1), Some(round as u32));
            assert!(c.idle());
        }
        assert_eq!(c.total_sent, 100);
    }
}
