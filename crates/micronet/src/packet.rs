//! A multi-flit packet mesh with virtual channels: the model for the
//! on-chip network (OCN).
//!
//! The OCN is a 4×10 wormhole-routed mesh with 16-byte links and four
//! virtual channels, optimized for cache-line-sized transfers (§3.6).
//! This model carries whole packets whose flit count occupies each
//! traversed link for that many cycles, giving wormhole-accurate
//! bandwidth and head-of-line behaviour at packet granularity.

use std::collections::VecDeque;

use crate::fault::{MeshFaultConfig, MeshFaultState};
use crate::mesh::Coord;

/// Number of virtual channels per physical link.
pub const VIRTUAL_CHANNELS: usize = 4;

/// A packet travelling through a [`PacketMesh`].
#[derive(Debug, Clone)]
pub struct PacketMsg<P> {
    /// Injecting node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// The carried value.
    pub payload: P,
    /// Number of 16-byte flits (header included); a 64-byte cache line
    /// with its header is five flits.
    pub flits: u32,
    /// Virtual channel (0..4), usually assigned by traffic class to
    /// avoid protocol deadlock (e.g. requests vs replies).
    pub vc: u8,
    /// Client tag (0..[`MAX_TAGS`]) identifying the traffic source —
    /// on the OCN, which processor core the request belongs to. Tags
    /// are attribution only: they never affect routing or arbitration,
    /// so a single-client mesh with every tag 0 behaves identically to
    /// one that never tags.
    pub tag: u8,
    /// Cycle the packet entered the network.
    pub injected_at: u64,
    /// Router-to-router link traversals so far.
    pub hops: u32,
    /// Contention cycles, finalized at delivery.
    pub queued: u32,
}

impl<P> PacketMsg<P> {
    /// A new packet of `flits` flits on virtual channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `flits == 0` or `vc >= 4`.
    pub fn new(src: Coord, dst: Coord, payload: P, flits: u32, vc: u8) -> PacketMsg<P> {
        assert!(flits > 0, "packets have at least a header flit");
        assert!((vc as usize) < VIRTUAL_CHANNELS, "vc out of range: {vc}");
        PacketMsg { src, dst, payload, flits, vc, tag: 0, injected_at: 0, hops: 0, queued: 0 }
    }

    /// Sets the client tag (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `tag >= `[`MAX_TAGS`].
    pub fn with_tag(mut self, tag: u8) -> PacketMsg<P> {
        assert!((tag as usize) < MAX_TAGS, "tag out of range: {tag}");
        self.tag = tag;
        self
    }
}

/// Distinct client tags a [`PacketMesh`] accounts for — one per core
/// of the largest die the chip-level geometry supports (16 cores).
pub const MAX_TAGS: usize = 16;

/// Aggregate statistics for a [`PacketMesh`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketStats {
    /// Packets accepted.
    pub injected: u64,
    /// Packets delivered.
    pub ejected: u64,
    /// Rejected injection attempts.
    pub inject_fails: u64,
    /// Sum of hop counts.
    pub total_hops: u64,
    /// Sum of contention cycles.
    pub total_queued: u64,
    /// Sum of latencies, including serialization of the packet tail.
    pub total_latency: u64,
    /// Sum of flits carried by delivered packets.
    pub total_flits: u64,
}

const LOCAL: usize = 0;
const NORTH: usize = 1;
const EAST: usize = 2;
const SOUTH: usize = 3;
const WEST: usize = 4;
const PORTS: usize = 5;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Out {
    Eject,
    North,
    East,
    South,
    West,
}

struct PacketRouter<P> {
    /// `inputs[port][vc]`
    inputs: [[VecDeque<PacketMsg<P>>; VIRTUAL_CHANNELS]; PORTS],
    /// `(available_at, msg)`
    eject: VecDeque<(u64, PacketMsg<P>)>,
    /// Physical output links are busy while a packet's flits stream
    /// across them.
    busy_until: [u64; PORTS],
    rr: [usize; PORTS],
}

impl<P> PacketRouter<P> {
    fn new() -> PacketRouter<P> {
        PacketRouter {
            inputs: Default::default(),
            eject: VecDeque::new(),
            busy_until: [0; PORTS],
            rr: [0; PORTS],
        }
    }
}

/// A W×H wormhole packet mesh with [`VIRTUAL_CHANNELS`] virtual
/// channels per link and Y-X dimension-order routing.
pub struct PacketMesh<P> {
    rows: u8,
    cols: u8,
    vc_cap: usize,
    routers: Vec<PacketRouter<P>>,
    /// Aggregate statistics.
    pub stats: PacketStats,
    in_flight: usize,
    /// Per-tag packets inside routers (attribution of `in_flight`).
    in_flight_by_tag: [usize; MAX_TAGS],
    /// Per-tag high-water marks of `in_flight_by_tag`.
    tag_highwater: [usize; MAX_TAGS],
    /// Per-tag packets accepted.
    tag_injected: [u64; MAX_TAGS],
    /// Per-tag packets delivered.
    tag_ejected: [u64; MAX_TAGS],
    /// Installed timing faults (`None` on the production path).
    fault: Option<MeshFaultState>,
}

impl<P> PacketMesh<P> {
    /// A `rows`×`cols` packet mesh with per-VC buffers of `vc_cap`
    /// packets.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `vc_cap == 0`.
    pub fn new(rows: u8, cols: u8, vc_cap: usize) -> PacketMesh<P> {
        assert!(rows > 0 && cols > 0 && vc_cap > 0, "degenerate mesh");
        let n = rows as usize * cols as usize;
        PacketMesh {
            rows,
            cols,
            vc_cap,
            routers: (0..n).map(|_| PacketRouter::new()).collect(),
            stats: PacketStats::default(),
            in_flight: 0,
            in_flight_by_tag: [0; MAX_TAGS],
            tag_highwater: [0; MAX_TAGS],
            tag_injected: [0; MAX_TAGS],
            tag_ejected: [0; MAX_TAGS],
            fault: None,
        }
    }

    /// Installs (or clears) a timing-fault configuration. Faults stall
    /// output ports and randomize arbitration; they never drop, corrupt
    /// or reorder a same-queue flow (see [`MeshFaultConfig`]).
    pub fn set_fault(&mut self, cfg: Option<&MeshFaultConfig>) {
        self.fault = cfg.map(|c| MeshFaultState::new(c, self.rows, self.cols));
    }

    fn idx(&self, c: Coord) -> usize {
        assert!(c.row < self.rows && c.col < self.cols, "coord {c} outside mesh");
        c.row as usize * self.cols as usize + c.col as usize
    }

    /// Packets currently inside routers.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Per-tag high-water marks of packets inside routers — on the
    /// OCN, how deep each core's traffic ran concurrently.
    pub fn tag_highwater(&self) -> [usize; MAX_TAGS] {
        self.tag_highwater
    }

    /// Per-tag `(injected, ejected)` packet counts.
    pub fn tag_counts(&self) -> [(u64, u64); MAX_TAGS] {
        let mut out = [(0, 0); MAX_TAGS];
        for (o, (i, e)) in out.iter_mut().zip(self.tag_injected.iter().zip(&self.tag_ejected)) {
            *o = (*i, *e);
        }
        out
    }

    /// Packets delivered to an eject queue but not yet popped by the
    /// destination (these count as `ejected` in [`PacketStats`] and are
    /// *not* in [`PacketMesh::in_flight`]).
    pub fn queued_ejects(&self) -> usize {
        self.routers.iter().map(|r| r.eject.len()).sum()
    }

    /// Conservation audit, mirroring [`Mesh::audit`](crate::Mesh):
    /// the in-flight counter must equal the recounted router queue
    /// occupancy, and `injected = ejected + in_flight` (where `ejected`
    /// includes eject-queue entries the destination has not drained).
    ///
    /// # Errors
    ///
    /// A description of the first violated equation.
    pub fn audit(&self) -> Result<(), String> {
        let recount: usize = self
            .routers
            .iter()
            .map(|r| r.inputs.iter().flatten().map(VecDeque::len).sum::<usize>())
            .sum();
        if recount != self.in_flight {
            return Err(format!(
                "in-flight counter {} != recounted router occupancy {recount}",
                self.in_flight
            ));
        }
        if self.stats.injected != self.stats.ejected + self.in_flight as u64 {
            return Err(format!(
                "conservation broken: injected {} != ejected {} + in-flight {}",
                self.stats.injected, self.stats.ejected, self.in_flight
            ));
        }
        Ok(())
    }

    /// True if an injection at `src` on `vc` would be accepted.
    pub fn can_inject(&self, src: Coord, vc: u8) -> bool {
        self.routers[self.idx(src)].inputs[LOCAL][vc as usize].len() < self.vc_cap
    }

    /// Injects a packet. Returns `false` if the local VC buffer is
    /// full.
    pub fn inject(&mut self, now: u64, mut msg: PacketMsg<P>) -> bool {
        let i = self.idx(msg.src);
        let _ = self.idx(msg.dst);
        if self.routers[i].inputs[LOCAL][msg.vc as usize].len() >= self.vc_cap {
            self.stats.inject_fails += 1;
            return false;
        }
        msg.injected_at = now;
        msg.hops = 0;
        let tag = msg.tag as usize;
        self.routers[i].inputs[LOCAL][msg.vc as usize].push_back(msg);
        self.stats.injected += 1;
        self.in_flight += 1;
        self.tag_injected[tag] += 1;
        self.in_flight_by_tag[tag] += 1;
        self.tag_highwater[tag] = self.tag_highwater[tag].max(self.in_flight_by_tag[tag]);
        true
    }

    /// Pops the next fully-arrived packet at `node`.
    pub fn eject(&mut self, now: u64, node: Coord) -> Option<PacketMsg<P>> {
        let i = self.idx(node);
        match self.routers[i].eject.front() {
            Some(&(avail, _)) if avail <= now => Some(self.routers[i].eject.pop_front().unwrap().1),
            _ => None,
        }
    }

    fn route(at: Coord, dst: Coord) -> Out {
        if dst.row < at.row {
            Out::North
        } else if dst.row > at.row {
            Out::South
        } else if dst.col > at.col {
            Out::East
        } else if dst.col < at.col {
            Out::West
        } else {
            Out::Eject
        }
    }

    /// Advances the network one cycle.
    pub fn tick(&mut self, now: u64) {
        if self.in_flight == 0 {
            return;
        }
        let n = self.routers.len();
        let mut start_len = vec![[[0usize; VIRTUAL_CHANNELS]; PORTS]; n];
        for (r, router) in self.routers.iter().enumerate() {
            for (lens, inputs) in start_len[r].iter_mut().zip(&router.inputs) {
                for (len, q) in lens.iter_mut().zip(inputs) {
                    *len = q.len();
                }
            }
        }
        let mut moves: Vec<(usize, usize, usize, Out)> = Vec::new();
        let mut incoming = vec![[[false; VIRTUAL_CHANNELS]; PORTS]; n];

        // Fault hook: moved out for the arbitration loop (it borrows
        // mutably alongside the routers) and restored at the end.
        let mut fault = self.fault.take();
        if let Some(f) = fault.as_mut() {
            if f.rotate() {
                for router in &mut self.routers {
                    for rr in &mut router.rr {
                        *rr = f.draw(PORTS * VIRTUAL_CHANNELS);
                    }
                }
            }
        }

        for r in 0..n {
            let at =
                Coord { row: (r / self.cols as usize) as u8, col: (r % self.cols as usize) as u8 };
            let mut input_used = [[false; VIRTUAL_CHANNELS]; PORTS];
            for (oi, out) in
                [Out::Eject, Out::North, Out::East, Out::South, Out::West].into_iter().enumerate()
            {
                if out != Out::Eject && self.routers[r].busy_until[oi] > now {
                    continue;
                }
                // An injected stall burst holds the whole output port:
                // nothing is granted, waiting packets stay queued.
                if let Some(f) = fault.as_mut() {
                    if f.stalled(r, oi, now) {
                        continue;
                    }
                }
                let dest = match out {
                    Out::Eject => None,
                    Out::North if at.row == 0 => continue,
                    Out::South if at.row + 1 == self.rows => continue,
                    Out::East if at.col + 1 == self.cols => continue,
                    Out::West if at.col == 0 => continue,
                    Out::North => Some((self.idx(Coord { row: at.row - 1, col: at.col }), SOUTH)),
                    Out::South => Some((self.idx(Coord { row: at.row + 1, col: at.col }), NORTH)),
                    Out::East => Some((self.idx(Coord { row: at.row, col: at.col + 1 }), WEST)),
                    Out::West => Some((self.idx(Coord { row: at.row, col: at.col - 1 }), EAST)),
                };
                // Round-robin across the PORTS*VC candidate queues.
                let base = self.routers[r].rr[oi];
                let total = PORTS * VIRTUAL_CHANNELS;
                for k in 0..total {
                    let q = (base + k) % total;
                    let (p, v) = (q / VIRTUAL_CHANNELS, q % VIRTUAL_CHANNELS);
                    if input_used[p][v] {
                        continue;
                    }
                    let Some(head) = self.routers[r].inputs[p][v].front() else {
                        continue;
                    };
                    if Self::route(at, head.dst) != out {
                        continue;
                    }
                    if let Some((nb, port)) = dest {
                        if incoming[nb][port][v] || start_len[nb][port][v] >= self.vc_cap {
                            continue;
                        }
                    }
                    input_used[p][v] = true;
                    self.routers[r].rr[oi] = (q + 1) % total;
                    if let Some((nb, port)) = dest {
                        incoming[nb][port][v] = true;
                    }
                    moves.push((r, p, v, out));
                    break;
                }
            }
        }

        for (r, p, v, out) in moves {
            let mut msg = self.routers[r].inputs[p][v].pop_front().unwrap();
            match out {
                Out::Eject => {
                    // The tail arrives flits-1 cycles after the head.
                    let avail = now + u64::from(msg.flits - 1);
                    let latency = (avail - msg.injected_at) as u32;
                    msg.queued = latency.saturating_sub(msg.hops + msg.flits - 1);
                    self.stats.ejected += 1;
                    self.stats.total_hops += u64::from(msg.hops);
                    self.stats.total_queued += u64::from(msg.queued);
                    self.stats.total_latency += u64::from(latency);
                    self.stats.total_flits += u64::from(msg.flits);
                    self.in_flight -= 1;
                    self.tag_ejected[msg.tag as usize] += 1;
                    self.in_flight_by_tag[msg.tag as usize] -= 1;
                    self.routers[r].eject.push_back((avail, msg));
                }
                _ => {
                    let oi = match out {
                        Out::North => 1,
                        Out::East => 2,
                        Out::South => 3,
                        Out::West => 4,
                        Out::Eject => unreachable!(),
                    };
                    self.routers[r].busy_until[oi] = now + u64::from(msg.flits);
                    let at = Coord {
                        row: (r / self.cols as usize) as u8,
                        col: (r % self.cols as usize) as u8,
                    };
                    let nbc = match out {
                        Out::North => Coord { row: at.row - 1, col: at.col },
                        Out::South => Coord { row: at.row + 1, col: at.col },
                        Out::East => Coord { row: at.row, col: at.col + 1 },
                        Out::West => Coord { row: at.row, col: at.col - 1 },
                        Out::Eject => unreachable!(),
                    };
                    let port = match out {
                        Out::North => SOUTH,
                        Out::South => NORTH,
                        Out::East => WEST,
                        Out::West => EAST,
                        Out::Eject => unreachable!(),
                    };
                    let nb = self.idx(nbc);
                    msg.hops += 1;
                    self.routers[nb].inputs[port][v].push_back(msg);
                }
            }
        }
        self.fault = fault;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flit_behaves_like_mesh() {
        let mut m: PacketMesh<u32> = PacketMesh::new(10, 4, 2);
        let src = Coord { row: 0, col: 0 };
        let dst = Coord { row: 9, col: 3 };
        m.inject(0, PacketMsg::new(src, dst, 5, 1, 0));
        let mut t = 0;
        let msg = loop {
            m.tick(t);
            t += 1;
            if let Some(msg) = m.eject(t, dst) {
                break msg;
            }
            assert!(t < 100);
        };
        assert_eq!(msg.hops, 12);
        assert_eq!(msg.queued, 0);
    }

    #[test]
    fn cache_line_serialization_delays_tail() {
        let mut m: PacketMesh<u32> = PacketMesh::new(1, 2, 2);
        let src = Coord { row: 0, col: 0 };
        let dst = Coord { row: 0, col: 1 };
        m.inject(0, PacketMsg::new(src, dst, 1, 5, 0));
        m.tick(0); // crosses the link (head)
        m.tick(1); // ejects at router, tail streaming
        assert!(m.eject(2, dst).is_none(), "tail still arriving");
        assert!(m.eject(5, dst).is_some(), "five flits done");
    }

    #[test]
    fn link_busy_serializes_packets() {
        let mut m: PacketMesh<u32> = PacketMesh::new(1, 2, 4);
        let src = Coord { row: 0, col: 0 };
        let dst = Coord { row: 0, col: 1 };
        m.inject(0, PacketMsg::new(src, dst, 1, 5, 0));
        m.inject(0, PacketMsg::new(src, dst, 2, 5, 1));
        let mut got = Vec::new();
        for t in 0..40u64 {
            m.tick(t);
            while let Some(msg) = m.eject(t + 1, dst) {
                got.push((t + 1, msg.payload));
            }
        }
        assert_eq!(got.len(), 2);
        assert!(got[1].0 >= got[0].0 + 5, "second packet delayed by first packet's flits: {got:?}");
    }

    #[test]
    fn separate_vcs_buffer_independently() {
        let mut m: PacketMesh<u32> = PacketMesh::new(1, 2, 1);
        let src = Coord { row: 0, col: 0 };
        let dst = Coord { row: 0, col: 1 };
        assert!(m.inject(0, PacketMsg::new(src, dst, 1, 1, 0)));
        assert!(!m.can_inject(src, 0), "vc0 buffer full");
        assert!(m.can_inject(src, 1), "vc1 independent");
        assert!(m.inject(0, PacketMsg::new(src, dst, 2, 1, 1)));
    }

    #[test]
    #[should_panic(expected = "vc out of range")]
    fn vc_bounds_checked() {
        let _ = PacketMsg::new(Coord { row: 0, col: 0 }, Coord { row: 0, col: 0 }, 0, 1, 4);
    }

    #[test]
    fn tags_attribute_traffic_without_affecting_it() {
        let mut m: PacketMesh<u32> = PacketMesh::new(2, 2, 4);
        let src = Coord { row: 0, col: 0 };
        let dst = Coord { row: 1, col: 1 };
        m.inject(0, PacketMsg::new(src, dst, 1, 1, 0).with_tag(0));
        m.inject(0, PacketMsg::new(src, dst, 2, 1, 1).with_tag(1));
        let mut got = 0;
        for t in 0..20u64 {
            m.tick(t);
            while m.eject(t + 1, dst).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 2);
        let counts = m.tag_counts();
        assert_eq!(counts[0], (1, 1));
        assert_eq!(counts[1], (1, 1));
        assert_eq!(m.tag_highwater()[0], 1);
        assert_eq!(m.tag_highwater()[1], 1);
    }

    #[test]
    #[should_panic(expected = "tag out of range")]
    fn tag_bounds_checked() {
        let _ = PacketMsg::new(Coord { row: 0, col: 0 }, Coord { row: 0, col: 0 }, 0, 1, 0)
            .with_tag(MAX_TAGS as u8);
    }
}
