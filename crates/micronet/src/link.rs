//! Registered nearest-neighbour links.

use std::collections::VecDeque;

use crate::fault::{LinkFaultConfig, LinkFaultState};

/// A one-cycle, flow-controlled, nearest-neighbour link.
///
/// `Link` models one hop of a TRIPS control micronet: a registered
/// wire segment between adjacent tiles. A message sent at cycle `t`
/// becomes receivable at cycle `t + 1`. The link carries at most `bw`
/// messages per cycle and buffers at most `cap` undelivered messages;
/// when the buffer is full [`Link::send`] refuses, which is how
/// backpressure propagates hop by hop (credit-based flow control).
///
/// Sends and receives are indexed by the current cycle so that the
/// order in which tiles are ticked within a cycle cannot change what
/// any tile observes.
#[derive(Debug, Clone)]
pub struct Link<T> {
    queue: VecDeque<(u64, T)>,
    cap: usize,
    bw: usize,
    sent_at: u64,
    sent_this_cycle: usize,
    recv_at: u64,
    recv_this_cycle: usize,
    /// Total messages ever accepted, for utilization statistics.
    pub total_sent: u64,
    /// Total cycles a send was refused, for contention statistics.
    pub total_stalls: u64,
    /// Installed timing fault (`None` on the production path).
    fault: Option<LinkFaultState>,
}

impl<T> Link<T> {
    /// A link with bandwidth `bw` messages/cycle and `cap` buffered
    /// messages.
    ///
    /// # Panics
    ///
    /// Panics if `bw == 0` or `cap < bw`.
    pub fn new(bw: usize, cap: usize) -> Link<T> {
        assert!(bw > 0 && cap >= bw, "bad link shape bw={bw} cap={cap}");
        Link {
            queue: VecDeque::with_capacity(cap),
            cap,
            bw,
            sent_at: u64::MAX,
            sent_this_cycle: 0,
            recv_at: u64::MAX,
            recv_this_cycle: 0,
            total_sent: 0,
            total_stalls: 0,
            fault: None,
        }
    }

    /// Installs (or clears) a timing fault: probabilistic extra delay
    /// per accepted message. The queue is drained strictly front-first,
    /// so extra delay holds everything behind it — FIFO order is
    /// preserved by construction. With `None` — or `num == 0` — sends
    /// are bit-identical to a link that never had the hook.
    pub fn set_fault(&mut self, cfg: Option<&LinkFaultConfig>) {
        self.fault = cfg.map(LinkFaultState::new);
    }

    /// A single-message-per-cycle link with a two-entry buffer — the
    /// common shape for TRIPS control networks.
    pub fn control() -> Link<T> {
        Link::new(1, 2)
    }

    /// True if a message can be sent at cycle `now`.
    pub fn can_send(&self, now: u64) -> bool {
        let sent = if self.sent_at == now { self.sent_this_cycle } else { 0 };
        sent < self.bw && self.queue.len() < self.cap
    }

    /// Sends `msg` at cycle `now`; it becomes receivable at `now + 1`.
    ///
    /// # Errors
    ///
    /// Returns the message back if the per-cycle bandwidth or buffer
    /// capacity is exhausted.
    pub fn send(&mut self, now: u64, msg: T) -> Result<(), T> {
        if !self.can_send(now) {
            self.total_stalls += 1;
            return Err(msg);
        }
        if self.sent_at != now {
            self.sent_at = now;
            self.sent_this_cycle = 0;
        }
        self.sent_this_cycle += 1;
        self.total_sent += 1;
        let extra = self.fault.as_mut().map_or(0, LinkFaultState::extra);
        self.queue.push_back((now + 1 + extra, msg));
        Ok(())
    }

    /// Receives the oldest message available at cycle `now`, up to the
    /// link bandwidth per cycle.
    pub fn recv(&mut self, now: u64) -> Option<T> {
        let received = if self.recv_at == now { self.recv_this_cycle } else { 0 };
        if received >= self.bw {
            return None;
        }
        match self.queue.front() {
            Some(&(avail, _)) if avail <= now => {
                if self.recv_at != now {
                    self.recv_at = now;
                    self.recv_this_cycle = 0;
                }
                self.recv_this_cycle += 1;
                Some(self.queue.pop_front().unwrap().1)
            }
            _ => None,
        }
    }

    /// Peeks at the oldest message available at cycle `now` without
    /// consuming it.
    pub fn peek(&self, now: u64) -> Option<&T> {
        match self.queue.front() {
            Some(&(avail, ref msg)) if avail <= now => Some(msg),
            _ => None,
        }
    }

    /// True if no messages are buffered or in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<T> Default for Link<T> {
    fn default() -> Link<T> {
        Link::control()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_latency() {
        let mut l: Link<u32> = Link::control();
        l.send(10, 42).unwrap();
        assert_eq!(l.recv(10), None, "not visible in the send cycle");
        assert_eq!(l.recv(11), Some(42));
        assert_eq!(l.recv(11), None);
    }

    #[test]
    fn sustains_one_per_cycle() {
        let mut l: Link<u64> = Link::control();
        let mut got = Vec::new();
        for t in 0..100u64 {
            if let Some(v) = l.recv(t) {
                got.push(v);
            }
            l.send(t, t).unwrap();
        }
        assert_eq!(got.len(), 99);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn backpressure_when_receiver_stalls() {
        let mut l: Link<u32> = Link::control();
        l.send(0, 1).unwrap();
        l.send(1, 2).unwrap();
        assert!(!l.can_send(2), "buffer of 2 is full");
        assert_eq!(l.send(2, 3), Err(3));
        assert_eq!(l.total_stalls, 1);
        assert_eq!(l.recv(2), Some(1));
        assert!(l.can_send(2), "drain frees a slot immediately");
    }

    #[test]
    fn bandwidth_limit_per_cycle() {
        let mut l: Link<u32> = Link::new(2, 8);
        l.send(0, 1).unwrap();
        l.send(0, 2).unwrap();
        assert_eq!(l.send(0, 3), Err(3), "bw=2 per cycle");
        l.send(1, 3).unwrap();
        assert_eq!(l.recv(1), Some(1));
        assert_eq!(l.recv(1), Some(2));
        assert_eq!(l.recv(1), None, "receive bandwidth also 2/cycle");
        assert_eq!(l.recv(2), Some(3));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut l: Link<u32> = Link::control();
        l.send(0, 9).unwrap();
        assert_eq!(l.peek(0), None);
        assert_eq!(l.peek(1), Some(&9));
        assert_eq!(l.recv(1), Some(9));
        assert!(l.is_empty());
    }

    #[test]
    fn order_independence_within_cycle() {
        // Receiver ticking before or after the sender in the same
        // cycle sees the same messages.
        let mut a: Link<u32> = Link::control();
        a.send(5, 7).unwrap();
        // receiver "ticks first" at cycle 6
        assert_eq!(a.recv(6), Some(7));

        let mut b: Link<u32> = Link::control();
        // receiver ticks first at cycle 5 (nothing), then sender sends
        assert_eq!(b.recv(5), None);
        b.send(5, 7).unwrap();
        assert_eq!(b.recv(6), Some(7));
    }
}
