//! Opcodes of the TRIPS EDGE ISA and their static properties.

use std::fmt;

/// Instruction encoding formats (Figure 1 of the paper).
///
/// Every opcode belongs to exactly one format, which fixes how its
/// 32-bit word is laid out and which dynamic operands it consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// General: `OPCODE PR XOP T1 T0` — register-to-register compute.
    G,
    /// Immediate: `OPCODE PR IMM14 T0`.
    I,
    /// Load: `OPCODE PR LSID IMM9 T0`.
    L,
    /// Store: `OPCODE PR LSID IMM9 0`.
    S,
    /// Branch: `OPCODE PR EXIT OFFSET20`.
    B,
    /// Constant: `OPCODE CONST16 T0` — note: no predicate field.
    C,
}

/// Which dynamic operands an instruction must receive before it fires.
///
/// The predicate operand is in addition to these, required whenever
/// [`Pred`](crate::Pred) is not `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandNeeds {
    /// Fires immediately on dispatch (constants, `movi`, `null`, …).
    None,
    /// Requires only the left operand.
    Left,
    /// Requires left and right operands.
    LeftRight,
}

/// The control-flow class of a branch, used by the GT's branch *type*
/// predictor to select among target predictions (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Ordinary branch (direct `bro` or register-indirect `br`).
    Branch,
    /// Call: pushes the successor block onto the return-address stack.
    Call,
    /// Return: predicted by the return-address stack.
    Return,
    /// Sequential branch: falls through to the next block in memory.
    Sequential,
    /// Halts the machine when the block commits (stands in for the
    /// board-level control processor of the prototype).
    Halt,
}

macro_rules! opcodes {
    ($( $name:ident = $num:expr, $fmt:ident, $needs:ident, $mnem:expr; )+) => {
        /// A TRIPS primary opcode.
        ///
        /// The discriminant is the 7-bit encoding used in the
        /// instruction word.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $mnem, "`")]
                $name = $num,
            )+
        }

        impl Opcode {
            /// Decodes a 7-bit opcode field.
            pub fn from_bits(bits: u8) -> Option<Opcode> {
                match bits {
                    $( $num => Some(Opcode::$name), )+
                    _ => None,
                }
            }

            /// The encoding format this opcode uses.
            pub fn format(self) -> Format {
                match self {
                    $( Opcode::$name => Format::$fmt, )+
                }
            }

            /// The dynamic operands this opcode waits for before firing.
            pub fn needs(self) -> OperandNeeds {
                match self {
                    $( Opcode::$name => OperandNeeds::$needs, )+
                }
            }

            /// The assembly mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$name => $mnem, )+
                }
            }
        }
    };
}

opcodes! {
    // ---- pseudo ----
    Nop   = 0x00, G, None, "nop";

    // ---- G format: integer compute ----
    Add   = 0x01, G, LeftRight, "add";
    Sub   = 0x02, G, LeftRight, "sub";
    Mul   = 0x03, G, LeftRight, "mul";
    Div   = 0x04, G, LeftRight, "div";
    And   = 0x05, G, LeftRight, "and";
    Or    = 0x06, G, LeftRight, "or";
    Xor   = 0x07, G, LeftRight, "xor";
    Sll   = 0x08, G, LeftRight, "sll";
    Srl   = 0x09, G, LeftRight, "srl";
    Sra   = 0x0a, G, LeftRight, "sra";
    Divu  = 0x0b, G, LeftRight, "divu";
    Mod   = 0x0c, G, LeftRight, "mod";

    // ---- G format: tests (produce 0/1, usually routed to predicates) ----
    Teq   = 0x10, G, LeftRight, "teq";
    Tne   = 0x11, G, LeftRight, "tne";
    Tlt   = 0x12, G, LeftRight, "tlt";
    Tle   = 0x13, G, LeftRight, "tle";
    Tgt   = 0x14, G, LeftRight, "tgt";
    Tge   = 0x15, G, LeftRight, "tge";
    Tltu  = 0x16, G, LeftRight, "tltu";
    Tgeu  = 0x17, G, LeftRight, "tgeu";

    // ---- G format: unary / data movement ----
    Mov   = 0x18, G, Left, "mov";
    Null  = 0x19, G, None, "null";
    Sextb = 0x1a, G, Left, "sextb";
    Sexth = 0x1b, G, Left, "sexth";
    Sextw = 0x1c, G, Left, "sextw";
    Not   = 0x1d, G, Left, "not";
    Getra = 0x1e, G, None, "getra";

    // ---- G format: floating point (f64 bit patterns in 64-bit values) ----
    Fadd  = 0x20, G, LeftRight, "fadd";
    Fsub  = 0x21, G, LeftRight, "fsub";
    Fmul  = 0x22, G, LeftRight, "fmul";
    Fdiv  = 0x23, G, LeftRight, "fdiv";
    Flt   = 0x24, G, LeftRight, "flt";
    Fle   = 0x25, G, LeftRight, "fle";
    Feq   = 0x26, G, LeftRight, "feq";
    Itof  = 0x27, G, Left, "itof";
    Ftoi  = 0x28, G, Left, "ftoi";
    Fsqrt = 0x29, G, Left, "fsqrt";

    // ---- G format: register-indirect control flow ----
    Br    = 0x2c, G, Left, "br";
    Call  = 0x2d, G, Left, "call";
    Ret   = 0x2e, G, Left, "ret";

    // ---- I format ----
    Addi  = 0x30, I, Left, "addi";
    Subi  = 0x31, I, Left, "subi";
    Muli  = 0x32, I, Left, "muli";
    Divi  = 0x33, I, Left, "divi";
    Andi  = 0x34, I, Left, "andi";
    Ori   = 0x35, I, Left, "ori";
    Xori  = 0x36, I, Left, "xori";
    Slli  = 0x37, I, Left, "slli";
    Srli  = 0x38, I, Left, "srli";
    Srai  = 0x39, I, Left, "srai";
    Teqi  = 0x3a, I, Left, "teqi";
    Tnei  = 0x3b, I, Left, "tnei";
    Tlti  = 0x3c, I, Left, "tlti";
    Tlei  = 0x3d, I, Left, "tlei";
    Tgti  = 0x3e, I, Left, "tgti";
    Tgei  = 0x3f, I, Left, "tgei";
    Movi  = 0x40, I, None, "movi";
    Modi  = 0x41, I, Left, "modi";

    // ---- C format ----
    Gens  = 0x44, C, None, "gens";
    Genu  = 0x45, C, None, "genu";
    App   = 0x46, C, Left, "app";

    // ---- L format ----
    Lb    = 0x48, L, Left, "lb";
    Lbu   = 0x49, L, Left, "lbu";
    Lh    = 0x4a, L, Left, "lh";
    Lhu   = 0x4b, L, Left, "lhu";
    Lw    = 0x4c, L, Left, "lw";
    Lwu   = 0x4d, L, Left, "lwu";
    Ld    = 0x4e, L, Left, "ld";

    // ---- S format ----
    Sb    = 0x50, S, LeftRight, "sb";
    Sh    = 0x51, S, LeftRight, "sh";
    Sw    = 0x52, S, LeftRight, "sw";
    Sd    = 0x53, S, LeftRight, "sd";

    // ---- B format ----
    Bro   = 0x58, B, None, "bro";
    Callo = 0x59, B, None, "callo";
    Sbro  = 0x5a, B, None, "sbro";
    Halt  = 0x5b, B, None, "halt";
}

impl Opcode {
    /// True for memory loads (L format).
    pub fn is_load(self) -> bool {
        self.format() == Format::L
    }

    /// True for memory stores (S format).
    pub fn is_store(self) -> bool {
        self.format() == Format::S
    }

    /// True for any control-flow instruction that produces the block's
    /// single branch output.
    pub fn is_branch(self) -> bool {
        self.branch_kind().is_some()
    }

    /// The branch class, if this opcode is a branch.
    pub fn branch_kind(self) -> Option<BranchKind> {
        match self {
            Opcode::Bro | Opcode::Br => Some(BranchKind::Branch),
            Opcode::Callo | Opcode::Call => Some(BranchKind::Call),
            Opcode::Ret => Some(BranchKind::Return),
            Opcode::Sbro => Some(BranchKind::Sequential),
            Opcode::Halt => Some(BranchKind::Halt),
            _ => None,
        }
    }

    /// True if the result is a test producing 0 or 1 (the only values a
    /// predicate operand may legally carry).
    pub fn is_test(self) -> bool {
        matches!(
            self,
            Opcode::Teq
                | Opcode::Tne
                | Opcode::Tlt
                | Opcode::Tle
                | Opcode::Tgt
                | Opcode::Tge
                | Opcode::Tltu
                | Opcode::Tgeu
                | Opcode::Teqi
                | Opcode::Tnei
                | Opcode::Tlti
                | Opcode::Tlei
                | Opcode::Tgti
                | Opcode::Tgei
                | Opcode::Flt
                | Opcode::Fle
                | Opcode::Feq
        )
    }

    /// True for opcodes whose dynamic execution produces a value that
    /// is sent to [`Target`](crate::Target)s (everything except stores
    /// and branches, whose outputs travel on dedicated paths).
    pub fn produces_value(self) -> bool {
        !self.is_store() && !self.is_branch() && self != Opcode::Nop
    }

    /// True for opcodes that use the floating-point unit.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            Opcode::Fadd
                | Opcode::Fsub
                | Opcode::Fmul
                | Opcode::Fdiv
                | Opcode::Flt
                | Opcode::Fle
                | Opcode::Feq
                | Opcode::Itof
                | Opcode::Ftoi
                | Opcode::Fsqrt
        )
    }

    /// Access size in bytes for loads and stores.
    ///
    /// # Panics
    ///
    /// Panics if the opcode is not a load or store.
    pub fn access_bytes(self) -> u32 {
        match self {
            Opcode::Lb | Opcode::Lbu | Opcode::Sb => 1,
            Opcode::Lh | Opcode::Lhu | Opcode::Sh => 2,
            Opcode::Lw | Opcode::Lwu | Opcode::Sw => 4,
            Opcode::Ld | Opcode::Sd => 8,
            _ => panic!("access_bytes on non-memory opcode {self:?}"),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_opcodes_through_bits() {
        for bits in 0u8..128 {
            if let Some(op) = Opcode::from_bits(bits) {
                assert_eq!(op as u8, bits);
            }
        }
    }

    #[test]
    fn format_classes_are_consistent() {
        for bits in 0u8..128 {
            let Some(op) = Opcode::from_bits(bits) else {
                continue;
            };
            assert_eq!(op.is_load(), op.format() == Format::L);
            assert_eq!(op.is_store(), op.format() == Format::S);
            if op.format() == Format::B {
                assert!(op.is_branch());
            }
        }
    }

    #[test]
    fn stores_and_branches_produce_no_value() {
        assert!(!Opcode::Sw.produces_value());
        assert!(!Opcode::Bro.produces_value());
        assert!(!Opcode::Ret.produces_value());
        assert!(Opcode::Add.produces_value());
        assert!(Opcode::Lw.produces_value());
    }

    #[test]
    fn access_sizes() {
        assert_eq!(Opcode::Lb.access_bytes(), 1);
        assert_eq!(Opcode::Sh.access_bytes(), 2);
        assert_eq!(Opcode::Lw.access_bytes(), 4);
        assert_eq!(Opcode::Sd.access_bytes(), 8);
    }

    #[test]
    fn branch_kinds() {
        assert_eq!(Opcode::Callo.branch_kind(), Some(BranchKind::Call));
        assert_eq!(Opcode::Ret.branch_kind(), Some(BranchKind::Return));
        assert_eq!(Opcode::Add.branch_kind(), None);
    }

    #[test]
    fn mnemonics_are_lowercase_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for bits in 0u8..128 {
            let Some(op) = Opcode::from_bits(bits) else {
                continue;
            };
            let m = op.mnemonic();
            assert_eq!(m, m.to_lowercase());
            assert!(seen.insert(m), "duplicate mnemonic {m}");
        }
    }
}
