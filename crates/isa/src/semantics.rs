//! Functional semantics of the compute opcodes.
//!
//! Both the execution-tile model and the reference interpreters need
//! the same definition of what each ALU opcode computes, so it lives
//! here, next to the opcode definitions. Memory and branch opcodes are
//! not evaluated here — their effects belong to the data tiles and the
//! global control tile respectively.

use crate::opcode::Opcode;

/// A dataflow token: a 64-bit value or the null token that nullifies
/// block outputs on untaken predicate paths (§4.2 of the paper).
///
/// Any instruction that receives a null operand produces null; a
/// nullified store or register write counts as a block output without
/// touching architectural state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tok {
    /// A 64-bit value.
    Val(u64),
    /// The null token.
    Null,
}

impl Tok {
    /// The value, or `None` for null.
    pub fn value(self) -> Option<u64> {
        match self {
            Tok::Val(v) => Some(v),
            Tok::Null => None,
        }
    }

    /// True for [`Tok::Null`].
    pub fn is_null(self) -> bool {
        self == Tok::Null
    }
}

/// Evaluates a compute opcode on 64-bit operand values.
///
/// `left`/`right` are ignored when the opcode does not consume them;
/// `imm` carries the instruction's immediate for I- and C-format
/// opcodes. Floating point operates on `f64` bit patterns. Tests
/// return `1` or `0`. Division by zero returns `0` (the prototype
/// would raise an exception into the control processor; no workload in
/// the suite divides by zero) and signed overflow wraps.
///
/// # Panics
///
/// Panics if called with a load, store, branch, or `nop` opcode —
/// those have no ALU semantics.
pub fn eval(op: Opcode, left: u64, right: u64, imm: i32) -> u64 {
    use Opcode::*;
    let l = left;
    let r = right;
    let li = left as i64;
    let ri = right as i64;
    let im = i64::from(imm);
    let lf = f64::from_bits(left);
    let rf = f64::from_bits(right);
    let b = |v: bool| u64::from(v);
    match op {
        Add => l.wrapping_add(r),
        Sub => l.wrapping_sub(r),
        Mul => l.wrapping_mul(r),
        Div => {
            if ri == 0 {
                0
            } else {
                li.wrapping_div(ri) as u64
            }
        }
        Divu => l.checked_div(r).unwrap_or(0),
        Mod => {
            if ri == 0 {
                0
            } else {
                li.wrapping_rem(ri) as u64
            }
        }
        And => l & r,
        Or => l | r,
        Xor => l ^ r,
        Sll => l.wrapping_shl((r & 63) as u32),
        Srl => l.wrapping_shr((r & 63) as u32),
        Sra => (li.wrapping_shr((r & 63) as u32)) as u64,
        Teq => b(l == r),
        Tne => b(l != r),
        Tlt => b(li < ri),
        Tle => b(li <= ri),
        Tgt => b(li > ri),
        Tge => b(li >= ri),
        Tltu => b(l < r),
        Tgeu => b(l >= r),
        Mov => l,
        Not => !l,
        Sextb => l as i8 as i64 as u64,
        Sexth => l as i16 as i64 as u64,
        Sextw => l as i32 as i64 as u64,
        Fadd => (lf + rf).to_bits(),
        Fsub => (lf - rf).to_bits(),
        Fmul => (lf * rf).to_bits(),
        Fdiv => (lf / rf).to_bits(),
        Fsqrt => lf.sqrt().to_bits(),
        Flt => b(lf < rf),
        Fle => b(lf <= rf),
        Feq => b(lf == rf),
        Itof => (li as f64).to_bits(),
        Ftoi => (lf as i64) as u64,
        Addi => l.wrapping_add(im as u64),
        Subi => l.wrapping_sub(im as u64),
        Muli => l.wrapping_mul(im as u64),
        Divi => {
            if im == 0 {
                0
            } else {
                li.wrapping_div(im) as u64
            }
        }
        Modi => {
            if im == 0 {
                0
            } else {
                li.wrapping_rem(im) as u64
            }
        }
        Andi => l & (im as u64),
        Ori => l | (im as u64),
        Xori => l ^ (im as u64),
        Slli => l.wrapping_shl((im & 63) as u32),
        Srli => l.wrapping_shr((im & 63) as u32),
        Srai => (li.wrapping_shr((im & 63) as u32)) as u64,
        Teqi => b(li == im),
        Tnei => b(li != im),
        Tlti => b(li < im),
        Tlei => b(li <= im),
        Tgti => b(li > im),
        Tgei => b(li >= im),
        Movi => im as u64,
        Gens => im as i16 as i64 as u64,
        Genu => (im as u64) & 0xffff,
        App => (l << 16) | ((im as u64) & 0xffff),
        Null => 0,
        Getra | Nop | Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Sb | Sh | Sw | Sd | Bro | Callo
        | Sbro | Halt | Br | Call | Ret => {
            panic!("{op} has no ALU semantics")
        }
    }
}

/// Extracts and extends a loaded value of the given load opcode's
/// width from the raw 64-bit little-endian word read at the access
/// address.
///
/// # Panics
///
/// Panics if `op` is not a load.
pub fn extend_load(op: Opcode, raw: u64) -> u64 {
    match op {
        Opcode::Lb => raw as u8 as i8 as i64 as u64,
        Opcode::Lbu => raw as u8 as u64,
        Opcode::Lh => raw as u16 as i16 as i64 as u64,
        Opcode::Lhu => raw as u16 as u64,
        Opcode::Lw => raw as u32 as i32 as i64 as u64,
        Opcode::Lwu => raw as u32 as u64,
        Opcode::Ld => raw,
        _ => panic!("{op} is not a load"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic() {
        assert_eq!(eval(Opcode::Add, 3, 4, 0), 7);
        assert_eq!(eval(Opcode::Sub, 3, 4, 0), (-1i64) as u64);
        assert_eq!(eval(Opcode::Mul, u64::MAX, 2, 0), u64::MAX.wrapping_mul(2));
        assert_eq!(eval(Opcode::Div, (-9i64) as u64, 2, 0), (-4i64) as u64);
        assert_eq!(eval(Opcode::Div, 5, 0, 0), 0, "div by zero defined as 0");
        assert_eq!(eval(Opcode::Divu, u64::MAX, 2, 0), u64::MAX / 2);
        assert_eq!(eval(Opcode::Mod, 7, 3, 0), 1);
    }

    #[test]
    fn shifts_mask_the_amount() {
        assert_eq!(eval(Opcode::Sll, 1, 64, 0), 1, "shift amount taken mod 64");
        assert_eq!(eval(Opcode::Sra, (-8i64) as u64, 1, 0), (-4i64) as u64);
        assert_eq!(eval(Opcode::Srli, (-1i64) as u64, 0, 63), 1);
    }

    #[test]
    fn tests_produce_zero_or_one() {
        assert_eq!(eval(Opcode::Tlt, (-1i64) as u64, 0, 0), 1, "signed compare");
        assert_eq!(eval(Opcode::Tltu, (-1i64) as u64, 0, 0), 0, "unsigned compare");
        assert_eq!(eval(Opcode::Teqi, 5, 0, 5), 1);
        assert_eq!(eval(Opcode::Tgei, 4, 0, 5), 0);
    }

    #[test]
    fn float_ops_on_bit_patterns() {
        let x = 1.5f64.to_bits();
        let y = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(eval(Opcode::Fadd, x, y, 0)), 3.75);
        assert_eq!(f64::from_bits(eval(Opcode::Fmul, x, y, 0)), 3.375);
        assert_eq!(eval(Opcode::Flt, x, y, 0), 1);
        assert_eq!(eval(Opcode::Ftoi, 2.9f64.to_bits(), 0, 0), 2);
        assert_eq!(f64::from_bits(eval(Opcode::Itof, (-3i64) as u64, 0, 0)), -3.0);
        assert_eq!(f64::from_bits(eval(Opcode::Fsqrt, 9.0f64.to_bits(), 0, 0)), 3.0);
    }

    #[test]
    fn constant_generation() {
        assert_eq!(eval(Opcode::Movi, 0, 0, -3), (-3i64) as u64);
        assert_eq!(eval(Opcode::Gens, 0, 0, 0x8000), 0xffff_ffff_ffff_8000);
        assert_eq!(eval(Opcode::Genu, 0, 0, 0x8000), 0x8000);
        assert_eq!(eval(Opcode::App, 0x1234, 0, 0x5678), 0x1234_5678);
    }

    #[test]
    fn sign_extensions() {
        assert_eq!(eval(Opcode::Sextb, 0x80, 0, 0), (-128i64) as u64);
        assert_eq!(eval(Opcode::Sexth, 0x8000, 0, 0), (-32768i64) as u64);
        assert_eq!(eval(Opcode::Sextw, 0x8000_0000, 0, 0), (-2147483648i64) as u64);
    }

    #[test]
    fn load_extension() {
        assert_eq!(extend_load(Opcode::Lb, 0xff), (-1i64) as u64);
        assert_eq!(extend_load(Opcode::Lbu, 0xff), 0xff);
        assert_eq!(extend_load(Opcode::Lw, 0xffff_ffff), (-1i64) as u64);
        assert_eq!(extend_load(Opcode::Lwu, 0xffff_ffff), 0xffff_ffff);
        assert_eq!(extend_load(Opcode::Ld, u64::MAX), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "no ALU semantics")]
    fn memory_ops_rejected() {
        let _ = eval(Opcode::Lw, 0, 0, 0);
    }
}
