//! Textual disassembly of blocks, in the `N[i]`-style notation used in
//! Figure 5a of the paper.

use std::fmt::Write as _;

use crate::block::TripsBlock;

/// Renders a block as human-readable assembly.
///
/// Read and write header instructions appear first (`R[slot]` /
/// `W[slot]`), then the body (`N[idx]`), skipping `nop` slots.
///
/// ```
/// use trips_isa::*;
///
/// # fn main() -> Result<(), BlockError> {
/// let mut b = TripsBlock::new();
/// b.set_read(0, ReadInst::new(ArchReg::new(4), [Target::left(0), Target::none()]))?;
/// b.push(Instruction::opi(Opcode::Addi, 1, [Target::write(0), Target::none()]))?;
/// b.set_write(0, WriteInst::new(ArchReg::new(4)))?;
/// b.push(Instruction::branch(Opcode::Bro, 0, 2))?;
/// let text = disassemble(&b);
/// assert!(text.contains("R[0]  read R4 N[0,L]"));
/// assert!(text.contains("N[0]  addi #1 W[0]"));
/// # Ok(())
/// # }
/// ```
pub fn disassemble(block: &TripsBlock) -> String {
    let mut out = String::new();
    let h = &block.header;
    let _ = writeln!(
        out,
        "; block: {} insts, {} body chunks, {} writes, {} stores, store_mask={:#010x}",
        block.useful_insts(),
        block.body_chunks(),
        h.write_count(),
        h.store_count(),
        h.store_mask,
    );
    for (s, r) in h.reads.iter().enumerate() {
        if let Some(r) = r {
            let _ = write!(out, "R[{s}]  read {}", r.reg);
            for t in r.targets.iter().filter(|t| !t.is_none()) {
                let _ = write!(out, " {t}");
            }
            out.push('\n');
        }
    }
    for (idx, inst) in block.insts.iter().enumerate() {
        if inst.is_nop() {
            continue;
        }
        let _ = writeln!(out, "N[{idx}]  {inst}");
    }
    for (s, w) in h.writes.iter().enumerate() {
        if let Some(w) = w {
            let _ = writeln!(out, "W[{s}]  write {}", w.reg);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Instruction, Pred, Target};
    use crate::opcode::Opcode;

    #[test]
    fn figure_5a_block_reads_like_the_paper() {
        let mut b = TripsBlock::new();
        b.push(Instruction::movi(0, [Target::right(1), Target::none()])).unwrap();
        b.push(Instruction::op(Opcode::Teq, [Target::pred(2), Target::pred(3)])).unwrap();
        b.push(
            Instruction::opi(Opcode::Muli, 4, [Target::left(32), Target::none()])
                .with_pred(Pred::OnFalse),
        )
        .unwrap();
        b.push(
            Instruction::op(Opcode::Null, [Target::left(34), Target::right(34)])
                .with_pred(Pred::OnTrue),
        )
        .unwrap();
        for _ in 4..32 {
            b.push(Instruction::nop()).unwrap();
        }
        b.push(Instruction::load(Opcode::Lw, 0, 8, Target::left(33))).unwrap();
        b.push(Instruction::op(Opcode::Mov, [Target::left(34), Target::right(34)])).unwrap();
        b.push(Instruction::store(Opcode::Sw, 1, 0)).unwrap();
        b.push(Instruction::branch(Opcode::Callo, 0, 16)).unwrap();
        b.header.store_mask = 0b10;

        let text = disassemble(&b);
        assert!(text.contains("N[1]  teq N[2,P] N[3,P]"), "{text}");
        assert!(text.contains("N[2]  p_f muli #4 N[32,L]"), "{text}");
        assert!(text.contains("N[3]  p_t null N[34,L] N[34,R]"), "{text}");
        assert!(text.contains("N[32]  lw #8 [lsid=0] N[33,L]"), "{text}");
        assert!(text.contains("N[34]  sw #0 [lsid=1]"), "{text}");
        assert!(!text.contains("N[5]"), "nops should be skipped: {text}");
    }
}
