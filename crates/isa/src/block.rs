//! TRIPS blocks: the unit of fetch, execution, and commit.

use std::fmt;

use crate::coords::{read_slot_bank, write_slot_bank};
use crate::inst::{ArchReg, Instruction, OperandSlot, Pred, Target};
use crate::opcode::OperandNeeds;
use crate::{CHUNK_INSTS, MAX_BLOCK_INSTS, MAX_READS, MAX_WRITES};

/// Errors detected while building or validating a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// More than 128 body instructions.
    TooManyInsts,
    /// A read/write slot outside 0..32.
    SlotOutOfRange(u8),
    /// Register `reg` cannot live in header slot `slot`: the slot's
    /// bank does not match the register's bank.
    BankMismatch {
        /// The offending header slot.
        slot: u8,
        /// The register that cannot be placed there.
        reg: ArchReg,
    },
    /// A target names a body instruction index at or beyond the block
    /// length, or an empty (`nop`) slot.
    DanglingTarget {
        /// Index of the producing instruction (or 128+slot for reads).
        from: u16,
        /// The dangling target.
        target: Target,
    },
    /// A target names the predicate of an unpredicated instruction.
    PredicateOfUnpredicated {
        /// The offending target.
        target: Target,
    },
    /// A target names a write slot with no valid write instruction.
    TargetInvalidWrite {
        /// The write slot named.
        slot: u8,
    },
    /// A target delivers an operand the consumer never reads (e.g. the
    /// right operand of a `mov`).
    UselessOperand {
        /// The offending target.
        target: Target,
    },
    /// The block contains no branch instruction, so it could never
    /// produce its (mandatory) branch output.
    NoBranch,
    /// Two or more unpredicated branches would both fire, violating
    /// the exactly-one-branch output rule.
    MultipleUnpredicatedBranches,
    /// More than 32 distinct load/store IDs in use.
    TooManyMemoryOps,
    /// A store's LSID is missing from the header store mask, or a
    /// load's LSID is present in it.
    StoreMaskMismatch {
        /// The LSID whose classification disagrees with the mask.
        lsid: u8,
    },
    /// A store-mask bit is set but no store in the block carries that
    /// LSID, so store-completion counting could never terminate.
    OrphanStoreMaskBit {
        /// The orphaned LSID.
        lsid: u8,
    },
    /// An instruction requires an operand no producer ever sends.
    MissingProducer {
        /// Index of the starved instruction.
        idx: u8,
        /// Which operand has no producer.
        slot: OperandSlot,
    },
    /// An unpredicated, zero-input instruction that produces no value
    /// (a free-running store or branch would fire unconditionally —
    /// legal, but a zero-input *predicated* op missing its predicate
    /// producer is not; this reports the latter).
    DeadInstruction {
        /// Index of the dead instruction.
        idx: u8,
    },
    /// An instruction carries more targets than its format encodes
    /// (only G format has a `T1` field; stores and branches have
    /// none).
    TooManyTargets {
        /// Index of the offending instruction.
        idx: u8,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::TooManyInsts => write!(f, "block exceeds 128 instructions"),
            BlockError::SlotOutOfRange(s) => write!(f, "header slot {s} out of range"),
            BlockError::BankMismatch { slot, reg } => {
                write!(f, "register {reg} cannot occupy header slot {slot} (bank mismatch)")
            }
            BlockError::DanglingTarget { from, target } => {
                write!(f, "instruction {from} targets {target} which does not exist")
            }
            BlockError::PredicateOfUnpredicated { target } => {
                write!(f, "target {target} predicates an unpredicated instruction")
            }
            BlockError::TargetInvalidWrite { slot } => {
                write!(f, "target names write slot {slot} which holds no write instruction")
            }
            BlockError::UselessOperand { target } => {
                write!(f, "target {target} delivers an operand its consumer never reads")
            }
            BlockError::NoBranch => write!(f, "block contains no branch instruction"),
            BlockError::MultipleUnpredicatedBranches => {
                write!(f, "more than one unpredicated branch")
            }
            BlockError::TooManyMemoryOps => write!(f, "more than 32 load/store IDs in use"),
            BlockError::StoreMaskMismatch { lsid } => {
                write!(f, "store mask disagrees with instruction kind for lsid {lsid}")
            }
            BlockError::OrphanStoreMaskBit { lsid } => {
                write!(f, "store mask bit {lsid} set but no store carries that lsid")
            }
            BlockError::MissingProducer { idx, slot } => {
                write!(f, "instruction {idx} operand {slot} has no producer")
            }
            BlockError::DeadInstruction { idx } => {
                write!(f, "instruction {idx} can never fire")
            }
            BlockError::TooManyTargets { idx } => {
                write!(f, "instruction {idx} has more targets than its format encodes")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// Block execution flags held in the header chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockFlags(u8);

impl BlockFlags {
    /// The block must not execute speculatively: the GT holds its
    /// fetch until it is the oldest in-flight block.
    pub const INHIBIT_SPECULATION: BlockFlags = BlockFlags(0x01);

    /// No flags set.
    pub fn empty() -> BlockFlags {
        BlockFlags(0)
    }

    /// Raw flag byte as stored in the header.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstruct from the raw header byte.
    pub fn from_bits(bits: u8) -> BlockFlags {
        BlockFlags(bits)
    }

    /// True if every flag in `other` is set in `self`.
    pub fn contains(self, other: BlockFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set the flags in `other`.
    pub fn insert(&mut self, other: BlockFlags) {
        self.0 |= other.0;
    }
}

/// A register-read instruction in the block header.
///
/// Reads pull a value out of the architectural register file (or the
/// forwarding path from an older in-flight block's write) and send it
/// to up to two consumers in the block body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadInst {
    /// The architectural register to read.
    pub reg: ArchReg,
    /// Where the value is delivered.
    pub targets: [Target; 2],
}

impl ReadInst {
    /// Creates a read of `reg` delivered to `targets`.
    pub fn new(reg: ArchReg, targets: [Target; 2]) -> ReadInst {
        ReadInst { reg, targets }
    }
}

/// A register-write instruction in the block header.
///
/// The value arrives from a body instruction that names this write
/// slot as a target; at commit it is written to the architectural
/// register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteInst {
    /// The architectural register to write.
    pub reg: ArchReg,
}

impl WriteInst {
    /// Creates a write of `reg`.
    pub fn new(reg: ArchReg) -> WriteInst {
        WriteInst { reg }
    }
}

/// The header chunk: the block's interface to architectural state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockHeader {
    /// Execution-mode flags.
    pub flags: BlockFlags,
    /// Bit `i` set means LSID `i` is a store; used by the DTs for
    /// distributed store-completion detection (§4.4).
    pub store_mask: u32,
    /// Up to 32 register reads; slot `s` lives in register bank `s/8`.
    pub reads: [Option<ReadInst>; 32],
    /// Up to 32 register writes; slot `s` lives in register bank `s/8`.
    pub writes: [Option<WriteInst>; 32],
}

impl BlockHeader {
    /// Number of valid write instructions (the register-output count
    /// used for completion detection).
    pub fn write_count(&self) -> u32 {
        self.writes.iter().filter(|w| w.is_some()).count() as u32
    }

    /// Number of stores the block will emit (population count of the
    /// store mask).
    pub fn store_count(&self) -> u32 {
        self.store_mask.count_ones()
    }
}

/// A TRIPS block: a header plus up to 128 body instructions.
///
/// Blocks obey the block-atomic execution model: the microarchitecture
/// fetches, executes, and commits a block as a single unit, and every
/// execution of the block emits the same outputs — `write_count`
/// register writes, `store_count` stores, and exactly one branch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TripsBlock {
    /// The header chunk.
    pub header: BlockHeader,
    /// The body instructions, in index order (`N[0]`, `N[1]`, …).
    pub insts: Vec<Instruction>,
}

impl TripsBlock {
    /// An empty block.
    pub fn new() -> TripsBlock {
        TripsBlock::default()
    }

    /// Appends a body instruction, returning its index.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::TooManyInsts`] past 128 instructions.
    pub fn push(&mut self, inst: Instruction) -> Result<u8, BlockError> {
        if self.insts.len() >= MAX_BLOCK_INSTS {
            return Err(BlockError::TooManyInsts);
        }
        self.insts.push(inst);
        Ok((self.insts.len() - 1) as u8)
    }

    /// Installs a read instruction in header slot `slot`.
    ///
    /// # Errors
    ///
    /// Fails if the slot is out of range or the register's bank does
    /// not match the slot's bank.
    pub fn set_read(&mut self, slot: u8, read: ReadInst) -> Result<(), BlockError> {
        if slot as usize >= MAX_READS {
            return Err(BlockError::SlotOutOfRange(slot));
        }
        if read.reg.bank() != read_slot_bank(slot) {
            return Err(BlockError::BankMismatch { slot, reg: read.reg });
        }
        self.header.reads[slot as usize] = Some(read);
        Ok(())
    }

    /// Installs a write instruction in header slot `slot`.
    ///
    /// # Errors
    ///
    /// Fails if the slot is out of range or the register's bank does
    /// not match the slot's bank.
    pub fn set_write(&mut self, slot: u8, write: WriteInst) -> Result<(), BlockError> {
        if slot as usize >= MAX_WRITES {
            return Err(BlockError::SlotOutOfRange(slot));
        }
        if write.reg.bank() != write_slot_bank(slot) {
            return Err(BlockError::BankMismatch { slot, reg: write.reg });
        }
        self.header.writes[slot as usize] = Some(write);
        Ok(())
    }

    /// Number of 128-byte body chunks the block occupies (1..=4).
    pub fn body_chunks(&self) -> usize {
        self.insts.len().div_ceil(CHUNK_INSTS).max(1)
    }

    /// Total footprint in bytes: the header chunk plus body chunks.
    pub fn size_bytes(&self) -> u64 {
        128 * (1 + self.body_chunks() as u64)
    }

    /// The body instruction at `idx`, treating indices past the end as
    /// `nop` padding.
    pub fn inst(&self, idx: u8) -> Instruction {
        self.insts.get(idx as usize).copied().unwrap_or_else(Instruction::nop)
    }

    /// Checks every static block constraint of §2.1.
    ///
    /// This performs the checks the TRIPS compiler is responsible for:
    /// target sanity, read/write banking, the store mask, the LSID
    /// budget, branch multiplicity, and producer coverage. Constraints
    /// that depend on the predicate path taken (exactly-one-branch,
    /// constant output counts) can only be checked approximately here;
    /// the simulator enforces them dynamically.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), BlockError> {
        if self.insts.len() > MAX_BLOCK_INSTS {
            return Err(BlockError::TooManyInsts);
        }

        // Branch multiplicity.
        let branches: Vec<&Instruction> =
            self.insts.iter().filter(|i| i.opcode.is_branch()).collect();
        if branches.is_empty() {
            return Err(BlockError::NoBranch);
        }
        if branches.iter().filter(|b| b.pred == Pred::None).count() > 1 {
            return Err(BlockError::MultipleUnpredicatedBranches);
        }

        // LSID budget and store-mask consistency.
        let mut lsids_used = 0u32;
        for i in &self.insts {
            if i.opcode.is_load() || i.opcode.is_store() {
                lsids_used |= 1 << i.lsid;
                let in_mask = self.header.store_mask & (1 << i.lsid) != 0;
                if i.opcode.is_store() != in_mask {
                    return Err(BlockError::StoreMaskMismatch { lsid: i.lsid });
                }
            }
        }
        if lsids_used.count_ones() > 32 {
            return Err(BlockError::TooManyMemoryOps);
        }
        let orphan = self.header.store_mask & !lsids_used;
        if orphan != 0 {
            return Err(BlockError::OrphanStoreMaskBit { lsid: orphan.trailing_zeros() as u8 });
        }

        // Target sanity, and producer coverage for every needed operand.
        let mut produced = vec![[false; 3]; self.insts.len()];
        let check_target =
            |from: u16, t: Target| -> Result<Option<(u8, OperandSlot)>, BlockError> {
                match t {
                    Target::None => Ok(None),
                    Target::Write { slot } => {
                        if self.header.writes[slot as usize].is_none() {
                            Err(BlockError::TargetInvalidWrite { slot })
                        } else {
                            Ok(None)
                        }
                    }
                    Target::Inst { idx, slot } => {
                        let Some(consumer) = self.insts.get(idx as usize) else {
                            return Err(BlockError::DanglingTarget { from, target: t });
                        };
                        if consumer.is_nop() {
                            return Err(BlockError::DanglingTarget { from, target: t });
                        }
                        match slot {
                            OperandSlot::Predicate if consumer.pred == Pred::None => {
                                return Err(BlockError::PredicateOfUnpredicated { target: t });
                            }
                            OperandSlot::Left if consumer.opcode.needs() == OperandNeeds::None => {
                                return Err(BlockError::UselessOperand { target: t });
                            }
                            OperandSlot::Right
                                if consumer.opcode.needs() != OperandNeeds::LeftRight =>
                            {
                                return Err(BlockError::UselessOperand { target: t });
                            }
                            _ => {}
                        }
                        Ok(Some((idx, slot)))
                    }
                }
            };

        for (n, i) in self.insts.iter().enumerate() {
            if i.is_nop() {
                continue;
            }
            let max_targets = match i.opcode.format() {
                crate::Format::G => 2,
                crate::Format::I | crate::Format::L | crate::Format::C => 1,
                crate::Format::S | crate::Format::B => 0,
            };
            if i.live_targets().count() > max_targets {
                return Err(BlockError::TooManyTargets { idx: n as u8 });
            }
            for t in i.live_targets() {
                if let Some((idx, slot)) = check_target(n as u16, t)? {
                    produced[idx as usize][slot_index(slot)] = true;
                }
            }
        }
        for (s, r) in self.header.reads.iter().enumerate() {
            let Some(r) = r else { continue };
            for t in r.targets.iter().copied().filter(|t| !t.is_none()) {
                if let Some((idx, slot)) = check_target(128 + s as u16, t)? {
                    produced[idx as usize][slot_index(slot)] = true;
                }
            }
        }

        for (n, i) in self.insts.iter().enumerate() {
            if i.is_nop() {
                continue;
            }
            let needs = i.opcode.needs();
            if matches!(needs, OperandNeeds::Left | OperandNeeds::LeftRight)
                && !produced[n][slot_index(OperandSlot::Left)]
            {
                return Err(BlockError::MissingProducer { idx: n as u8, slot: OperandSlot::Left });
            }
            if needs == OperandNeeds::LeftRight && !produced[n][slot_index(OperandSlot::Right)] {
                return Err(BlockError::MissingProducer { idx: n as u8, slot: OperandSlot::Right });
            }
            if i.pred != Pred::None && !produced[n][slot_index(OperandSlot::Predicate)] {
                return Err(BlockError::DeadInstruction { idx: n as u8 });
            }
        }

        Ok(())
    }

    /// Count of dynamic useful (non-`nop`) instructions in the body.
    pub fn useful_insts(&self) -> usize {
        self.insts.iter().filter(|i| !i.is_nop()).count()
    }
}

fn slot_index(slot: OperandSlot) -> usize {
    match slot {
        OperandSlot::Left => 0,
        OperandSlot::Right => 1,
        OperandSlot::Predicate => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    fn minimal_block() -> TripsBlock {
        let mut b = TripsBlock::new();
        b.push(Instruction::branch(Opcode::Bro, 0, 1)).unwrap();
        b
    }

    #[test]
    fn minimal_block_validates() {
        assert_eq!(minimal_block().validate(), Ok(()));
    }

    #[test]
    fn no_branch_rejected() {
        let mut b = TripsBlock::new();
        b.push(Instruction::movi(1, [Target::none(), Target::none()])).unwrap();
        assert_eq!(b.validate(), Err(BlockError::NoBranch));
    }

    #[test]
    fn two_unpredicated_branches_rejected() {
        let mut b = minimal_block();
        b.push(Instruction::branch(Opcode::Bro, 1, 2)).unwrap();
        assert_eq!(b.validate(), Err(BlockError::MultipleUnpredicatedBranches));
    }

    #[test]
    fn predicated_branch_pair_accepted() {
        let mut b = TripsBlock::new();
        b.push(Instruction::movi(0, [Target::left(1), Target::none()])).unwrap();
        b.push(Instruction::op(Opcode::Mov, [Target::pred(2), Target::pred(3)])).unwrap();
        b.push(Instruction::branch(Opcode::Bro, 0, 1).with_pred(Pred::OnTrue)).unwrap();
        b.push(Instruction::branch(Opcode::Bro, 1, 2).with_pred(Pred::OnFalse)).unwrap();
        assert_eq!(b.validate(), Ok(()));
    }

    #[test]
    fn too_many_targets_rejected() {
        let mut b = minimal_block();
        // movi is I-format: only T0 exists.
        b.push(Instruction {
            opcode: Opcode::Movi,
            pred: Pred::None,
            targets: [Target::left(2), Target::right(2)],
            imm: 0,
            lsid: 0,
            exit: 0,
        })
        .unwrap();
        b.push(Instruction::op(Opcode::Add, [Target::none(), Target::none()])).unwrap();
        assert_eq!(b.validate(), Err(BlockError::TooManyTargets { idx: 1 }));
    }

    #[test]
    fn store_mask_mismatch_detected() {
        let mut b = minimal_block();
        b.push(Instruction::op(Opcode::Null, [Target::left(2), Target::right(2)])).unwrap();
        b.push(Instruction::store(Opcode::Sw, 3, 0)).unwrap();
        // mask does not contain lsid 3
        assert_eq!(b.validate(), Err(BlockError::StoreMaskMismatch { lsid: 3 }));
        b.header.store_mask = 1 << 3;
        assert_eq!(b.validate(), Ok(()));
        // orphan bit
        b.header.store_mask |= 1 << 7;
        assert_eq!(b.validate(), Err(BlockError::OrphanStoreMaskBit { lsid: 7 }));
    }

    #[test]
    fn dangling_target_detected() {
        let mut b = minimal_block();
        b.push(Instruction::movi(0, [Target::left(99), Target::none()])).unwrap();
        assert!(matches!(b.validate(), Err(BlockError::DanglingTarget { .. })));
    }

    #[test]
    fn predicate_of_unpredicated_detected() {
        let mut b = minimal_block();
        b.push(Instruction::movi(0, [Target::pred(2), Target::none()])).unwrap();
        b.push(Instruction::movi(1, [Target::none(), Target::none()])).unwrap();
        assert!(matches!(b.validate(), Err(BlockError::PredicateOfUnpredicated { .. })));
    }

    #[test]
    fn missing_producer_detected() {
        let mut b = minimal_block();
        // add needs left+right but nothing targets it
        b.push(Instruction::op(Opcode::Add, [Target::none(), Target::none()])).unwrap();
        assert_eq!(
            b.validate(),
            Err(BlockError::MissingProducer { idx: 1, slot: OperandSlot::Left })
        );
    }

    #[test]
    fn useless_operand_detected() {
        let mut b = minimal_block();
        // movi takes no inputs; feeding its left operand is a bug
        b.push(Instruction::movi(0, [Target::left(2), Target::none()])).unwrap();
        b.push(Instruction::movi(1, [Target::none(), Target::none()])).unwrap();
        assert!(matches!(b.validate(), Err(BlockError::UselessOperand { .. })));
    }

    #[test]
    fn bank_mismatch_rejected() {
        let mut b = TripsBlock::new();
        // slot 0 is bank 0, register 40 is bank 1
        let err = b.set_read(0, ReadInst::new(ArchReg::new(40), [Target::none(); 2]));
        assert!(matches!(err, Err(BlockError::BankMismatch { .. })));
        assert!(b.set_read(8, ReadInst::new(ArchReg::new(40), [Target::none(); 2])).is_ok());
    }

    #[test]
    fn write_target_requires_valid_write() {
        let mut b = minimal_block();
        b.push(Instruction::movi(0, [Target::write(4), Target::none()])).unwrap();
        assert_eq!(b.validate(), Err(BlockError::TargetInvalidWrite { slot: 4 }));
        b.set_write(4, WriteInst::new(ArchReg::new(4))).unwrap();
        assert_eq!(b.validate(), Ok(()));
    }

    #[test]
    fn size_accounting() {
        let b = minimal_block();
        assert_eq!(b.body_chunks(), 1);
        assert_eq!(b.size_bytes(), 256);
        let mut big = TripsBlock::new();
        for _ in 0..33 {
            big.push(Instruction::nop()).unwrap();
        }
        assert_eq!(big.body_chunks(), 2);
        assert_eq!(big.size_bytes(), 384);
    }

    #[test]
    fn push_limit() {
        let mut b = TripsBlock::new();
        for _ in 0..128 {
            b.push(Instruction::nop()).unwrap();
        }
        assert_eq!(b.push(Instruction::nop()), Err(BlockError::TooManyInsts));
    }

    #[test]
    fn output_counts() {
        let mut b = TripsBlock::new();
        b.set_write(0, WriteInst::new(ArchReg::new(1))).unwrap();
        b.set_write(9, WriteInst::new(ArchReg::new(33))).unwrap();
        b.header.store_mask = 0b101;
        assert_eq!(b.header.write_count(), 2);
        assert_eq!(b.header.store_count(), 2);
    }
}
