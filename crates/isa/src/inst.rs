//! Instruction words, targets, and predicates.

use std::fmt;

use crate::opcode::{Format, Opcode};

/// One of the three operand slots of a reservation station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperandSlot {
    /// The left (first) data operand.
    Left,
    /// The right (second) data operand.
    Right,
    /// The one-bit predicate operand.
    Predicate,
}

impl fmt::Display for OperandSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OperandSlot::Left => "L",
            OperandSlot::Right => "R",
            OperandSlot::Predicate => "P",
        })
    }
}

/// A 9-bit target specifier: where a producer's result is delivered.
///
/// Targets are how EDGE instructions communicate directly: instead of
/// naming an output register, an instruction names up to two consumers.
/// A consumer is either an operand slot of another instruction in the
/// same block, or one of the block's 32 register-write slots.
///
/// The raw encoding is:
///
/// | bits `[8:7]` | meaning                                  |
/// |--------------|------------------------------------------|
/// | `01`         | predicate of instruction `[6:0]`         |
/// | `10`         | left operand of instruction `[6:0]`      |
/// | `11`         | right operand of instruction `[6:0]`     |
/// | `00`         | `0` = no target; `0b0_01sssss` = write slot `s` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Target {
    /// No target (unused target field).
    #[default]
    None,
    /// An operand slot of instruction `idx` (0..128) in the same block.
    Inst {
        /// Index of the consumer within the block body.
        idx: u8,
        /// Which operand slot of the consumer receives the value.
        slot: OperandSlot,
    },
    /// Register-write slot `0..32` in the block header.
    Write {
        /// The write-queue slot number.
        slot: u8,
    },
}

impl Target {
    /// Target the left operand of body instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 128`.
    pub fn left(idx: u8) -> Target {
        assert!(idx < 128, "instruction index out of range: {idx}");
        Target::Inst { idx, slot: OperandSlot::Left }
    }

    /// Target the right operand of body instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 128`.
    pub fn right(idx: u8) -> Target {
        assert!(idx < 128, "instruction index out of range: {idx}");
        Target::Inst { idx, slot: OperandSlot::Right }
    }

    /// Target the predicate operand of body instruction `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 128`.
    pub fn pred(idx: u8) -> Target {
        assert!(idx < 128, "instruction index out of range: {idx}");
        Target::Inst { idx, slot: OperandSlot::Predicate }
    }

    /// Target register-write slot `slot` of the block header.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 32`.
    pub fn write(slot: u8) -> Target {
        assert!(slot < 32, "write slot out of range: {slot}");
        Target::Write { slot }
    }

    /// The absent target.
    pub fn none() -> Target {
        Target::None
    }

    /// True if this is [`Target::None`].
    pub fn is_none(self) -> bool {
        self == Target::None
    }

    /// Encode into the 9-bit field.
    pub fn to_bits(self) -> u16 {
        match self {
            Target::None => 0,
            Target::Write { slot } => 0b0_0100000 | u16::from(slot),
            Target::Inst { idx, slot } => {
                let ty = match slot {
                    OperandSlot::Predicate => 0b01,
                    OperandSlot::Left => 0b10,
                    OperandSlot::Right => 0b11,
                };
                (ty << 7) | u16::from(idx)
            }
        }
    }

    /// Decode from the 9-bit field. Returns `None` for encodings that
    /// are not valid targets (reserved patterns in type `00`).
    pub fn from_bits(bits: u16) -> Option<Target> {
        let bits = bits & 0x1ff;
        let idx = (bits & 0x7f) as u8;
        match bits >> 7 {
            0b00 => {
                if bits == 0 {
                    Some(Target::None)
                } else if idx & 0b110_0000 == 0b010_0000 {
                    Some(Target::Write { slot: idx & 0x1f })
                } else {
                    None
                }
            }
            0b01 => Some(Target::Inst { idx, slot: OperandSlot::Predicate }),
            0b10 => Some(Target::Inst { idx, slot: OperandSlot::Left }),
            0b11 => Some(Target::Inst { idx, slot: OperandSlot::Right }),
            _ => unreachable!(),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::None => f.write_str("-"),
            Target::Inst { idx, slot } => write!(f, "N[{idx},{slot}]"),
            Target::Write { slot } => write!(f, "W[{slot}]"),
        }
    }
}

/// The two-bit predicate field (`PR` in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pred {
    /// Not predicated: fires as soon as its data operands arrive.
    #[default]
    None,
    /// Fires only if the arriving predicate operand is `0`.
    OnFalse,
    /// Fires only if the arriving predicate operand is `1` (non-zero).
    OnTrue,
}

impl Pred {
    /// Encode into the 2-bit field.
    pub fn to_bits(self) -> u32 {
        match self {
            Pred::None => 0b00,
            Pred::OnFalse => 0b10,
            Pred::OnTrue => 0b11,
        }
    }

    /// Decode from the 2-bit field; `0b01` is reserved.
    pub fn from_bits(bits: u32) -> Option<Pred> {
        match bits & 0b11 {
            0b00 => Some(Pred::None),
            0b10 => Some(Pred::OnFalse),
            0b11 => Some(Pred::OnTrue),
            _ => None,
        }
    }

    /// True if this instruction waits for a predicate operand.
    pub fn is_predicated(self) -> bool {
        self != Pred::None
    }

    /// Whether a predicate value of `v` allows the instruction to fire.
    pub fn matches(self, v: u64) -> bool {
        match self {
            Pred::None => true,
            Pred::OnFalse => v == 0,
            Pred::OnTrue => v != 0,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pred::None => "",
            Pred::OnFalse => "p_f ",
            Pred::OnTrue => "p_t ",
        })
    }
}

/// One of the 128 architectural registers of a thread.
///
/// The register file is banked four ways; register `r` lives in bank
/// `r / 32` at index `r % 32` (the 5-bit `GR` field of read and write
/// instructions indexes within the bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates a register number.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 128`.
    pub fn new(r: u8) -> ArchReg {
        assert!(r < 128, "architectural register out of range: {r}");
        ArchReg(r)
    }

    /// The register number (0..128).
    pub fn num(self) -> u8 {
        self.0
    }

    /// The register bank (0..4) holding this register.
    pub fn bank(self) -> u8 {
        self.0 / 32
    }

    /// The index within the bank (0..32) — the `GR` encoding field.
    pub fn index_in_bank(self) -> u8 {
        self.0 % 32
    }

    /// Reassemble from a bank and `GR` field.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= 4` or `gr >= 32`.
    pub fn from_bank_index(bank: u8, gr: u8) -> ArchReg {
        assert!(bank < 4 && gr < 32, "bad bank {bank} / gr {gr}");
        ArchReg(bank * 32 + gr)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One decoded TRIPS body instruction.
///
/// This is the in-memory form of the 32-bit instruction word of any of
/// the six formats; which fields are meaningful depends on
/// [`Opcode::format`]. Use the constructors ([`Instruction::op`],
/// [`Instruction::opi`], [`Instruction::load`], …) rather than filling
/// fields in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The primary opcode.
    pub opcode: Opcode,
    /// The predicate condition guarding this instruction.
    pub pred: Pred,
    /// Up to two result targets (`[T0, T1]`); T1 is always `None` for
    /// the I, L, C formats which encode only T0.
    pub targets: [Target; 2],
    /// Immediate: 14-bit signed (I), 9-bit signed (L/S), 20-bit signed
    /// block offset (B), or 16-bit constant (C).
    pub imm: i32,
    /// Load/store ID giving this memory operation's position in the
    /// block's sequential memory order (L and S formats).
    pub lsid: u8,
    /// Exit number (0..8) used to build exit histories (branches).
    pub exit: u8,
}

impl Instruction {
    /// An empty slot (`nop`), which is never dispatched or executed.
    pub fn nop() -> Instruction {
        Instruction {
            opcode: Opcode::Nop,
            pred: Pred::None,
            targets: [Target::None; 2],
            imm: 0,
            lsid: 0,
            exit: 0,
        }
    }

    /// A G-format instruction with up to two targets.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not G format or is a register branch
    /// (use [`Instruction::branch_reg`]).
    pub fn op(opcode: Opcode, targets: [Target; 2]) -> Instruction {
        assert_eq!(opcode.format(), Format::G, "{opcode} is not G format");
        assert!(!opcode.is_branch(), "use branch_reg for {opcode}");
        Instruction { opcode, pred: Pred::None, targets, imm: 0, lsid: 0, exit: 0 }
    }

    /// An I-format instruction with a 14-bit signed immediate.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not I format or `imm` does not fit 14
    /// signed bits.
    pub fn opi(opcode: Opcode, imm: i32, targets: [Target; 2]) -> Instruction {
        assert_eq!(opcode.format(), Format::I, "{opcode} is not I format");
        assert!((-(1 << 13)..(1 << 13)).contains(&imm), "imm14 out of range: {imm}");
        Instruction { opcode, pred: Pred::None, targets, imm, lsid: 0, exit: 0 }
    }

    /// `movi` — generate a small signed constant.
    ///
    /// # Panics
    ///
    /// Panics if `imm` does not fit 14 signed bits.
    pub fn movi(imm: i32, targets: [Target; 2]) -> Instruction {
        Instruction::opi(Opcode::Movi, imm, targets)
    }

    /// A C-format instruction with a 16-bit constant.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not C format or `c` does not fit 16 bits.
    pub fn constant(opcode: Opcode, c: u16, target: Target) -> Instruction {
        assert_eq!(opcode.format(), Format::C, "{opcode} is not C format");
        Instruction {
            opcode,
            pred: Pred::None,
            targets: [target, Target::None],
            imm: i32::from(c),
            lsid: 0,
            exit: 0,
        }
    }

    /// An L-format load with a 9-bit signed offset.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not a load, `lsid >= 32`, or `imm` does
    /// not fit 9 signed bits.
    pub fn load(opcode: Opcode, lsid: u8, imm: i32, target: Target) -> Instruction {
        assert!(opcode.is_load(), "{opcode} is not a load");
        assert!(lsid < 32, "lsid out of range: {lsid}");
        assert!((-(1 << 8)..(1 << 8)).contains(&imm), "imm9 out of range: {imm}");
        Instruction {
            opcode,
            pred: Pred::None,
            targets: [target, Target::None],
            imm,
            lsid,
            exit: 0,
        }
    }

    /// An S-format store with a 9-bit signed offset. Stores have no
    /// targets: the address arrives left, the data right.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not a store, `lsid >= 32`, or `imm` does
    /// not fit 9 signed bits.
    pub fn store(opcode: Opcode, lsid: u8, imm: i32) -> Instruction {
        assert!(opcode.is_store(), "{opcode} is not a store");
        assert!(lsid < 32, "lsid out of range: {lsid}");
        assert!((-(1 << 8)..(1 << 8)).contains(&imm), "imm9 out of range: {imm}");
        Instruction { opcode, pred: Pred::None, targets: [Target::None; 2], imm, lsid, exit: 0 }
    }

    /// A B-format branch with an exit number and a signed block offset
    /// in units of 128 bytes, relative to the current block's header.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not B format, `exit >= 8`, or `offset`
    /// does not fit 20 signed bits.
    pub fn branch(opcode: Opcode, exit: u8, offset: i32) -> Instruction {
        assert_eq!(opcode.format(), Format::B, "{opcode} is not B format");
        assert!(exit < 8, "exit out of range: {exit}");
        assert!((-(1 << 19)..(1 << 19)).contains(&offset), "offset20 out of range: {offset}");
        Instruction {
            opcode,
            pred: Pred::None,
            targets: [Target::None; 2],
            imm: offset,
            lsid: 0,
            exit,
        }
    }

    /// A register-indirect branch (`br` / `call` / `ret`): the target
    /// block address arrives as the left operand.
    ///
    /// # Panics
    ///
    /// Panics if `opcode` is not one of `Br`, `Call`, `Ret` or
    /// `exit >= 8`.
    pub fn branch_reg(opcode: Opcode, exit: u8) -> Instruction {
        assert!(
            matches!(opcode, Opcode::Br | Opcode::Call | Opcode::Ret),
            "{opcode} is not a register branch"
        );
        assert!(exit < 8, "exit out of range: {exit}");
        Instruction { opcode, pred: Pred::None, targets: [Target::None; 2], imm: 0, lsid: 0, exit }
    }

    /// The same instruction guarded by `pred`.
    pub fn with_pred(mut self, pred: Pred) -> Instruction {
        self.pred = pred;
        self
    }

    /// True if this slot is empty.
    pub fn is_nop(&self) -> bool {
        self.opcode == Opcode::Nop
    }

    /// Iterator over the non-`None` targets.
    pub fn live_targets(&self) -> impl Iterator<Item = Target> + '_ {
        self.targets.iter().copied().filter(|t| !t.is_none())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nop() {
            return f.write_str("nop");
        }
        write!(f, "{}{}", self.pred, self.opcode)?;
        match self.opcode.format() {
            Format::G => {}
            Format::I | Format::C => write!(f, " #{}", self.imm)?,
            Format::L | Format::S => write!(f, " #{} [lsid={}]", self.imm, self.lsid)?,
            Format::B => write!(f, " exit={} offset={}", self.exit, self.imm)?,
        }
        for t in self.live_targets() {
            write!(f, " {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_bits_roundtrip() {
        for bits in 0u16..512 {
            if let Some(t) = Target::from_bits(bits) {
                assert_eq!(t.to_bits(), bits, "raw {bits:#x}");
            }
        }
    }

    #[test]
    fn target_constructors() {
        assert_eq!(Target::left(5), Target::Inst { idx: 5, slot: OperandSlot::Left });
        assert_eq!(Target::write(31).to_bits(), 0b0_0111111);
        assert!(Target::none().is_none());
        assert_eq!(Target::from_bits(0), Some(Target::None));
        // Reserved type-00 patterns decode to None-the-Option.
        assert_eq!(Target::from_bits(1), None);
        assert_eq!(Target::from_bits(0b0_1000000), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn target_rejects_big_index() {
        let _ = Target::left(128);
    }

    #[test]
    fn pred_bits() {
        for p in [Pred::None, Pred::OnFalse, Pred::OnTrue] {
            assert_eq!(Pred::from_bits(p.to_bits()), Some(p));
        }
        assert_eq!(Pred::from_bits(0b01), None);
        assert!(Pred::OnTrue.matches(1));
        assert!(!Pred::OnTrue.matches(0));
        assert!(Pred::OnFalse.matches(0));
        assert!(Pred::None.matches(17));
    }

    #[test]
    fn arch_reg_banking() {
        let r = ArchReg::new(37);
        assert_eq!(r.bank(), 1);
        assert_eq!(r.index_in_bank(), 5);
        assert_eq!(ArchReg::from_bank_index(1, 5), r);
        assert_eq!(ArchReg::new(0).bank(), 0);
        assert_eq!(ArchReg::new(127).bank(), 3);
    }

    #[test]
    fn display_forms() {
        let i = Instruction::opi(Opcode::Muli, 4, [Target::left(32), Target::none()])
            .with_pred(Pred::OnFalse);
        assert_eq!(i.to_string(), "p_f muli #4 N[32,L]");
        let s = Instruction::store(Opcode::Sw, 1, 0);
        assert_eq!(s.to_string(), "sw #0 [lsid=1]");
        assert_eq!(Instruction::nop().to_string(), "nop");
    }

    #[test]
    fn live_targets_skips_none() {
        let i = Instruction::op(Opcode::Add, [Target::none(), Target::right(3)]);
        let ts: Vec<_> = i.live_targets().collect();
        assert_eq!(ts, vec![Target::right(3)]);
    }
}
