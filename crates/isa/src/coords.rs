//! The implicit mapping from instruction position to hardware
//! coordinates.
//!
//! "A microarchitecture supporting this ISA maps each of a block's 128
//! instructions to particular coordinates" (§2.2). In the prototype the
//! coordinates are implied by the instruction's position: body chunk
//! `c` is dispatched to ET row `c`, and within a chunk the 32
//! instructions stripe across the row's four ETs, eight reservation
//! stations per ET per block.

/// Number of architectural registers per thread.
pub const ARCH_REGS: usize = 128;
/// Number of register banks (register tiles).
pub const REG_BANKS: usize = 4;
/// Registers per bank.
pub const REGS_PER_BANK: usize = 32;

/// Grid coordinates of an execution tile (row 0..4, col 0..4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EtCoord {
    /// ET row, equal to the body chunk number (0..4).
    pub row: u8,
    /// ET column within the row (0..4).
    pub col: u8,
}

/// The full placement of one instruction: which ET and which of the
/// per-block reservation-station slots it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstSlot {
    /// The execution tile.
    pub et: EtCoord,
    /// Reservation-station slot within the ET for this block (0..8).
    pub slot: u8,
}

impl InstSlot {
    /// The placement of body instruction `idx` (0..128).
    ///
    /// Chunk `idx / 32` selects the ET row; within the chunk,
    /// instruction `p` goes to column `p % 4`, slot `p / 4`. This makes
    /// consecutive indices land on consecutive columns, matching the
    /// ITs' ability to deliver four instructions per cycle across a
    /// row (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 128`.
    pub fn from_index(idx: u8) -> InstSlot {
        assert!(idx < 128, "instruction index out of range: {idx}");
        let chunk = idx / 32;
        let p = idx % 32;
        InstSlot { et: EtCoord { row: chunk, col: p % 4 }, slot: p / 4 }
    }

    /// The inverse of [`InstSlot::from_index`].
    pub fn to_index(self) -> u8 {
        self.et.row * 32 + self.slot * 4 + self.et.col
    }
}

/// The register bank (register tile) that holds read-queue slot
/// `slot` (0..32): slots stripe eight-per-bank, matching the 8-entry
/// per-block read queue of each RT (§3.3).
///
/// # Panics
///
/// Panics if `slot >= 32`.
pub fn read_slot_bank(slot: u8) -> u8 {
    assert!(slot < 32, "read slot out of range: {slot}");
    slot / 8
}

/// The register bank (register tile) that holds write-queue slot
/// `slot` (0..32).
///
/// # Panics
///
/// Panics if `slot >= 32`.
pub fn write_slot_bank(slot: u8) -> u8 {
    assert!(slot < 32, "write slot out of range: {slot}");
    slot / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_slot_roundtrip() {
        for i in 0u8..128 {
            assert_eq!(InstSlot::from_index(i).to_index(), i);
        }
    }

    #[test]
    fn chunk_maps_to_row() {
        assert_eq!(InstSlot::from_index(0).et, EtCoord { row: 0, col: 0 });
        assert_eq!(InstSlot::from_index(3).et, EtCoord { row: 0, col: 3 });
        assert_eq!(InstSlot::from_index(4).et, EtCoord { row: 0, col: 0 });
        assert_eq!(InstSlot::from_index(4).slot, 1);
        assert_eq!(InstSlot::from_index(32).et, EtCoord { row: 1, col: 0 });
        assert_eq!(InstSlot::from_index(127).et, EtCoord { row: 3, col: 3 });
        assert_eq!(InstSlot::from_index(127).slot, 7);
    }

    #[test]
    fn eight_slots_per_et_per_block() {
        let mut counts = std::collections::HashMap::new();
        for i in 0u8..128 {
            *counts.entry(InstSlot::from_index(i).et).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 16);
        assert!(counts.values().all(|&c| c == 8));
    }

    #[test]
    fn slot_banks_stripe_eight_per_bank() {
        for s in 0u8..32 {
            assert_eq!(read_slot_bank(s), s / 8);
            assert_eq!(write_slot_bank(s), s / 8);
        }
    }
}
