//! Binary encoding of TRIPS blocks.
//!
//! A block occupies 128-byte chunks in memory: one header chunk plus
//! one to four body chunks (§2.1). The header chunk packs the 32 read
//! and 32 write instructions, the store mask, the block flags, and the
//! body chunk count into 32 little-endian words; each body chunk holds
//! 32 instruction words in the formats of Figure 1.

use crate::block::{BlockFlags, BlockHeader, ReadInst, TripsBlock, WriteInst};
use crate::inst::{ArchReg, Instruction, Pred, Target};
use crate::opcode::{Format, Opcode};
use crate::CHUNK_INSTS;

/// Bytes per chunk (header or body).
pub const CHUNK_BYTES: usize = 128;
/// Maximum encoded block size: a header plus four body chunks.
pub const MAX_BLOCK_BYTES: usize = CHUNK_BYTES * 5;

/// Errors from decoding block bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than a header chunk, or shorter than the header's
    /// chunk count implies.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        got: usize,
    },
    /// Header chunk count outside 1..=4.
    BadChunkCount(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Reserved target encoding.
    BadTarget(u16),
    /// Reserved predicate encoding.
    BadPred(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { expected, got } => {
                write!(f, "block truncated: expected {expected} bytes, got {got}")
            }
            DecodeError::BadChunkCount(c) => write!(f, "invalid body chunk count {c}"),
            DecodeError::BadOpcode(o) => write!(f, "unknown opcode {o:#x}"),
            DecodeError::BadTarget(t) => write!(f, "reserved target encoding {t:#x}"),
            DecodeError::BadPred(p) => write!(f, "reserved predicate encoding {p:#b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn encode_header(h: &BlockHeader, body_chunks: usize) -> [u8; CHUNK_BYTES] {
    // 64-bit meta stream distributed two bits per word.
    let mut meta = 0u64;
    meta |= u64::from(h.store_mask);
    meta |= u64::from(h.flags.bits()) << 32;
    meta |= (body_chunks as u64) << 40;

    let mut out = [0u8; CHUNK_BYTES];
    for i in 0..32 {
        let mut w = 0u32;
        if let Some(r) = h.reads[i] {
            w |= u32::from(r.targets[0].to_bits());
            w |= u32::from(r.targets[1].to_bits()) << 9;
            w |= u32::from(r.reg.index_in_bank()) << 18;
            w |= 1 << 23;
        }
        if let Some(wr) = h.writes[i] {
            w |= u32::from(wr.reg.index_in_bank()) << 24;
            w |= 1 << 29;
        }
        w |= (((meta >> (2 * i)) & 0b11) as u32) << 30;
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Decodes a header chunk, returning the header and the body chunk
/// count it declares.
///
/// # Errors
///
/// Fails if fewer than 128 bytes are supplied, the chunk count is
/// outside 1..=4, or a read target uses a reserved encoding.
pub fn decode_header(bytes: &[u8]) -> Result<(BlockHeader, usize), DecodeError> {
    if bytes.len() < CHUNK_BYTES {
        return Err(DecodeError::Truncated { expected: CHUNK_BYTES, got: bytes.len() });
    }
    let mut h = BlockHeader::default();
    let mut meta = 0u64;
    for i in 0..32 {
        let w = u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap());
        meta |= u64::from(w >> 30) << (2 * i);
        if w & (1 << 23) != 0 {
            let t0 = Target::from_bits((w & 0x1ff) as u16)
                .ok_or(DecodeError::BadTarget((w & 0x1ff) as u16))?;
            let t1 = Target::from_bits(((w >> 9) & 0x1ff) as u16)
                .ok_or(DecodeError::BadTarget(((w >> 9) & 0x1ff) as u16))?;
            let gr = ((w >> 18) & 0x1f) as u8;
            let bank = crate::coords::read_slot_bank(i as u8);
            h.reads[i] = Some(ReadInst::new(ArchReg::from_bank_index(bank, gr), [t0, t1]));
        }
        if w & (1 << 29) != 0 {
            let gr = ((w >> 24) & 0x1f) as u8;
            let bank = crate::coords::write_slot_bank(i as u8);
            h.writes[i] = Some(WriteInst::new(ArchReg::from_bank_index(bank, gr)));
        }
    }
    h.store_mask = (meta & 0xffff_ffff) as u32;
    h.flags = BlockFlags::from_bits(((meta >> 32) & 0xff) as u8);
    let chunks = ((meta >> 40) & 0b111) as u8;
    if !(1..=4).contains(&chunks) {
        return Err(DecodeError::BadChunkCount(chunks));
    }
    Ok((h, chunks as usize))
}

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn encode_inst(i: &Instruction) -> u32 {
    if i.is_nop() {
        return 0;
    }
    let mut w = u32::from(i.opcode as u8) << 25;
    let fmt = i.opcode.format();
    if fmt != Format::C {
        w |= i.pred.to_bits() << 23;
    }
    match fmt {
        Format::G => {
            w |= u32::from(i.exit & 0b111) << 18; // XOP: exit for register branches
            w |= u32::from(i.targets[1].to_bits()) << 9;
            w |= u32::from(i.targets[0].to_bits());
        }
        Format::I => {
            w |= ((i.imm as u32) & 0x3fff) << 9;
            w |= u32::from(i.targets[0].to_bits());
        }
        Format::L => {
            w |= u32::from(i.lsid) << 18;
            w |= ((i.imm as u32) & 0x1ff) << 9;
            w |= u32::from(i.targets[0].to_bits());
        }
        Format::S => {
            w |= u32::from(i.lsid) << 18;
            w |= ((i.imm as u32) & 0x1ff) << 9;
        }
        Format::B => {
            w |= u32::from(i.exit) << 20;
            w |= (i.imm as u32) & 0xf_ffff;
        }
        Format::C => {
            w |= ((i.imm as u32) & 0xffff) << 9;
            w |= u32::from(i.targets[0].to_bits());
        }
    }
    w
}

fn decode_inst(w: u32) -> Result<Instruction, DecodeError> {
    if w == 0 {
        return Ok(Instruction::nop());
    }
    let opbits = (w >> 25) as u8;
    let opcode = Opcode::from_bits(opbits).ok_or(DecodeError::BadOpcode(opbits))?;
    let fmt = opcode.format();
    let pred = if fmt == Format::C {
        Pred::None
    } else {
        Pred::from_bits(w >> 23).ok_or(DecodeError::BadPred(((w >> 23) & 0b11) as u8))?
    };
    let target = |raw: u32| -> Result<Target, DecodeError> {
        Target::from_bits((raw & 0x1ff) as u16).ok_or(DecodeError::BadTarget((raw & 0x1ff) as u16))
    };
    let mut inst = Instruction::nop();
    inst.opcode = opcode;
    inst.pred = pred;
    match fmt {
        Format::G => {
            inst.exit = ((w >> 18) & 0b111) as u8;
            inst.targets = [target(w)?, target(w >> 9)?];
        }
        Format::I => {
            inst.imm = sext((w >> 9) & 0x3fff, 14);
            inst.targets = [target(w)?, Target::None];
        }
        Format::L => {
            inst.lsid = ((w >> 18) & 0x1f) as u8;
            inst.imm = sext((w >> 9) & 0x1ff, 9);
            inst.targets = [target(w)?, Target::None];
        }
        Format::S => {
            inst.lsid = ((w >> 18) & 0x1f) as u8;
            inst.imm = sext((w >> 9) & 0x1ff, 9);
        }
        Format::B => {
            inst.exit = ((w >> 20) & 0b111) as u8;
            inst.imm = sext(w & 0xf_ffff, 20);
        }
        Format::C => {
            inst.imm = ((w >> 9) & 0xffff) as i32;
            inst.targets = [target(w)?, Target::None];
        }
    }
    Ok(inst)
}

/// Decodes one 128-byte body chunk into its 32 instructions, as an
/// instruction tile does when dispatching its chunk to its row.
///
/// # Errors
///
/// Fails on short input or reserved encodings.
pub fn decode_body_chunk(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
    if bytes.len() < CHUNK_BYTES {
        return Err(DecodeError::Truncated { expected: CHUNK_BYTES, got: bytes.len() });
    }
    (0..CHUNK_INSTS)
        .map(|s| {
            let w = u32::from_le_bytes(bytes[4 * s..4 * s + 4].try_into().unwrap());
            decode_inst(w)
        })
        .collect()
}

/// Encodes a block into its in-memory byte representation: one header
/// chunk followed by [`TripsBlock::body_chunks`] body chunks, with
/// unused body slots encoded as `nop`.
pub fn encode(block: &TripsBlock) -> Vec<u8> {
    let chunks = block.body_chunks();
    let mut out = Vec::with_capacity(CHUNK_BYTES * (1 + chunks));
    out.extend_from_slice(&encode_header(&block.header, chunks));
    for c in 0..chunks {
        for s in 0..CHUNK_INSTS {
            let idx = (c * CHUNK_INSTS + s) as u8;
            out.extend_from_slice(&encode_inst(&block.inst(idx)).to_le_bytes());
        }
    }
    out
}

/// Decodes a block from its in-memory byte representation.
///
/// Trailing `nop` padding in the last body chunk is trimmed, so a
/// block whose final instructions are explicit `nop`s will not
/// round-trip to an identical instruction count (its semantics are
/// unchanged: `nop`s are never dispatched).
///
/// # Errors
///
/// Fails on truncated input or any reserved field encoding.
pub fn decode(bytes: &[u8]) -> Result<TripsBlock, DecodeError> {
    let (header, chunks) = decode_header(bytes)?;
    let need = CHUNK_BYTES * (1 + chunks);
    if bytes.len() < need {
        return Err(DecodeError::Truncated { expected: need, got: bytes.len() });
    }
    let mut insts = Vec::with_capacity(chunks * CHUNK_INSTS);
    for c in 0..chunks {
        let base = CHUNK_BYTES * (1 + c);
        for s in 0..CHUNK_INSTS {
            let off = base + 4 * s;
            let w = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            insts.push(decode_inst(w)?);
        }
    }
    while insts.last().is_some_and(Instruction::is_nop) {
        insts.pop();
    }
    Ok(TripsBlock { header, insts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::OperandSlot;

    fn sample_block() -> TripsBlock {
        let mut b = TripsBlock::new();
        b.set_read(0, ReadInst::new(ArchReg::new(4), [Target::left(1), Target::left(2)])).unwrap();
        b.set_read(9, ReadInst::new(ArchReg::new(33), [Target::right(1), Target::none()])).unwrap();
        b.set_write(5, WriteInst::new(ArchReg::new(7))).unwrap();
        b.set_write(17, WriteInst::new(ArchReg::new(64))).unwrap();
        b.header.store_mask = 0b10;
        b.header.flags = BlockFlags::INHIBIT_SPECULATION;
        b.push(Instruction::movi(-3, [Target::right(2), Target::none()])).unwrap(); // N[0]
        b.push(
            Instruction::op(Opcode::Add, [Target::write(5), Target::pred(3)]).with_pred(Pred::None),
        )
        .unwrap(); // N[1] — pred target checked by validate, not encode
        b.push(Instruction::op(Opcode::Mul, [Target::left(4), Target::write(17)])).unwrap(); // N[2]
        b.push(Instruction::branch(Opcode::Bro, 3, -17).with_pred(Pred::OnTrue)).unwrap(); // N[3]
        b.push(Instruction::load(Opcode::Ld, 0, -8, Target::left(5))).unwrap(); // N[4]
        b.push(Instruction::op(Opcode::Mov, [Target::left(6), Target::right(6)])).unwrap(); // N[5]
        b.push(Instruction::store(Opcode::Sd, 1, 255)).unwrap(); // N[6]
        b.push(Instruction::constant(Opcode::Genu, 0xbeef, Target::left(8))).unwrap(); // N[7]
        b.push(Instruction::op(Opcode::Sextw, [Target::none(), Target::none()])).unwrap(); // N[8]
        b.push(Instruction::branch_reg(Opcode::Ret, 5).with_pred(Pred::OnFalse)).unwrap(); // N[9]
        b
    }

    #[test]
    fn roundtrip_sample() {
        let b = sample_block();
        let bytes = encode(&b);
        assert_eq!(bytes.len(), 256);
        let back = decode(&bytes).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn header_roundtrip_preserves_meta() {
        let b = sample_block();
        let bytes = encode(&b);
        let (h, chunks) = decode_header(&bytes).unwrap();
        assert_eq!(chunks, 1);
        assert_eq!(h.store_mask, 0b10);
        assert!(h.flags.contains(BlockFlags::INHIBIT_SPECULATION));
        assert_eq!(h.reads[0].unwrap().reg, ArchReg::new(4));
        assert_eq!(h.reads[9].unwrap().reg, ArchReg::new(33));
        assert_eq!(h.writes[17].unwrap().reg, ArchReg::new(64));
    }

    #[test]
    fn four_chunk_block() {
        let mut b = TripsBlock::new();
        for i in 0..127 {
            b.push(Instruction::movi(i % 100, [Target::none(), Target::none()])).unwrap();
        }
        b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
        let bytes = encode(&b);
        assert_eq!(bytes.len(), 640);
        assert_eq!(decode(&bytes).unwrap(), b);
    }

    #[test]
    fn trailing_nops_trimmed() {
        let mut b = TripsBlock::new();
        b.push(Instruction::branch(Opcode::Bro, 0, 1)).unwrap();
        b.push(Instruction::nop()).unwrap();
        let back = decode(&encode(&b)).unwrap();
        assert_eq!(back.insts.len(), 1);
    }

    #[test]
    fn truncation_detected() {
        let b = sample_block();
        let bytes = encode(&b);
        assert!(matches!(decode(&bytes[..100]), Err(DecodeError::Truncated { .. })));
        assert!(matches!(decode(&bytes[..200]), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn bad_chunk_count_detected() {
        let b = sample_block();
        let mut bytes = encode(&b);
        // Zero out the chunk-count meta bits (meta bits 40..43 live in
        // words 20 and 21, top two bits each).
        for w in [20usize, 21] {
            let mut word = u32::from_le_bytes(bytes[4 * w..4 * w + 4].try_into().unwrap());
            word &= 0x3fff_ffff;
            bytes[4 * w..4 * w + 4].copy_from_slice(&word.to_le_bytes());
        }
        assert_eq!(decode(&bytes), Err(DecodeError::BadChunkCount(0)));
    }

    #[test]
    fn immediate_sign_extension() {
        for imm in [-8192i32, -1, 0, 1, 8191] {
            let i = Instruction::movi(imm, [Target::none(), Target::none()]);
            assert_eq!(decode_inst(encode_inst(&i)).unwrap().imm, imm);
        }
        for imm in [-256i32, -1, 0, 255] {
            let i = Instruction::load(Opcode::Lw, 3, imm, Target::left(0));
            assert_eq!(decode_inst(encode_inst(&i)).unwrap().imm, imm);
        }
        for off in [-524288i32, -1, 0, 524287] {
            let i = Instruction::branch(Opcode::Bro, 7, off);
            assert_eq!(decode_inst(encode_inst(&i)).unwrap().imm, off);
        }
    }

    #[test]
    fn target_slots_roundtrip_in_g_format() {
        for slot in [OperandSlot::Left, OperandSlot::Right, OperandSlot::Predicate] {
            let t = Target::Inst { idx: 77, slot };
            let i = Instruction::op(Opcode::Xor, [t, Target::write(31)]);
            assert_eq!(decode_inst(encode_inst(&i)).unwrap(), i);
        }
    }
}
