//! A sparse, paged byte memory shared by the simulators and
//! interpreters.

use std::collections::HashMap;

use crate::image::ProgramImage;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse 64-bit byte-addressed memory backed by 4 KiB pages.
///
/// Uninitialized bytes read as zero, which matches the behaviour a
/// workload sees from a zero-filled simulation DRAM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMem {
    /// An empty (all-zero) memory.
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// A memory initialized from a program image.
    pub fn from_image(image: &ProgramImage) -> SparseMem {
        let mut m = SparseMem::new();
        m.load_image(image);
        m
    }

    /// Copies every segment of `image` into memory.
    pub fn load_image(&mut self, image: &ProgramImage) {
        for seg in image.segments() {
            self.write_bytes(seg.base, &seg.data);
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & (PAGE_SIZE as u64 - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & (PAGE_SIZE as u64 - 1)) as usize] = val;
    }

    /// Reads `n <= 8` bytes little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn read_uint(&self, addr: u64, n: u32) -> u64 {
        assert!(n <= 8, "read of {n} bytes");
        let mut v = 0u64;
        for i in (0..n as u64).rev() {
            v = (v << 8) | u64::from(self.read_u8(addr + i));
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `val` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn write_uint(&mut self, addr: u64, val: u64, n: u32) {
        assert!(n <= 8, "write of {n} bytes");
        for i in 0..n as u64 {
            self.write_u8(addr + i, (val >> (8 * i)) as u8);
        }
    }

    /// Reads a 64-bit little-endian word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_uint(addr, val, 8)
    }

    /// Reads `out.len()` bytes.
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) {
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes a byte slice.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Number of resident pages (for tests and stats).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Byte addresses whose contents differ between the two memories,
    /// in address order, up to `max` entries.
    ///
    /// This is a *semantic* comparison: uninitialized bytes read as
    /// zero, so a page resident in only one memory counts only its
    /// nonzero bytes — unlike derived `==`, which would flag a page
    /// that was written with zeros against one never touched.
    pub fn diff(&self, other: &SparseMem, max: usize) -> Vec<u64> {
        const ZERO: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        let mut keys: Vec<u64> = self.pages.keys().chain(other.pages.keys()).copied().collect();
        keys.sort_unstable();
        keys.dedup();
        let mut out = Vec::new();
        for k in keys {
            let a = self.pages.get(&k).map_or(&ZERO, |p| &**p);
            let b = other.pages.get(&k).map_or(&ZERO, |p| &**p);
            if a == b {
                continue;
            }
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                if x != y {
                    out.push((k << PAGE_SHIFT) | i as u64);
                    if out.len() >= max {
                        return out;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_roundtrip() {
        let mut m = SparseMem::new();
        assert_eq!(m.read_u64(0xdead_beef), 0);
        m.write_u64(0x1000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(0x1000), 0xef, "little endian");
        assert_eq!(m.read_uint(0x1004, 4), 0x0123_4567);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMem::new();
        m.write_u64(0xffc, u64::MAX);
        assert_eq!(m.read_u64(0xffc), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn subword_writes_preserve_neighbors() {
        let mut m = SparseMem::new();
        m.write_u64(0, u64::MAX);
        m.write_uint(2, 0, 2);
        assert_eq!(m.read_u64(0), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn image_loading() {
        let mut img = ProgramImage::new();
        img.add_segment(0x2000, vec![1, 2, 3, 4]);
        let m = SparseMem::from_image(&img);
        assert_eq!(m.read_uint(0x2000, 4), 0x0403_0201);
    }
}
