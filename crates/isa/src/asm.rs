//! A textual assembler for single blocks, accepting the notation the
//! [`disassemble`](crate::disassemble) function emits (and Figure 5a
//! of the paper uses):
//!
//! ```text
//! R[0]  read R4 N[1,L] N[2,L]
//! N[0]  movi #0 N[1,R]
//! N[1]  teq N[2,P] N[3,P]
//! N[2]  p_f muli #4 N[32,L]
//! N[32] lw #8 [lsid=0] N[33,L]
//! N[34] sw #0 [lsid=1]
//! N[35] bro exit=0 offset=16
//! W[5]  write R7
//! ```
//!
//! Lines starting with `;` are comments. The store mask is derived
//! from the store instructions' LSIDs.

use std::collections::HashMap;

use crate::block::{ReadInst, TripsBlock, WriteInst};
use crate::inst::{ArchReg, Instruction, Pred, Target};
use crate::opcode::{Format, Opcode};

/// Errors from the textual assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

fn mnemonic_table() -> HashMap<&'static str, Opcode> {
    let mut m = HashMap::new();
    for bits in 0..128u8 {
        if let Some(op) = Opcode::from_bits(bits) {
            m.insert(op.mnemonic(), op);
        }
    }
    m
}

fn parse_target(tok: &str, line: usize) -> Result<Target, AsmError> {
    if tok == "-" {
        return Ok(Target::None);
    }
    if let Some(rest) = tok.strip_prefix("W[").and_then(|r| r.strip_suffix(']')) {
        let slot: u8 = match rest.parse() {
            Ok(s) if s < 32 => s,
            _ => return err(line, format!("bad write slot in {tok}")),
        };
        return Ok(Target::write(slot));
    }
    if let Some(rest) = tok.strip_prefix("N[").and_then(|r| r.strip_suffix(']')) {
        let (idx, slot) = rest
            .split_once(',')
            .ok_or_else(|| AsmError { line, msg: format!("expected N[idx,slot] in {tok}") })?;
        let idx: u8 = match idx.trim().parse() {
            Ok(i) if i < 128 => i,
            _ => return err(line, format!("bad instruction index in {tok}")),
        };
        return match slot.trim() {
            "L" => Ok(Target::left(idx)),
            "R" => Ok(Target::right(idx)),
            "P" => Ok(Target::pred(idx)),
            other => err(line, format!("bad operand slot '{other}' in {tok}")),
        };
    }
    err(line, format!("unrecognized target '{tok}'"))
}

fn parse_slot(prefix: &str, head: &str, line: usize) -> Result<Option<u8>, AsmError> {
    let Some(rest) = head.strip_prefix(prefix) else {
        return Ok(None);
    };
    let Some(inner) = rest.strip_suffix(']') else {
        return err(line, format!("expected {prefix}...] in '{head}'"));
    };
    match inner.parse::<u8>() {
        Ok(n) => Ok(Some(n)),
        Err(_) => err(line, format!("bad index in '{head}'")),
    }
}

/// Assembles one block from text.
///
/// The result is validated before being returned.
///
/// # Errors
///
/// Returns the first syntax or validation problem, with its line.
pub fn assemble_block(text: &str) -> Result<TripsBlock, AsmError> {
    let mnems = mnemonic_table();
    let mut block = TripsBlock::new();
    let mut body: Vec<(u8, Instruction)> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let src = raw.split(';').next().unwrap_or("").trim();
        if src.is_empty() {
            continue;
        }
        let mut toks = src.split_whitespace().peekable();
        let head = toks.next().expect("non-empty line has a token");

        if let Some(slot) = parse_slot("R[", head, line)? {
            // R[s] read Rn targets...
            match toks.next() {
                Some("read") => {}
                other => return err(line, format!("expected 'read', got {other:?}")),
            }
            let reg_tok =
                toks.next().ok_or_else(|| AsmError { line, msg: "missing register".into() })?;
            let reg = parse_reg(reg_tok, line)?;
            let mut targets = [Target::None; 2];
            for (k, t) in toks.enumerate() {
                if k >= 2 {
                    return err(line, "reads carry at most two targets");
                }
                targets[k] = parse_target(t, line)?;
            }
            block
                .set_read(slot, ReadInst::new(reg, targets))
                .map_err(|e| AsmError { line, msg: e.to_string() })?;
            continue;
        }
        if let Some(slot) = parse_slot("W[", head, line)? {
            match toks.next() {
                Some("write") => {}
                other => return err(line, format!("expected 'write', got {other:?}")),
            }
            let reg_tok =
                toks.next().ok_or_else(|| AsmError { line, msg: "missing register".into() })?;
            let reg = parse_reg(reg_tok, line)?;
            block
                .set_write(slot, WriteInst::new(reg))
                .map_err(|e| AsmError { line, msg: e.to_string() })?;
            continue;
        }
        let Some(idx) = parse_slot("N[", head, line)? else {
            return err(line, format!("expected R[..], W[..], or N[..], got '{head}'"));
        };
        if idx >= 128 {
            return err(line, format!("instruction index {idx} out of range"));
        }

        // Optional predicate prefix.
        let mut pred = Pred::None;
        if let Some(&p) = toks.peek() {
            if p == "p_t" {
                pred = Pred::OnTrue;
                toks.next();
            } else if p == "p_f" {
                pred = Pred::OnFalse;
                toks.next();
            }
        }
        let mnem = toks.next().ok_or_else(|| AsmError { line, msg: "missing mnemonic".into() })?;
        let &opcode = mnems
            .get(mnem)
            .ok_or_else(|| AsmError { line, msg: format!("unknown mnemonic '{mnem}'") })?;

        let mut imm: i32 = 0;
        let mut lsid: u8 = 0;
        let mut exit: u8 = 0;
        let mut targets: Vec<Target> = Vec::new();
        for t in toks {
            if let Some(v) = t.strip_prefix('#') {
                imm = v
                    .parse()
                    .map_err(|_| AsmError { line, msg: format!("bad immediate '{t}'") })?;
            } else if let Some(v) = t.strip_prefix("[lsid=").and_then(|r| r.strip_suffix(']')) {
                lsid = v.parse().map_err(|_| AsmError { line, msg: format!("bad lsid '{t}'") })?;
            } else if let Some(v) = t.strip_prefix("exit=") {
                exit = v.parse().map_err(|_| AsmError { line, msg: format!("bad exit '{t}'") })?;
            } else if let Some(v) = t.strip_prefix("offset=") {
                imm = v.parse().map_err(|_| AsmError { line, msg: format!("bad offset '{t}'") })?;
            } else {
                targets.push(parse_target(t, line)?);
            }
        }
        if targets.len() > 2 {
            return err(line, "at most two targets");
        }
        let mut ts = [Target::None; 2];
        for (k, t) in targets.into_iter().enumerate() {
            ts[k] = t;
        }
        let inst = Instruction { opcode, pred, targets: ts, imm, lsid, exit };
        check_ranges(&inst, line)?;
        body.push((idx, inst));
    }

    // Instructions may appear in any order; indices just name slots.
    body.sort_by_key(|(idx, _)| *idx);
    for (idx, inst) in body {
        while block.insts.len() < idx as usize {
            block.push(Instruction::nop()).map_err(|e| AsmError { line: 0, msg: e.to_string() })?;
        }
        if block.insts.len() != idx as usize {
            return err(0, format!("duplicate instruction index {idx}"));
        }
        block.push(inst).map_err(|e| AsmError { line: 0, msg: e.to_string() })?;
    }

    // Derive the store mask from the stores.
    let mut mask = 0u32;
    for i in &block.insts {
        if i.opcode.is_store() {
            mask |= 1 << i.lsid;
        }
    }
    block.header.store_mask = mask;

    block.validate().map_err(|e| AsmError { line: 0, msg: e.to_string() })?;
    Ok(block)
}

fn parse_reg(tok: &str, line: usize) -> Result<ArchReg, AsmError> {
    let Some(n) = tok.strip_prefix('R').and_then(|r| r.parse::<u8>().ok()) else {
        return err(line, format!("bad register '{tok}'"));
    };
    if n >= 128 {
        return err(line, format!("register {n} out of range"));
    }
    Ok(ArchReg::new(n))
}

fn check_ranges(inst: &Instruction, line: usize) -> Result<(), AsmError> {
    let ok = match inst.opcode.format() {
        Format::I => (-(1 << 13)..(1 << 13)).contains(&inst.imm),
        Format::L | Format::S => (-(1 << 8)..(1 << 8)).contains(&inst.imm) && inst.lsid < 32,
        Format::B => (-(1 << 19)..(1 << 19)).contains(&inst.imm) && inst.exit < 8,
        Format::C => (0..=0xffff).contains(&inst.imm),
        Format::G => inst.exit < 8,
    };
    if ok {
        Ok(())
    } else {
        err(line, format!("field out of range for {}", inst.opcode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    const FIG5A: &str = "
        ; Figure 5a of the paper
        R[0]  read R4 N[1,L] N[2,L]
        N[0]  movi #0 N[1,R]
        N[1]  teq N[2,P] N[3,P]
        N[2]  p_f muli #4 N[32,L]
        N[3]  p_t null N[34,L] N[34,R]
        N[32] lw #8 [lsid=0] N[33,L]
        N[33] mov N[34,L] N[34,R]
        N[34] sw #0 [lsid=1]
        N[35] callo exit=0 offset=16
    ";

    #[test]
    fn assembles_figure_5a() {
        let b = assemble_block(FIG5A).expect("assembles");
        assert_eq!(b.header.store_mask, 0b10);
        assert_eq!(b.useful_insts(), 8);
        assert_eq!(b.inst(2).pred, Pred::OnFalse);
        assert_eq!(b.inst(32).opcode, Opcode::Lw);
        assert_eq!(b.inst(35).exit, 0);
        assert_eq!(b.inst(35).imm, 16);
    }

    #[test]
    fn roundtrips_through_the_disassembler() {
        let b = assemble_block(FIG5A).unwrap();
        let text = disassemble(&b);
        let again = assemble_block(&text).expect("disassembly reassembles");
        assert_eq!(b, again);
    }

    #[test]
    fn reports_unknown_mnemonics_with_line() {
        let e = assemble_block("N[0] frobnicate N[1,L]\nN[1] bro offset=1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn reports_bad_targets() {
        let e = assemble_block("N[0] movi #1 N[200,L]").unwrap_err();
        assert!(e.msg.contains("instruction index"));
    }

    #[test]
    fn rejects_out_of_range_immediates() {
        let e = assemble_block("N[0] movi #99999 N[1,L]\nN[1] mov -").unwrap_err();
        assert!(e.msg.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_duplicate_indices() {
        let e = assemble_block("N[0] bro offset=1\nN[0] bro offset=2").unwrap_err();
        assert!(e.msg.contains("duplicate"), "{e}");
    }

    #[test]
    fn validation_errors_propagate() {
        // No branch at all.
        let e = assemble_block("N[0] movi #1 -").unwrap_err();
        assert!(e.msg.contains("branch"), "{e}");
    }
}
