//! Program images: encoded blocks plus data, ready to load into a
//! simulated memory.

use std::collections::BTreeMap;

use crate::block::TripsBlock;
use crate::encode::encode;
use crate::BLOCK_ALIGN;

/// A contiguous run of initialized bytes at a base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// First byte address of the segment.
    pub base: u64,
    /// The bytes.
    pub data: Vec<u8>,
}

impl Segment {
    /// Address one past the last byte.
    pub fn end(&self) -> u64 {
        self.base + self.data.len() as u64
    }
}

/// A loadable program: the entry block address plus code and data
/// segments.
///
/// Images are what the toolchain produces and what both the TRIPS core
/// and (in its own ISA's variant) the baseline simulator consume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramImage {
    /// Address of the first block to fetch.
    pub entry: u64,
    segments: BTreeMap<u64, Vec<u8>>,
}

impl ProgramImage {
    /// An empty image with entry address 0.
    pub fn new() -> ProgramImage {
        ProgramImage::default()
    }

    /// Adds raw bytes at `base`. Overlapping segments are rejected.
    ///
    /// # Panics
    ///
    /// Panics if the new segment overlaps an existing one.
    pub fn add_segment(&mut self, base: u64, data: Vec<u8>) {
        if data.is_empty() {
            return;
        }
        let end = base + data.len() as u64;
        for (&b, d) in &self.segments {
            let e = b + d.len() as u64;
            assert!(end <= b || base >= e, "segment {base:#x}..{end:#x} overlaps {b:#x}..{e:#x}");
        }
        self.segments.insert(base, data);
    }

    /// Encodes `block` and places it at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 128-byte aligned or overlaps an
    /// existing segment.
    pub fn add_block(&mut self, addr: u64, block: &TripsBlock) {
        assert_eq!(addr % BLOCK_ALIGN, 0, "block address {addr:#x} not 128-byte aligned");
        self.add_segment(addr, encode(block));
    }

    /// Iterates over the segments in address order.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.segments.iter().map(|(&base, data)| Segment { base, data: data.clone() })
    }

    /// Total initialized bytes.
    pub fn size(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    /// Reads back a byte, if initialized (mainly for tests and the
    /// loader).
    pub fn byte(&self, addr: u64) -> Option<u8> {
        let (&base, data) = self.segments.range(..=addr).next_back()?;
        data.get((addr - base) as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Instruction;
    use crate::opcode::Opcode;

    #[test]
    fn segments_stay_sorted_and_disjoint() {
        let mut img = ProgramImage::new();
        img.add_segment(0x2000, vec![1, 2, 3]);
        img.add_segment(0x1000, vec![4]);
        let segs: Vec<_> = img.segments().collect();
        assert_eq!(segs[0].base, 0x1000);
        assert_eq!(segs[1].base, 0x2000);
        assert_eq!(img.size(), 4);
        assert_eq!(img.byte(0x2001), Some(2));
        assert_eq!(img.byte(0x3000), None);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_rejected() {
        let mut img = ProgramImage::new();
        img.add_segment(0x1000, vec![0; 16]);
        img.add_segment(0x100f, vec![0]);
    }

    #[test]
    fn add_block_encodes() {
        let mut b = TripsBlock::new();
        b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
        let mut img = ProgramImage::new();
        img.entry = 0x1000;
        img.add_block(0x1000, &b);
        assert_eq!(img.size(), 256);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_block_rejected() {
        let mut b = TripsBlock::new();
        b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
        let mut img = ProgramImage::new();
        img.add_block(0x1001, &b);
    }
}
