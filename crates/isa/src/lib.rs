//! # trips-isa — the TRIPS EDGE instruction set
//!
//! This crate implements the instruction set architecture of the TRIPS
//! prototype processor, an instance of an EDGE (Explicit Data Graph
//! Execution) architecture as described in §2 of *Distributed
//! Microarchitectural Protocols in the TRIPS Prototype Processor*
//! (MICRO-39, 2006).
//!
//! The two defining EDGE properties are both first-class here:
//!
//! * **Block-atomic execution** — instructions are aggregated into
//!   [`TripsBlock`]s of up to 128 instructions that are fetched,
//!   executed, and committed as a unit. A block's outputs (up to 32
//!   register writes, up to 32 stores, exactly one branch) are declared
//!   in its header so a distributed substrate can detect completion.
//! * **Direct instruction communication** — instructions name their
//!   consumers via [`Target`] fields instead of writing registers, so a
//!   microarchitecture can route a producer's result straight to its
//!   consumers' reservation stations.
//!
//! ## Layout of a block
//!
//! A block occupies two to five 128-byte chunks in memory:
//! a *header chunk* holding up to 32 [`ReadInst`]s, up to 32
//! [`WriteInst`]s, the 32-bit store mask, the block flags, and the body
//! chunk count; and one to four *body chunks* of 32 encoded
//! instructions each. [`encode`] and [`decode`] convert between
//! [`TripsBlock`] and this binary layout.
//!
//! ## Example
//!
//! Build the example block of Figure 5a of the paper (a predicated
//! load/store diamond) and encode it:
//!
//! ```
//! use trips_isa::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TripsBlock::new();
//! b.set_read(0, ReadInst::new(ArchReg::new(4), [Target::left(1), Target::left(2)]))?;
//! b.push(Instruction::movi(0, [Target::right(1), Target::none()]))?;    // N[0]
//! b.push(Instruction::op(Opcode::Teq, [Target::pred(2), Target::pred(3)]))?; // N[1]
//! b.push(Instruction::with_pred(
//!     Instruction::opi(Opcode::Muli, 4, [Target::left(32), Target::none()]),
//!     Pred::OnFalse,
//! ))?;                                                                   // N[2]
//! b.push(Instruction::with_pred(
//!     Instruction::op(Opcode::Null, [Target::left(34), Target::right(34)]),
//!     Pred::OnTrue,
//! ))?;                                                                   // N[3]
//! for _ in 4..32 { b.push(Instruction::nop())?; }
//! b.push(Instruction::load(Opcode::Lw, 0, 8, Target::left(33)))?;        // N[32]
//! b.push(Instruction::op(Opcode::Mov, [Target::left(34), Target::right(34)]))?; // N[33]
//! b.push(Instruction::store(Opcode::Sw, 1, 0))?;                         // N[34]
//! b.push(Instruction::branch(Opcode::Callo, 0, 16))?;                    // N[35]
//! b.header.store_mask = 1 << 1;
//! b.validate()?;
//! let bytes = encode(&b);
//! assert_eq!(bytes.len(), 128 * 3); // header + two body chunks
//! let back = decode(&bytes)?;
//! assert_eq!(b, back);
//! # Ok(())
//! # }
//! ```

pub mod asm;
mod block;
mod coords;
mod disasm;
mod encode;
mod image;
mod inst;
pub mod mem;
mod opcode;
pub mod semantics;

pub use block::{BlockError, BlockFlags, BlockHeader, ReadInst, TripsBlock, WriteInst};
pub use coords::{
    read_slot_bank, write_slot_bank, EtCoord, InstSlot, ARCH_REGS, REGS_PER_BANK, REG_BANKS,
};
pub use disasm::disassemble;
pub use encode::{
    decode, decode_body_chunk, decode_header, encode, DecodeError, CHUNK_BYTES, MAX_BLOCK_BYTES,
};
pub use image::{ProgramImage, Segment};
pub use inst::{ArchReg, Instruction, OperandSlot, Pred, Target};
pub use opcode::{BranchKind, Format, Opcode, OperandNeeds};

/// Number of instructions in one body chunk.
pub const CHUNK_INSTS: usize = 32;
/// Maximum number of body instructions in a block.
pub const MAX_BLOCK_INSTS: usize = 128;
/// Maximum number of register read instructions in a block header.
pub const MAX_READS: usize = 32;
/// Maximum number of register write instructions in a block header.
pub const MAX_WRITES: usize = 32;
/// Maximum number of load/store IDs (and thus memory instructions that
/// may issue) per block.
pub const MAX_LSIDS: usize = 32;
/// Blocks are aligned to (and addressed in units of) this many bytes.
pub const BLOCK_ALIGN: u64 = 128;
