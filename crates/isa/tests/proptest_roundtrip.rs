//! Property tests: every well-formed block survives the binary
//! encode/decode round trip and the validator accepts what the
//! builders produce.

use proptest::prelude::*;
use trips_isa::*;

fn target_strategy(nbody: u8) -> impl Strategy<Value = Target> {
    prop_oneof![
        Just(Target::None),
        (0..nbody).prop_map(Target::left),
        (0..nbody).prop_map(Target::right),
        (0..32u8).prop_map(Target::write),
    ]
}

fn g_format() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Add),
        Just(Opcode::Sub),
        Just(Opcode::Mul),
        Just(Opcode::And),
        Just(Opcode::Or),
        Just(Opcode::Xor),
        Just(Opcode::Teq),
        Just(Opcode::Tlt),
        Just(Opcode::Fadd),
        Just(Opcode::Fmul),
    ]
}

fn inst_strategy(nbody: u8) -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (g_format(), target_strategy(nbody), target_strategy(nbody))
            .prop_map(|(op, t0, t1)| Instruction::op(op, [t0, t1])),
        (-8192i32..8192, target_strategy(nbody))
            .prop_map(|(imm, t)| Instruction::movi(imm, [t, Target::none()])),
        (0u8..32, -256i32..256, target_strategy(nbody))
            .prop_map(|(lsid, imm, t)| Instruction::load(Opcode::Ld, lsid, imm, t)),
        (0u8..32, -256i32..256)
            .prop_map(|(lsid, imm)| Instruction::store(Opcode::Sd, lsid, imm)),
        (0u8..8, -1000i32..1000)
            .prop_map(|(exit, off)| Instruction::branch(Opcode::Bro, exit, off)),
        (0u16..u16::MAX, target_strategy(nbody))
            .prop_map(|(c, t)| Instruction::constant(Opcode::Genu, c, t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode/decode is the identity on arbitrary instruction mixes
    /// (structural round trip; the blocks need not be executable).
    #[test]
    fn block_roundtrips(
        insts in prop::collection::vec(inst_strategy(96), 1..96),
        store_mask in any::<u32>(),
        flags in any::<u8>(),
    ) {
        let mut b = TripsBlock::new();
        for i in &insts {
            b.push(*i).expect("under the limit");
        }
        // A block must end with something non-nop for exact
        // round-tripping (trailing nops are trimmed by decode).
        b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
        b.header.store_mask = store_mask;
        b.header.flags = BlockFlags::from_bits(flags);
        let bytes = encode(&b);
        prop_assert_eq!(bytes.len() % CHUNK_BYTES, 0);
        prop_assert!(bytes.len() <= MAX_BLOCK_BYTES);
        let back = decode(&bytes).expect("decodes");
        prop_assert_eq!(b, back);
    }

    /// Header read/write slots round-trip with their banked registers.
    #[test]
    fn header_roundtrips(
        slots in prop::collection::vec((0u8..32, 0u8..32, 0u8..32), 1..16),
    ) {
        let mut b = TripsBlock::new();
        b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
        for (slot, gr_r, gr_w) in &slots {
            let bank = read_slot_bank(*slot);
            let reg = ArchReg::from_bank_index(bank, *gr_r);
            b.set_read(*slot, ReadInst::new(reg, [Target::none(); 2])).unwrap();
            let wreg = ArchReg::from_bank_index(bank, *gr_w);
            b.set_write(*slot, WriteInst::new(wreg)).unwrap();
        }
        let back = decode(&encode(&b)).expect("decodes");
        prop_assert_eq!(b.header, back.header);
    }

    /// The validator never panics, whatever the block shape.
    #[test]
    fn validate_never_panics(
        insts in prop::collection::vec(inst_strategy(127), 0..64),
        store_mask in any::<u32>(),
    ) {
        let mut b = TripsBlock::new();
        for i in &insts {
            let _ = b.push(*i);
        }
        b.header.store_mask = store_mask;
        let _ = b.validate(); // any Result is fine; no panic allowed
    }
}
