//! Randomized property tests: every well-formed block survives the
//! binary encode/decode round trip and the validator accepts what the
//! builders produce. (Seeded generation via `trips_harness::Rng`; the
//! environment has no crates.io access so `proptest` is unavailable.)

use trips_harness::Rng;
use trips_isa::*;

fn target(rng: &mut Rng, nbody: u8) -> Target {
    match rng.range_u8(0, 4) {
        0 => Target::None,
        1 => Target::left(rng.range_u8(0, nbody)),
        2 => Target::right(rng.range_u8(0, nbody)),
        _ => Target::write(rng.range_u8(0, 32)),
    }
}

fn g_format(rng: &mut Rng) -> Opcode {
    [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Teq,
        Opcode::Tlt,
        Opcode::Fadd,
        Opcode::Fmul,
    ][rng.range_usize(0, 10)]
}

fn inst(rng: &mut Rng, nbody: u8) -> Instruction {
    match rng.range_u8(0, 6) {
        0 => {
            let op = g_format(rng);
            let t0 = target(rng, nbody);
            let t1 = target(rng, nbody);
            Instruction::op(op, [t0, t1])
        }
        1 => {
            let imm = rng.range_i32(-8192, 8192);
            let t = target(rng, nbody);
            Instruction::movi(imm, [t, Target::none()])
        }
        2 => {
            let lsid = rng.range_u8(0, 32);
            let imm = rng.range_i32(-256, 256);
            let t = target(rng, nbody);
            Instruction::load(Opcode::Ld, lsid, imm, t)
        }
        3 => {
            let lsid = rng.range_u8(0, 32);
            let imm = rng.range_i32(-256, 256);
            Instruction::store(Opcode::Sd, lsid, imm)
        }
        4 => {
            let exit = rng.range_u8(0, 8);
            let off = rng.range_i32(-1000, 1000);
            Instruction::branch(Opcode::Bro, exit, off)
        }
        _ => {
            let c = rng.next_u32() as u16;
            let t = target(rng, nbody);
            Instruction::constant(Opcode::Genu, c, t)
        }
    }
}

/// Encode/decode is the identity on arbitrary instruction mixes
/// (structural round trip; the blocks need not be executable).
#[test]
fn block_roundtrips() {
    let mut rng = Rng::new(0x5eed_0001);
    for _ in 0..256 {
        let n = rng.range_usize(1, 96);
        let mut b = TripsBlock::new();
        for _ in 0..n {
            b.push(inst(&mut rng, 96)).expect("under the limit");
        }
        // A block must end with something non-nop for exact
        // round-tripping (trailing nops are trimmed by decode).
        b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
        b.header.store_mask = rng.next_u32();
        b.header.flags = BlockFlags::from_bits(rng.next_u32() as u8);
        let bytes = encode(&b);
        assert_eq!(bytes.len() % CHUNK_BYTES, 0);
        assert!(bytes.len() <= MAX_BLOCK_BYTES);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(b, back);
    }
}

/// Header read/write slots round-trip with their banked registers.
#[test]
fn header_roundtrips() {
    let mut rng = Rng::new(0x5eed_0002);
    for _ in 0..256 {
        let mut b = TripsBlock::new();
        b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
        for _ in 0..rng.range_usize(1, 16) {
            let slot = rng.range_u8(0, 32);
            let bank = read_slot_bank(slot);
            let reg = ArchReg::from_bank_index(bank, rng.range_u8(0, 32));
            b.set_read(slot, ReadInst::new(reg, [Target::none(); 2])).unwrap();
            let wreg = ArchReg::from_bank_index(bank, rng.range_u8(0, 32));
            b.set_write(slot, WriteInst::new(wreg)).unwrap();
        }
        let back = decode(&encode(&b)).expect("decodes");
        assert_eq!(b.header, back.header);
    }
}

/// The validator never panics, whatever the block shape.
#[test]
fn validate_never_panics() {
    let mut rng = Rng::new(0x5eed_0003);
    for _ in 0..256 {
        let mut b = TripsBlock::new();
        for _ in 0..rng.range_usize(0, 64) {
            let _ = b.push(inst(&mut rng, 127));
        }
        b.header.store_mask = rng.next_u32();
        let _ = b.validate(); // any Result is fine; no panic allowed
    }
}
