//! The EEMBC automotive subset: `a2time01`, `bezier02`, `basefp01`,
//! `rspeed01`, `tblook01` — re-implemented with the same algorithmic
//! skeletons (the EEMBC sources are not redistributable).

use trips_tasm::{Opcode, Program, ProgramBuilder};

use crate::data::{
    counted_loop, floats, load_w, ptr_loop, store_w, unroll_of, words, A, COEF, OUT,
};
use crate::Variant;

/// `a2time01`: angle-to-time conversion — tooth-wheel angle samples
/// converted to firing delays through a lookup table with linear
/// interpolation plus window checks. Integer, moderately branchy.
pub fn a2time01(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 256;
    const TBL: i64 = 64;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(61, N as usize, 1 << 16));
    // Monotone table of firing delays.
    let tbl: Vec<u64> = (0..=TBL as u64).map(|i| 1000 + i * i * 3).collect();
    p.global_words(COEF, &tbl);
    let mut f = p.func("a2time01", 0);
    counted_loop(&mut f, N, unroll_of(v, 2), |f, i, _| {
        let angle = load_w(f, A, i, 0);
        let idx = f.bini(Opcode::Srli, angle, 10); // 0..64
        let frac = f.bini(Opcode::Andi, angle, 1023);
        let lo = load_w(f, COEF, idx, 0);
        let hi = load_w(f, COEF, idx, 8);
        let d = f.sub(hi, lo);
        let dm = f.mul(d, frac);
        let dms = f.bini(Opcode::Srai, dm, 10);
        let t = f.add(lo, dms);
        // Window check: clamp into [1200, 12000] with branches.
        let out = f.fresh();
        let lo_b = f.new_block();
        let mid_b = f.new_block();
        let hi_b = f.new_block();
        let hi_chk = f.new_block();
        let j = f.new_block();
        let too_lo = f.bini(Opcode::Tlti, t, 1200);
        f.br(too_lo, lo_b, hi_chk);
        f.switch_to(lo_b);
        f.iconst_into(out, 1200);
        f.jmp(j);
        f.switch_to(hi_chk);
        let too_hi = f.bini(Opcode::Tgti, t, 12000);
        f.br(too_hi, hi_b, mid_b);
        f.switch_to(hi_b);
        f.iconst_into(out, 12000);
        f.jmp(j);
        f.switch_to(mid_b);
        f.mov_into(out, t);
        f.jmp(j);
        f.switch_to(j);
        store_w(f, OUT, i, 0, out);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `bezier02`: fixed-point cubic Bézier interpolation of four curves
/// at 64 parameter steps — polynomial evaluation, regular integer.
pub fn bezier02(v: Variant) -> (Program, Vec<u64>) {
    const CURVES: i64 = 4;
    const STEPS: i64 = 64;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(62, (CURVES * 4) as usize, 1 << 12));
    let mut f = p.func("bezier02", 0);
    counted_loop(&mut f, CURVES, 1, |f, c, _| {
        let cb = f.bini(Opcode::Slli, c, 2);
        let p0 = load_w(f, A, cb, 0);
        let p1 = load_w(f, A, cb, 8);
        let p2 = load_w(f, A, cb, 16);
        let p3 = load_w(f, A, cb, 24);
        let ob = f.bini(Opcode::Muli, c, STEPS);
        counted_loop(f, STEPS, unroll_of(v, 2), |f, s, _| {
            // t in Q6: s; (1-t) = 64 - s.
            let u = f.fresh();
            f.iconst_into(u, 64);
            let um = f.sub(u, s);
            let uu = f.mul(um, um);
            let uuu = f.mul(uu, um);
            let tt = f.mul(s, s);
            let ttt = f.mul(tt, s);
            let t0 = f.mul(uuu, p0);
            let a1 = f.mul(uu, s);
            let a13 = f.bini(Opcode::Muli, a1, 3);
            let t1 = f.mul(a13, p1);
            let a2 = f.mul(um, tt);
            let a23 = f.bini(Opcode::Muli, a2, 3);
            let t2 = f.mul(a23, p2);
            let t3 = f.mul(ttt, p3);
            let s0 = f.add(t0, t1);
            let s1 = f.add(s0, t2);
            let s2 = f.add(s1, t3);
            let b = f.bini(Opcode::Srai, s2, 18); // /64^3
            let oi = f.add(ob, s);
            store_w(f, OUT, oi, 0, b);
        });
    });
    f.halt();
    f.finish();
    (p.finish(), (0..(CURVES * STEPS) as u64).map(|i| OUT + 8 * i).collect())
}

/// `basefp01`: basic floating-point arithmetic mix over an array —
/// adds, multiplies, and a divide per element.
pub fn basefp01(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 128;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(63, N as usize, 10.0));
    let mut f = p.func("basefp01", 0);
    let c1 = f.fconst(1.5);
    let c2 = f.fconst(0.75);
    let c3 = f.fconst(3.25);
    let ap = f.iconst(A as i64);
    let op = f.iconst(OUT as i64);
    ptr_loop(&mut f, N, unroll_of(v, 8), &[(ap, 8), (op, 8)], |f, k| {
        let x = f.load(Opcode::Ld, ap, 8 * k as i32);
        let a = f.bin(Opcode::Fmul, x, c1);
        let b = f.bin(Opcode::Fadd, a, c2);
        let d = f.bin(Opcode::Fdiv, b, c3);
        let e = f.bin(Opcode::Fsub, d, x);
        let g = f.bin(Opcode::Fmul, e, e);
        f.store(Opcode::Sd, op, 8 * k as i32, g);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `rspeed01`: road-speed calculation — pulse-interval deltas
/// classified into acceleration bands with chained conditionals;
/// integer and branchy.
pub fn rspeed01(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 256;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(64, (N + 1) as usize, 5000));
    let mut f = p.func("rspeed01", 0);
    counted_loop(&mut f, N, unroll_of(v, 2), |f, i, _| {
        let t0 = load_w(f, A, i, 0);
        let t1 = load_w(f, A, i, 8);
        let dt = f.sub(t1, t0);
        // speed ~ K / max(dt, 1)
        let nonpos = f.bini(Opcode::Tlei, dt, 0);
        let fix = f.new_block();
        let go = f.new_block();
        let dts = f.fresh();
        f.br(nonpos, fix, go);
        f.switch_to(fix);
        f.iconst_into(dts, 1);
        f.jmp(go);
        f.switch_to(go);
        // When not fixed, dts must hold dt: seed it before the branch
        // is not possible with this builder flow, so use a select.
        let ones = f.fresh();
        f.iconst_into(ones, -1);
        let sel = f.mul(nonpos, ones);
        let nsel = f.un(Opcode::Not, sel);
        let one = f.fresh();
        f.iconst_into(one, 1);
        let a = f.bin(Opcode::And, one, sel);
        let b = f.bin(Opcode::And, dt, nsel);
        let denom = f.bin(Opcode::Or, a, b);
        let k = f.iconst(3_600_000);
        let speed = f.bin(Opcode::Div, k, denom);
        // Acceleration class.
        let cls = f.fresh();
        let c1b = f.new_block();
        let c2chk = f.new_block();
        let c2b = f.new_block();
        let c3chk = f.new_block();
        let c3b = f.new_block();
        let c4b = f.new_block();
        let j = f.new_block();
        let slow = f.bini(Opcode::Tlti, speed, 1000);
        f.br(slow, c1b, c2chk);
        f.switch_to(c1b);
        f.iconst_into(cls, 0);
        f.jmp(j);
        f.switch_to(c2chk);
        let med = f.bini(Opcode::Tlti, speed, 3000);
        f.br(med, c2b, c3chk);
        f.switch_to(c2b);
        f.iconst_into(cls, 1);
        f.jmp(j);
        f.switch_to(c3chk);
        let fast = f.bini(Opcode::Tlti, speed, 9000);
        f.br(fast, c3b, c4b);
        f.switch_to(c3b);
        f.iconst_into(cls, 2);
        f.jmp(j);
        f.switch_to(c4b);
        f.iconst_into(cls, 3);
        f.jmp(j);
        f.switch_to(j);
        let packed = f.bini(Opcode::Slli, cls, 32);
        let res = f.bin(Opcode::Or, packed, speed);
        store_w(f, OUT, i, 0, res);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `tblook01`: table lookup — binary search in a 64-entry sorted
/// table per query, then linear interpolation; data-dependent loop
/// trip counts drive mispredictions.
pub fn tblook01(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 128;
    const TBL: i64 = 64;
    let mut p = ProgramBuilder::new();
    // Sorted table of (key, value) pairs, keys strictly increasing.
    let mut keyvals = Vec::new();
    let mut key = 10u64;
    let mut r = crate::data::Rng::new(65);
    for _ in 0..TBL {
        keyvals.push(key);
        keyvals.push(r.below(100_000));
        key += 3 + r.below(900);
    }
    p.global_words(COEF, &keyvals);
    p.global_words(A, &words(66, N as usize, key));
    let mut f = p.func("tblook01", 0);
    if v == Variant::Hand {
        // Hand optimization: the 64-entry search is exactly six
        // halving steps, so unroll it branch-free with masked selects
        // — one big block per query instead of a data-dependent loop.
        counted_loop(&mut f, N, 1, |f, i, _| {
            let q = load_w(f, A, i, 0);
            let lo = f.fresh();
            f.iconst_into(lo, 0);
            let mut width = TBL / 2; // 32, 16, 8, 4, 2, 1
            while width >= 1 {
                let mid = f.addi(lo, width);
                let mk = f.bini(Opcode::Slli, mid, 4);
                let kb = f.iconst(COEF as i64);
                let ka = f.add(kb, mk);
                let kv = f.load(Opcode::Ld, ka, 0);
                // lo = kv <= q ? mid : lo, with mask arithmetic.
                let le = f.bin(Opcode::Tge, q, kv);
                let ones = f.iconst(-1);
                let sel = f.mul(le, ones);
                let nsel = f.un(Opcode::Not, sel);
                let a = f.bin(Opcode::And, mid, sel);
                let b = f.bin(Opcode::And, lo, nsel);
                let merged = f.bin(Opcode::Or, a, b);
                f.mov_into(lo, merged);
                width /= 2;
            }
            let lk = f.bini(Opcode::Slli, lo, 4);
            let kb2 = f.iconst(COEF as i64);
            let la = f.add(kb2, lk);
            let val = f.load(Opcode::Ld, la, 8);
            store_w(f, OUT, i, 0, val);
        });
        f.halt();
        f.finish();
        return (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect());
    }
    counted_loop(&mut f, N, 1, |f, i, _| {
        let q = load_w(f, A, i, 0);
        let lo = f.fresh();
        let hi = f.fresh();
        f.iconst_into(lo, 0);
        f.iconst_into(hi, TBL - 1);
        let head = f.new_block();
        let body = f.new_block();
        let t = f.new_block();
        let e = f.new_block();
        let out_b = f.new_block();
        f.jmp(head);
        f.switch_to(head);
        let open = f.bin(Opcode::Tlt, lo, hi);
        f.br(open, body, out_b);
        f.switch_to(body);
        let sum = f.add(lo, hi);
        let mid = f.bini(Opcode::Srai, sum, 1);
        let mk = f.bini(Opcode::Slli, mid, 4); // pairs of words
        let kb = f.iconst(COEF as i64);
        let ka = f.add(kb, mk);
        let kv = f.load(Opcode::Ld, ka, 0);
        let below = f.bin(Opcode::Tlt, kv, q);
        f.br(below, t, e);
        f.switch_to(t);
        let m1 = f.addi(mid, 1);
        f.mov_into(lo, m1);
        f.jmp(head);
        f.switch_to(e);
        f.mov_into(hi, mid);
        f.jmp(head);
        f.switch_to(out_b);
        let lk = f.bini(Opcode::Slli, lo, 4);
        let kb2 = f.iconst(COEF as i64);
        let la = f.add(kb2, lk);
        let val = f.load(Opcode::Ld, la, 8);
        store_w(f, OUT, i, 0, val);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}
