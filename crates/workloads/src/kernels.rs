//! The seven signal-processing library kernels: `cfar`, `conv`, `ct`,
//! `genalg`, `pm`, `qr`, `svd`.

use trips_tasm::{FuncBuilder, Opcode, Program, ProgramBuilder};

use crate::data::{
    counted_loop, floats, load_w, ptr_loop, store_w, unroll_of, words, A, B, COEF, OUT,
};
use crate::Variant;

/// `cfar`: constant-false-alarm-rate detection — for each range cell,
/// average the leading and lagging noise windows and flag cells above
/// a threshold multiple. Integer, window-heavy.
pub fn cfar(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 256;
    const W: i64 = 8;
    const GUARD: i64 = 2;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(51, (N + 2 * (W + GUARD)) as usize, 1000));
    let mut f = p.func("cfar", 0);
    // Pointers: leading window, cell under test, lagging window, output.
    let lp = f.iconst(A as i64);
    let cp = f.iconst((A + 8 * (W + GUARD) as u64) as i64);
    let gp = f.iconst((A + 8 * (W + 2 * GUARD + 1) as u64) as i64);
    let op = f.iconst(OUT as i64);
    match v {
        Variant::Hand => {
            // Fully unrolled windows: one block per range cell.
            ptr_loop(&mut f, N, 1, &[(lp, 8), (cp, 8), (gp, 8), (op, 8)], |f, _| {
                let noise = f.fresh();
                f.iconst_into(noise, 0);
                for w in 0..W {
                    let a = f.load(Opcode::Ld, lp, (8 * w) as i32);
                    f.bin_into(noise, Opcode::Add, noise, a);
                    let b = f.load(Opcode::Ld, gp, (8 * w) as i32);
                    f.bin_into(noise, Opcode::Add, noise, b);
                }
                let avg = f.bini(Opcode::Srai, noise, 4);
                let cell = f.load(Opcode::Ld, cp, 0);
                let thresh = f.bini(Opcode::Muli, avg, 3);
                let det = f.bin(Opcode::Tgt, cell, thresh);
                f.store(Opcode::Sd, op, 0, det);
            });
        }
        Variant::Compiled => {
            ptr_loop(&mut f, N, 1, &[(lp, 8), (cp, 8), (gp, 8), (op, 8)], |f, _| {
                let noise = f.fresh();
                f.iconst_into(noise, 0);
                counted_loop(f, W, 1, |f, w, _| {
                    let w8 = f.bini(Opcode::Slli, w, 3);
                    let la = f.add(lp, w8);
                    let a = f.load(Opcode::Ld, la, 0);
                    f.bin_into(noise, Opcode::Add, noise, a);
                    let ga = f.add(gp, w8);
                    let b = f.load(Opcode::Ld, ga, 0);
                    f.bin_into(noise, Opcode::Add, noise, b);
                });
                let avg = f.bini(Opcode::Srai, noise, 4);
                let cell = f.load(Opcode::Ld, cp, 0);
                let thresh = f.bini(Opcode::Muli, avg, 3);
                let det = f.bin(Opcode::Tgt, cell, thresh);
                f.store(Opcode::Sd, op, 0, det);
            });
        }
    }
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `conv`: 1-D convolution of a 256-sample signal with 16 taps —
/// streaming multiply-accumulate, L1-bandwidth-hungry like `vadd`.
pub fn conv(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 256;
    const TAPS: i64 = 16;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(52, (N + TAPS) as usize, 4.0));
    p.global_words(COEF, &floats(53, TAPS as usize, 1.0));
    let mut f = p.func("conv", 0);
    let xp = f.iconst(A as i64);
    let op = f.iconst(OUT as i64);
    let hbase = f.iconst(COEF as i64);
    ptr_loop(&mut f, N, 1, &[(xp, 8), (op, 8)], |f, _| {
        let acc = f.fresh();
        f.iconst_into(acc, 0);
        let xq = f.mov(xp);
        let hq = f.mov(hbase);
        ptr_loop(f, TAPS, unroll_of(v, 8), &[(xq, 8), (hq, 8)], |f, k| {
            let x = f.load(Opcode::Ld, xq, 8 * k as i32);
            let h = f.load(Opcode::Ld, hq, 8 * k as i32);
            let m = f.bin(Opcode::Fmul, x, h);
            f.bin_into(acc, Opcode::Fadd, acc, m);
        });
        f.store(Opcode::Sd, op, 0, acc);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `ct`: corner turn — a 32×32 matrix transpose; pure data movement
/// through the distributed L1.
pub fn ct(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 32;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(54, (N * N) as usize, 1 << 40));
    let mut f = p.func("ct", 0);
    let obase = f.iconst(OUT as i64);
    let sp = f.iconst(A as i64);
    counted_loop(&mut f, N, 1, |f, i, _| {
        // Source walks a row sequentially; destination walks a column.
        let i8 = f.bini(Opcode::Slli, i, 3);
        let dp = f.add(obase, i8);
        ptr_loop(f, N, unroll_of(v, 8), &[(sp, 8), (dp, 8 * N)], |f, k| {
            let x = f.load(Opcode::Ld, sp, 8 * k as i32);
            let doff = (8 * N) as i32 * k as i32;
            if doff <= 255 {
                f.store(Opcode::Sd, dp, doff, x);
            } else {
                let dq = f.addi(dp, doff as i64);
                f.store(Opcode::Sd, dq, 0, x);
            }
        });
    });
    f.halt();
    f.finish();
    (p.finish(), (0..(N * N) as u64).map(|i| OUT + 8 * i).collect())
}

/// `genalg`: one generation of a toy genetic algorithm — fitness
/// evaluation through a real function call per genome, tournament
/// selection, and crossover with an in-IR xorshift generator; branchy
/// and call-heavy.
pub fn genalg(_v: Variant) -> (Program, Vec<u64>) {
    const POP: i64 = 32;
    const GENS: i64 = 4;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(55, POP as usize, u64::MAX));
    let fitness_id = trips_tasm::FuncId(1);

    let mut f = p.func("genalg", 0);
    let seed = f.fresh();
    f.iconst_into(seed, 0x9e3779b97f4a7c15u64 as i64);
    counted_loop(&mut f, GENS, 1, |f, _g, _| {
        counted_loop(f, POP, 1, |f, i, _| {
            // Two tournament picks via xorshift.
            let rnd = |f: &mut FuncBuilder<'_>| {
                let s1 = f.bini(Opcode::Slli, seed, 13);
                let x1 = f.bin(Opcode::Xor, seed, s1);
                let s2 = f.bini(Opcode::Srli, x1, 7);
                let x2 = f.bin(Opcode::Xor, x1, s2);
                let s3 = f.bini(Opcode::Slli, x2, 17);
                let x3 = f.bin(Opcode::Xor, x2, s3);
                f.mov_into(seed, x3);
                f.bini(Opcode::Andi, x3, POP - 1)
            };
            let p1 = rnd(f);
            let p2 = rnd(f);
            let g1 = load_w(f, A, p1, 0);
            let g2 = load_w(f, A, p2, 0);
            let f1 = f.call(fitness_id, &[g1]);
            let f2 = f.call(fitness_id, &[g2]);
            // Pick the fitter parent, then crossover with the other.
            let better = f.bin(Opcode::Tge, f1, f2);
            let t = f.new_block();
            let e = f.new_block();
            let j = f.new_block();
            let win = f.fresh();
            let lose = f.fresh();
            f.br(better, t, e);
            f.switch_to(t);
            f.mov_into(win, g1);
            f.mov_into(lose, g2);
            f.jmp(j);
            f.switch_to(e);
            f.mov_into(win, g2);
            f.mov_into(lose, g1);
            f.jmp(j);
            f.switch_to(j);
            let cmask = rnd(f);
            let m1 = f.bini(Opcode::Slli, cmask, 32);
            let keep = f.bin(Opcode::And, win, m1);
            let nm = f.un(Opcode::Not, m1);
            let take = f.bin(Opcode::And, lose, nm);
            let child = f.bin(Opcode::Or, keep, take);
            store_w(f, OUT, i, 0, child);
        });
        // Copy the new population back for the next generation.
        counted_loop(f, POP, 1, |f, i, _| {
            let c = load_w(f, OUT, i, 0);
            store_w(f, A, i, 0, c);
        });
    });
    f.halt();
    f.finish();

    // fitness(g) = weighted popcount over 8-bit nibbles.
    let mut fit = p.func("fitness", 1);
    let g = fit.param(0);
    let acc = fit.fresh();
    fit.iconst_into(acc, 0);
    counted_loop(&mut fit, 8, 1, |f, k, _| {
        let sh = f.bini(Opcode::Slli, k, 3);
        let b = f.bin(Opcode::Srl, g, sh);
        let byte = f.bini(Opcode::Andi, b, 0xff);
        let w = f.addi(k, 1);
        let m = f.mul(byte, w);
        f.bin_into(acc, Opcode::Add, acc, m);
    });
    fit.ret(Some(acc));
    fit.finish();

    (p.finish(), (0..POP as u64).map(|i| OUT + 8 * i).collect())
}

/// `pm`: pattern match — correlate a 32-element template against 64
/// library vectors and record the best-matching index; MAC-dense with
/// a branchy running-max update.
pub fn pm(v: Variant) -> (Program, Vec<u64>) {
    const VECS: i64 = 64;
    const LEN: i64 = 32;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(56, (VECS * LEN) as usize, 256));
    p.global_words(B, &words(57, LEN as usize, 256));
    let mut f = p.func("pm", 0);
    let best = f.fresh();
    let best_i = f.fresh();
    f.iconst_into(best, -1);
    f.iconst_into(best_i, 0);
    counted_loop(&mut f, VECS, 1, |f, i, _| {
        let corr = f.fresh();
        f.iconst_into(corr, 0);
        let len8 = f.bini(Opcode::Muli, i, 8 * LEN);
        let abase = f.iconst(A as i64);
        let vp = f.add(abase, len8);
        let tp = f.iconst(B as i64);
        ptr_loop(f, LEN, unroll_of(v, 8), &[(vp, 8), (tp, 8)], |f, k| {
            let a = f.load(Opcode::Ld, vp, 8 * k as i32);
            let t = f.load(Opcode::Ld, tp, 8 * k as i32);
            let m = f.mul(a, t);
            f.bin_into(corr, Opcode::Add, corr, m);
        });
        let better = f.bin(Opcode::Tgt, corr, best);
        let t = f.new_block();
        let j = f.new_block();
        f.br(better, t, j);
        f.switch_to(t);
        f.mov_into(best, corr);
        f.mov_into(best_i, i);
        f.jmp(j);
        f.switch_to(j);
    });
    let z = f.iconst(0);
    store_w(&mut f, OUT, z, 0, best);
    let one = f.iconst(1);
    store_w(&mut f, OUT, one, 0, best_i);
    f.halt();
    f.finish();
    (p.finish(), vec![OUT, OUT + 8])
}

/// `qr`: QR decomposition of an 8×8 matrix by classical Gram-Schmidt —
/// serial FP with divides and square roots on the critical path.
pub fn qr(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 8;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(58, (N * N) as usize, 2.0));
    let mut f = p.func("qr", 0);
    // Q initially = A (work in place on a copy in OUT), R in COEF area
    // is not checked; OUT holds Q.
    counted_loop(&mut f, N * N, unroll_of(v, 8), |f, i, _| {
        let x = load_w(f, A, i, 0);
        store_w(f, OUT, i, 0, x);
    });
    counted_loop(&mut f, N, 1, |f, k, _| {
        // norm = sqrt(sum(Q[:,k]^2))
        let sum = f.fresh();
        f.iconst_into(sum, 0);
        counted_loop(f, N, unroll_of(v, 4), |f, r, _| {
            let ri = f.bini(Opcode::Muli, r, N);
            let qi = f.add(ri, k);
            let q = load_w(f, OUT, qi, 0);
            let sq = f.bin(Opcode::Fmul, q, q);
            f.bin_into(sum, Opcode::Fadd, sum, sq);
        });
        let norm = f.un(Opcode::Fsqrt, sum);
        counted_loop(f, N, unroll_of(v, 4), |f, r, _| {
            let ri = f.bini(Opcode::Muli, r, N);
            let qi = f.add(ri, k);
            let q = load_w(f, OUT, qi, 0);
            let d = f.bin(Opcode::Fdiv, q, norm);
            store_w(f, OUT, qi, 0, d);
        });
        // Orthogonalize the remaining columns: j in k+1..N, but the
        // loop must be countable, so run j over all N and predicate
        // with j > k (nullified work models the triangular loop).
        counted_loop(f, N, 1, |f, j, _| {
            let live = f.bin(Opcode::Tgt, j, k);
            let t = f.new_block();
            let cont = f.new_block();
            f.br(live, t, cont);
            f.switch_to(t);
            let dot = f.fresh();
            f.iconst_into(dot, 0);
            counted_loop(f, N, unroll_of(v, 4), |f, r, _| {
                let ri = f.bini(Opcode::Muli, r, N);
                let qk = f.add(ri, k);
                let qj = f.add(ri, j);
                let a = load_w(f, OUT, qk, 0);
                let b = load_w(f, OUT, qj, 0);
                let m = f.bin(Opcode::Fmul, a, b);
                f.bin_into(dot, Opcode::Fadd, dot, m);
            });
            counted_loop(f, N, unroll_of(v, 4), |f, r, _| {
                let ri = f.bini(Opcode::Muli, r, N);
                let qk = f.add(ri, k);
                let qj = f.add(ri, j);
                let a = load_w(f, OUT, qk, 0);
                let b = load_w(f, OUT, qj, 0);
                let m = f.bin(Opcode::Fmul, dot, a);
                let s = f.bin(Opcode::Fsub, b, m);
                store_w(f, OUT, qj, 0, s);
            });
            f.jmp(cont);
            f.switch_to(cont);
        });
    });
    f.halt();
    f.finish();
    (p.finish(), (0..(N * N) as u64).map(|i| OUT + 8 * i).collect())
}

/// `svd`: one sweep of one-sided Jacobi on an 8×8 matrix — FP-heavy
/// with data-dependent rotation decisions (predication-friendly
/// diamonds around divides and square roots).
pub fn svd(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 8;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(59, (N * N) as usize, 2.0));
    let mut f = p.func("svd", 0);
    counted_loop(&mut f, N * N, unroll_of(v, 8), |f, i, _| {
        let x = load_w(f, A, i, 0);
        store_w(f, OUT, i, 0, x);
    });
    let one = f.fconst(1.0);
    let eps = f.fconst(1e-9);
    counted_loop(&mut f, N - 1, 1, |f, pcol, _| {
        counted_loop(f, N, 1, |f, qcol, _| {
            let live = f.bin(Opcode::Tgt, qcol, pcol);
            let t = f.new_block();
            let cont = f.new_block();
            f.br(live, t, cont);
            f.switch_to(t);
            let (al, be, ga) = (f.fresh(), f.fresh(), f.fresh());
            f.iconst_into(al, 0);
            f.iconst_into(be, 0);
            f.iconst_into(ga, 0);
            counted_loop(f, N, unroll_of(v, 4), |f, r, _| {
                let ri = f.bini(Opcode::Muli, r, N);
                let pi = f.add(ri, pcol);
                let qi = f.add(ri, qcol);
                let a = load_w(f, OUT, pi, 0);
                let b = load_w(f, OUT, qi, 0);
                let aa = f.bin(Opcode::Fmul, a, a);
                let bb = f.bin(Opcode::Fmul, b, b);
                let ab = f.bin(Opcode::Fmul, a, b);
                f.bin_into(al, Opcode::Fadd, al, aa);
                f.bin_into(be, Opcode::Fadd, be, bb);
                f.bin_into(ga, Opcode::Fadd, ga, ab);
            });
            // Rotate only when |gamma| is significant.
            let zero = f.fconst(0.0);
            let neg = f.bin(Opcode::Flt, ga, zero);
            let tban = f.new_block();
            let tbon = f.new_block();
            let join_abs = f.new_block();
            let absg = f.fresh();
            f.br(neg, tban, tbon);
            f.switch_to(tban);
            let gneg = f.bin(Opcode::Fsub, zero, ga);
            f.mov_into(absg, gneg);
            f.jmp(join_abs);
            f.switch_to(tbon);
            f.mov_into(absg, ga);
            f.jmp(join_abs);
            f.switch_to(join_abs);
            let rotate = f.bin(Opcode::Fle, eps, absg);
            let rot = f.new_block();
            let done_pair = f.new_block();
            f.br(rotate, rot, done_pair);
            f.switch_to(rot);
            let bma = f.bin(Opcode::Fsub, be, al);
            let g2 = f.bin(Opcode::Fadd, ga, ga);
            let zeta = f.bin(Opcode::Fdiv, bma, g2);
            // t = sign(zeta) / (|zeta| + sqrt(1 + zeta^2))
            let z2 = f.bin(Opcode::Fmul, zeta, zeta);
            let z21 = f.bin(Opcode::Fadd, z2, one);
            let rt = f.un(Opcode::Fsqrt, z21);
            let zneg = f.bin(Opcode::Flt, zeta, zero);
            let za = f.new_block();
            let zb = f.new_block();
            let zj = f.new_block();
            let tval = f.fresh();
            f.br(zneg, za, zb);
            f.switch_to(za);
            let nz = f.bin(Opcode::Fsub, zero, zeta);
            let d1 = f.bin(Opcode::Fadd, nz, rt);
            let mone = f.fconst(-1.0);
            let t1 = f.bin(Opcode::Fdiv, mone, d1);
            f.mov_into(tval, t1);
            f.jmp(zj);
            f.switch_to(zb);
            let d2 = f.bin(Opcode::Fadd, zeta, rt);
            let t2 = f.bin(Opcode::Fdiv, one, d2);
            f.mov_into(tval, t2);
            f.jmp(zj);
            f.switch_to(zj);
            let t2v = f.bin(Opcode::Fmul, tval, tval);
            let c2 = f.bin(Opcode::Fadd, one, t2v);
            let crt = f.un(Opcode::Fsqrt, c2);
            let c = f.bin(Opcode::Fdiv, one, crt);
            let s = f.bin(Opcode::Fmul, c, tval);
            counted_loop(f, N, unroll_of(v, 2), |f, r, _| {
                let ri = f.bini(Opcode::Muli, r, N);
                let pi = f.add(ri, pcol);
                let qi = f.add(ri, qcol);
                let a = load_w(f, OUT, pi, 0);
                let b = load_w(f, OUT, qi, 0);
                let ca = f.bin(Opcode::Fmul, c, a);
                let sb = f.bin(Opcode::Fmul, s, b);
                let na = f.bin(Opcode::Fsub, ca, sb);
                let sa = f.bin(Opcode::Fmul, s, a);
                let cb = f.bin(Opcode::Fmul, c, b);
                let nb = f.bin(Opcode::Fadd, sa, cb);
                store_w(f, OUT, pi, 0, na);
                store_w(f, OUT, qi, 0, nb);
            });
            f.jmp(done_pair);
            f.switch_to(done_pair);
            f.jmp(cont);
            f.switch_to(cont);
        });
    });
    f.halt();
    f.finish();
    (p.finish(), (0..(N * N) as u64).map(|i| OUT + 8 * i).collect())
}
