//! # trips-workloads — the evaluation suite of Table 3
//!
//! The paper evaluates on four microbenchmarks (`dct8x8`, `sha`,
//! `matrix`, `vadd`), seven signal-processing kernels (`cfar`, `conv`,
//! `ct`, `genalg`, `pm`, `qr`, `svd`), five EEMBC programs
//! (`a2time01`, `bezier02`, `basefp01`, `rspeed01`, `tblook01`), and
//! five SPEC CPU2000 programs (`mcf`, `parser`, `bzip2`, `twolf`,
//! `mgrid`) — §5.4. The EEMBC/SPEC binaries and inputs are not
//! redistributable, so each benchmark is re-implemented here on the
//! shared IR with the same algorithmic skeleton and concurrency
//! profile (serial SHA, bandwidth-bound `vadd`/`conv`, pointer-chasing
//! `mcf`, branchy `parser`/`twolf`, regular FP `mgrid`, …), sized for
//! cycle-level simulation.
//!
//! Every workload builds from one IR at two levels of source quality:
//! [`Variant::Compiled`] (no unrolling — the immature compiler's small
//! blocks) and [`Variant::Hand`] (unrolled inner loops — the paper's
//! hand-optimized kernels). The TRIPS backend then applies the
//! matching [`Quality`]; the baseline always compiles the hand
//! variant, mirroring the paper's mature Alpha compiler.
//!
//! ```
//! use trips_workloads::suite;
//! use trips_tasm::Quality;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wl = suite::all().into_iter().find(|w| w.name == "vadd").unwrap();
//! let compiled = wl.build_trips(Quality::Hand)?;
//! assert!(compiled.stats.blocks > 0);
//! let risc = wl.build_risc()?;
//! assert!(!risc.insts.is_empty());
//! # Ok(())
//! # }
//! ```

mod data;
mod eembc;
mod kernels;
mod membound;
mod micro;
pub mod shared;
mod spec;
pub mod suite;

use trips_alpha::{compile_risc, RiscProgram};
use trips_tasm::{compile, CompiledProgram, Program, Quality, TasmError};

/// Benchmark class, as grouped in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Microbenchmarks.
    Micro,
    /// Signal-processing library kernels.
    Kernel,
    /// EEMBC subset.
    Eembc,
    /// SPEC CPU2000 stand-ins.
    Spec,
}

/// Source-quality variant: how aggressively the *source* is tuned
/// (unrolling, block-merging opportunities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Straightforward source, as an immature compiler would see it.
    Compiled,
    /// Hand-tuned source: unrolled inner loops.
    Hand,
}

impl Variant {
    /// The matching backend quality.
    pub fn quality(self) -> Quality {
        match self {
            Variant::Compiled => Quality::Compiled,
            Variant::Hand => Quality::Hand,
        }
    }
}

/// One benchmark: a generator producing the IR and the memory cells
/// that verify its result.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Table 3 name.
    pub name: &'static str,
    /// Suite grouping.
    pub class: Class,
    /// Builds the IR for a variant, returning the program and the
    /// output cells to check against the reference interpreter.
    pub gen: fn(Variant) -> (Program, Vec<u64>),
}

impl Workload {
    /// The IR and check cells for `variant`.
    pub fn ir(&self, variant: Variant) -> (Program, Vec<u64>) {
        (self.gen)(variant)
    }

    /// Compiles the TRIPS image at the given quality (the source
    /// variant follows the quality).
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn build_trips(&self, quality: Quality) -> Result<CompiledProgram, TasmError> {
        let variant = if quality == Quality::Hand { Variant::Hand } else { Variant::Compiled };
        let (prog, _) = self.ir(variant);
        compile(&prog, quality)
    }

    /// Compiles the baseline program (always from the hand variant:
    /// the paper's Alpha compiler generates "extraordinarily
    /// high-quality code").
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn build_risc(&self) -> Result<RiscProgram, Box<dyn std::error::Error>> {
        let (prog, _) = self.ir(Variant::Hand);
        Ok(compile_risc(&prog)?)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).field("class", &self.class).finish()
    }
}
