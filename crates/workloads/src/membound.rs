//! Memory-bound workloads for exercising the secondary memory system:
//! `saxpy` and `listwalk`.
//!
//! Table 3's programs were sized for L1-resident cycle simulation;
//! their working sets fit in the distributed 32KB D-cache and barely
//! touch the L2. These two deliberately overflow a single NUCA bank
//! (64KB) so that `memsweep` can expose the latency difference between
//! [`MemMode`](trips_mem::MemMode) policies and bank interleavings:
//! `saxpy` streams 128KB of input with no reuse, and `listwalk`
//! serialises a dependent pointer chase through a 64KB node pool.
//! They are registered in [`suite::memory_bound`](crate::suite::memory_bound),
//! not in the pinned Table 3 registry.

use trips_tasm::{Opcode, Program, ProgramBuilder};

use crate::data::{counted_loop, floats, ptr_loop, unroll_of, words, Rng, A, B, OUT};
use crate::Variant;

/// `saxpy`: `out[i] = alpha * a[i] + b[i]` over 8192-element `f64`
/// arrays — 128KB of streamed input (two full NUCA banks' worth), no
/// temporal reuse, so every line is a compulsory miss that rides the
/// OCN to a MemTile and usually onward to DRAM.
pub fn saxpy(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 8192;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(61, N as usize, 2.0));
    p.global_words(B, &floats(62, N as usize, 2.0));
    let mut f = p.func("saxpy", 0);
    let ap = f.iconst(A as i64);
    let bp = f.iconst(B as i64);
    let op = f.iconst(OUT as i64);
    let alpha = f.fconst(1.5);
    ptr_loop(&mut f, N, unroll_of(v, 8), &[(ap, 8), (bp, 8), (op, 8)], |f, k| {
        let x = f.load(Opcode::Ld, ap, 8 * k as i32);
        let y = f.load(Opcode::Ld, bp, 8 * k as i32);
        let m = f.bin(Opcode::Fmul, alpha, x);
        let s = f.bin(Opcode::Fadd, m, y);
        f.store(Opcode::Sd, op, 8 * k as i32, s);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `listwalk`: a dependent pointer chase through 4096 16-byte nodes
/// (64KB) linked into a single Sattolo cycle — every step's address
/// comes from the previous step's load, so fill latency is fully
/// exposed on the critical path and no amount of MSHR parallelism
/// hides it.
pub fn listwalk(v: Variant) -> (Program, Vec<u64>) {
    const NODES: usize = 4096;
    const STEPS: i64 = 4096;
    // Sattolo's algorithm: a uniformly random permutation that is one
    // single cycle, so the walk visits every node exactly once.
    let mut perm: Vec<usize> = (0..NODES).collect();
    let mut rng = Rng::new(63);
    let mut i = NODES - 1;
    while i > 0 {
        let j = rng.below(i as u64) as usize;
        perm.swap(i, j);
        i -= 1;
    }
    let vals = words(64, NODES, 1 << 32);
    let mut nodes = vec![0u64; 2 * NODES];
    for n in 0..NODES {
        nodes[2 * n] = A + 16 * perm[n] as u64;
        nodes[2 * n + 1] = vals[n];
    }
    let mut p = ProgramBuilder::new();
    p.global_words(A, &nodes);
    let mut f = p.func("listwalk", 0);
    let ptr = f.fresh();
    f.iconst_into(ptr, A as i64);
    let acc = f.fresh();
    f.iconst_into(acc, 0);
    counted_loop(&mut f, STEPS, unroll_of(v, 8), |f, _i, _k| {
        let nxt = f.load(Opcode::Ld, ptr, 0);
        let val = f.load(Opcode::Ld, ptr, 8);
        f.bin_into(acc, Opcode::Add, acc, val);
        f.mov_into(ptr, nxt);
    });
    let op = f.iconst(OUT as i64);
    f.store(Opcode::Sd, op, 0, acc);
    f.store(Opcode::Sd, op, 8, ptr);
    f.halt();
    f.finish();
    (p.finish(), vec![OUT, OUT + 8])
}
