//! SPEC CPU2000 stand-ins: `mcf`, `parser`, `bzip2`, `twolf`, `mgrid`.
//!
//! The SPEC sources and reference inputs are licensed, so each program
//! here is a synthetic kernel with the same performance-relevant
//! character: `mcf` chases pointers, `parser` hashes and walks chains,
//! `bzip2` runs a serial move-to-front transform, `twolf` evaluates
//! branchy placement swaps, and `mgrid` relaxes a regular 3-D stencil.

use trips_tasm::{Opcode, Program, ProgramBuilder};

use crate::data::{
    counted_loop, floats, load_w, ptr_loop, store_w, unroll_of, words, Rng, A, B, COEF, OUT,
};
use crate::Variant;

/// `mcf`: network-simplex stand-in — three passes of pointer chasing
/// over a 1024-node randomized linked list, relaxing a cost field.
/// Memory-latency-bound with almost no ILP.
pub fn mcf(_v: Variant) -> (Program, Vec<u64>) {
    const NODES: u64 = 1024;
    const PASSES: i64 = 3;
    let mut p = ProgramBuilder::new();
    // Node layout: 16 bytes each — [next_addr, cost]. A random
    // permutation cycle defeats any prefetch-friendly order.
    let mut order: Vec<u64> = (1..NODES).collect();
    let mut r = Rng::new(71);
    for i in (1..order.len()).rev() {
        let j = (r.below(i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut chain = vec![0u64; NODES as usize];
    let mut cur = 0usize;
    for &n in &order {
        chain[cur] = n;
        cur = n as usize;
    }
    chain[cur] = 0; // close the cycle
    let mut cells = Vec::with_capacity(2 * NODES as usize);
    for (i, &nxt) in chain.iter().enumerate() {
        cells.push(A + nxt * 16);
        cells.push(r.below(1000) + i as u64);
    }
    p.global_words(A, &cells);

    let mut f = p.func("mcf", 0);
    let total = f.fresh();
    f.iconst_into(total, 0);
    counted_loop(&mut f, PASSES, 1, |f, pass, _| {
        let node = f.fresh();
        f.iconst_into(node, A as i64);
        counted_loop(f, NODES as i64, 1, |f, _i, _| {
            let cost = f.load(Opcode::Ld, node, 8);
            let adj = f.add(cost, pass);
            let red = f.bini(Opcode::Andi, adj, 0xffff);
            f.store(Opcode::Sd, node, 8, red);
            f.bin_into(total, Opcode::Add, total, red);
            let nxt = f.load(Opcode::Ld, node, 0);
            f.mov_into(node, nxt);
        });
    });
    let z = f.iconst(0);
    store_w(&mut f, OUT, z, 0, total);
    f.halt();
    f.finish();
    (p.finish(), vec![OUT])
}

/// `parser`: dictionary lookup — hash 256 words and walk bucket
/// chains comparing keys; control-flow-heavy with unpredictable
/// branches, like link-grammar parsing's dictionary phase.
pub fn parser(_v: Variant) -> (Program, Vec<u64>) {
    const QUERIES: i64 = 192;
    const BUCKETS: u64 = 32;
    const WORDS: u64 = 128;
    let mut p = ProgramBuilder::new();
    let mut r = Rng::new(72);
    // Dictionary: WORDS entries of [key, next_index+1] chained into
    // buckets; bucket heads hold index+1 (0 = empty).
    let keys: Vec<u64> = (0..WORDS).map(|_| r.next_u64() >> 16).collect();
    let mut heads = vec![0u64; BUCKETS as usize];
    let mut entries = vec![0u64; 2 * WORDS as usize];
    for (i, &k) in keys.iter().enumerate() {
        let b = (k % BUCKETS) as usize;
        entries[2 * i] = k;
        entries[2 * i + 1] = heads[b];
        heads[b] = i as u64 + 1;
    }
    p.global_words(COEF, &heads);
    p.global_words(A, &entries);
    // Queries: a mix of present and absent keys.
    let queries: Vec<u64> = (0..QUERIES)
        .map(|i| if i % 3 == 0 { r.next_u64() >> 16 } else { keys[(r.below(WORDS)) as usize] })
        .collect();
    p.global_words(B, &queries);

    let mut f = p.func("parser", 0);
    let hits = f.fresh();
    f.iconst_into(hits, 0);
    counted_loop(&mut f, QUERIES, 1, |f, qi, _| {
        let q = load_w(f, B, qi, 0);
        let b = f.bini(Opcode::Modi, q, BUCKETS as i64);
        let cur = f.fresh();
        let head = load_w(f, COEF, b, 0);
        f.mov_into(cur, head);
        let loop_h = f.new_block();
        let body = f.new_block();
        let hit = f.new_block();
        let miss_step = f.new_block();
        let done = f.new_block();
        f.jmp(loop_h);
        f.switch_to(loop_h);
        let live = f.bini(Opcode::Tnei, cur, 0);
        f.br(live, body, done);
        f.switch_to(body);
        let idx = f.addi(cur, -1);
        let eb = f.bini(Opcode::Slli, idx, 4);
        let ab = f.iconst(A as i64);
        let ea = f.add(ab, eb);
        let k = f.load(Opcode::Ld, ea, 0);
        let eq = f.bin(Opcode::Teq, k, q);
        f.br(eq, hit, miss_step);
        f.switch_to(hit);
        f.bini_into(hits, Opcode::Addi, hits, 1);
        f.jmp(done);
        f.switch_to(miss_step);
        let nxt = f.load(Opcode::Ld, ea, 8);
        f.mov_into(cur, nxt);
        f.jmp(loop_h);
        f.switch_to(done);
    });
    let z = f.iconst(0);
    store_w(&mut f, OUT, z, 0, hits);
    f.halt();
    f.finish();
    (p.finish(), vec![OUT])
}

/// `bzip2`: move-to-front transform over a 2 KB buffer with a
/// 64-symbol alphabet — the data-dependent search and shift loops are
/// serial and branchy, like the compressor's entropy stage.
pub fn bzip2(_v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 512;
    const SYMS: i64 = 64;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(73, N as usize, SYMS as u64));
    // MTF list initialized 0..SYMS in scratch.
    p.global_words(B, &(0..SYMS as u64).collect::<Vec<_>>());
    let mut f = p.func("bzip2", 0);
    counted_loop(&mut f, N, 1, |f, i, _| {
        let sym = load_w(f, A, i, 0);
        // Find the symbol's rank by linear search.
        let rank = f.fresh();
        f.iconst_into(rank, 0);
        let head = f.new_block();
        let step = f.new_block();
        let found = f.new_block();
        f.jmp(head);
        f.switch_to(head);
        let v = load_w(f, B, rank, 0);
        let eq = f.bin(Opcode::Teq, v, sym);
        f.br(eq, found, step);
        f.switch_to(step);
        f.bini_into(rank, Opcode::Addi, rank, 1);
        f.jmp(head);
        f.switch_to(found);
        store_w(f, OUT, i, 0, rank);
        // Move to front: shift list[0..rank] up by one.
        let k = f.fresh();
        f.mov_into(k, rank);
        let sh = f.new_block();
        let sb = f.new_block();
        let se = f.new_block();
        f.jmp(sh);
        f.switch_to(sh);
        let more = f.bini(Opcode::Tgti, k, 0);
        f.br(more, sb, se);
        f.switch_to(sb);
        let prev = load_w(f, B, k, -8);
        store_w(f, B, k, 0, prev);
        f.bini_into(k, Opcode::Addi, k, -1);
        f.jmp(sh);
        f.switch_to(se);
        let z = f.fresh();
        f.iconst_into(z, 0);
        store_w(f, B, z, 0, sym);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `twolf`: standard-cell placement stand-in — evaluate 256 proposed
/// cell swaps with absolute-value wirelength deltas and accept the
/// improving ones; short branchy computations over scattered memory.
pub fn twolf(_v: Variant) -> (Program, Vec<u64>) {
    const CELLS: u64 = 128;
    const SWAPS: i64 = 256;
    let mut p = ProgramBuilder::new();
    let mut r = Rng::new(74);
    // Cell positions (x, y) packed per cell, plus a partner net.
    let mut cells = Vec::new();
    for _ in 0..CELLS {
        cells.push(r.below(1 << 12));
        cells.push(r.below(1 << 12));
    }
    p.global_words(A, &cells);
    let pairs: Vec<u64> = (0..2 * SWAPS as u64).map(|_| r.below(CELLS)).collect();
    p.global_words(B, &pairs);
    let mut f = p.func("twolf", 0);
    let accepted = f.fresh();
    f.iconst_into(accepted, 0);
    let abs = |f: &mut trips_tasm::FuncBuilder<'_>, x: trips_tasm::VReg| {
        let neg = f.bini(Opcode::Tlti, x, 0);
        let t = f.new_block();
        let e = f.new_block();
        let j = f.new_block();
        let out = f.fresh();
        f.br(neg, t, e);
        f.switch_to(t);
        let zero = f.iconst(0);
        let n = f.sub(zero, x);
        f.mov_into(out, n);
        f.jmp(j);
        f.switch_to(e);
        f.mov_into(out, x);
        f.jmp(j);
        f.switch_to(j);
        out
    };
    counted_loop(&mut f, SWAPS, 1, |f, s, _| {
        let s2 = f.bini(Opcode::Slli, s, 1);
        let ca = load_w(f, B, s2, 0);
        let cb = load_w(f, B, s2, 8);
        let ai = f.bini(Opcode::Slli, ca, 1);
        let bi = f.bini(Opcode::Slli, cb, 1);
        let ax = load_w(f, A, ai, 0);
        let ay = load_w(f, A, ai, 8);
        let bx = load_w(f, A, bi, 0);
        let by = load_w(f, A, bi, 8);
        // Wirelength to the origin-anchored net before and after swap.
        let dx0 = f.sub(ax, ay);
        let dx1 = f.sub(bx, by);
        let d0 = abs(f, dx0);
        let d1 = abs(f, dx1);
        let before = f.add(d0, d1);
        let sx = f.sub(ax, by);
        let sy = f.sub(bx, ay);
        let e0 = abs(f, sx);
        let e1 = abs(f, sy);
        let after = f.add(e0, e1);
        let improves = f.bin(Opcode::Tlt, after, before);
        let acc_b = f.new_block();
        let j = f.new_block();
        f.br(improves, acc_b, j);
        f.switch_to(acc_b);
        // Swap the y coordinates.
        store_w(f, A, ai, 8, by);
        store_w(f, A, bi, 8, ay);
        f.bini_into(accepted, Opcode::Addi, accepted, 1);
        f.jmp(j);
        f.switch_to(j);
        store_w(f, OUT, s, 8, after);
    });
    let z = f.iconst(0);
    store_w(&mut f, OUT, z, 0, accepted);
    f.halt();
    f.finish();
    (p.finish(), (0..SWAPS as u64 + 1).map(|i| OUT + 8 * i).collect())
}

/// `mgrid`: one Jacobi sweep of a 7-point stencil over a 16³ `f64`
/// grid — the regular, FP-dense multigrid smoother.
pub fn mgrid(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 16;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(75, (N * N * N) as usize, 1.0));
    let mut f = p.func("mgrid", 0);
    let c0 = f.fconst(0.5);
    let c1 = f.fconst(1.0 / 12.0);
    counted_loop(&mut f, N - 2, 1, |f, i0, _| {
        let i = f.addi(i0, 1);
        let ib = f.bini(Opcode::Muli, i, N * N);
        counted_loop(f, N - 2, 1, |f, j0, _| {
            let j = f.addi(j0, 1);
            let jb = f.bini(Opcode::Muli, j, N);
            let ij = f.add(ib, jb);
            // Pointer-walk the pencil: neighbours at constant offsets
            // except the ±N² planes, which need an explicit add.
            let ij8 = f.bini(Opcode::Slli, ij, 3);
            let abase = f.iconst(A as i64);
            let a0 = f.add(abase, ij8);
            let ip = f.addi(a0, 8);
            let obase = f.iconst(OUT as i64);
            let o0 = f.add(obase, ij8);
            let op = f.addi(o0, 8);
            let up = f.addi(ip, 8 * N * N);
            let dp = f.addi(ip, -8 * N * N);
            ptr_loop(f, N - 2, unroll_of(v, 2), &[(ip, 8), (op, 8), (up, 8), (dp, 8)], |f, k| {
                let o = 8 * k as i32;
                let c = f.load(Opcode::Ld, ip, o);
                let e = f.load(Opcode::Ld, ip, o + 8);
                let w = f.load(Opcode::Ld, ip, o - 8);
                let n = f.load(Opcode::Ld, ip, o + (N * 8) as i32);
                let s = f.load(Opcode::Ld, ip, o - (N * 8) as i32);
                let u = f.load(Opcode::Ld, up, o);
                let d = f.load(Opcode::Ld, dp, o);
                let s1 = f.bin(Opcode::Fadd, e, w);
                let s2 = f.bin(Opcode::Fadd, n, s);
                let s3 = f.bin(Opcode::Fadd, u, d);
                let s4 = f.bin(Opcode::Fadd, s1, s2);
                let s5 = f.bin(Opcode::Fadd, s4, s3);
                let t0 = f.bin(Opcode::Fmul, c, c0);
                let t1 = f.bin(Opcode::Fmul, s5, c1);
                let r = f.bin(Opcode::Fadd, t0, t1);
                f.store(Opcode::Sd, op, o, r);
            });
        });
    });
    f.halt();
    f.finish();
    // Check a sample of interior cells.
    let mut cells = Vec::new();
    for i in [1u64, 7, 14] {
        for j in [1u64, 8, 14] {
            for k in [1u64, 6, 14] {
                cells.push(OUT + 8 * (i * 256 + j * 16 + k));
            }
        }
    }
    (p.finish(), cells)
}
