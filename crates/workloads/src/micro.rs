//! The four microbenchmarks: `dct8x8`, `matrix`, `sha`, `vadd`.

use trips_tasm::{Opcode, Program, ProgramBuilder};

use crate::data::{
    counted_loop, floats, load_w, ptr_loop, store_w, unroll_of, words, A, B, COEF, OUT, SCRATCH,
};
use crate::Variant;

/// `vadd`: element-wise vector add of two 256-element `f64` arrays —
/// pure L1 bandwidth (two loads + one store per element); the paper
/// notes its TRIPS speedup caps near 2× because TRIPS has twice the
/// Alpha's L1 ports.
pub fn vadd(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 256;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(11, N as usize, 100.0));
    p.global_words(B, &floats(12, N as usize, 100.0));
    let mut f = p.func("vadd", 0);
    let ap = f.iconst(A as i64);
    let bp = f.iconst(B as i64);
    let op = f.iconst(OUT as i64);
    let u = unroll_of(v, 8);
    ptr_loop(&mut f, N, u, &[(ap, 8), (bp, 8), (op, 8)], |f, k| {
        let a = f.load(Opcode::Ld, ap, 8 * k as i32);
        let b = f.load(Opcode::Ld, bp, 8 * k as i32);
        let s = f.bin(Opcode::Fadd, a, b);
        f.store(Opcode::Sd, op, 8 * k as i32, s);
    });
    f.halt();
    f.finish();
    (p.finish(), (0..N as u64).map(|i| OUT + 8 * i).collect())
}

/// `matrix`: 16×16 integer matrix multiply — compute-dense with
/// reused operands.
pub fn matrix(v: Variant) -> (Program, Vec<u64>) {
    const N: i64 = 16;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(21, (N * N) as usize, 64));
    p.global_words(B, &words(22, (N * N) as usize, 64));
    let mut f = p.func("matrix", 0);
    let abase = f.iconst(A as i64);
    let bbase = f.iconst(B as i64);
    let obase = f.iconst(OUT as i64);
    counted_loop(&mut f, N, 1, |f, i, _| {
        let row8 = f.bini(Opcode::Muli, i, 8 * N);
        counted_loop(f, N, 1, |f, j, _| {
            let acc = f.fresh();
            f.iconst_into(acc, 0);
            // Walk A's row and B's column with pointers.
            let arp = f.add(abase, row8);
            let j8 = f.bini(Opcode::Slli, j, 3);
            let bcp = f.add(bbase, j8);
            ptr_loop(f, N, unroll_of(v, 8), &[(arp, 8), (bcp, 8 * N)], |f, k| {
                let a = f.load(Opcode::Ld, arp, 8 * k as i32);
                let boff = (8 * N) as i32 * k as i32;
                let b = if boff <= 255 {
                    f.load(Opcode::Ld, bcp, boff)
                } else {
                    let bp = f.addi(bcp, boff as i64);
                    f.load(Opcode::Ld, bp, 0)
                };
                let m = f.mul(a, b);
                f.bin_into(acc, Opcode::Add, acc, m);
            });
            let orow = f.add(obase, row8);
            let oa = f.add(orow, j8);
            f.store(Opcode::Sd, oa, 0, acc);
        });
    });
    f.halt();
    f.finish();
    (p.finish(), (0..(N * N) as u64).map(|i| OUT + 8 * i).collect())
}

/// `sha`: SHA-1 compression rounds over four 512-bit message blocks —
/// an almost entirely serial dependence chain through the five state
/// words; the paper reports a TRIPS *slowdown* here because the Alpha
/// already mines out the little concurrency there is.
pub fn sha(_v: Variant) -> (Program, Vec<u64>) {
    const BLOCKS: i64 = 4;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &words(31, (16 * BLOCKS) as usize, 1 << 32));
    let mut f = p.func("sha", 0);
    let mask = f.iconst(0xffff_ffff);
    // State registers.
    let h: Vec<_> = [0x67452301u64, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0]
        .iter()
        .map(|&x| {
            let r = f.fresh();
            f.iconst_into(r, x as i64);
            r
        })
        .collect();

    let rotl = |f: &mut trips_tasm::FuncBuilder<'_>, x: trips_tasm::VReg, n: i64, mask| {
        let hi = f.bini(Opcode::Slli, x, n);
        let lo = f.bini(Opcode::Srli, x, 32 - n);
        let or = f.bin(Opcode::Or, hi, lo);
        f.bin(Opcode::And, or, mask)
    };

    counted_loop(&mut f, BLOCKS, 1, |f, blk, _| {
        // Load the 16 message words into the schedule scratch.
        let b16 = f.bini(Opcode::Slli, blk, 4);
        counted_loop(f, 16, 1, |f, t, _| {
            let mi = f.add(b16, t);
            let w = load_w(f, A, mi, 0);
            store_w(f, SCRATCH, t, 0, w);
        });
        let (a0, b0, c0, d0, e0) =
            (f.mov(h[0]), f.mov(h[1]), f.mov(h[2]), f.mov(h[3]), f.mov(h[4]));
        let (a, b, c, d, e) = (f.fresh(), f.fresh(), f.fresh(), f.fresh(), f.fresh());
        f.mov_into(a, a0);
        f.mov_into(b, b0);
        f.mov_into(c, c0);
        f.mov_into(d, d0);
        f.mov_into(e, e0);
        // Four phases of 20 rounds with the SHA-1 round functions.
        for phase in 0..4u32 {
            let k = [0x5a827999u64, 0x6ed9eba1, 0x8f1bbcdc, 0xca62c1d6][phase as usize];
            counted_loop(f, 20, 1, |f, t, _| {
                let t80 = f.bini(Opcode::Addi, t, (phase * 20) as i64);
                // Schedule: W[t] for t>=16 from the circular window.
                let t15 = f.bini(Opcode::Andi, t80, 15);
                let w_t = {
                    // w = rotl1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16]);
                    // for t < 16 the stored word is used directly, so
                    // compute both and select by predicate.
                    let is_lo = f.bini(Opcode::Tlti, t80, 16);
                    let lo_w = load_w(f, SCRATCH, t15, 0);
                    let i3 = f.bini(Opcode::Addi, t80, -3);
                    let i8 = f.bini(Opcode::Addi, t80, -8);
                    let i14 = f.bini(Opcode::Addi, t80, -14);
                    let m3 = f.bini(Opcode::Andi, i3, 15);
                    let m8 = f.bini(Opcode::Andi, i8, 15);
                    let m14 = f.bini(Opcode::Andi, i14, 15);
                    let w3 = load_w(f, SCRATCH, m3, 0);
                    let w8 = load_w(f, SCRATCH, m8, 0);
                    let w14 = load_w(f, SCRATCH, m14, 0);
                    let x1 = f.bin(Opcode::Xor, w3, w8);
                    let x2 = f.bin(Opcode::Xor, x1, w14);
                    let x3 = f.bin(Opcode::Xor, x2, lo_w);
                    let hi_w = rotl(f, x3, 1, mask);
                    // select: is_lo ? lo_w : hi_w  (branch-free)
                    let ones = f.fresh();
                    f.iconst_into(ones, -1);
                    let sel = f.bin(Opcode::Mul, is_lo, ones); // 0 or -1
                    let not_sel = f.un(Opcode::Not, sel);
                    let l = f.bin(Opcode::And, lo_w, sel);
                    let r = f.bin(Opcode::And, hi_w, not_sel);
                    f.bin(Opcode::Or, l, r)
                };
                store_w(f, SCRATCH, t15, 0, w_t);
                // Round function by phase.
                let func = match phase {
                    0 => {
                        // f = (b & c) | (!b & d)
                        let bc = f.bin(Opcode::And, b, c);
                        let nb = f.un(Opcode::Not, b);
                        let nbd = f.bin(Opcode::And, nb, d);
                        f.bin(Opcode::Or, bc, nbd)
                    }
                    1 | 3 => {
                        let x = f.bin(Opcode::Xor, b, c);
                        f.bin(Opcode::Xor, x, d)
                    }
                    _ => {
                        let bc = f.bin(Opcode::And, b, c);
                        let bd = f.bin(Opcode::And, b, d);
                        let cd = f.bin(Opcode::And, c, d);
                        let o = f.bin(Opcode::Or, bc, bd);
                        f.bin(Opcode::Or, o, cd)
                    }
                };
                let a5 = rotl(f, a, 5, mask);
                let kreg = f.iconst(k as i64);
                let s1 = f.add(a5, func);
                let s2 = f.add(s1, e);
                let s3 = f.add(s2, w_t);
                let s4 = f.add(s3, kreg);
                let tmp = f.bin(Opcode::And, s4, mask);
                f.mov_into(e, d);
                f.mov_into(d, c);
                let b30 = rotl(f, b, 30, mask);
                f.mov_into(c, b30);
                f.mov_into(b, a);
                f.mov_into(a, tmp);
            });
        }
        for (hr, s) in h.iter().zip([a, b, c, d, e]) {
            let sum = f.add(*hr, s);
            let m = f.bin(Opcode::And, sum, mask);
            f.mov_into(*hr, m);
        }
    });
    for (i, hr) in h.iter().enumerate() {
        let idx = f.iconst(i as i64);
        store_w(&mut f, OUT, idx, 0, *hr);
    }
    f.halt();
    f.finish();
    (p.finish(), (0..5).map(|i| OUT + 8 * i).collect())
}

/// `dct8x8`: two-dimensional 8×8 discrete cosine transform of four
/// input tiles, as two passes of coefficient-matrix multiplication —
/// FP-dense with ample block-level concurrency.
pub fn dct8x8(v: Variant) -> (Program, Vec<u64>) {
    const TILES: i64 = 4;
    let mut p = ProgramBuilder::new();
    p.global_words(A, &floats(41, (TILES * 64) as usize, 255.0));
    // DCT-II coefficient matrix C[u][x].
    let mut coef = Vec::with_capacity(64);
    for u in 0..8 {
        for x in 0..8 {
            let s = if u == 0 { (1.0f64 / 8.0).sqrt() } else { (2.0f64 / 8.0).sqrt() };
            let val = s * ((std::f64::consts::PI * (2.0 * x as f64 + 1.0) * u as f64) / 16.0).cos();
            coef.push(val.to_bits());
        }
    }
    p.global_words(COEF, &coef);
    let mut f = p.func("dct8x8", 0);
    let unroll = unroll_of(v, 8);
    // Pass 1: T = C × tile (rows), into SCRATCH. Pass 2: OUT = T × Cᵀ.
    counted_loop(&mut f, TILES, 1, |f, tile, _| {
        let tbase = f.bini(Opcode::Slli, tile, 6);
        counted_loop(f, 8, 1, |f, u, _| {
            counted_loop(f, 8, 1, |f, x, _| {
                let acc = f.fresh();
                f.iconst_into(acc, 0);
                let urow8 = f.bini(Opcode::Muli, u, 64);
                let cbase = f.iconst(COEF as i64);
                let crp = f.add(cbase, urow8);
                let abase = f.iconst(A as i64);
                let t8 = f.bini(Opcode::Slli, tbase, 3);
                let x8 = f.bini(Opcode::Slli, x, 3);
                let a0 = f.add(abase, t8);
                let acp = f.add(a0, x8);
                ptr_loop(f, 8, unroll, &[(crp, 8), (acp, 64)], |f, k| {
                    let c = f.load(Opcode::Ld, crp, 8 * k as i32);
                    let aoff = 64 * k as i32;
                    let a = if aoff <= 255 {
                        f.load(Opcode::Ld, acp, aoff)
                    } else {
                        let ap = f.addi(acp, aoff as i64);
                        f.load(Opcode::Ld, ap, 0)
                    };
                    let m = f.bin(Opcode::Fmul, c, a);
                    f.bin_into(acc, Opcode::Fadd, acc, m);
                });
                let urow = f.bini(Opcode::Slli, u, 3);
                let oi0 = f.add(urow, x);
                let oi = f.add(tbase, oi0);
                store_w(f, SCRATCH, oi, 0, acc);
            });
        });
        counted_loop(f, 8, 1, |f, u, _| {
            counted_loop(f, 8, 1, |f, vcol, _| {
                let acc = f.fresh();
                f.iconst_into(acc, 0);
                let urow = f.bini(Opcode::Slli, u, 3);
                let vrow = f.bini(Opcode::Slli, vcol, 3);
                let urow8 = f.bini(Opcode::Slli, urow, 3);
                let vrow8 = f.bini(Opcode::Slli, vrow, 3);
                let sbase = f.iconst(SCRATCH as i64);
                let t8 = f.bini(Opcode::Slli, tbase, 3);
                let s0 = f.add(sbase, t8);
                let trp = f.add(s0, urow8);
                let cbase = f.iconst(COEF as i64);
                let crp = f.add(cbase, vrow8);
                ptr_loop(f, 8, unroll, &[(trp, 8), (crp, 8)], |f, k| {
                    let t = f.load(Opcode::Ld, trp, 8 * k as i32);
                    let c = f.load(Opcode::Ld, crp, 8 * k as i32);
                    let m = f.bin(Opcode::Fmul, t, c);
                    f.bin_into(acc, Opcode::Fadd, acc, m);
                });
                let oi0 = f.add(urow, vcol);
                let oi = f.add(tbase, oi0);
                store_w(f, OUT, oi, 0, acc);
            });
        });
    });
    f.halt();
    f.finish();
    (p.finish(), (0..(TILES * 64) as u64).map(|i| OUT + 8 * i).collect())
}
