//! The benchmark registry, in Table 3 order, plus the memory-bound
//! extras that exercise the NUCA secondary system.

use crate::shared::SharedWorkload;
use crate::{eembc, kernels, membound, micro, shared, spec, Class, Workload};

/// All 21 benchmarks in Table 3 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload { name: "dct8x8", class: Class::Micro, gen: micro::dct8x8 },
        Workload { name: "matrix", class: Class::Micro, gen: micro::matrix },
        Workload { name: "sha", class: Class::Micro, gen: micro::sha },
        Workload { name: "vadd", class: Class::Micro, gen: micro::vadd },
        Workload { name: "cfar", class: Class::Kernel, gen: kernels::cfar },
        Workload { name: "conv", class: Class::Kernel, gen: kernels::conv },
        Workload { name: "ct", class: Class::Kernel, gen: kernels::ct },
        Workload { name: "genalg", class: Class::Kernel, gen: kernels::genalg },
        Workload { name: "pm", class: Class::Kernel, gen: kernels::pm },
        Workload { name: "qr", class: Class::Kernel, gen: kernels::qr },
        Workload { name: "svd", class: Class::Kernel, gen: kernels::svd },
        Workload { name: "a2time01", class: Class::Eembc, gen: eembc::a2time01 },
        Workload { name: "bezier02", class: Class::Eembc, gen: eembc::bezier02 },
        Workload { name: "basefp01", class: Class::Eembc, gen: eembc::basefp01 },
        Workload { name: "rspeed01", class: Class::Eembc, gen: eembc::rspeed01 },
        Workload { name: "tblook01", class: Class::Eembc, gen: eembc::tblook01 },
        Workload { name: "181.mcf", class: Class::Spec, gen: spec::mcf },
        Workload { name: "197.parser", class: Class::Spec, gen: spec::parser },
        Workload { name: "256.bzip2", class: Class::Spec, gen: spec::bzip2 },
        Workload { name: "300.twolf", class: Class::Spec, gen: spec::twolf },
        Workload { name: "172.mgrid", class: Class::Spec, gen: spec::mgrid },
    ]
}

/// The memory-bound extras (working sets larger than one NUCA bank),
/// used by `memsweep` and the backend differential tests. Not part of
/// Table 3, so not in [`all`].
pub fn memory_bound() -> Vec<Workload> {
    vec![
        Workload { name: "saxpy", class: Class::Micro, gen: membound::saxpy },
        Workload { name: "listwalk", class: Class::Micro, gen: membound::listwalk },
    ]
}

/// Table 3 plus the memory-bound extras.
pub fn extended() -> Vec<Workload> {
    let mut v = all();
    v.extend(memory_bound());
    v
}

/// Workload pairings for the dual-core chip: what each core runs when
/// both share the NUCA. Ordered from memory-bound×memory-bound (heavy
/// bank contention) to compute×compute (a contention control that
/// should see near-zero slowdown); `chipsim` and the chip equivalence
/// suite run all of them.
pub fn pairs() -> Vec<(Workload, Workload)> {
    let wl = |n: &str| by_name(n).unwrap_or_else(|| panic!("{n} is registered"));
    vec![
        (wl("listwalk"), wl("saxpy")),
        (wl("saxpy"), wl("saxpy")),
        (wl("listwalk"), wl("listwalk")),
        (wl("vadd"), wl("listwalk")),
        (wl("matrix"), wl("saxpy")),
        (wl("dct8x8"), wl("sha")),
    ]
}

/// Workload groups for an `n`-core chip: each [`pairs`] entry
/// stretched to `n` slots by alternating its two members (slot `k`
/// runs member `k % 2`), so `groups(2)` **is** the pair table and
/// wider dies keep each pairing's contention character — the
/// memory-bound groups stay memory-bound on every core. `chipsim`'s
/// scaling curve and the chip equivalence suite run these.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn groups(n: usize) -> Vec<Vec<Workload>> {
    assert!(n >= 1, "a group needs at least one slot");
    pairs()
        .into_iter()
        .map(|(a, b)| (0..n).map(|k| if k % 2 == 0 { a } else { b }).collect())
        .collect()
}

/// The shared-memory coherence workloads (one multi-function image
/// per chip, final-state oracles) — run only on chips built with
/// `ChipConfig::shared_memory`, so registered apart from [`all`].
pub fn shared_memory() -> Vec<SharedWorkload> {
    shared::all()
}

/// Look up a shared-memory workload by name.
pub fn shared_by_name(name: &str) -> Option<SharedWorkload> {
    shared::all().into_iter().find(|w| w.name == name)
}

/// Look up a benchmark by name (searches [`extended`]).
pub fn by_name(name: &str) -> Option<Workload> {
    extended().into_iter().find(|w| w.name == name)
}

/// Convenience constructor used in crate examples: `vadd` with a
/// custom element count is the quickstart workload.
pub fn vadd(_n: usize) -> Workload {
    by_name("vadd").expect("vadd is registered")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_benchmarks_in_table3_order() {
        let s = all();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0].name, "dct8x8");
        assert_eq!(s[20].name, "172.mgrid");
        assert_eq!(s.iter().filter(|w| w.class == Class::Micro).count(), 4);
        assert_eq!(s.iter().filter(|w| w.class == Class::Kernel).count(), 7);
        assert_eq!(s.iter().filter(|w| w.class == Class::Eembc).count(), 5);
        assert_eq!(s.iter().filter(|w| w.class == Class::Spec).count(), 5);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("sha").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn groups_stretch_pairs_by_alternation() {
        let p = pairs();
        let g2 = groups(2);
        assert_eq!(g2.len(), p.len());
        for (g, (a, b)) in g2.iter().zip(&p) {
            assert_eq!(g.iter().map(|w| w.name).collect::<Vec<_>>(), [a.name, b.name]);
        }
        for n in [1, 4, 16] {
            for (g, (a, b)) in groups(n).iter().zip(&p) {
                assert_eq!(g.len(), n);
                for (k, w) in g.iter().enumerate() {
                    assert_eq!(w.name, if k % 2 == 0 { a.name } else { b.name });
                }
            }
        }
    }

    #[test]
    fn memory_bound_extras_registered() {
        let m = memory_bound();
        assert_eq!(m.iter().map(|w| w.name).collect::<Vec<_>>(), ["saxpy", "listwalk"]);
        assert_eq!(extended().len(), all().len() + 2);
        assert!(by_name("saxpy").is_some());
        assert!(by_name("listwalk").is_some());
    }
}
