//! Shared-memory multicore workloads for the coherent chip.
//!
//! Unlike the Table 3 programs (one image per core, disjoint address
//! spaces), these build **one** program with one function per core;
//! every core loads the same image — code, globals, everything — and
//! starts at its own function's entry, so all replicas begin
//! byte-identical and all communication flows through the coherence
//! protocol. Each workload carries a final-state oracle: the `(addr,
//! value)` pairs a sequential execution would leave behind, which any
//! legal interleaving under the chip's TSO-like ordering must
//! reproduce exactly.
//!
//! The synchronization idioms are chosen for that ordering, not
//! despite it: stores drain at commit in program (lsid) order, so a
//! data store always becomes visible before the flag store that
//! publishes it — single-writer flag protocols are sound, while
//! Dekker-style mutual exclusion (store then load) is **not** (the
//! younger load may execute before the older store drains).
//! [`lockcount`] therefore uses a turn-based alternation lock, whose
//! single writer of `turn` needs no store→load ordering at all.

use trips_isa::ProgramImage;
use trips_tasm::{compile, BbId, FuncId, Opcode, ProgramBuilder, Quality};

use crate::data::{words, A, OUT};

/// Ring buffers for [`pcring`]: stage `s`'s ring lives at
/// `RING + s * 0x100`.
pub const RING: u64 = 0x30_0000;
/// [`pcring`] head counters, one cache line apart per stage.
pub const HEAD: u64 = 0x31_0000;
/// [`pcring`] tail counters, one cache line apart per stage.
pub const TAIL: u64 = 0x32_0000;
/// [`psum`] per-core partial sums, one cache line apart.
pub const PART: u64 = 0x33_0000;
/// [`psum`] per-core done flags, one cache line apart.
pub const FLAG: u64 = 0x34_0000;
/// [`lockcount`] shared counter.
pub const CTR: u64 = 0x35_0000;
/// [`lockcount`] turn variable (its own cache line).
pub const TURN: u64 = 0x35_0040;

/// A compiled shared-memory workload: one image per core plus the
/// sequential-execution oracle.
#[derive(Debug, Clone)]
pub struct SharedProgram {
    /// Per-core images — clones of one compiled image whose `entry`
    /// points at that core's function.
    pub images: Vec<ProgramImage>,
    /// `(address, u64 value)` pairs the run must leave in memory.
    pub expected: Vec<(u64, u64)>,
}

/// A registered shared-memory workload; `gen` builds the images and
/// oracle for an `ncores`-core chip.
#[derive(Debug, Clone, Copy)]
pub struct SharedWorkload {
    /// Registry name.
    pub name: &'static str,
    /// Generator, parameterized on the core count.
    pub gen: fn(usize) -> SharedProgram,
}

/// The shared-memory registry, used by `chipsim --shared` and the
/// protofuzz coherence axis.
pub fn all() -> Vec<SharedWorkload> {
    vec![
        SharedWorkload { name: "pcring", gen: pcring },
        SharedWorkload { name: "psum", gen: psum },
        SharedWorkload { name: "lockcount", gen: lockcount },
    ]
}

/// Compiles `p` and clones the image once per function, pointing each
/// clone's entry at function `k` — core `k` runs function `k` of the
/// one shared image.
fn per_core_images(p: ProgramBuilder, ncores: usize) -> Vec<ProgramImage> {
    let compiled = compile(&p.finish(), Quality::Compiled)
        .unwrap_or_else(|e| panic!("shared workload failed to compile: {e:?}"));
    (0..ncores)
        .map(|k| {
            let entry = compiled
                .blocks
                .iter()
                .find(|b| b.func == FuncId(k as u32) && b.head == BbId(0))
                .unwrap_or_else(|| panic!("no entry block for core {k}'s function"))
                .addr;
            let mut image = compiled.image.clone();
            image.entry = entry;
            image
        })
        .collect()
}

/// `pcring`: an `ncores`-stage producer/consumer pipeline over 4-slot
/// rings. Stage 0 produces `3i + 1`; each middle stage `k` adds `7k`
/// and forwards; the last stage accumulates the sum. Head/tail
/// counters use the drain-order flag protocol: the slot's data store
/// drains strictly before the head store that publishes it.
///
/// # Panics
///
/// Panics unless `ncores >= 2`.
pub fn pcring(ncores: usize) -> SharedProgram {
    assert!(ncores >= 2, "pcring needs a producer and a consumer");
    const N: i64 = 32;
    const R: i64 = 4;
    let ring = |s: usize| RING + 0x100 * s as u64;
    let head = |s: usize| HEAD + 64 * s as u64;
    let tail = |s: usize| TAIL + 64 * s as u64;

    let mut p = ProgramBuilder::new();
    // Stage 0: produce 3i+1 into ring 0, honoring the consumer's tail.
    {
        let mut f = p.func("stage0", 0);
        let rp = f.iconst(ring(0) as i64);
        let hp = f.iconst(head(0) as i64);
        let tp = f.iconst(tail(0) as i64);
        let i = f.fresh();
        f.iconst_into(i, 0);
        let spin = f.new_block();
        let work = f.new_block();
        let done = f.new_block();
        f.jmp(spin);
        f.switch_to(spin); // wait for a free slot: i - tail < R
        let t = f.load(Opcode::Ld, tp, 0);
        let used = f.bin(Opcode::Sub, i, t);
        let c = f.bini(Opcode::Tlti, used, R);
        f.br(c, work, spin);
        f.switch_to(work);
        let v3 = f.bini(Opcode::Muli, i, 3);
        let v = f.addi(v3, 1);
        let slot = f.bini(Opcode::Andi, i, R - 1);
        let off = f.bini(Opcode::Slli, slot, 3);
        let sp = f.bin(Opcode::Add, rp, off);
        f.store(Opcode::Sd, sp, 0, v); // data first…
        let i1 = f.addi(i, 1);
        f.store(Opcode::Sd, hp, 0, i1); // …head publishes it (lsid order)
        f.mov_into(i, i1);
        let more = f.bini(Opcode::Tlti, i, N);
        f.br(more, spin, done);
        f.switch_to(done);
        f.halt();
        f.finish();
    }
    // Middle stages: consume ring k-1, add 7k, produce into ring k.
    // The last stage consumes ring ncores-2 and accumulates instead.
    for k in 1..ncores {
        let last = k == ncores - 1;
        let mut f = p.func(&format!("stage{k}"), 0);
        let rp_in = f.iconst(ring(k - 1) as i64);
        let hp_in = f.iconst(head(k - 1) as i64);
        let tp_in = f.iconst(tail(k - 1) as i64);
        let (rp_out, hp_out, tp_out) = if last {
            (None, None, None)
        } else {
            (
                Some(f.iconst(ring(k) as i64)),
                Some(f.iconst(head(k) as i64)),
                Some(f.iconst(tail(k) as i64)),
            )
        };
        let i = f.fresh();
        f.iconst_into(i, 0);
        let acc = f.fresh();
        f.iconst_into(acc, 0);
        let spin_in = f.new_block();
        let take = f.new_block();
        let done = f.new_block();
        f.jmp(spin_in);
        f.switch_to(spin_in); // wait for an item: head > i
        let h = f.load(Opcode::Ld, hp_in, 0);
        let avail = f.bin(Opcode::Tgt, h, i);
        f.br(avail, take, spin_in);
        f.switch_to(take);
        let slot = f.bini(Opcode::Andi, i, R - 1);
        let off = f.bini(Opcode::Slli, slot, 3);
        let sp_in = f.bin(Opcode::Add, rp_in, off);
        let v = f.load(Opcode::Ld, sp_in, 0);
        let i1 = f.addi(i, 1);
        f.store(Opcode::Sd, tp_in, 0, i1); // slot consumed: free it
        if last {
            f.bin_into(acc, Opcode::Add, acc, v);
            f.mov_into(i, i1);
            let more = f.bini(Opcode::Tlti, i, N);
            f.br(more, spin_in, done);
        } else {
            let spin_out = f.new_block();
            let put = f.new_block();
            f.jmp(spin_out);
            f.switch_to(spin_out); // wait for a free downstream slot
            let t = f.load(Opcode::Ld, tp_out.unwrap(), 0);
            let used = f.bin(Opcode::Sub, i, t);
            let c = f.bini(Opcode::Tlti, used, R);
            f.br(c, put, spin_out);
            f.switch_to(put);
            let w = f.addi(v, 7 * k as i64);
            let sp_out = f.bin(Opcode::Add, rp_out.unwrap(), off);
            f.store(Opcode::Sd, sp_out, 0, w);
            f.store(Opcode::Sd, hp_out.unwrap(), 0, i1);
            f.mov_into(i, i1);
            let more = f.bini(Opcode::Tlti, i, N);
            f.br(more, spin_in, done);
        }
        f.switch_to(done);
        if last {
            let op = f.iconst(OUT as i64);
            f.store(Opcode::Sd, op, 0, acc);
            f.store(Opcode::Sd, op, 8, i);
        }
        f.halt();
        f.finish();
    }

    // Sequential oracle: each item gains 7k at every middle stage.
    let boost: u64 = (1..ncores.saturating_sub(1)).map(|k| 7 * k as u64).sum();
    let sum: u64 = (0..N as u64).fold(0u64, |s, i| s.wrapping_add(3 * i + 1 + boost));
    let mut expected = vec![(OUT, sum), (OUT + 8, N as u64)];
    for s in 0..ncores - 1 {
        expected.push((head(s), N as u64));
        expected.push((tail(s), N as u64));
    }
    SharedProgram { images: per_core_images(p, ncores), expected }
}

/// `psum`: parallel vector reduction. Core `k` sums its 64-word chunk
/// of `A`, publishes the partial through a done flag (partial store
/// drains before the flag store), and core 0 combines the partials
/// into `OUT` once every flag is up.
pub fn psum(ncores: usize) -> SharedProgram {
    const L: usize = 64;
    let data = words(91, ncores * L, 1 << 20);
    let mut p = ProgramBuilder::new();
    p.global_words(A, &data);
    for k in 0..ncores {
        let mut f = p.func(&format!("sum{k}"), 0);
        let base = f.iconst((A + (k * L * 8) as u64) as i64);
        let acc = f.fresh();
        f.iconst_into(acc, 0);
        crate::data::counted_loop(&mut f, L as i64, 1, |f, i, _| {
            let off = f.bini(Opcode::Slli, i, 3);
            let ap = f.bin(Opcode::Add, base, off);
            let x = f.load(Opcode::Ld, ap, 0);
            f.bin_into(acc, Opcode::Add, acc, x);
        });
        let pp = f.iconst((PART + 64 * k as u64) as i64);
        f.store(Opcode::Sd, pp, 0, acc); // partial first…
        let fp = f.iconst((FLAG + 64 * k as u64) as i64);
        let one = f.iconst(1);
        f.store(Opcode::Sd, fp, 0, one); // …flag publishes it
        if k == 0 {
            // Combine: wait for each peer's flag, then add its partial.
            let total = f.fresh();
            f.mov_into(total, acc);
            for j in 1..ncores {
                let fpj = f.iconst((FLAG + 64 * j as u64) as i64);
                let spin = f.new_block();
                let grab = f.new_block();
                f.jmp(spin);
                f.switch_to(spin);
                let g = f.load(Opcode::Ld, fpj, 0);
                let up = f.bini(Opcode::Teqi, g, 1);
                f.br(up, grab, spin);
                f.switch_to(grab);
                let ppj = f.iconst((PART + 64 * j as u64) as i64);
                let part = f.load(Opcode::Ld, ppj, 0);
                f.bin_into(total, Opcode::Add, total, part);
            }
            let op = f.iconst(OUT as i64);
            f.store(Opcode::Sd, op, 0, total);
        }
        f.halt();
        f.finish();
    }

    let partials: Vec<u64> = (0..ncores)
        .map(|k| data[k * L..(k + 1) * L].iter().fold(0u64, |s, &x| s.wrapping_add(x)))
        .collect();
    let total = partials.iter().fold(0u64, |s, &x| s.wrapping_add(x));
    let mut expected = vec![(OUT, total)];
    for (k, &part) in partials.iter().enumerate() {
        expected.push((PART + 64 * k as u64, part));
        expected.push((FLAG + 64 * k as u64, 1));
    }
    SharedProgram { images: per_core_images(p, ncores), expected }
}

/// `lockcount`: every core increments one shared counter 8 times under
/// a turn-based alternation lock — core `k` enters only when `turn ==
/// k` and hands off with `turn = (k+1) % ncores`. Alternation (not
/// Dekker/Peterson) because the chip's TSO-like ordering lets a
/// younger load pass an older undrained store; here each variable has
/// a single writer per handoff, so no store→load ordering is needed.
pub fn lockcount(ncores: usize) -> SharedProgram {
    const T: i64 = 8;
    let mut p = ProgramBuilder::new();
    for k in 0..ncores {
        let mut f = p.func(&format!("lock{k}"), 0);
        let cp = f.iconst(CTR as i64);
        let tp = f.iconst(TURN as i64);
        let next = f.iconst(((k + 1) % ncores) as i64);
        let j = f.fresh();
        f.iconst_into(j, 0);
        let spin = f.new_block();
        let crit = f.new_block();
        let done = f.new_block();
        f.jmp(spin);
        f.switch_to(spin); // my turn?
        let t = f.load(Opcode::Ld, tp, 0);
        let mine = f.bini(Opcode::Teqi, t, k as i64);
        f.br(mine, crit, spin);
        f.switch_to(crit);
        let v = f.load(Opcode::Ld, cp, 0);
        let v1 = f.addi(v, 1);
        f.store(Opcode::Sd, cp, 0, v1); // counter first…
        f.store(Opcode::Sd, tp, 0, next); // …then the handoff
        f.bini_into(j, Opcode::Addi, j, 1);
        let more = f.bini(Opcode::Tlti, j, T);
        f.br(more, spin, done);
        f.switch_to(done);
        f.halt();
        f.finish();
    }
    let expected = vec![(CTR, (ncores as i64 * T) as u64), (TURN, 0)];
    SharedProgram { images: per_core_images(p, ncores), expected }
}
