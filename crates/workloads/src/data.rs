//! Deterministic input-data generation and shared builder helpers.

use trips_tasm::{FuncBuilder, Opcode, VReg};

use crate::Variant;

/// Input array A.
pub const A: u64 = 0x20_0000;
/// Input array B.
pub const B: u64 = 0x24_0000;
/// Coefficient / table area.
pub const COEF: u64 = 0x28_0000;
/// Scratch area.
pub const SCRATCH: u64 = 0x2c_0000;
/// Output area (checked cells live here).
pub const OUT: u64 = 0x10_0000;

/// A tiny deterministic xorshift64* stream.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded stream (seed 0 is remapped).
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value below `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// An `f64` in `[0, 1)`, stored as bits for IR globals.
    pub fn f64_bits(&mut self) -> u64 {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64).to_bits()
    }
}

/// `n` pseudo-random words below `bound`.
pub fn words(seed: u64, n: usize, bound: u64) -> Vec<u64> {
    let mut r = Rng::new(seed);
    (0..n).map(|_| r.below(bound)).collect()
}

/// `n` pseudo-random `f64`s in `[0, scale)`, as bit patterns.
pub fn floats(seed: u64, n: usize, scale: f64) -> Vec<u64> {
    let mut r = Rng::new(seed);
    (0..n).map(|_| (f64::from_bits(r.f64_bits()) * scale).to_bits()).collect()
}

/// Unroll factor for a variant: `hand` when hand-tuned, 1 otherwise.
pub fn unroll_of(v: Variant, hand: usize) -> usize {
    match v {
        Variant::Hand => hand,
        Variant::Compiled => 1,
    }
}

/// Builds `for i in (0..n).step_by(unroll)`, invoking `body` once per
/// unrolled lane with that lane's index register.
///
/// # Panics
///
/// Panics if `n % unroll != 0`.
pub fn counted_loop<F>(f: &mut FuncBuilder<'_>, n: i64, unroll: usize, mut body: F)
where
    F: FnMut(&mut FuncBuilder<'_>, VReg, usize),
{
    assert!(unroll > 0 && n % unroll as i64 == 0, "n={n} not divisible by unroll={unroll}");
    let i = f.fresh();
    f.iconst_into(i, 0);
    let lb = f.new_block();
    let done = f.new_block();
    f.jmp(lb);
    f.switch_to(lb);
    for k in 0..unroll {
        let ik = if k == 0 { i } else { f.addi(i, k as i64) };
        body(f, ik, k);
    }
    f.bini_into(i, Opcode::Addi, i, unroll as i64);
    let c = f.bini(Opcode::Tlti, i, n);
    f.br(c, lb, done);
    f.switch_to(done);
}

/// A pointer-walking counted loop, the idiom of hand-optimized TRIPS
/// kernels: `iters` is split into `iters/unroll` iterations; each lane
/// `k` accesses its data through the pointer registers at constant
/// byte offset `k * stride`, and every pointer advances by
/// `unroll * stride` once per iteration. This keeps per-access address
/// arithmetic out of the block entirely (one fold into the load/store
/// immediate), which is what lets hand blocks approach the
/// 128-instruction budget.
///
/// # Panics
///
/// Panics if `iters % unroll != 0`.
pub fn ptr_loop<F>(
    f: &mut FuncBuilder<'_>,
    iters: i64,
    unroll: usize,
    ptrs: &[(VReg, i64)],
    mut body: F,
) where
    F: FnMut(&mut FuncBuilder<'_>, usize),
{
    assert!(unroll > 0 && iters % unroll as i64 == 0, "iters={iters} unroll={unroll}");
    let i = f.fresh();
    f.iconst_into(i, 0);
    let lb = f.new_block();
    let done = f.new_block();
    f.jmp(lb);
    f.switch_to(lb);
    for k in 0..unroll {
        body(f, k);
    }
    for &(p, stride) in ptrs {
        f.bini_into(p, Opcode::Addi, p, stride * unroll as i64);
    }
    f.bini_into(i, Opcode::Addi, i, unroll as i64);
    let c = f.bini(Opcode::Tlti, i, iters);
    f.br(c, lb, done);
    f.switch_to(done);
}

/// Loads `base[idx*8 + extra]` as a 64-bit word.
pub fn load_w(f: &mut FuncBuilder<'_>, base: u64, idx: VReg, extra: i32) -> VReg {
    let b = f.iconst(base as i64);
    let off = f.bini(Opcode::Slli, idx, 3);
    let addr = f.add(b, off);
    f.load(Opcode::Ld, addr, extra)
}

/// Stores `val` to `base[idx*8 + extra]`.
pub fn store_w(f: &mut FuncBuilder<'_>, base: u64, idx: VReg, extra: i32, val: VReg) {
    let b = f.iconst(base as i64);
    let off = f.bini(Opcode::Slli, idx, 3);
    let addr = f.add(b, off);
    f.store(Opcode::Sd, addr, extra, val);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let a: Vec<u64> = words(7, 100, 50);
        let b: Vec<u64> = words(7, 100, 50);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 50));
        assert_ne!(words(8, 100, 50), a);
    }

    #[test]
    fn floats_in_range() {
        for bits in floats(3, 50, 10.0) {
            let v = f64::from_bits(bits);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn unroll_must_divide() {
        let mut p = trips_tasm::ProgramBuilder::new();
        let mut f = p.func("t", 0);
        counted_loop(&mut f, 10, 3, |_, _, _| {});
    }
}
