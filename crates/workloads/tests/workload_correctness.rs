//! Every benchmark must produce identical results on all four
//! execution paths: the IR interpreter, the EDGE block interpreter
//! (both variants), the cycle-level TRIPS core, and the baseline
//! Alpha-like core.

use trips_alpha::{AlphaConfig, AlphaCore};
use trips_core::{CoreConfig, Processor};
use trips_tasm::{blockinterp, compile, interp};
use trips_workloads::{suite, Variant, Workload};

const INTERP_BUDGET: u64 = 20_000_000;
const CORE_BUDGET: u64 = 20_000_000;

fn reference_cells(wl: &Workload, variant: Variant) -> (Vec<u64>, Vec<u64>) {
    let (prog, cells) = wl.ir(variant);
    let r = interp::run(&prog, INTERP_BUDGET)
        .unwrap_or_else(|e| panic!("{}: IR interp failed: {e}", wl.name));
    let vals = cells.iter().map(|&c| r.mem.read_u64(c)).collect();
    (cells, vals)
}

fn check_trips(wl: &Workload, variant: Variant) {
    let (cells, expect) = reference_cells(wl, variant);
    let q = variant.quality();
    let compiled = {
        let (prog, _) = wl.ir(variant);
        compile(&prog, q).unwrap_or_else(|e| panic!("{}({q}): compile failed: {e}", wl.name))
    };
    // Architectural block interpreter.
    let bi = blockinterp::run_image(&compiled.image, INTERP_BUDGET)
        .unwrap_or_else(|e| panic!("{}({q}): blockinterp failed: {e}", wl.name));
    for (c, e) in cells.iter().zip(&expect) {
        assert_eq!(bi.mem.read_u64(*c), *e, "{}({q}): blockinterp cell {c:#x}", wl.name);
    }
    // Cycle-level core.
    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu
        .run(&compiled.image, CORE_BUDGET)
        .unwrap_or_else(|e| panic!("{}({q}): core failed: {e}", wl.name));
    for (c, e) in cells.iter().zip(&expect) {
        assert_eq!(cpu.memory().read_u64(*c), *e, "{}({q}): core cell {c:#x}", wl.name);
    }
    assert_eq!(stats.blocks_committed, bi.blocks, "{}({q}): block counts differ", wl.name);
}

fn check_alpha(wl: &Workload) {
    let (cells, expect) = reference_cells(wl, Variant::Hand);
    let prog = wl.build_risc().unwrap_or_else(|e| panic!("{}: risc failed: {e}", wl.name));
    let mut cpu = AlphaCore::new(AlphaConfig::alpha21264(), &prog).expect("valid program");
    cpu.run(CORE_BUDGET).unwrap_or_else(|e| panic!("{}: alpha failed: {e}", wl.name));
    for (c, e) in cells.iter().zip(&expect) {
        assert_eq!(cpu.memory().read_u64(*c), *e, "{}: alpha cell {c:#x}", wl.name);
    }
}

macro_rules! workload_tests {
    ($($test:ident => $name:expr;)+) => {
        $(
            mod $test {
                use super::*;

                fn wl() -> Workload {
                    suite::by_name($name).expect("registered")
                }

                #[test]
                fn trips_hand() {
                    check_trips(&wl(), Variant::Hand);
                }

                #[test]
                fn trips_compiled() {
                    check_trips(&wl(), Variant::Compiled);
                }

                #[test]
                fn alpha() {
                    check_alpha(&wl());
                }
            }
        )+
    };
}

workload_tests! {
    dct8x8 => "dct8x8";
    matrix => "matrix";
    sha => "sha";
    vadd => "vadd";
    cfar => "cfar";
    conv => "conv";
    ct => "ct";
    genalg => "genalg";
    pm => "pm";
    qr => "qr";
    svd => "svd";
    a2time01 => "a2time01";
    bezier02 => "bezier02";
    basefp01 => "basefp01";
    rspeed01 => "rspeed01";
    tblook01 => "tblook01";
    mcf => "181.mcf";
    parser => "197.parser";
    bzip2 => "256.bzip2";
    twolf => "300.twolf";
    mgrid => "172.mgrid";
    saxpy => "saxpy";
    listwalk => "listwalk";
}
