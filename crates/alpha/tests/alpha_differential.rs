//! The baseline core must compute the same final memory as the IR
//! interpreter on every program.

use trips_alpha::{compile_risc, AlphaConfig, AlphaCore};
use trips_tasm::{interp, Opcode, ProgramBuilder};

const OUT: u64 = 0x10_0000;

fn check(p: trips_tasm::Program, cells: &[u64]) -> trips_alpha::AlphaStats {
    let reference = interp::run(&p, 5_000_000).expect("IR interp failed");
    let r = compile_risc(&p).expect("compile failed");
    let mut cpu = AlphaCore::new(AlphaConfig::alpha21264(), &r).expect("bad program");
    let stats = cpu.run(5_000_000).unwrap_or_else(|e| panic!("alpha failed: {e}"));
    for (i, &cell) in cells.iter().enumerate() {
        assert_eq!(
            cpu.memory().read_u64(cell),
            reference.mem.read_u64(cell),
            "cell {i} at {cell:#x}"
        );
    }
    stats
}

#[test]
fn straightline() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let a = f.iconst(40);
    let b = f.addi(a, 2);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, b);
    f.halt();
    f.finish();
    check(p.finish(), &[OUT]);
}

#[test]
fn loop_with_memory() {
    let mut p = ProgramBuilder::new();
    p.global_words(0x20_0000, &(0..64u64).map(|i| i * 3 + 1).collect::<Vec<_>>());
    let mut f = p.func("main", 0);
    let i = f.fresh();
    let sum = f.fresh();
    f.iconst_into(i, 0);
    f.iconst_into(sum, 0);
    let body = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    let base = f.iconst(0x20_0000);
    let off = f.bini(Opcode::Slli, i, 3);
    let addr = f.add(base, off);
    let v = f.load(Opcode::Ld, addr, 0);
    f.bin_into(sum, Opcode::Add, sum, v);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 64);
    f.br(c, body, done);
    f.switch_to(done);
    let buf = f.iconst(OUT as i64);
    f.store(Opcode::Sd, buf, 0, sum);
    f.halt();
    f.finish();
    let stats = check(p.finish(), &[OUT]);
    assert!(stats.branches >= 63, "loop branches resolved: {}", stats.branches);
    assert!(stats.ipc() > 0.5, "a simple loop should sustain decent IPC: {}", stats.ipc());
}

#[test]
fn branchy_diamonds() {
    let mut p = ProgramBuilder::new();
    p.global_words(
        0x20_0000,
        &(0..32u64).map(|i| i.wrapping_mul(2654435761) >> 3).collect::<Vec<_>>(),
    );
    let mut f = p.func("main", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let body = f.new_block();
    let t = f.new_block();
    let e = f.new_block();
    let j = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    let base = f.iconst(0x20_0000);
    let off = f.bini(Opcode::Slli, i, 3);
    let addr = f.add(base, off);
    let a = f.load(Opcode::Ld, addr, 0);
    let bit = f.bini(Opcode::Andi, a, 1);
    let odd = f.bini(Opcode::Teqi, bit, 1);
    let r = f.fresh();
    f.br(odd, t, e);
    f.switch_to(t);
    f.bini_into(r, Opcode::Muli, a, 3);
    f.jmp(j);
    f.switch_to(e);
    f.bini_into(r, Opcode::Srai, a, 1);
    f.jmp(j);
    f.switch_to(j);
    let ob = f.iconst(OUT as i64);
    let oa = f.add(ob, off);
    f.store(Opcode::Sd, oa, 0, r);
    f.bini_into(i, Opcode::Addi, i, 1);
    let c = f.bini(Opcode::Tlti, i, 32);
    f.br(c, body, done);
    f.switch_to(done);
    f.halt();
    f.finish();
    check(p.finish(), &(0..32).map(|k| OUT + 8 * k).collect::<Vec<_>>());
}

#[test]
fn store_load_forwarding() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let buf = f.iconst(OUT as i64);
    let a = f.iconst(7);
    f.store(Opcode::Sd, buf, 0, a);
    let b = f.load(Opcode::Ld, buf, 0);
    let c = f.mul(b, b);
    f.store(Opcode::Sd, buf, 8, c);
    let d = f.load(Opcode::Ld, buf, 8);
    let e = f.addi(d, 1);
    f.store(Opcode::Sd, buf, 16, e);
    f.halt();
    f.finish();
    check(p.finish(), &[OUT, OUT + 8, OUT + 16]);
}

#[test]
fn calls_and_returns() {
    let mut p = ProgramBuilder::new();
    let mut main = p.func("main", 0);
    let mut acc = main.iconst(0);
    for k in 0..5 {
        let x = main.iconst(k);
        let y = main.call(trips_tasm::FuncId(1), &[x]);
        acc = main.add(acc, y);
    }
    let buf = main.iconst(OUT as i64);
    main.store(Opcode::Sd, buf, 0, acc);
    main.halt();
    main.finish();
    let mut g = p.func("g", 1);
    let a = g.param(0);
    let m = g.mul(a, a);
    let r = g.addi(m, 3);
    g.ret(Some(r));
    g.finish();
    let stats = check(p.finish(), &[OUT]);
    assert_eq!(stats.mispredictions, 0, "call/return should be RAS-predicted");
}

#[test]
fn subword_and_float() {
    let mut p = ProgramBuilder::new();
    let mut f = p.func("main", 0);
    let buf = f.iconst(OUT as i64);
    let v = f.iconst(-2);
    f.store(Opcode::Sb, buf, 0, v);
    let b = f.load(Opcode::Lb, buf, 0);
    let bu = f.load(Opcode::Lbu, buf, 0);
    f.store(Opcode::Sd, buf, 8, b);
    f.store(Opcode::Sd, buf, 16, bu);
    let x = f.fconst(2.5);
    let y = f.fconst(4.0);
    let s = f.bin(Opcode::Fmul, x, y);
    let q = f.un(Opcode::Fsqrt, y);
    f.store(Opcode::Sd, buf, 24, s);
    f.store(Opcode::Sd, buf, 32, q);
    f.halt();
    f.finish();
    check(p.finish(), &[OUT, OUT + 8, OUT + 16, OUT + 24, OUT + 32]);
}
