//! An Alpha-21264-like out-of-order core.
//!
//! The paper compares TRIPS against a 467 MHz Alpha 21264 through
//! Sim-Alpha with a perfect L2 (§5.4). This model reproduces the
//! relevant shape of that machine: 4-wide fetch with a tournament
//! branch predictor and return-address stack, an 80-entry reorder
//! window, 4 integer units, 2 memory ports, 2 FP units (6-wide issue),
//! a 64 KB 2-way L1 data cache with 3-cycle hits, store-to-load
//! forwarding with conservative disambiguation, and in-order commit.

use std::collections::{HashMap, VecDeque};

use trips_isa::mem::SparseMem;
use trips_isa::semantics::{eval, extend_load};
use trips_isa::Opcode;

use crate::risc::{RInst, Reg, RiscProgram};

/// Configuration of the baseline core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphaConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Integer units (branches and simple ALU ops).
    pub int_units: usize,
    /// L1D ports (loads/stores per cycle) — the Alpha's two ports are
    /// half of TRIPS's four, bounding `vadd`/`conv` speedups near 2×.
    pub mem_ports: usize,
    /// FP units.
    pub fp_units: usize,
    /// Total issue width.
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Integer multiply latency.
    pub mul_lat: u64,
    /// Integer divide latency.
    pub div_lat: u64,
    /// FP latency.
    pub fp_lat: u64,
    /// FP divide/sqrt latency.
    pub fdiv_lat: u64,
    /// L1D sets (64 KB, 2-way, 64 B lines = 512 sets).
    pub l1_sets: usize,
    /// L1D ways.
    pub l1_ways: usize,
    /// L1D hit latency.
    pub l1_lat: u64,
    /// Perfect-L2 fill latency.
    pub l2_lat: u64,
    /// Cycles of fetch stall after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// Issue-queue entries: only this many of the oldest not-yet-
    /// issued instructions are candidates each cycle (the 21264's
    /// integer queue holds 20 entries).
    pub iq_entries: usize,
}

impl AlphaConfig {
    /// 21264-like parameters.
    pub fn alpha21264() -> AlphaConfig {
        AlphaConfig {
            fetch_width: 4,
            rob_entries: 80,
            int_units: 4,
            mem_ports: 2,
            fp_units: 2,
            issue_width: 4,
            commit_width: 8,
            mul_lat: 7,
            div_lat: 20,
            fp_lat: 4,
            fdiv_lat: 16,
            l1_sets: 512,
            l1_ways: 2,
            l1_lat: 3,
            l2_lat: 12,
            mispredict_penalty: 11,
            iq_entries: 20,
        }
    }
}

impl Default for AlphaConfig {
    fn default() -> AlphaConfig {
        AlphaConfig::alpha21264()
    }
}

/// Statistics of a baseline run.
#[derive(Debug, Clone, Default)]
pub struct AlphaStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub insts_committed: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Mispredictions.
    pub mispredictions: u64,
}

impl AlphaStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_committed as f64 / self.cycles as f64
        }
    }
}

/// Errors from a baseline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphaError {
    /// The program failed validation at the given instruction.
    BadProgram(usize),
    /// The run did not halt within the cycle budget.
    Timeout {
        /// Cycles simulated.
        cycles: u64,
        /// Instructions committed.
        insts_committed: u64,
    },
}

impl std::fmt::Display for AlphaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlphaError::BadProgram(i) => write!(f, "invalid program at instruction {i}"),
            AlphaError::Timeout { cycles, insts_committed } => {
                write!(f, "timeout after {cycles} cycles ({insts_committed} committed)")
            }
        }
    }
}

impl std::error::Error for AlphaError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Ready(u64),
    Rob(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    Waiting,
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    pc: usize,
    srcs: Vec<Src>,
    dst: Option<Reg>,
    state: EState,
    done_at: u64,
    value: u64,
    ea: Option<u64>,
    store_val: Option<u64>,
    store_bytes: u32,
    pred_next: usize,
    bsnap: Option<(u32, Vec<usize>)>,
}

struct Tournament {
    local: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    ghist: u32,
}

impl Tournament {
    fn new() -> Tournament {
        Tournament { local: vec![1; 1024], gshare: vec![1; 4096], chooser: vec![1; 4096], ghist: 0 }
    }

    fn idx(&self, pc: usize) -> (usize, usize, usize) {
        let l = pc % self.local.len();
        let g = (pc ^ self.ghist as usize) % self.gshare.len();
        (l, g, g % self.chooser.len())
    }

    fn predict(&self, pc: usize) -> bool {
        let (l, g, c) = self.idx(pc);
        if self.chooser[c] >= 2 {
            self.gshare[g] >= 2
        } else {
            self.local[l] >= 2
        }
    }

    fn train(&mut self, pc: usize, ghist_at_pred: u32, taken: bool) {
        let l = pc % self.local.len();
        let g = (pc ^ ghist_at_pred as usize) % self.gshare.len();
        let c = g % self.chooser.len();
        let lr = (self.local[l] >= 2) == taken;
        let gr = (self.gshare[g] >= 2) == taken;
        if lr != gr {
            if gr {
                self.chooser[c] = (self.chooser[c] + 1).min(3);
            } else {
                self.chooser[c] = self.chooser[c].saturating_sub(1);
            }
        }
        bump(&mut self.local[l], taken);
        bump(&mut self.gshare[g], taken);
    }
}

fn bump(c: &mut u8, up: bool) {
    if up {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// The baseline core.
pub struct AlphaCore {
    cfg: AlphaConfig,
    prog: RiscProgram,
    mem: SparseMem,
    arch: HashMap<Reg, u64>,
    rat: HashMap<Reg, u64>,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    pc: usize,
    fetch_stall_until: u64,
    halt_fetched: bool,
    finished: bool,
    bpred: Tournament,
    ras: Vec<usize>,
    tags: Vec<Vec<Option<u64>>>,
    lru: Vec<u8>,
    cycle: u64,
    stats: AlphaStats,
}

impl AlphaCore {
    /// Loads `prog` into a fresh core.
    ///
    /// # Errors
    ///
    /// Fails if the program has out-of-range branch targets.
    pub fn new(cfg: AlphaConfig, prog: &RiscProgram) -> Result<AlphaCore, AlphaError> {
        prog.check().map_err(AlphaError::BadProgram)?;
        let mut mem = SparseMem::new();
        for (base, data) in &prog.globals {
            mem.write_bytes(*base, data);
        }
        Ok(AlphaCore {
            tags: vec![vec![None; cfg.l1_ways]; cfg.l1_sets],
            lru: vec![0; cfg.l1_sets],
            pc: prog.entry,
            cfg,
            prog: prog.clone(),
            mem,
            arch: HashMap::new(),
            rat: HashMap::new(),
            rob: VecDeque::new(),
            next_seq: 0,
            fetch_stall_until: 0,
            halt_fetched: false,
            finished: false,
            bpred: Tournament::new(),
            ras: Vec::new(),
            cycle: 0,
            stats: AlphaStats::default(),
        })
    }

    /// Final memory, for result checking.
    pub fn memory(&self) -> &SparseMem {
        &self.mem
    }

    /// Runs to `halt` or `max_cycles`.
    ///
    /// # Errors
    ///
    /// [`AlphaError::Timeout`] if the program does not halt in budget.
    pub fn run(&mut self, max_cycles: u64) -> Result<AlphaStats, AlphaError> {
        while !self.finished {
            if self.cycle >= max_cycles {
                return Err(AlphaError::Timeout {
                    cycles: self.cycle,
                    insts_committed: self.stats.insts_committed,
                });
            }
            self.tick();
        }
        self.stats.cycles = self.cycle;
        Ok(self.stats.clone())
    }

    fn tick(&mut self) {
        self.commit();
        if self.finished {
            return;
        }
        self.execute();
        self.fetch();
        self.cycle += 1;
    }

    fn entry_by_seq(&self, seq: u64) -> Option<&RobEntry> {
        let front = self.rob.front()?.seq;
        self.rob.get((seq.checked_sub(front)?) as usize)
    }

    fn src_ready(&self, s: &Src, now: u64) -> bool {
        match s {
            Src::Ready(_) => true,
            Src::Rob(seq) => match self.entry_by_seq(*seq) {
                Some(e) => e.state == EState::Done && e.done_at <= now,
                None => true, // producer already committed
            },
        }
    }

    fn src_value(&self, s: &Src, seq_hint: u64) -> u64 {
        match s {
            Src::Ready(v) => *v,
            Src::Rob(seq) => self
                .entry_by_seq(*seq)
                .map(|e| e.value)
                .unwrap_or_else(|| panic!("producer {seq} of {seq_hint} vanished")),
        }
    }

    fn is_hit(&self, ea: u64) -> bool {
        let line = ea >> 6;
        let set = (line as usize) % self.cfg.l1_sets;
        let tag = line;
        self.tags[set].contains(&Some(tag))
    }

    fn install(&mut self, ea: u64) {
        let line = ea >> 6;
        let set = (line as usize) % self.cfg.l1_sets;
        let tag = line;
        if self.tags[set].contains(&Some(tag)) {
            return;
        }
        let way = self.lru[set] as usize % self.cfg.l1_ways;
        self.tags[set][way] = Some(tag);
        self.lru[set] = (self.lru[set] + 1) % self.cfg.l1_ways as u8;
    }

    fn latency(&self, inst: &RInst) -> u64 {
        match inst {
            RInst::Bin { op, .. } | RInst::Un { op, .. } | RInst::BinImm { op, .. } => match op {
                Opcode::Mul => self.cfg.mul_lat,
                Opcode::Div | Opcode::Divu | Opcode::Mod => self.cfg.div_lat,
                Opcode::Fdiv | Opcode::Fsqrt => self.cfg.fdiv_lat,
                o if o.is_fp() => self.cfg.fp_lat,
                _ => 1,
            },
            _ => 1,
        }
    }

    fn execute(&mut self) {
        let now = self.cycle;
        let mut int_used = 0;
        let mut mem_used = 0;
        let mut fp_used = 0;
        let mut issued = 0;
        let mut iq_seen = 0;
        for i in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if self.rob[i].state != EState::Waiting {
                continue;
            }
            // Finite issue queue: only the oldest unissued entries are
            // visible to select.
            iq_seen += 1;
            if iq_seen > self.cfg.iq_entries {
                break;
            }
            let inst = self.prog.insts[self.rob[i].pc].clone();
            if !self.rob[i].srcs.iter().all(|s| self.src_ready(s, now)) {
                continue;
            }
            // Unit availability.
            // Loads and stores issue through the integer pipes on the
            // 21264, so they consume both a memory port and an integer
            // slot.
            let unit_ok = if inst.is_mem() {
                mem_used < self.cfg.mem_ports && int_used < self.cfg.int_units
            } else if inst.is_fp() {
                fp_used < self.cfg.fp_units
            } else {
                int_used < self.cfg.int_units
            };
            if !unit_ok {
                continue;
            }
            // Conservative disambiguation: a load waits until every
            // older store knows its address (and its data, when the
            // addresses overlap).
            if let RInst::Load { op, .. } = inst {
                let bytes = op.access_bytes();
                let seq = self.rob[i].seq;
                let addr = self.src_value(&self.rob[i].srcs[0], seq);
                let off = match inst {
                    RInst::Load { off, .. } => off,
                    _ => unreachable!(),
                };
                let ea = addr.wrapping_add(off as i64 as u64);
                let mut blocked = false;
                for j in 0..i {
                    if let RInst::Store { .. } = self.prog.insts[self.rob[j].pc] {
                        match self.rob[j].ea {
                            None => {
                                blocked = true;
                                break;
                            }
                            Some(sa) => {
                                let sb = u64::from(self.rob[j].store_bytes);
                                let overlap = sa < ea + u64::from(bytes) && ea < sa + sb;
                                if overlap && self.rob[j].store_val.is_none() {
                                    blocked = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                if blocked {
                    continue;
                }
                // Value: memory overlaid with older in-flight stores.
                let mut buf = [0u8; 8];
                self.mem.read_bytes(ea, &mut buf[..bytes as usize]);
                let mut forwarded = false;
                for j in 0..i {
                    if let RInst::Store { .. } = self.prog.insts[self.rob[j].pc] {
                        let (Some(sa), Some(sv)) = (self.rob[j].ea, self.rob[j].store_val) else {
                            continue;
                        };
                        let sb = u64::from(self.rob[j].store_bytes);
                        for b in 0..u64::from(bytes) {
                            let a = ea + b;
                            if a >= sa && a < sa + sb {
                                buf[b as usize] = (sv >> (8 * (a - sa))) as u8;
                                forwarded = true;
                            }
                        }
                    }
                }
                let raw = u64::from_le_bytes(buf);
                let lat = if forwarded || self.is_hit(ea) {
                    self.stats.l1_hits += 1;
                    self.cfg.l1_lat
                } else {
                    self.stats.l1_misses += 1;
                    self.cfg.l2_lat
                };
                self.install(ea);
                self.stats.loads += 1;
                let e = &mut self.rob[i];
                e.ea = Some(ea);
                e.value = extend_load(op, raw);
                e.state = EState::Done;
                e.done_at = now + lat;
                mem_used += 1;
                int_used += 1;
                issued += 1;
                continue;
            }

            // Everything else computes immediately.
            let seq = self.rob[i].seq;
            let vals: Vec<u64> = self.rob[i].srcs.iter().map(|s| self.src_value(s, seq)).collect();
            let lat = self.latency(&inst);
            match inst {
                RInst::Bin { op, .. } => {
                    let e = &mut self.rob[i];
                    e.value = eval(op, vals[0], vals[1], 0);
                }
                RInst::Un { op, .. } => {
                    let e = &mut self.rob[i];
                    e.value = eval(op, vals[0], 0, 0);
                }
                RInst::BinImm { op, imm, .. } => {
                    let v = match op {
                        Opcode::Addi => vals[0].wrapping_add(imm as u64),
                        Opcode::Subi => vals[0].wrapping_sub(imm as u64),
                        Opcode::Muli => vals[0].wrapping_mul(imm as u64),
                        Opcode::Andi => vals[0] & imm as u64,
                        Opcode::Ori => vals[0] | imm as u64,
                        Opcode::Xori => vals[0] ^ imm as u64,
                        _ => eval(op, vals[0], 0, imm as i32),
                    };
                    self.rob[i].value = v;
                }
                RInst::Const { val, .. } => self.rob[i].value = val as u64,
                RInst::Store { op, off, .. } => {
                    let ea = vals[0].wrapping_add(off as i64 as u64);
                    let e = &mut self.rob[i];
                    e.ea = Some(ea);
                    e.store_val = Some(vals[1]);
                    e.store_bytes = op.access_bytes();
                    mem_used += 1;
                    issued += 1;
                    e.state = EState::Done;
                    e.done_at = now + 1;
                    continue;
                }
                RInst::Bnz { target, .. } => {
                    self.stats.branches += 1;
                    let taken = vals[0] != 0;
                    let actual = if taken { target } else { self.rob[i].pc + 1 };
                    let (ghist, _) = self.rob[i].bsnap.clone().expect("branches snapshot");
                    self.bpred.train(self.rob[i].pc, ghist, taken);
                    if actual != self.rob[i].pred_next {
                        self.stats.mispredictions += 1;
                        self.mispredict(i, actual, now);
                        return; // ROB shape changed; stop this cycle
                    }
                }
                RInst::Jump { .. } | RInst::Call { .. } | RInst::Ret | RInst::Halt => {}
                RInst::Load { .. } => unreachable!("handled above"),
            }
            let e = &mut self.rob[i];
            e.state = EState::Done;
            e.done_at = now + lat;
            if inst.is_fp() {
                fp_used += 1;
            } else {
                int_used += 1;
            }
            issued += 1;
        }
    }

    fn mispredict(&mut self, rob_index: usize, actual: usize, now: u64) {
        // Squash everything younger. Sequence numbers of squashed
        // entries are reused so the window stays seq-contiguous.
        while self.rob.len() > rob_index + 1 {
            self.rob.pop_back();
        }
        self.next_seq = self.rob[rob_index].seq + 1;
        let e = &mut self.rob[rob_index];
        e.state = EState::Done;
        e.done_at = now + 1;
        let (ghist, ras) = e.bsnap.clone().expect("snapshot");
        // Correct the speculative predictor state: history reflects
        // the actual outcome.
        let taken = actual != e.pc + 1;
        self.bpred.ghist = (ghist << 1) | u32::from(taken);
        self.ras = ras;
        self.pc = actual;
        self.halt_fetched = false;
        self.fetch_stall_until = now + self.cfg.mispredict_penalty;
        // Rebuild the RAT from the surviving window.
        self.rat.clear();
        for e in &self.rob {
            if let Some(d) = e.dst {
                self.rat.insert(d, e.seq);
            }
        }
    }

    fn commit(&mut self) {
        let now = self.cycle;
        for _ in 0..self.cfg.commit_width {
            let Some(front) = self.rob.front() else {
                return;
            };
            if front.state != EState::Done || front.done_at > now {
                return;
            }
            let e = self.rob.pop_front().expect("checked front");
            let inst = &self.prog.insts[e.pc];
            match inst {
                RInst::Store { .. } => {
                    let (Some(ea), Some(v)) = (e.ea, e.store_val) else {
                        unreachable!("store committed without address")
                    };
                    self.mem.write_uint(ea, v, e.store_bytes);
                    self.stats.stores += 1;
                }
                RInst::Halt => {
                    self.finished = true;
                    self.stats.insts_committed += 1;
                    return;
                }
                _ => {}
            }
            if let Some(d) = e.dst {
                self.arch.insert(d, e.value);
                if self.rat.get(&d) == Some(&e.seq) {
                    self.rat.remove(&d);
                }
                // Forward the retired value to any consumer still
                // holding a window reference.
                for w in &mut self.rob {
                    for s in &mut w.srcs {
                        if *s == Src::Rob(e.seq) {
                            *s = Src::Ready(e.value);
                        }
                    }
                }
            }
            self.stats.insts_committed += 1;
        }
    }

    fn fetch(&mut self) {
        let now = self.cycle;
        if now < self.fetch_stall_until || self.halt_fetched {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                return;
            }
            let pc = self.pc;
            let Some(inst) = self.prog.insts.get(pc).cloned() else {
                // Fell off the end: stall until a flush redirects.
                self.halt_fetched = true;
                return;
            };
            let srcs: Vec<Src> = inst
                .srcs()
                .iter()
                .map(|r| match self.rat.get(r) {
                    Some(&seq) => Src::Rob(seq),
                    None => Src::Ready(self.arch.get(r).copied().unwrap_or(0)),
                })
                .collect();
            let mut bsnap = None;
            let pred_next = match inst {
                RInst::Bnz { target, .. } => {
                    bsnap = Some((self.bpred.ghist, self.ras.clone()));
                    let taken = self.bpred.predict(pc);
                    self.bpred.ghist = (self.bpred.ghist << 1) | u32::from(taken);
                    if taken {
                        target
                    } else {
                        pc + 1
                    }
                }
                RInst::Jump { target } => target,
                RInst::Call { target } => {
                    self.ras.push(pc + 1);
                    target
                }
                RInst::Ret => self.ras.pop().unwrap_or(pc + 1),
                RInst::Halt => pc,
                _ => pc + 1,
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            let dst = inst.dst();
            self.rob.push_back(RobEntry {
                seq,
                pc,
                srcs,
                dst,
                state: EState::Waiting,
                done_at: 0,
                value: 0,
                ea: None,
                store_val: None,
                store_bytes: 0,
                pred_next,
                bsnap,
            });
            if let Some(d) = dst {
                self.rat.insert(d, seq);
            }
            if matches!(inst, RInst::Halt) {
                self.halt_fetched = true;
                return;
            }
            let taken_away = pred_next != pc + 1;
            self.pc = pred_next;
            if taken_away {
                return; // fetch stops at a taken branch
            }
        }
    }
}
