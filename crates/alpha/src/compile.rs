//! The RISC backend: lowers the shared workload IR to the baseline
//! ISA.
//!
//! Each function's virtual registers map to a disjoint range of
//! baseline registers (the out-of-order core renames, so the wide
//! namespace is harmless); basic blocks lay out linearly with
//! fall-through optimization; calls copy arguments into the callee's
//! parameter registers and use the hardware call/return stack.

use std::collections::HashMap;

use trips_tasm::ir::{BbId, FuncId, Inst, Program, Term};

use crate::risc::{RInst, Reg, RiscProgram};

/// Errors from the baseline backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The IR failed validation.
    Ir(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "ir error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles an IR program to the baseline ISA.
///
/// # Errors
///
/// Fails if the IR does not validate.
pub fn compile_risc(prog: &Program) -> Result<RiscProgram, CompileError> {
    prog.check().map_err(|e| CompileError::Ir(e.to_string()))?;

    // Register-space layout: each function gets vregs + 1 (the extra
    // slot is its return-value register).
    let mut base = Vec::with_capacity(prog.funcs.len());
    let mut next = 0u32;
    for f in &prog.funcs {
        base.push(next);
        next += f.nvregs + 1;
    }
    let reg = |f: usize, v: u32| Reg(base[f] + v);
    let ret_reg = |f: usize| Reg(base[f] + prog.funcs[f].nvregs);

    let mut out = RiscProgram::default();
    let mut bb_start: HashMap<(FuncId, BbId), usize> = HashMap::new();
    let mut func_start: HashMap<FuncId, usize> = HashMap::new();
    // (inst index, target) fixups resolved after layout.
    enum Fix {
        Bnz(FuncId, BbId),
        Jump(FuncId, BbId),
        Call(FuncId),
    }
    let mut fixups: Vec<(usize, Fix)> = Vec::new();

    for (fi, func) in prog.funcs.iter().enumerate() {
        let fid = FuncId(fi as u32);
        // Layout blocks: entry first, then the rest in id order.
        let mut layout: Vec<BbId> = vec![func.entry];
        for b in 0..func.blocks.len() as u32 {
            if BbId(b) != func.entry {
                layout.push(BbId(b));
            }
        }
        func_start.insert(fid, out.insts.len());
        for (li, &bb) in layout.iter().enumerate() {
            bb_start.insert((fid, bb), out.insts.len());
            let block = func.block(bb);
            for inst in &block.insts {
                out.insts.push(lower_inst(inst, |v| reg(fi, v.0)));
            }
            let next_bb = layout.get(li + 1).copied();
            match &block.term {
                Term::Jmp(t) => {
                    if next_bb != Some(*t) {
                        fixups.push((out.insts.len(), Fix::Jump(fid, *t)));
                        out.insts.push(RInst::Jump { target: 0 });
                    }
                }
                Term::Br { cond, t, f } => {
                    fixups.push((out.insts.len(), Fix::Bnz(fid, *t)));
                    out.insts.push(RInst::Bnz { rs: reg(fi, cond.0), target: 0 });
                    if next_bb != Some(*f) {
                        fixups.push((out.insts.len(), Fix::Jump(fid, *f)));
                        out.insts.push(RInst::Jump { target: 0 });
                    }
                }
                Term::Ret(v) => {
                    if let Some(v) = v {
                        out.insts.push(RInst::Un {
                            op: trips_isa::Opcode::Mov,
                            rd: ret_reg(fi),
                            rs1: reg(fi, v.0),
                        });
                    }
                    out.insts.push(RInst::Ret);
                }
                Term::Call { func: callee, args, dst, next } => {
                    let ci = callee.0 as usize;
                    for (k, a) in args.iter().enumerate() {
                        out.insts.push(RInst::Un {
                            op: trips_isa::Opcode::Mov,
                            rd: reg(ci, k as u32),
                            rs1: reg(fi, a.0),
                        });
                    }
                    fixups.push((out.insts.len(), Fix::Call(*callee)));
                    out.insts.push(RInst::Call { target: 0 });
                    if let Some(d) = dst {
                        out.insts.push(RInst::Un {
                            op: trips_isa::Opcode::Mov,
                            rd: reg(fi, d.0),
                            rs1: ret_reg(ci),
                        });
                    }
                    if next_bb != Some(*next) {
                        fixups.push((out.insts.len(), Fix::Jump(fid, *next)));
                        out.insts.push(RInst::Jump { target: 0 });
                    }
                }
                Term::Halt => out.insts.push(RInst::Halt),
            }
        }
    }

    for (idx, fix) in fixups {
        let target = match fix {
            Fix::Bnz(f, b) | Fix::Jump(f, b) => bb_start[&(f, b)],
            Fix::Call(f) => func_start[&f],
        };
        match &mut out.insts[idx] {
            RInst::Bnz { target: t, .. }
            | RInst::Jump { target: t }
            | RInst::Call { target: t } => {
                *t = target;
            }
            other => unreachable!("fixup against {other:?}"),
        }
    }

    out.entry = func_start[&prog.entry];
    out.globals = prog.globals.iter().map(|g| (g.base, g.data.clone())).collect();
    debug_assert_eq!(out.check(), Ok(()));
    Ok(out)
}

fn lower_inst(inst: &Inst, mut reg: impl FnMut(trips_tasm::VReg) -> Reg) -> RInst {
    match *inst {
        Inst::Bin { op, dst, a, b } => RInst::Bin { op, rd: reg(dst), rs1: reg(a), rs2: reg(b) },
        Inst::Un { op, dst, a } => RInst::Un { op, rd: reg(dst), rs1: reg(a) },
        Inst::BinImm { op, dst, a, imm } => RInst::BinImm { op, rd: reg(dst), rs1: reg(a), imm },
        Inst::Const { dst, val } => RInst::Const { rd: reg(dst), val },
        Inst::Load { op, dst, addr, off } => RInst::Load { op, rd: reg(dst), rs1: reg(addr), off },
        Inst::Store { op, addr, off, val } => {
            RInst::Store { op, rs1: reg(addr), off, rs2: reg(val) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_tasm::{Opcode, ProgramBuilder};

    #[test]
    fn lowers_a_loop_with_fallthrough() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        let i = f.fresh();
        f.iconst_into(i, 0);
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(body);
        f.switch_to(body);
        f.bini_into(i, Opcode::Addi, i, 1);
        let c = f.bini(Opcode::Tlti, i, 10);
        f.br(c, body, done);
        f.switch_to(done);
        f.halt();
        f.finish();
        let r = compile_risc(&p.finish()).unwrap();
        r.check().unwrap();
        assert!(r.insts.iter().any(|i| matches!(i, RInst::Bnz { .. })));
        assert!(matches!(r.insts.last(), Some(RInst::Halt)));
        // Fall-through: no jump between entry and body needed beyond
        // the loop structure.
        let jumps = r.insts.iter().filter(|i| matches!(i, RInst::Jump { .. })).count();
        assert_eq!(jumps, 0, "all successors fall through: {:?}", r.insts);
    }

    #[test]
    fn call_copies_args_and_result() {
        let mut p = ProgramBuilder::new();
        let mut main = p.func("main", 0);
        let x = main.iconst(5);
        let y = main.call(trips_tasm::FuncId(1), &[x]);
        let buf = main.iconst(0x1000);
        main.store(Opcode::Sd, buf, 0, y);
        main.halt();
        main.finish();
        let mut g = p.func("g", 1);
        let a = g.param(0);
        let r = g.addi(a, 1);
        g.ret(Some(r));
        g.finish();
        let r = compile_risc(&p.finish()).unwrap();
        r.check().unwrap();
        assert!(r.insts.iter().any(|i| matches!(i, RInst::Call { .. })));
        assert!(r.insts.iter().any(|i| matches!(i, RInst::Ret)));
    }
}
