//! A small conventional RISC ISA for the baseline core.
//!
//! The paper's baseline is a 467 MHz Alpha 21264 measured through
//! Sim-Alpha (§5.4). This reproduction's baseline executes a
//! conventional three-address RISC close enough to Alpha for the
//! comparison's purpose: one instruction does one operation on an
//! unbounded architectural register namespace (the out-of-order core
//! renames anyway), with explicit branch targets.

use std::fmt;

use trips_isa::Opcode;

/// A (virtual) architectural register of the baseline ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One baseline instruction. Branch targets are instruction indices
/// within the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RInst {
    /// `rd = op(rs1, rs2)` — `op` is a two-operand compute opcode.
    Bin {
        /// Operation (G-format compute opcode of the shared table).
        op: Opcode,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd = op(rs1)` — unary.
    Un {
        /// Operation.
        op: Opcode,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
    },
    /// `rd = op(rs1, imm)`.
    BinImm {
        /// Operation (I-format opcode of the shared table).
        op: Opcode,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate (wide immediates model `lda/ldah` pairs).
        imm: i64,
    },
    /// `rd = imm`.
    Const {
        /// Destination.
        rd: Reg,
        /// The constant.
        val: i64,
    },
    /// `rd = extend(mem[rs1 + off])`.
    Load {
        /// Load opcode (width/extension).
        op: Opcode,
        /// Destination.
        rd: Reg,
        /// Base address.
        rs1: Reg,
        /// Byte offset.
        off: i32,
    },
    /// `mem[rs1 + off] = rs2`.
    Store {
        /// Store opcode (width).
        op: Opcode,
        /// Base address.
        rs1: Reg,
        /// Byte offset.
        off: i32,
        /// Value.
        rs2: Reg,
    },
    /// Branch to `target` when `rs != 0`, else fall through.
    Bnz {
        /// Condition register (0/1).
        rs: Reg,
        /// Taken target (instruction index).
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target (instruction index).
        target: usize,
    },
    /// Call: pushes the return index and jumps.
    Call {
        /// Callee entry (instruction index).
        target: usize,
    },
    /// Return to the most recent call site.
    Ret,
    /// Stop the machine.
    Halt,
}

impl RInst {
    /// Destination register, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            RInst::Bin { rd, .. }
            | RInst::Un { rd, .. }
            | RInst::BinImm { rd, .. }
            | RInst::Const { rd, .. }
            | RInst::Load { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Source registers.
    pub fn srcs(&self) -> Vec<Reg> {
        match self {
            RInst::Bin { rs1, rs2, .. } => vec![*rs1, *rs2],
            RInst::Un { rs1, .. } | RInst::BinImm { rs1, .. } | RInst::Load { rs1, .. } => {
                vec![*rs1]
            }
            RInst::Store { rs1, rs2, .. } => vec![*rs1, *rs2],
            RInst::Bnz { rs, .. } => vec![*rs],
            _ => vec![],
        }
    }

    /// True for control-flow instructions.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            RInst::Bnz { .. } | RInst::Jump { .. } | RInst::Call { .. } | RInst::Ret | RInst::Halt
        )
    }

    /// True for memory instructions.
    pub fn is_mem(&self) -> bool {
        matches!(self, RInst::Load { .. } | RInst::Store { .. })
    }

    /// True for floating-point instructions.
    pub fn is_fp(&self) -> bool {
        match self {
            RInst::Bin { op, .. } | RInst::Un { op, .. } | RInst::BinImm { op, .. } => op.is_fp(),
            _ => false,
        }
    }
}

/// A baseline program: a flat instruction sequence with initialized
/// globals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RiscProgram {
    /// The instructions; branch targets index this vector.
    pub insts: Vec<RInst>,
    /// Entry instruction index.
    pub entry: usize,
    /// Initialized data: `(base, bytes)`.
    pub globals: Vec<(u64, Vec<u8>)>,
}

impl RiscProgram {
    /// Structural validation: every branch target in range.
    ///
    /// # Errors
    ///
    /// Returns the index of the first instruction with a bad target.
    pub fn check(&self) -> Result<(), usize> {
        for (i, inst) in self.insts.iter().enumerate() {
            let t = match inst {
                RInst::Bnz { target, .. } | RInst::Jump { target } | RInst::Call { target } => {
                    Some(*target)
                }
                _ => None,
            };
            if let Some(t) = t {
                if t >= self.insts.len() {
                    return Err(i);
                }
            }
        }
        if self.entry >= self.insts.len() && !self.insts.is_empty() {
            return Err(self.entry);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srcs_and_dst() {
        let i = RInst::Bin { op: Opcode::Add, rd: Reg(3), rs1: Reg(1), rs2: Reg(2) };
        assert_eq!(i.dst(), Some(Reg(3)));
        assert_eq!(i.srcs(), vec![Reg(1), Reg(2)]);
        assert!(!i.is_branch());
        let b = RInst::Bnz { rs: Reg(5), target: 0 };
        assert!(b.is_branch());
        assert_eq!(b.srcs(), vec![Reg(5)]);
    }

    #[test]
    fn check_catches_bad_targets() {
        let p = RiscProgram { insts: vec![RInst::Jump { target: 9 }], entry: 0, globals: vec![] };
        assert_eq!(p.check(), Err(0));
    }
}
