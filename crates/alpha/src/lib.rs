//! # trips-alpha — the baseline comparator
//!
//! Table 3 of the paper compares TRIPS against a 467 MHz Alpha 21264,
//! measured through the validated Sim-Alpha simulator with a perfect
//! L2 so the processor cores and primary caches are what differ
//! (§5.4). This crate provides the reproduction's equivalent:
//!
//! * [`risc`] — a conventional three-address RISC ISA;
//! * [`compile_risc`] — a backend from the shared workload IR, so
//!   every benchmark runs from the same source on both machines;
//! * [`AlphaCore`] — a 4-wide out-of-order core with 21264-like
//!   parameters: tournament branch prediction with a return-address
//!   stack, an 80-entry window, 4 integer units, **2 memory ports**
//!   (TRIPS's four L1 ports versus these two bound the streaming
//!   kernels' speedups near 2×), 2 FP units, a 64 KB 2-way L1D, and
//!   conservative memory disambiguation with store-to-load forwarding.
//!
//! ```
//! use trips_alpha::{compile_risc, AlphaConfig, AlphaCore};
//! use trips_tasm::{ProgramBuilder, Opcode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = ProgramBuilder::new();
//! let mut f = p.func("main", 0);
//! let a = f.iconst(40);
//! let b = f.addi(a, 2);
//! let buf = f.iconst(0x10_0000);
//! f.store(Opcode::Sd, buf, 0, b);
//! f.halt();
//! f.finish();
//! let prog = compile_risc(&p.finish())?;
//! let mut cpu = AlphaCore::new(AlphaConfig::alpha21264(), &prog)?;
//! let stats = cpu.run(100_000)?;
//! assert_eq!(cpu.memory().read_u64(0x10_0000), 42);
//! assert!(stats.insts_committed >= 5);
//! # Ok(())
//! # }
//! ```

mod compile;
mod ooo;
pub mod risc;

pub use compile::{compile_risc, CompileError};
pub use ooo::{AlphaConfig, AlphaCore, AlphaError, AlphaStats};
pub use risc::{RInst, Reg, RiscProgram};
