//! Ablation: the memory-side dependence predictor (§3.5).
//!
//! With the predictor disabled, every load issues aggressively and
//! every store-to-load conflict costs a full pipeline flush; with it
//! enabled, conflicting loads wait. The paper's design point (a
//! 1024-entry bit vector cleared every 10,000 blocks) sits between
//! never-stall and always-stall.

use trips_bench::run_trips;
use trips_core::CoreConfig;
use trips_harness::{criterion_group, criterion_main, num_threads, parallel_map, Criterion};
use trips_tasm::Quality;
use trips_workloads::suite;

fn deppred(c: &mut Criterion) {
    println!("\nAblation: dependence predictor (simulated cycles / violation flushes)");
    println!(
        "{:<12} {:>12} {:>8} {:>12} {:>8}",
        "bench", "on:cycles", "flush", "off:cycles", "flush"
    );
    let names = vec!["256.bzip2", "181.mcf", "sha", "300.twolf"];
    let rows = parallel_map(names, num_threads(), |name| {
        let wl = suite::by_name(name).expect("registered");
        let on = run_trips(&wl, Quality::Hand, CoreConfig::prototype());
        let off = run_trips(
            &wl,
            Quality::Hand,
            CoreConfig { deppred_disabled: true, ..CoreConfig::prototype() },
        );
        format!(
            "{:<12} {:>12} {:>8} {:>12} {:>8}",
            name, on.cycles, on.violation_flushes, off.cycles, off.violation_flushes
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("(violations with the predictor on are first-touch training misses)");

    let wl = suite::by_name("256.bzip2").expect("registered");
    c.bench_function("sim/bzip2_deppred_on", |b| {
        b.iter(|| run_trips(&wl, Quality::Hand, CoreConfig::prototype()).cycles)
    });
    c.bench_function("sim/bzip2_deppred_off", |b| {
        b.iter(|| {
            run_trips(
                &wl,
                Quality::Hand,
                CoreConfig { deppred_disabled: true, ..CoreConfig::prototype() },
            )
            .cycles
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = deppred
}
criterion_main!(benches);
