//! Ablation: the next-block predictor (§3.1).
//!
//! Compares the full tournament exit predictor + BTB/CTB/RAS/type
//! target predictor against a degenerate always-sequential predictor
//! on the control-heavy part of the suite, where every block boundary
//! is a prediction.

use trips_bench::run_trips;
use trips_core::{CoreConfig, PredictorConfig};
use trips_harness::{criterion_group, criterion_main, num_threads, parallel_map, Criterion};
use trips_tasm::Quality;
use trips_workloads::suite;

fn predictor(c: &mut Criterion) {
    println!("\nAblation: next-block predictor (hand quality)");
    println!("{:<12} {:>12} {:>9} {:>12} {:>9}", "bench", "full:cyc", "acc", "seq:cyc", "acc");
    let names = vec!["tblook01", "197.parser", "rspeed01", "a2time01", "matrix"];
    let rows = parallel_map(names, num_threads(), |name| {
        let wl = suite::by_name(name).expect("registered");
        let full = run_trips(&wl, Quality::Hand, CoreConfig::prototype());
        let seq = run_trips(
            &wl,
            Quality::Hand,
            CoreConfig { predictor: PredictorConfig::sequential_only(), ..CoreConfig::prototype() },
        );
        format!(
            "{:<12} {:>12} {:>8.1}% {:>12} {:>8.1}%",
            name,
            full.cycles,
            100.0 * full.prediction_accuracy(),
            seq.cycles,
            100.0 * seq.prediction_accuracy(),
        )
    });
    for row in rows {
        println!("{row}");
    }

    let wl = suite::by_name("tblook01").expect("registered");
    c.bench_function("sim/tblook01_full_predictor", |b| {
        b.iter(|| run_trips(&wl, Quality::Hand, CoreConfig::prototype()).cycles)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = predictor
}
criterion_main!(benches);
