//! Ablation: operand-network bandwidth.
//!
//! §7 names "more operand network bandwidth" as a likely architectural
//! extension because operand hop latency and contention dominate the
//! critical path (Table 3). This bench runs communication-heavy
//! kernels with one OPN (the prototype) and with two parallel OPNs,
//! printing the simulated-cycle series, and times one representative
//! configuration under Criterion.

use trips_bench::run_trips;
use trips_core::CoreConfig;
use trips_harness::{criterion_group, criterion_main, num_threads, parallel_map, Criterion};
use trips_tasm::Quality;
use trips_workloads::suite;

fn opn_bandwidth(c: &mut Criterion) {
    println!("\nAblation: OPN bandwidth (simulated cycles, hand quality)");
    println!("{:<10} {:>10} {:>10} {:>8}", "bench", "1xOPN", "2xOPN", "gain");
    let names = vec!["vadd", "conv", "dct8x8", "pm", "matrix"];
    let rows = parallel_map(names, num_threads(), |name| {
        let wl = suite::by_name(name).expect("registered");
        let base = run_trips(&wl, Quality::Hand, CoreConfig::prototype());
        let wide = run_trips(
            &wl,
            Quality::Hand,
            CoreConfig { opn_networks: 2, ..CoreConfig::prototype() },
        );
        format!(
            "{:<10} {:>10} {:>10} {:>7.1}%",
            name,
            base.cycles,
            wide.cycles,
            100.0 * (base.cycles as f64 - wide.cycles as f64) / base.cycles as f64
        )
    });
    for row in rows {
        println!("{row}");
    }

    let wl = suite::by_name("conv").expect("registered");
    c.bench_function("sim/conv_hand_1xopn", |b| {
        b.iter(|| run_trips(&wl, Quality::Hand, CoreConfig::prototype()).cycles)
    });
    c.bench_function("sim/conv_hand_2xopn", |b| {
        b.iter(|| {
            run_trips(&wl, Quality::Hand, CoreConfig { opn_networks: 2, ..CoreConfig::prototype() })
                .cycles
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = opn_bandwidth
}
criterion_main!(benches);
