//! Criterion microbenchmarks of the substrate components: the OPN
//! router mesh, the next-block predictor, block encode/decode, the
//! block-level interpreter, and the secondary memory system.

use trips_core::{NextBlockPredictor, PredictorConfig};
use trips_harness::{criterion_group, criterion_main, Criterion};
use trips_isa::{decode, encode, BranchKind, Instruction, Opcode, Target, TripsBlock};
use trips_mem::{MemConfig, MemReq, SecondarySystem};
use trips_micronet::{Coord, Mesh, MeshMsg};

fn opn_router(c: &mut Criterion) {
    c.bench_function("micronet/opn_saturated_1k_cycles", |b| {
        b.iter(|| {
            let mut m: Mesh<u64> = Mesh::new(5, 5, 4);
            let mut delivered = 0u64;
            for t in 0..1000u64 {
                for src_row in 0..5u8 {
                    let src = Coord { row: src_row, col: 0 };
                    let dst = Coord { row: 4 - src_row, col: 4 };
                    if m.can_inject(src) {
                        m.inject(t, MeshMsg::new(src, dst, t));
                    }
                }
                m.tick(t);
                for r in 0..5 {
                    for col in 0..5 {
                        while m.eject(Coord { row: r, col }).is_some() {
                            delivered += 1;
                        }
                    }
                }
            }
            delivered
        })
    });
}

fn predictor(c: &mut Criterion) {
    c.bench_function("predictor/predict_update_1k", |b| {
        let mut p = NextBlockPredictor::new(PredictorConfig::prototype());
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..1000u64 {
                let addr = 0x1_0000 + (i % 37) * 384;
                let cp = p.checkpoint();
                let pred = p.predict(addr, 384);
                sum = sum.wrapping_add(pred.target);
                p.update(addr, (i % 3) as u8, BranchKind::Branch, addr + 384, cp.history());
            }
            sum
        })
    });
}

fn encode_decode(c: &mut Criterion) {
    let mut b = TripsBlock::new();
    for i in 0..96u8 {
        b.push(Instruction::opi(Opcode::Addi, i as i32, [Target::left(96), Target::none()]))
            .unwrap();
    }
    b.push(Instruction::op(Opcode::Mov, [Target::none(), Target::none()])).unwrap();
    b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap();
    let bytes = encode(&b);
    c.bench_function("isa/encode_full_block", |bch| bch.iter(|| encode(&b).len()));
    c.bench_function("isa/decode_full_block", |bch| {
        bch.iter(|| decode(&bytes).expect("roundtrip").insts.len())
    });
}

fn secondary_memory(c: &mut Criterion) {
    c.bench_function("mem/nuca_64_line_reads", |b| {
        b.iter(|| {
            let mut l2 = SecondarySystem::new(MemConfig::prototype());
            let mut got = 0;
            let mut t = 0u64;
            for i in 0..64u64 {
                l2.request(t, (i % 20) as usize, MemReq::read_line(i, i * 64));
                for _ in 0..200 {
                    l2.tick(t);
                    t += 1;
                    if l2.pop_response(t, (i % 20) as usize).is_some() {
                        got += 1;
                        break;
                    }
                }
            }
            got
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = opn_router, predictor, encode_decode, secondary_memory
}
criterion_main!(benches);
