//! NUCA secondary-memory design sweep.
//!
//! Runs the memory-bound workloads (plus the two most bandwidth-hungry
//! Table 3 programs) under [`MemBackend::Nuca`] across secondary
//! configurations — [`MemMode::L2Shared`] vs [`MemMode::Scratchpad`]
//! and line- vs 4-line bank interleaving — and tabulates simulated
//! cycles and secondary-system behaviour per point. Architectural
//! results are backend-independent by construction (DESIGN.md §5d), so
//! the sweep reports *timing* divergence only; it exits nonzero if the
//! cache modes fail to diverge on any workload, since identical cycle
//! counts would mean the OCN/bank model is not actually in the loop.
//!
//! ```text
//! memsweep [--threads N]
//! ```
//!
//! Writes `BENCH_memsweep.json` in the current directory (the hand-
//! built JSON idiom of `simperf`; the container has no serde).

use std::process::ExitCode;

use trips_bench::run_trips;
use trips_core::{CoreConfig, CoreStats, MemBackend};
use trips_harness::{num_threads, parallel_map};
use trips_mem::{MemConfig, MemMode};
use trips_tasm::Quality;
use trips_workloads::{suite, Workload};

/// One sweep point: a mode and a bank-interleaving granularity.
#[derive(Clone, Copy)]
struct Point {
    label: &'static str,
    mode: MemMode,
    interleave_shift: u32,
}

const POINTS: [Point; 4] = [
    Point { label: "shared/il1", mode: MemMode::L2Shared, interleave_shift: 0 },
    Point { label: "shared/il4", mode: MemMode::L2Shared, interleave_shift: 2 },
    Point { label: "scratch/il1", mode: MemMode::Scratchpad, interleave_shift: 0 },
    Point { label: "scratch/il4", mode: MemMode::Scratchpad, interleave_shift: 2 },
];

fn sweep_workloads() -> Vec<Workload> {
    let mut wls = suite::memory_bound();
    for name in ["vadd", "conv"] {
        wls.push(suite::by_name(name).expect("registered"));
    }
    wls
}

fn run_point(wl: &Workload, p: Point) -> CoreStats {
    let mc =
        MemConfig { mode: p.mode, interleave_shift: p.interleave_shift, ..MemConfig::prototype() };
    let cfg = CoreConfig { mem_backend: MemBackend::Nuca(mc), ..CoreConfig::prototype() };
    run_trips(wl, Quality::Hand, cfg)
}

fn main() -> ExitCode {
    let mut threads = num_threads();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("memsweep: --threads needs a number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("memsweep: unknown flag {other:?}\nusage: memsweep [--threads N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let wls = sweep_workloads();
    let cases: Vec<(usize, usize)> =
        (0..wls.len()).flat_map(|w| (0..POINTS.len()).map(move |p| (w, p))).collect();
    eprintln!(
        "memsweep: {} workloads x {} configurations on {} thread(s)",
        wls.len(),
        POINTS.len(),
        threads
    );
    let stats = parallel_map(cases.clone(), threads, |(w, p)| run_point(&wls[w], POINTS[p]));

    println!(
        "{:<10} {:<12} {:>10} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "workload", "config", "cycles", "dfills", "ifills", "dram", "bank-hit", "fill-lat"
    );
    let mut json = String::from("{\n  \"points\": [\n");
    let mut diverged = Vec::new();
    for (wi, wl) in wls.iter().enumerate() {
        let mut cycles_by_mode: Vec<(MemMode, u64)> = Vec::new();
        for (pi, p) in POINTS.iter().enumerate() {
            let s = &stats[cases.iter().position(|&c| c == (wi, pi)).expect("case present")];
            let m = s.mem.as_ref().expect("NUCA runs export secondary stats");
            // Fill-latency buckets are 8 cycles wide (see MemSysStats).
            println!(
                "{:<10} {:<12} {:>10} {:>8} {:>8} {:>8} {:>8.1}% {:>8.1}",
                wl.name,
                p.label,
                s.cycles,
                m.dside_fills,
                m.iside_fills,
                m.dram_accesses,
                100.0 * m.hit_rate(),
                8.0 * m.fill_latency.mean(),
            );
            json.push_str(&format!(
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"cycles\": {}, \
                 \"dside_fills\": {}, \"iside_fills\": {}, \"dram_accesses\": {}, \
                 \"bank_hit_rate\": {:.4}, \"mean_fill_latency\": {:.1}}}{}\n",
                wl.name,
                p.label,
                s.cycles,
                m.dside_fills,
                m.iside_fills,
                m.dram_accesses,
                m.hit_rate(),
                8.0 * m.fill_latency.mean(),
                if wi + 1 == wls.len() && pi + 1 == POINTS.len() { "" } else { "," },
            ));
            cycles_by_mode.push((p.mode, s.cycles));
        }
        let shared: Vec<u64> = cycles_by_mode
            .iter()
            .filter(|(m, _)| *m == MemMode::L2Shared)
            .map(|&(_, c)| c)
            .collect();
        let scratch: Vec<u64> = cycles_by_mode
            .iter()
            .filter(|(m, _)| *m == MemMode::Scratchpad)
            .map(|&(_, c)| c)
            .collect();
        if shared != scratch {
            diverged.push(wl.name);
        }
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_memsweep.json", &json).expect("write BENCH_memsweep.json");
    println!("\nwrote BENCH_memsweep.json");

    if diverged.is_empty() {
        eprintln!(
            "memsweep: L2Shared and Scratchpad produced identical cycles everywhere — \
             the secondary system is not affecting timing"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "cache-mode divergence on {}/{} workloads: {}",
        diverged.len(),
        wls.len(),
        diverged.join(", ")
    );
    ExitCode::SUCCESS
}
