//! Protocol fault-injection fuzzer.
//!
//! Sweeps seeded timing-only fault plans ([`FaultPlan::random`]) over
//! a set of workloads, running each on the cycle-level core with every
//! protocol invariant checked per tick and comparing the final
//! architectural state against the `blockinterp` oracle. On a failure
//! it re-runs the case with the flight recorder on, writes a JSON
//! artifact (plan, hang report, Chrome trace), shrinks the plan to a
//! minimal reproducer, and prints a `#[test]` snippet that pastes into
//! `tests/fault_injection.rs`.
//!
//! ```text
//! protofuzz [--smoke] [--seeds N] [--start S] [--workloads a,b,c]
//!           [--quality hand|compiled] [--gate on|off] [--coherence]
//!           [--demo-bug] [--artifact FILE] [--threads N]
//! ```
//!
//! `--smoke` is the CI configuration: 210 seeds across four
//! microbenchmarks. `--demo-bug` flips on a synthetic failure
//! predicate (any forced flush storm counts as a failure) to
//! demonstrate the full shrink-and-report pipeline on a healthy core.
//!
//! Every fourth seed (`seed % 4 == 3`) runs under the NUCA secondary
//! backend instead of the perfect L2, so the OCN fill/ack plumbing and
//! the store-acknowledgement commit gating fuzz alongside the §4 core
//! protocols. Every eighth seed (`seed % 8 == 5`) instead runs on a
//! **chip** sharing one NUCA — OCN faults with all cores live,
//! deterministically-chosen co-runners on the other slots, and each
//! core compared against its own oracle (contention is timing-only,
//! so a divergence still indicts the protocols). Half of those
//! (`seed % 16 == 13`) use a **four-core** die, fuzzing the tiled OCN
//! geometry; the rest keep the dual-core prototype. Every eighth seed
//! (`seed % 8 == 2`, a residue disjoint from the NUCA and chip axes)
//! runs on the [`CoreGeometry::mini`] die — same plan draw stream,
//! OPN coordinates folded into the smaller mesh
//! ([`FaultPlan::random_for`]) — so the protocols fuzz on a
//! non-prototype geometry too. Every sixteenth seed (`seed % 16 ==
//! 6`, again a disjoint residue) runs the **coherence axis**: a
//! shared-memory chip (`ChipConfig::shared_memory`) executing one of
//! the shared-registry workloads with OCN link faults and chain
//! delays live, the §5g invariant suite (SWMR, directory/cache
//! agreement, message conservation) checked every tick, and every
//! core's replica compared against the workload's sequential
//! final-state oracle. Those seeds pick quad over dual at `seed % 32
//! == 22` and the mini die at `(seed / 16) % 4 == 1`; `--coherence`
//! remaps *all* seeds onto this axis (the nightly deep-fuzz
//! configuration). All choices are pure functions of the seed, so a
//! seed reproduces identically in the sweep, the shrinker, and a
//! repro test, and every historical seed's plan and configuration are
//! unchanged by the geometry axis.
//!
//! Under the default `--gate on`, the fuzzed cores run with epoch
//! skipping live (`CoreConfig::prototype()` sets `skip_epochs`), so
//! every fault plan's perturbed arrival times — delayed chain hops,
//! stalled OPN/OCN links — also stress the next-wake computation: a
//! skip past a maturity point the scan failed to fold would surface
//! as an architectural divergence from the oracle.

use std::process::ExitCode;

use trips_bench::fuzz::{self, FuzzFailure, Oracle};
use trips_core::{CoreGeometry, FaultPlan, MemBackend};
use trips_harness::{num_threads, parallel_map};
use trips_tasm::Quality;
use trips_workloads::suite;

struct Args {
    seeds: u64,
    start: u64,
    workloads: Vec<String>,
    quality: Quality,
    gate: bool,
    coherence: bool,
    demo_bug: bool,
    artifact: String,
    threads: usize,
    max_cycles: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 1000,
        start: 0,
        workloads: vec!["dct8x8".into(), "matrix".into(), "sha".into(), "vadd".into()],
        quality: Quality::Hand,
        gate: true,
        coherence: false,
        demo_bug: false,
        artifact: "protofuzz-failure.json".into(),
        threads: num_threads(),
        max_cycles: fuzz::FUZZ_MAX_CYCLES,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--smoke" => args.seeds = 210,
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?
            }
            "--start" => {
                args.start = value("--start")?.parse().map_err(|e| format!("--start: {e}"))?
            }
            "--workloads" => {
                args.workloads = value("--workloads")?.split(',').map(str::to_string).collect();
            }
            "--quality" => {
                args.quality = match value("--quality")?.as_str() {
                    "hand" => Quality::Hand,
                    "compiled" => Quality::Compiled,
                    q => return Err(format!("unknown quality {q:?} (hand|compiled)")),
                }
            }
            "--gate" => {
                args.gate = match value("--gate")?.as_str() {
                    "on" => true,
                    "off" => false,
                    g => return Err(format!("unknown gate mode {g:?} (on|off)")),
                }
            }
            "--coherence" => args.coherence = true,
            "--demo-bug" => args.demo_bug = true,
            "--artifact" => args.artifact = value("--artifact")?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--max-cycles" => {
                args.max_cycles =
                    value("--max-cycles")?.parse().map_err(|e| format!("--max-cycles: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.workloads.is_empty() {
        return Err("--workloads needs at least one name".into());
    }
    Ok(args)
}

/// Whether `plan` fails on `oracle` — the one predicate both the sweep
/// and the shrinker use, so a shrunk plan fails for the same reason as
/// the original. In `--demo-bug` mode a run that merely *experienced*
/// a forced flush storm also counts as failing, to exercise the
/// shrink-and-report pipeline without a real bug.
#[allow(clippy::too_many_arguments)]
fn case_failure(
    oracle: &Oracle,
    chip_with: &[&Oracle],
    plan: &FaultPlan,
    geom: CoreGeometry,
    nuca: bool,
    gate: bool,
    demo: bool,
    max_cycles: u64,
) -> Option<String> {
    if !chip_with.is_empty() {
        let mut all = Vec::with_capacity(1 + chip_with.len());
        all.push(oracle);
        all.extend_from_slice(chip_with);
        return match fuzz::run_chip_against_oracles(&all, Some(plan), gate, max_cycles) {
            Err(e) => Some(e),
            Ok(stats) if demo && stats.cores.iter().any(|c| c.protocol.forced_flushes > 0) => {
                Some("demo bug: forced flush storm(s) observed on a chip core".into())
            }
            Ok(_) => None,
        };
    }
    let backend = if nuca { MemBackend::nuca_prototype() } else { MemBackend::prototype() };
    match fuzz::run_against_oracle_geom(oracle, backend, geom, Some(plan), gate, max_cycles) {
        Err(e) => Some(e),
        Ok(stats) if demo && stats.protocol.forced_flushes > 0 => Some(format!(
            "demo bug: {} forced flush storm(s) observed (synthetic failure predicate)",
            stats.protocol.forced_flushes
        )),
        Ok(_) => None,
    }
}

/// The co-runner oracles for a chip seed: slot `s + 1` runs oracle
/// `(seed / 8 + s) % n`, a pure function of the seed (slots may
/// repeat the primary). One slot on the dual-core prototype keeps the
/// historical seed → co-runner mapping; a four-core die adds two more.
fn chip_co_indices(seed: u64, slots: usize, n: usize) -> Vec<usize> {
    (0..slots).map(|s| ((seed / 8 + s as u64) % n as u64) as usize).collect()
}

/// The coherence-axis configuration for a seed — workload, core
/// count, die — as a pure function of the seed, so the shrinker and
/// any repro test reconstruct the exact case. Under `--coherence`
/// (every seed remapped) the workload rotates per seed and quad dies
/// alternate with dual; on the default axis (`seed % 16 == 6`) the
/// choices use disjoint seed bits so historical residues stay put.
fn coherence_case(seed: u64, remapped: bool) -> (String, usize, CoreGeometry) {
    let wls = suite::shared_memory();
    let wi = if remapped { seed % wls.len() as u64 } else { (seed / 16) % wls.len() as u64 };
    let quad = if remapped { seed % 2 == 1 } else { seed % 32 == 22 };
    let geom = if (seed / 16) % 4 == 1 { CoreGeometry::mini() } else { CoreGeometry::prototype() };
    (wls[wi as usize].name.to_string(), if quad { 4 } else { 2 }, geom)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("protofuzz: {e}");
            eprintln!(
                "usage: protofuzz [--smoke] [--seeds N] [--start S] [--workloads a,b,c] \
                 [--quality hand|compiled] [--gate on|off] [--demo-bug] [--artifact FILE] \
                 [--threads N] [--max-cycles N]"
            );
            return ExitCode::FAILURE;
        }
    };

    let mut oracles = Vec::new();
    for name in &args.workloads {
        let Some(wl) = suite::by_name(name) else {
            eprintln!("protofuzz: unknown workload {name:?}; known:");
            for w in suite::all() {
                eprintln!("  {}", w.name);
            }
            return ExitCode::FAILURE;
        };
        oracles.push(Oracle::build(&wl, args.quality));
    }

    let cases: Vec<(u64, usize)> = (args.start..args.start + args.seeds)
        .map(|seed| (seed, (seed % oracles.len() as u64) as usize))
        .collect();
    eprintln!(
        "protofuzz: sweeping {} seeded plans over {} workload(s) ({:?}, gating {}) on {} thread(s)",
        cases.len(),
        oracles.len(),
        args.quality,
        if args.gate { "on" } else { "off" },
        args.threads,
    );

    let failures: Vec<FuzzFailure> = parallel_map(cases, args.threads, |(seed, oi)| {
        if args.coherence || seed % 16 == 6 {
            let (name, ncores, geom) = coherence_case(seed, args.coherence);
            let plan = FaultPlan::random_for(seed, geom);
            let why = fuzz::run_shared_against_oracle(
                &name,
                ncores,
                geom,
                Some(&plan),
                args.gate,
                args.max_cycles,
            )
            .err()?;
            return Some(FuzzFailure {
                seed,
                workload: name,
                quality: args.quality,
                nuca: false,
                co_runner: None,
                shared_cores: Some(ncores),
                geom,
                plan,
                why,
            });
        }
        let oracle = &oracles[oi];
        let chip = seed % 8 == 5;
        let nuca = seed % 4 == 3;
        // The geometry axis: a residue class disjoint from the NUCA
        // and chip axes, so no historical seed's configuration moves.
        let geom = if seed % 8 == 2 { CoreGeometry::mini() } else { CoreGeometry::prototype() };
        let plan = FaultPlan::random_for(seed, geom);
        let slots = if seed % 16 == 13 { 3 } else { 1 };
        let co: Vec<&Oracle> = if chip {
            chip_co_indices(seed, slots, oracles.len()).into_iter().map(|i| &oracles[i]).collect()
        } else {
            Vec::new()
        };
        case_failure(oracle, &co, &plan, geom, nuca, args.gate, args.demo_bug, args.max_cycles).map(
            |why| FuzzFailure {
                seed,
                workload: oracle.name.clone(),
                quality: oracle.quality,
                nuca,
                co_runner: (!co.is_empty())
                    .then(|| co.iter().map(|o| o.name.as_str()).collect::<Vec<_>>().join(",")),
                shared_cores: None,
                geom,
                plan,
                why,
            },
        )
    })
    .into_iter()
    .flatten()
    .collect();

    if failures.is_empty() {
        eprintln!("protofuzz: all {} plans passed (invariants + oracle)", args.seeds);
        if args.demo_bug {
            eprintln!("protofuzz: --demo-bug found no storming plan; widen --seeds");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    eprintln!("protofuzz: {} failing plan(s); minimizing the first", failures.len());
    for f in failures.iter().take(10) {
        let mode = match (f.shared_cores, &f.co_runner) {
            (Some(n), _) => format!(", shared-memory chip x{n}"),
            (None, Some(co)) => format!(", chip with {co}"),
            (None, None) if f.nuca => ", nuca".into(),
            (None, None) => String::new(),
        };
        let mode = format!("{mode}, {}", f.geom.name());
        eprintln!(
            "  seed {:#x} on {} ({:?}{mode}): {}",
            f.seed,
            f.workload,
            f.quality,
            first_line(&f.why)
        );
    }

    let fail = &failures[0];
    if let Some(ncores) = fail.shared_cores {
        // Coherence-axis failure: shrink against the shared-memory
        // oracle predicate and emit the shared artifact and snippet.
        let (shrunk, shrunk_why) = fuzz::shrink(fail.plan.clone(), fail.why.clone(), |p| {
            fuzz::run_shared_against_oracle(
                &fail.workload,
                ncores,
                fail.geom,
                Some(p),
                args.gate,
                args.max_cycles,
            )
            .err()
        });
        eprintln!("protofuzz: shrunk plan:\n{}", shrunk.to_rust_literal());
        eprintln!("protofuzz: still fails with: {}", first_line(&shrunk_why));
        let artifact =
            fuzz::failure_artifact_shared(fail, &shrunk, &shrunk_why, args.gate, args.max_cycles);
        match std::fs::write(&args.artifact, &artifact) {
            Ok(()) => eprintln!("protofuzz: wrote failure artifact to {}", args.artifact),
            Err(e) => eprintln!("protofuzz: writing {}: {e}", args.artifact),
        }
        println!("// ---- paste into tests/fault_injection.rs ----");
        println!(
            "{}",
            fuzz::repro_snippet_shared(&fail.workload, ncores, fail.geom, &shrunk, &shrunk_why)
        );
        return ExitCode::FAILURE;
    }
    let oracle = &oracles[args.workloads.iter().position(|w| *w == fail.workload).unwrap_or(0)];
    // The co-runner field is the comma-joined slot list; map each name
    // back to its oracle for the shrinker and the artifact.
    let co_oracles: Vec<&Oracle> = fail
        .co_runner
        .as_deref()
        .map(|cos| {
            cos.split(',')
                .map(|co| &oracles[args.workloads.iter().position(|w| w == co).unwrap_or(0)])
                .collect()
        })
        .unwrap_or_default();
    let (shrunk, shrunk_why) = fuzz::shrink(fail.plan.clone(), fail.why.clone(), |p| {
        case_failure(
            oracle,
            &co_oracles,
            p,
            fail.geom,
            fail.nuca,
            args.gate,
            args.demo_bug,
            args.max_cycles,
        )
    });
    eprintln!("protofuzz: shrunk plan:\n{}", shrunk.to_rust_literal());
    eprintln!("protofuzz: still fails with: {}", first_line(&shrunk_why));

    let artifact = if co_oracles.is_empty() {
        fuzz::failure_artifact(oracle, fail, &shrunk, &shrunk_why, args.gate, args.max_cycles)
    } else {
        let mut all = Vec::with_capacity(1 + co_oracles.len());
        all.push(oracle);
        all.extend_from_slice(&co_oracles);
        fuzz::failure_artifact_chip(&all, fail, &shrunk, &shrunk_why, args.gate, args.max_cycles)
    };
    match std::fs::write(&args.artifact, &artifact) {
        Ok(()) => eprintln!("protofuzz: wrote failure artifact to {}", args.artifact),
        Err(e) => eprintln!("protofuzz: writing {}: {e}", args.artifact),
    }

    println!("// ---- paste into tests/fault_injection.rs ----");
    match &fail.co_runner {
        Some(co) => println!(
            "{}",
            fuzz::repro_snippet_chip(&fail.workload, co, fail.quality, &shrunk, &shrunk_why)
        ),
        None => println!(
            "{}",
            fuzz::repro_snippet_geom(
                &fail.workload,
                fail.quality,
                fail.nuca,
                fail.geom,
                &shrunk,
                &shrunk_why
            )
        ),
    }

    if args.demo_bug {
        // The demo's whole point is to produce the reproducer above;
        // reaching it is success.
        eprintln!("protofuzz: --demo-bug pipeline complete");
        return ExitCode::SUCCESS;
    }
    ExitCode::FAILURE
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or_default()
}
