//! Regenerates Table 2: TRIPS control and data networks.

use trips_area::networks_table;

fn main() {
    println!("Table 2. TRIPS Control and Data Networks (model-regenerated).");
    println!("{:<28} {:>18} {:>12}", "Network", "Use", "Bits");
    for row in networks_table() {
        let n = row.spec;
        let bits = if n.links_per_tile > 1 {
            format!("{} (x{})", n.bits, n.links_per_tile)
        } else {
            n.bits.to_string()
        };
        println!("{:<28} {:>18} {:>12}", format!("{} ({})", n.name, n.abbrev), n.purpose, bits);
    }
}
