//! Regenerates Figure 6: the TRIPS physical floorplan, with the area
//! breakdown by function.

use trips_area::{floorplan, table1, ChipConfig};

fn main() {
    let cfg = ChipConfig::prototype();
    println!("Figure 6. TRIPS physical floorplan (ASCII rendition).");
    println!();
    print!("{}", floorplan(&cfg));
    println!();
    println!("Area by function:");
    let (rows, summary) = table1(&cfg);
    let pct = |labels: &[&str]| -> f64 {
        rows.iter().filter(|r| labels.contains(&r.tile)).map(|r| r.pct_chip_area).sum()
    };
    println!("  Processor cores (GT+RT+IT+DT+ET): {:>5.1}%", pct(&["GT", "RT", "IT", "DT", "ET"]));
    println!("  Secondary memory (MT+NT):         {:>5.1}%", pct(&["MT", "NT"]));
    println!("  Controllers (SDC+DMA+EBC+C2C):    {:>5.1}%", pct(&["SDC", "DMA", "EBC", "C2C"]));
    println!(
        "  Placed tile area: {:.0} mm² of the {:.0} mm² die",
        summary.tile_area_mm2, summary.die_area_mm2
    );
}
