//! Regenerates Table 1: TRIPS tile specifications.

use trips_area::{chip_summary, table1, ChipConfig};

fn main() {
    let cfg = ChipConfig::prototype();
    let (rows, summary) = table1(&cfg);

    println!("Table 1. TRIPS Tile Specifications (model-regenerated).");
    println!(
        "{:<6} {:>11} {:>11} {:>10} {:>11} {:>12}",
        "Tile", "Cell Count", "Array Bits", "Size(mm2)", "Tile Count", "% Chip Area"
    );
    for r in &rows {
        println!(
            "{:<6} {:>10}K {:>10}K {:>10.1} {:>11} {:>12.1}",
            r.tile,
            r.cell_count / 1000,
            r.array_bits / 1000,
            r.size_mm2,
            r.tile_count,
            r.pct_chip_area
        );
    }
    println!(
        "{:<6} {:>10.1}M {:>9.1}M {:>10.0} {:>11} {:>12.1}",
        "Chip",
        summary.total_cells as f64 / 1e6,
        summary.total_bits as f64 / 1e6,
        summary.tile_area_mm2,
        rows.iter().map(|r| r.tile_count).sum::<usize>(),
        100.0
    );

    let s = chip_summary();
    println!();
    println!("Section 5.2 overhead attribution:");
    println!(
        "  OPN routers/links : {:>5.1}% of processor core area (paper: ~12%)",
        s.opn_pct_of_core
    );
    println!(
        "  OCN routers/links : {:>5.1}% of chip area           (paper: ~14%)",
        s.ocn_pct_of_chip
    );
    println!(
        "  Replicated LSQs   : {:>5.1}% of processor core area (paper: ~13%)",
        s.lsq_pct_of_core
    );
    println!(
        "  LSQ share of DT   : {:>5.1}% of each data tile      (paper: ~40%)",
        s.lsq_pct_of_dt
    );
}
