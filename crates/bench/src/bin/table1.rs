//! Regenerates Table 1: TRIPS tile specifications.

use trips_area::{chip_summary, render_table1, ChipConfig};

fn main() {
    let cfg = ChipConfig::prototype();
    println!("Table 1. TRIPS Tile Specifications (model-regenerated).");
    print!("{}", render_table1(&cfg));

    let s = chip_summary();
    println!();
    println!("Section 5.2 overhead attribution:");
    println!(
        "  OPN routers/links : {:>5.1}% of processor core area (paper: ~12%)",
        s.opn_pct_of_core
    );
    println!(
        "  OCN routers/links : {:>5.1}% of chip area           (paper: ~14%)",
        s.ocn_pct_of_chip
    );
    println!(
        "  Replicated LSQs   : {:>5.1}% of processor core area (paper: ~13%)",
        s.lsq_pct_of_core
    );
    println!(
        "  LSQ share of DT   : {:>5.1}% of each data tile      (paper: ~40%)",
        s.lsq_pct_of_dt
    );
}
