//! Host-throughput benchmark for the simulator itself.
//!
//! Where `table3` reports what the *modelled machine* does, `simperf`
//! reports how fast the *host* simulates it: simulated cycles per
//! host-second per workload, the single-run win from the clock-gated
//! tick scheduler (gated vs ungated, which must agree bit-for-bit),
//! and the wall-clock win from sharding the whole sweep across host
//! cores with the dependency-free worker pool. On a single-threaded
//! host the sweep's parallel pass is skipped and its JSON section is
//! marked `"vacuous": true` — there is nothing to shard.
//!
//! Flags:
//!   --smoke     micro + kernel suites only, Hand quality only (CI)
//!   --profile   also run each workload once with the per-phase tick
//!               profiler on and write `BENCH_tickprofile.json` (the
//!               profiling pass is separate from the timed runs, so
//!               the profiler's clock reads never pollute the reported
//!               throughput)
//!
//! Writes `BENCH_simperf.json` in the current directory.

use std::time::Instant;

use trips_bench::run_trips;
use trips_core::{CoreConfig, CoreStats, Processor, TickProfile};
use trips_harness::{num_threads, parallel_map};
use trips_tasm::Quality;
use trips_workloads::{suite, Class, Workload};

const MAX_CYCLES: u64 = trips_bench::MAX_CYCLES;

/// A workload whose gated run is more than ~5% slower than ungated is
/// a scheduler regression worth naming, even when the aggregate still
/// passes.
const GATING_FLAG_THRESHOLD: f64 = 0.95;

struct WorkloadPerf {
    name: &'static str,
    sim_cycles: u64,
    wall_secs: f64,
    ungated_secs: f64,
    gated_fraction: f64,
}

impl WorkloadPerf {
    fn cycles_per_host_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_secs.max(1e-12)
    }

    fn gating_speedup(&self) -> f64 {
        self.ungated_secs / self.wall_secs.max(1e-12)
    }

    fn flagged(&self) -> bool {
        self.gating_speedup() < GATING_FLAG_THRESHOLD
    }
}

/// One measured run; returns (stats, host seconds, gated fraction).
fn timed_run(wl: &Workload, quality: Quality, gate: bool) -> (CoreStats, f64, f64) {
    let image = wl
        .build_trips(quality)
        .unwrap_or_else(|e| panic!("{} ({quality}): compile failed: {e}", wl.name))
        .image;
    let cfg = CoreConfig { gate_ticks: gate, ..CoreConfig::prototype() };
    let mut cpu = Processor::new(cfg);
    let start = Instant::now();
    let stats = cpu
        .run(&image, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} ({quality}): simulation failed: {e}", wl.name));
    let secs = start.elapsed().as_secs_f64();
    (stats, secs, cpu.gating_stats().gated_fraction())
}

fn json_escape_free(name: &str) -> &str {
    debug_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)));
    name
}

/// One profiled run: the same gated configuration as the timed run,
/// with the per-phase profiler on. Returns the accumulated profile.
fn profiled_run(wl: &Workload, quality: Quality) -> TickProfile {
    let image = wl
        .build_trips(quality)
        .unwrap_or_else(|e| panic!("{} ({quality}): compile failed: {e}", wl.name))
        .image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    cpu.enable_profiling();
    cpu.run(&image, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} ({quality}): profiled run failed: {e}", wl.name));
    cpu.profile().clone()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let profile = std::env::args().any(|a| a == "--profile");
    let threads = num_threads();

    let workloads: Vec<Workload> = suite::all()
        .into_iter()
        .filter(|wl| !smoke || matches!(wl.class, Class::Micro | Class::Kernel))
        .collect();
    let qualities: &[Quality] =
        if smoke { &[Quality::Hand] } else { &[Quality::Hand, Quality::Compiled] };

    println!(
        "simperf: simulator host throughput ({} workloads, {threads} thread(s))",
        workloads.len()
    );
    println!();

    // Per-workload single-run measurements: gated (the default
    // scheduler) vs ungated, which must produce identical results.
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "workload", "sim cycles", "Mcyc/hostsec", "gated sec", "gating", "gatedfr"
    );
    let mut rows: Vec<WorkloadPerf> = Vec::with_capacity(workloads.len());
    for wl in &workloads {
        let (gated, wall_secs, gated_fraction) = timed_run(wl, Quality::Hand, true);
        let (ungated, ungated_secs, _) = timed_run(wl, Quality::Hand, false);
        assert_eq!(gated, ungated, "{}: gated and ungated runs must be bit-identical", wl.name);
        let perf = WorkloadPerf {
            name: wl.name,
            sim_cycles: gated.cycles,
            wall_secs,
            ungated_secs,
            gated_fraction,
        };
        println!(
            "{:<12} {:>12} {:>12.2} {:>10.4} {:>7.2}x {:>7.1}%{}",
            perf.name,
            perf.sim_cycles,
            perf.cycles_per_host_sec() / 1e6,
            perf.wall_secs,
            perf.gating_speedup(),
            100.0 * perf.gated_fraction,
            if perf.flagged() { "  << GATING REGRESSION" } else { "" },
        );
        rows.push(perf);
    }

    let total_gated: f64 = rows.iter().map(|r| r.wall_secs).sum();
    let total_ungated: f64 = rows.iter().map(|r| r.ungated_secs).sum();
    println!(
        "\nsingle-run gating speedup (suite total): {:.2}x ({:.2}s ungated -> {:.2}s gated)",
        total_ungated / total_gated.max(1e-12),
        total_ungated,
        total_gated,
    );
    let flagged: Vec<&str> = rows.iter().filter(|r| r.flagged()).map(|r| r.name).collect();
    if flagged.is_empty() {
        println!("no workload gates below {GATING_FLAG_THRESHOLD}x");
    } else {
        println!("GATING REGRESSIONS (speedup < {GATING_FLAG_THRESHOLD}x): {}", flagged.join(", "));
    }

    // Sweep: the same (workload x quality) runs, serial vs sharded
    // across the worker pool. Items are independent simulations.
    let sweep: Vec<(Workload, Quality)> =
        workloads.iter().flat_map(|&wl| qualities.iter().map(move |&q| (wl, q))).collect();
    let n_runs = sweep.len();

    let start = Instant::now();
    for (wl, q) in &sweep {
        std::hint::black_box(run_trips(wl, *q, CoreConfig::prototype()).cycles);
    }
    let serial_secs = start.elapsed().as_secs_f64();

    // A one-thread host has nothing to shard: the "parallel" pass
    // would re-run the identical serial loop and report a tautological
    // ~1x. Skip it and mark the sweep section vacuous so readers (and
    // the perf gate baseline) see the speedup number is absent by
    // construction, not a regression.
    let sweep_vacuous = threads == 1;
    let (parallel_secs, sweep_speedup) = if sweep_vacuous {
        println!(
            "sweep of {n_runs} runs: serial {serial_secs:.2}s; single-threaded host — \
             parallel sharding is VACUOUS here, pass skipped"
        );
        (serial_secs, 1.0)
    } else {
        let start = Instant::now();
        let cycles = parallel_map(sweep, threads, |(wl, q)| {
            run_trips(&wl, q, CoreConfig::prototype()).cycles
        });
        let parallel_secs = start.elapsed().as_secs_f64();
        std::hint::black_box(&cycles);
        let sweep_speedup = serial_secs / parallel_secs.max(1e-12);
        println!(
            "sweep of {n_runs} runs: serial {serial_secs:.2}s, parallel ({threads} threads) \
             {parallel_secs:.2}s -> {sweep_speedup:.2}x",
        );
        (parallel_secs, sweep_speedup)
    };

    // Hand-built JSON: the container has no serde.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_cycles\": {}, \"wall_secs\": {:.6}, \
             \"ungated_secs\": {:.6}, \"sim_cycles_per_host_sec\": {:.1}, \
             \"gating_speedup\": {:.4}, \"gated_fraction\": {:.4}}}{}\n",
            json_escape_free(r.name),
            r.sim_cycles,
            r.wall_secs,
            r.ungated_secs,
            r.cycles_per_host_sec(),
            r.gating_speedup(),
            r.gated_fraction,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gating_speedup_total\": {:.4},\n",
        total_ungated / total_gated.max(1e-12)
    ));
    json.push_str(&format!(
        "  \"gating_flagged\": [{}],\n",
        flagged
            .iter()
            .map(|n| format!("\"{}\"", json_escape_free(n)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"sweep\": {{\"runs\": {n_runs}, \"vacuous\": {sweep_vacuous}, \
         \"serial_secs\": {serial_secs:.6}, \"parallel_secs\": {parallel_secs:.6}, \
         \"parallel_speedup\": {sweep_speedup:.4}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_simperf.json", &json).expect("write BENCH_simperf.json");
    println!("\nwrote BENCH_simperf.json");

    // The profiling pass runs dead last so its Instant reads cannot
    // perturb any timed measurement above.
    if profile {
        let mut total = TickProfile::enabled();
        let mut per_wl = String::new();
        for (i, wl) in workloads.iter().enumerate() {
            let p = profiled_run(wl, Quality::Hand);
            per_wl.push_str(&format!(
                "    \"{}\": {}{}\n",
                json_escape_free(wl.name),
                p.json(),
                if i + 1 == workloads.len() { "" } else { "," },
            ));
            total.merge(&p);
        }
        println!("\nper-phase tick profile (suite total, gated runs):");
        print!("{}", total.report());
        let json =
            format!("{{\n  \"workloads\": {{\n{per_wl}  }},\n  \"total\": {}\n}}\n", total.json());
        std::fs::write("BENCH_tickprofile.json", &json).expect("write BENCH_tickprofile.json");
        println!("wrote BENCH_tickprofile.json");
    }
}
