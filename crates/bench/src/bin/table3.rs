//! Regenerates Table 3: distributed-network overheads as a percentage
//! of the program critical path, and preliminary performance of the
//! prototype versus the Alpha baseline.
//!
//! Flags:
//!   --overheads   only the critical-path breakdown
//!   --perf        only the speedup/IPC columns
//!   --quick       micro + kernel suites only
//!   (default: everything)

use trips_bench::{run_alpha, run_trips, speedup};
use trips_core::{CoreConfig, CATS};
use trips_harness::{num_threads, parallel_map};
use trips_tasm::Quality;
use trips_workloads::{suite, Class};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let want_over = args.iter().any(|a| a == "--overheads");
    let want_perf = args.iter().any(|a| a == "--perf");
    let overheads = want_over || !want_perf;
    let perf = want_perf || !want_over;
    let quick = args.iter().any(|a| a == "--quick");

    println!("Table 3. Network overheads and preliminary performance (model-regenerated).");
    println!("Methodology as in §5.4: perfect L2 on both machines; hand numbers use");
    println!("hand-quality source and backend, TCC numbers the compiled quality.");
    println!();

    let mut header = format!("{:<12}", "Benchmark");
    if overheads {
        for c in CATS {
            header.push_str(&format!(" {:>9}", c.label().replace("Block ", "Blk")));
        }
    }
    if perf {
        header.push_str(&format!(
            " {:>8} {:>8} {:>8} {:>8} {:>8}",
            "SpdTCC", "SpdHand", "IPCAlpha", "IPCTCC", "IPCHand"
        ));
    }
    println!("{header}");

    // Rows are independent (workload, config) simulations; shard them
    // across host cores and print in suite order.
    let rows: Vec<_> = suite::all()
        .into_iter()
        .filter(|wl| !quick || matches!(wl.class, Class::Micro | Class::Kernel))
        .collect();
    let rows = parallel_map(rows, num_threads(), |wl| {
        let mut row = format!("{:<12}", wl.name);
        let hand = run_trips(&wl, Quality::Hand, CoreConfig::prototype_critpath());
        if overheads {
            let bd = hand.critpath.as_ref().expect("critpath enabled");
            for c in CATS {
                row.push_str(&format!(" {:>8.2}%", 100.0 * bd.fraction(c)));
            }
        }
        if perf {
            let alpha = run_alpha(&wl);
            let tcc = run_trips(&wl, Quality::Compiled, CoreConfig::prototype());
            row.push_str(&format!(
                " {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                speedup(&alpha, &tcc),
                speedup(&alpha, &hand),
                alpha.ipc(),
                tcc.ipc(),
                hand.ipc(),
            ));
        }
        row
    });
    for row in rows {
        println!("{row}");
    }

    println!();
    println!("Overhead columns follow Fields et al. critical-path attribution on the");
    println!("hand-optimized runs; IFetch = instruction distribution, OPN Hops / OPN");
    println!("Cont. = operand network latency and contention, Fanout Ops = mov-tree");
    println!("execution, Blk Complete / Blk Commit = the distributed detection and");
    println!("commit protocols, Other = work a monolithic core also performs.");
}
