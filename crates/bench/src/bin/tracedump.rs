//! Dumps the flight recorder for one workload run.
//!
//! Runs a named workload on the cycle-level core with tracing on and
//! writes the recorded protocol events, either as a human-readable
//! listing or as Chrome `trace_event` JSON (load the file at
//! `chrome://tracing` or <https://ui.perfetto.dev> to see one lane per
//! tile).
//!
//! ```text
//! tracedump --workload vadd [--quality hand|compiled]
//!           [--format text|chrome] [--capacity N] [--out FILE]
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use trips_core::{CoreConfig, Processor};
use trips_tasm::Quality;
use trips_workloads::suite;

struct Args {
    workload: String,
    quality: Quality,
    format: Format,
    capacity: usize,
    out: Option<String>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Chrome,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: String::new(),
        quality: Quality::Hand,
        format: Format::Text,
        capacity: 1 << 16,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--workload" => args.workload = value("--workload")?,
            "--quality" => {
                args.quality = match value("--quality")?.as_str() {
                    "hand" => Quality::Hand,
                    "compiled" => Quality::Compiled,
                    q => return Err(format!("unknown quality {q:?} (hand|compiled)")),
                }
            }
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "chrome" => Format::Chrome,
                    f => return Err(format!("unknown format {f:?} (text|chrome)")),
                }
            }
            "--capacity" => {
                args.capacity =
                    value("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?
            }
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.workload.is_empty() {
        return Err("missing --workload NAME".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tracedump: {e}");
            eprintln!(
                "usage: tracedump --workload NAME [--quality hand|compiled] \
                 [--format text|chrome] [--capacity N] [--out FILE]"
            );
            return ExitCode::FAILURE;
        }
    };

    let Some(wl) = suite::by_name(&args.workload) else {
        eprintln!("tracedump: unknown workload {:?}; known:", args.workload);
        for w in suite::all() {
            eprintln!("  {}", w.name);
        }
        return ExitCode::FAILURE;
    };
    let image = match wl.build_trips(args.quality) {
        Ok(c) => c.image,
        Err(e) => {
            eprintln!("tracedump: compiling {}: {e}", args.workload);
            return ExitCode::FAILURE;
        }
    };

    let mut cpu = Processor::new(CoreConfig::prototype());
    cpu.enable_tracing(args.capacity);
    match cpu.run(&image, 100_000_000) {
        Ok(stats) => eprintln!(
            "{}: {} cycles, {} blocks, {} events recorded ({} dropped)",
            args.workload,
            stats.cycles,
            stats.blocks_committed,
            cpu.tracer().len(),
            cpu.tracer().dropped(),
        ),
        Err(e) => {
            // Still dump what was recorded: the trace is most useful
            // exactly when the run hung.
            eprintln!("tracedump: run failed, dumping partial trace\n{e}");
        }
    }

    let tracer = cpu.tracer();
    let body = match args.format {
        Format::Chrome => tracer.chrome_trace(),
        Format::Text => {
            let mut s = String::new();
            for ev in tracer.events() {
                s.push_str(&format!("{:>8}  {:?}\n", ev.cycle, ev.kind));
            }
            s
        }
    };

    match args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("tracedump: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            if stdout.write_all(body.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
