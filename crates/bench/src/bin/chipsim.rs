//! Dual-core chip contention benchmark.
//!
//! Runs every pairing in the workload pair table twice over: each
//! workload solo (a single `Processor` on its own prototype NUCA —
//! bit-identical to a one-core chip, as `tests/chip_equivalence.rs`
//! pins) and the pair together on a two-core [`Chip`] sharing one
//! NUCA. Reports each core's slowdown under contention, the bank
//! arbiter's cross-core conflict stalls, and the per-core OCN
//! occupancy high-water marks.
//!
//! Flags:
//!   --smoke   one contended pairing + one compute control (CI)
//!
//! Writes `BENCH_chipsim.json` in the current directory (same
//! `workloads[].{name, sim_cycles, wall_secs}` shape the perf gate
//! diffs). Exits nonzero if the memory-bound pairing shows no
//! cross-core bank conflicts — a chip that cannot contend is not
//! modelling shared memory.

use std::collections::HashMap;
use std::time::Instant;

use trips_core::{Chip, ChipConfig, CoreConfig, MemBackend, Processor};
use trips_harness::{num_threads, parallel_map};
use trips_mem::MemConfig;
use trips_tasm::Quality;
use trips_workloads::{suite, Workload};

const MAX_CYCLES: u64 = trips_bench::MAX_CYCLES;

struct PairPerf {
    name: String,
    chip_cycles: u64,
    host_secs: f64,
    core_cycles: [u64; 2],
    slowdown: [f64; 2],
    conflict_stalls: u64,
    ocn_highwater: [usize; 2],
}

fn solo_cycles(wl: &Workload) -> u64 {
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig {
        mem_backend: MemBackend::nuca_prototype(),
        ..CoreConfig::prototype()
    });
    cpu.run(&image, MAX_CYCLES).unwrap_or_else(|e| panic!("{} solo: {e}", wl.name)).cycles
}

fn run_pair(a: &Workload, b: &Workload, solo: &HashMap<&'static str, u64>) -> PairPerf {
    let images = [
        a.build_trips(Quality::Hand).expect("compiles").image,
        b.build_trips(Quality::Hand).expect("compiles").image,
    ];
    let mut chip =
        Chip::new(ChipConfig::with_cores(2, CoreConfig::prototype(), MemConfig::prototype()));
    let start = Instant::now();
    let stats =
        chip.run(&images, MAX_CYCLES).unwrap_or_else(|e| panic!("{}+{}: {e}", a.name, b.name));
    let host_secs = start.elapsed().as_secs_f64();
    let core_cycles = [stats.cores[0].cycles, stats.cores[1].cycles];
    let slowdown =
        [core_cycles[0] as f64 / solo[a.name] as f64, core_cycles[1] as f64 / solo[b.name] as f64];
    PairPerf {
        name: format!("{}+{}", a.name, b.name),
        chip_cycles: stats.cycles,
        host_secs,
        core_cycles,
        slowdown,
        conflict_stalls: stats.total_conflict_stalls(),
        ocn_highwater: [stats.ocn_tag_highwater[0], stats.ocn_tag_highwater[1]],
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = num_threads();

    let mut pairs = suite::pairs();
    if smoke {
        // One contended memory-bound pairing plus the compute control.
        pairs.retain(|(a, b)| {
            (a.name, b.name) == ("listwalk", "saxpy") || (a.name, b.name) == ("dct8x8", "sha")
        });
    }

    let mut names: Vec<Workload> = Vec::new();
    for (a, b) in &pairs {
        for wl in [a, b] {
            if !names.iter().any(|w| w.name == wl.name) {
                names.push(*wl);
            }
        }
    }

    println!(
        "chipsim: dual-core shared-NUCA contention ({} pairs, {threads} thread(s))",
        pairs.len()
    );
    println!();

    let solo: HashMap<&'static str, u64> = names
        .iter()
        .map(|w| w.name)
        .zip(parallel_map(names.clone(), threads, |wl| solo_cycles(&wl)))
        .collect();

    let rows = parallel_map(pairs.clone(), threads, |(a, b)| run_pair(&a, &b, &solo));

    println!(
        "{:<20} {:>12} {:>10} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "pair",
        "chip cycles",
        "c0 cycles",
        "c1 cycles",
        "c0 slow",
        "c1 slow",
        "bank conf",
        "ocn hw"
    );
    for r in &rows {
        println!(
            "{:<20} {:>12} {:>10} {:>10} {:>8.3}x {:>8.3}x {:>10} {:>4}/{:<4}",
            r.name,
            r.chip_cycles,
            r.core_cycles[0],
            r.core_cycles[1],
            r.slowdown[0],
            r.slowdown[1],
            r.conflict_stalls,
            r.ocn_highwater[0],
            r.ocn_highwater[1],
        );
    }

    // Hand-built JSON: the container has no serde. Same row shape the
    // perf gate diffs (`name`, `sim_cycles`, `wall_secs`). The field
    // was once called `gated_secs`, which misread: it is the whole
    // pairing's wall time, not a gated-vs-ungated comparison time.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_cycles\": {}, \"wall_secs\": {:.6}, \
             \"core_cycles\": [{}, {}], \"slowdown\": [{:.4}, {:.4}], \
             \"bank_conflict_stalls\": {}, \"ocn_tag_highwater\": [{}, {}]}}{}\n",
            r.name,
            r.chip_cycles,
            r.host_secs,
            r.core_cycles[0],
            r.core_cycles[1],
            r.slowdown[0],
            r.slowdown[1],
            r.conflict_stalls,
            r.ocn_highwater[0],
            r.ocn_highwater[1],
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_chipsim.json", &json).expect("write BENCH_chipsim.json");
    println!("\nwrote BENCH_chipsim.json");

    // A chip that never contends is not modelling a shared NUCA.
    let contended = rows
        .iter()
        .find(|r| r.name == "listwalk+saxpy")
        .expect("the listwalk+saxpy pairing is always in the run");
    if contended.conflict_stalls == 0 {
        eprintln!("chipsim: FAIL — listwalk+saxpy produced no cross-core bank conflicts");
        std::process::exit(1);
    }
    if !contended.slowdown.iter().any(|&s| s > 1.0) {
        eprintln!("chipsim: FAIL — listwalk+saxpy shows no per-core slowdown under contention");
        std::process::exit(1);
    }
}
