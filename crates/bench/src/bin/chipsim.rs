//! N-core chip contention benchmark.
//!
//! Two experiments per run. First, the dual-core pair table: each
//! workload solo (a single `Processor` on its own prototype NUCA —
//! bit-identical to a one-core chip, as `tests/chip_equivalence.rs`
//! pins) and the pair together on a two-core [`Chip`] sharing one
//! NUCA. Reports each core's slowdown under contention, the bank
//! arbiter's cross-core conflict stalls, and the per-core OCN
//! occupancy high-water marks. Second, the **scaling curve**: the
//! memory-bound group (`listwalk`/`saxpy` alternating) on 1-, 2-,
//! 4-, 8- and 16-core dies, reporting aggregate core cycles, the
//! worst per-core slowdown vs. solo, chip-wide bank-conflict stalls
//! and the OCN in-flight high-water mark at each width.
//!
//! Flags:
//!   --smoke      one contended pairing + one compute control, and a
//!                1→4-core curve (CI)
//!   --ncores N   run only the N-core curve point (exploration)
//!   --shared     run the **coherent shared-memory** suite instead:
//!                every shared-registry workload on dual (and, full
//!                mode, quad) dies with `ChipConfig::shared_memory`
//!                on, self-gated on each workload's sequential
//!                final-state oracle, reporting coherence traffic
//!                (GetS/GetM, invalidations, deferred write acks),
//!                directory occupancy/high-water and coherence
//!                flushes into `BENCH_coherence.json`
//!
//! Writes `BENCH_chipsim.json` (or, under `--shared`,
//! `BENCH_coherence.json`) in the current directory (same
//! `workloads[].{name, sim_cycles, wall_secs}` shape the perf gate
//! diffs; curve rows are named `curve_nN` and report **aggregate**
//! core cycles as `sim_cycles`, so throughput stays comparable as the
//! die widens). Exits nonzero if the memory-bound pairing shows no
//! cross-core bank conflicts, or if curve contention fails to grow
//! with the core count — a chip that cannot contend is not modelling
//! shared memory. Under `--shared` it exits nonzero if any replica
//! disagrees with its oracle or a run generates no coherence traffic.

use std::collections::HashMap;
use std::time::Instant;

use trips_core::{Chip, ChipConfig, CohSnapshot, CoreConfig, MemBackend, Processor};
use trips_harness::{num_threads, parallel_map};
use trips_mem::MemConfig;
use trips_tasm::Quality;
use trips_workloads::shared::{SharedProgram, SharedWorkload};
use trips_workloads::{suite, Workload};

const MAX_CYCLES: u64 = trips_bench::MAX_CYCLES;

struct PairPerf {
    name: String,
    chip_cycles: u64,
    host_secs: f64,
    core_cycles: [u64; 2],
    slowdown: [f64; 2],
    conflict_stalls: u64,
    ocn_highwater: [usize; 2],
}

fn solo_cycles(wl: &Workload) -> u64 {
    let image = wl.build_trips(Quality::Hand).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig {
        mem_backend: MemBackend::nuca_prototype(),
        ..CoreConfig::prototype()
    });
    cpu.run(&image, MAX_CYCLES).unwrap_or_else(|e| panic!("{} solo: {e}", wl.name)).cycles
}

fn run_pair(a: &Workload, b: &Workload, solo: &HashMap<&'static str, u64>) -> PairPerf {
    let images = [
        a.build_trips(Quality::Hand).expect("compiles").image,
        b.build_trips(Quality::Hand).expect("compiles").image,
    ];
    let mut chip =
        Chip::new(ChipConfig::with_cores(2, CoreConfig::prototype(), MemConfig::prototype()));
    let start = Instant::now();
    let stats =
        chip.run(&images, MAX_CYCLES).unwrap_or_else(|e| panic!("{}+{}: {e}", a.name, b.name));
    let host_secs = start.elapsed().as_secs_f64();
    let core_cycles = [stats.cores[0].cycles, stats.cores[1].cycles];
    let slowdown =
        [core_cycles[0] as f64 / solo[a.name] as f64, core_cycles[1] as f64 / solo[b.name] as f64];
    PairPerf {
        name: format!("{}+{}", a.name, b.name),
        chip_cycles: stats.cycles,
        host_secs,
        core_cycles,
        slowdown,
        conflict_stalls: stats.total_conflict_stalls(),
        ocn_highwater: [stats.ocn_tag_highwater[0], stats.ocn_tag_highwater[1]],
    }
}

struct CurvePerf {
    ncores: usize,
    chip_cycles: u64,
    agg_core_cycles: u64,
    host_secs: f64,
    max_slowdown: f64,
    conflict_stalls: u64,
    ocn_highwater: usize,
}

fn run_curve_point(n: usize, solo: &HashMap<&'static str, u64>) -> CurvePerf {
    // Group 0 of the table is the memory-bound one: listwalk/saxpy
    // alternating, so every core-pair block stays contended.
    let group = suite::groups(n).remove(0);
    let images: Vec<_> =
        group.iter().map(|wl| wl.build_trips(Quality::Hand).expect("compiles").image).collect();
    let mut chip = Chip::new(ChipConfig::n_cores(n));
    let start = Instant::now();
    let stats = chip.run(&images, MAX_CYCLES).unwrap_or_else(|e| panic!("curve n={n}: {e}"));
    let host_secs = start.elapsed().as_secs_f64();
    let max_slowdown = group
        .iter()
        .zip(&stats.cores)
        .map(|(wl, c)| c.cycles as f64 / solo[wl.name] as f64)
        .fold(0.0, f64::max);
    CurvePerf {
        ncores: n,
        chip_cycles: stats.cycles,
        agg_core_cycles: stats.cores.iter().map(|c| c.cycles).sum(),
        host_secs,
        max_slowdown,
        conflict_stalls: stats.total_conflict_stalls(),
        ocn_highwater: stats.ocn_tag_highwater.iter().copied().max().unwrap_or(0),
    }
}

struct SharedPerf {
    name: String,
    ncores: usize,
    chip_cycles: u64,
    host_secs: f64,
    coh: CohSnapshot,
    invals_received: u64,
    coherence_flushes: u64,
    oracle_ok: bool,
}

/// One shared-memory point: the workload on a coherent `n`-core chip,
/// self-gated on its sequential final-state oracle across every
/// core's replica.
fn run_shared_point(wl: &SharedWorkload, n: usize) -> SharedPerf {
    let SharedProgram { images, expected } = (wl.gen)(n);
    let mut cfg = ChipConfig::with_cores(n, CoreConfig::prototype(), MemConfig::prototype());
    cfg.shared_memory = true;
    let mut chip = Chip::new(cfg);
    let start = Instant::now();
    let stats = chip.run(&images, MAX_CYCLES).unwrap_or_else(|e| panic!("{} x{n}: {e}", wl.name));
    let host_secs = start.elapsed().as_secs_f64();
    let oracle_ok = expected
        .iter()
        .all(|&(addr, want)| (0..n).all(|k| chip.core(k).memory().read_u64(addr) == want));
    SharedPerf {
        name: format!("{}_n{n}", wl.name),
        ncores: n,
        chip_cycles: stats.cycles,
        host_secs,
        coh: stats.coherence.expect("a shared-memory run reports a coherence snapshot"),
        invals_received: stats
            .cores
            .iter()
            .filter_map(|c| c.mem.as_ref())
            .map(|m| m.invals_received)
            .sum(),
        coherence_flushes: stats.cores.iter().map(|c| c.coherence_flushes).sum(),
        oracle_ok,
    }
}

/// The `--shared` experiment: the shared-memory registry across die
/// widths, the coherence-traffic table, and `BENCH_coherence.json`.
fn run_shared_suite(smoke: bool, threads: usize) {
    let widths: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let points: Vec<(SharedWorkload, usize)> = suite::shared_memory()
        .into_iter()
        .flat_map(|wl| widths.iter().map(move |&n| (wl, n)))
        .collect();
    println!(
        "chipsim: coherent shared-memory suite ({} points, {threads} thread(s))",
        points.len()
    );
    println!();
    let rows = parallel_map(points, threads, |(wl, n)| run_shared_point(&wl, n));

    println!(
        "{:<14} {:>12} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "workload", "chip cycles", "gets", "getms", "invals", "recv", "dir hw", "flushes", "oracle"
    );
    for r in &rows {
        println!(
            "{:<14} {:>12} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8}",
            r.name,
            r.chip_cycles,
            r.coh.gets,
            r.coh.getms,
            r.coh.invals_sent,
            r.invals_received,
            r.coh.dir_highwater,
            r.coherence_flushes,
            if r.oracle_ok { "ok" } else { "FAIL" },
        );
    }

    // Hand-built JSON (no serde in the container); same
    // `workloads[].{name, sim_cycles, wall_secs}` shape the perf gate
    // diffs with `--label coherence`.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_cycles\": {}, \"wall_secs\": {:.6}, \"ncores\": {}, \
             \"gets\": {}, \"getms\": {}, \"invalidations\": {}, \"inval_acks\": {}, \
             \"deferred_acks\": {}, \"invals_received\": {}, \"dir_lines\": {}, \
             \"dir_highwater\": {}, \"coherence_flushes\": {}}}{}\n",
            r.name,
            r.chip_cycles,
            r.host_secs,
            r.ncores,
            r.coh.gets,
            r.coh.getms,
            r.coh.invals_sent,
            r.coh.inval_acks,
            r.coh.deferred_acks,
            r.invals_received,
            r.coh.dir_lines,
            r.coh.dir_highwater,
            r.coherence_flushes,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_coherence.json", &json).expect("write BENCH_coherence.json");
    println!("\nwrote BENCH_coherence.json");

    // Self-gates: every replica must match the sequential oracle, and
    // a coherent run that moved no coherence traffic tested nothing.
    // GetM traffic is per-row (every shared workload writes);
    // invalidations are gated suite-wide — a workload with disjoint
    // write sets (psum) can legitimately send none on a die whose
    // timing never interleaves a reader between two writes.
    let mut failed = false;
    let mut suite_invals = 0;
    for r in &rows {
        if !r.oracle_ok {
            eprintln!("chipsim: FAIL — {} diverged from its sequential oracle", r.name);
            failed = true;
        }
        if r.coh.getms == 0 {
            eprintln!("chipsim: FAIL — {} generated no coherence traffic", r.name);
            failed = true;
        }
        if r.coh.invals_sent != r.coh.inval_acks {
            eprintln!(
                "chipsim: FAIL — {} leaked invalidations ({} sent, {} acked)",
                r.name, r.coh.invals_sent, r.coh.inval_acks
            );
            failed = true;
        }
        suite_invals += r.coh.invals_sent;
    }
    if suite_invals == 0 {
        eprintln!("chipsim: FAIL — the whole suite sent no invalidations");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--shared") {
        run_shared_suite(smoke, num_threads());
        return;
    }
    let ncores_override: Option<usize> = args.iter().position(|a| a == "--ncores").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| (1..=16).contains(&n))
            .expect("--ncores takes a core count in 1..=16")
    });
    let threads = num_threads();

    let mut pairs = suite::pairs();
    if smoke {
        // One contended memory-bound pairing plus the compute control.
        pairs.retain(|(a, b)| {
            (a.name, b.name) == ("listwalk", "saxpy") || (a.name, b.name) == ("dct8x8", "sha")
        });
    }
    let curve_ns: Vec<usize> = match ncores_override {
        Some(n) => vec![n],
        None if smoke => vec![1, 2, 4],
        None => vec![1, 2, 4, 8, 16],
    };

    let mut names: Vec<Workload> = Vec::new();
    for (a, b) in &pairs {
        for wl in [a, b] {
            if !names.iter().any(|w| w.name == wl.name) {
                names.push(*wl);
            }
        }
    }

    println!(
        "chipsim: dual-core shared-NUCA contention ({} pairs, {threads} thread(s))",
        pairs.len()
    );
    println!();

    let solo: HashMap<&'static str, u64> = names
        .iter()
        .map(|w| w.name)
        .zip(parallel_map(names.clone(), threads, |wl| solo_cycles(&wl)))
        .collect();

    let rows = parallel_map(pairs.clone(), threads, |(a, b)| run_pair(&a, &b, &solo));
    let curve = parallel_map(curve_ns.clone(), threads, |n| run_curve_point(n, &solo));

    println!(
        "{:<20} {:>12} {:>10} {:>10} {:>9} {:>9} {:>10} {:>9}",
        "pair",
        "chip cycles",
        "c0 cycles",
        "c1 cycles",
        "c0 slow",
        "c1 slow",
        "bank conf",
        "ocn hw"
    );
    for r in &rows {
        println!(
            "{:<20} {:>12} {:>10} {:>10} {:>8.3}x {:>8.3}x {:>10} {:>4}/{:<4}",
            r.name,
            r.chip_cycles,
            r.core_cycles[0],
            r.core_cycles[1],
            r.slowdown[0],
            r.slowdown[1],
            r.conflict_stalls,
            r.ocn_highwater[0],
            r.ocn_highwater[1],
        );
    }

    println!();
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10} {:>8}",
        "curve", "chip cycles", "agg core cyc", "max slow", "bank conf", "ocn hw"
    );
    for c in &curve {
        println!(
            "{:<10} {:>12} {:>14} {:>9.3}x {:>10} {:>8}",
            format!("n={}", c.ncores),
            c.chip_cycles,
            c.agg_core_cycles,
            c.max_slowdown,
            c.conflict_stalls,
            c.ocn_highwater,
        );
    }

    // Hand-built JSON: the container has no serde. Same row shape the
    // perf gate diffs (`name`, `sim_cycles`, `wall_secs`). The field
    // was once called `gated_secs`, which misread: it is the whole
    // pairing's wall time, not a gated-vs-ungated comparison time.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"sim_cycles\": {}, \"wall_secs\": {:.6}, \
             \"core_cycles\": [{}, {}], \"slowdown\": [{:.4}, {:.4}], \
             \"bank_conflict_stalls\": {}, \"ocn_tag_highwater\": [{}, {}]}}{}\n",
            r.name,
            r.chip_cycles,
            r.host_secs,
            r.core_cycles[0],
            r.core_cycles[1],
            r.slowdown[0],
            r.slowdown[1],
            r.conflict_stalls,
            r.ocn_highwater[0],
            r.ocn_highwater[1],
            if i + 1 == rows.len() && curve.is_empty() { "" } else { "," },
        ));
    }
    // Curve rows: `sim_cycles` is the aggregate over cores so the
    // cycles-per-second floor measures simulator throughput, not die
    // width (a 16-core chip advances 16 core-cycles per chip cycle).
    for (i, c) in curve.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"curve_n{}\", \"sim_cycles\": {}, \"wall_secs\": {:.6}, \
             \"ncores\": {}, \"chip_cycles\": {}, \"max_slowdown\": {:.4}, \
             \"bank_conflict_stalls\": {}, \"ocn_tag_highwater\": {}}}{}\n",
            c.ncores,
            c.agg_core_cycles,
            c.host_secs,
            c.ncores,
            c.chip_cycles,
            c.max_slowdown,
            c.conflict_stalls,
            c.ocn_highwater,
            if i + 1 == curve.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_chipsim.json", &json).expect("write BENCH_chipsim.json");
    println!("\nwrote BENCH_chipsim.json");

    // A chip that never contends is not modelling a shared NUCA.
    let contended = rows
        .iter()
        .find(|r| r.name == "listwalk+saxpy")
        .expect("the listwalk+saxpy pairing is always in the run");
    if contended.conflict_stalls == 0 {
        eprintln!("chipsim: FAIL — listwalk+saxpy produced no cross-core bank conflicts");
        std::process::exit(1);
    }
    if !contended.slowdown.iter().any(|&s| s > 1.0) {
        eprintln!("chipsim: FAIL — listwalk+saxpy shows no per-core slowdown under contention");
        std::process::exit(1);
    }

    // The scaling curve must show contention growing with the die:
    // zero cross-core conflicts on a one-core chip, some on any wider
    // memory-bound die, and strictly more at every step up in width.
    for c in &curve {
        if c.ncores == 1 && c.conflict_stalls != 0 {
            eprintln!("chipsim: FAIL — a one-core chip reported cross-core bank conflicts");
            std::process::exit(1);
        }
        if c.ncores >= 2 && c.conflict_stalls == 0 {
            eprintln!(
                "chipsim: FAIL — the memory-bound group on {} cores never contended",
                c.ncores
            );
            std::process::exit(1);
        }
    }
    for w in curve.windows(2) {
        if w[1].conflict_stalls <= w[0].conflict_stalls {
            eprintln!(
                "chipsim: FAIL — contention did not grow from {} to {} cores ({} -> {})",
                w[0].ncores, w[1].ncores, w[0].conflict_stalls, w[1].conflict_stalls
            );
            std::process::exit(1);
        }
    }
}
