//! Area/IPC Pareto sweep over the core-geometry lattice.
//!
//! The EDGE design space trades tile-array area for exposed ILP: a
//! smaller ET array means fewer reservation stations issuing per cycle
//! and shallower speculation, but a much smaller die. This sweep runs
//! the workload suite on each point of a small `CoreGeometry` lattice
//! (mini 2x2/4 → prototype 4x4/8 → fat 8x8/16, plus intermediate
//! points in full mode), reports each point's processor-core area
//! (from `trips-area`, the same geometry-derived model that
//! regenerates Table 1) against its aggregate IPC, and writes
//! `BENCH_pareto.json`.
//!
//! The run doubles as a self-check and exits nonzero when either half
//! of the Pareto story breaks:
//!
//! * the area model must order the blessed lattice monotonically
//!   (mini < prototype < fat) — a geometry formula that stopped
//!   scaling would flatten it; or
//! * the IPC spread across the lattice is trivial (< 5%) — the
//!   simulator would no longer be sensitive to the structures the
//!   sweep resizes.
//!
//! Flags:
//!   --smoke   micro + kernel suites only, blessed lattice only (CI;
//!             the checked-in `BENCH_pareto.json` baseline is this
//!             configuration, diffed by `compare_simperf.py`)
//!
//! Writes `BENCH_pareto.json` in the current directory.

use std::process::ExitCode;
use std::time::Instant;

use trips_area::{core_area_mm2, ChipConfig};
use trips_bench::run_trips;
use trips_core::{CoreConfig, CoreGeometry};
use trips_harness::{num_threads, parallel_map};
use trips_tasm::Quality;
use trips_workloads::{suite, Class, Workload};

/// Minimum max/min aggregate-IPC ratio across the lattice for the
/// sweep to count as showing a real spread.
const MIN_IPC_SPREAD: f64 = 1.05;

struct WorkloadRun {
    name: &'static str,
    sim_cycles: u64,
    insts_committed: u64,
    wall_secs: f64,
}

struct Point {
    geom: CoreGeometry,
    core_area_mm2: f64,
    runs: Vec<WorkloadRun>,
}

impl Point {
    /// Aggregate IPC: total committed instructions over total
    /// simulated cycles, so long workloads weigh more than microtests.
    fn ipc(&self) -> f64 {
        let insts: u64 = self.runs.iter().map(|r| r.insts_committed).sum();
        let cycles: u64 = self.runs.iter().map(|r| r.sim_cycles).sum();
        insts as f64 / cycles.max(1) as f64
    }
}

fn json_escape_free(name: &str) -> &str {
    debug_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || ".-_/x".contains(c)));
    name
}

fn sweep_point(geom: CoreGeometry, workloads: &[Workload], threads: usize) -> Point {
    let area = core_area_mm2(&ChipConfig {
        core: CoreConfig::with_geometry(geom),
        ..ChipConfig::prototype()
    });
    let runs = parallel_map(workloads.to_vec(), threads, move |wl| {
        let start = Instant::now();
        let stats = run_trips(&wl, Quality::Hand, CoreConfig::with_geometry(geom));
        WorkloadRun {
            name: wl.name,
            sim_cycles: stats.cycles,
            insts_committed: stats.insts_committed,
            wall_secs: start.elapsed().as_secs_f64(),
        }
    });
    Point { geom, core_area_mm2: area, runs }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = num_threads();

    let workloads: Vec<Workload> = suite::all()
        .into_iter()
        .filter(|wl| !smoke || matches!(wl.class, Class::Micro | Class::Kernel))
        .collect();

    // The blessed lattice is always swept (and gated); full mode adds
    // intermediate aspect ratios between mini and fat.
    let mut lattice = vec![CoreGeometry::mini(), CoreGeometry::prototype(), CoreGeometry::fat()];
    if !smoke {
        for spec in ["2x4/8", "4x8/8"] {
            lattice.push(CoreGeometry::parse(spec).expect("lattice point validates"));
        }
    }

    println!(
        "paretosweep: {} geometries x {} workloads ({threads} thread(s))",
        lattice.len(),
        workloads.len()
    );
    println!();
    println!(
        "{:<10} {:>4} {:>7} {:>12} {:>14} {:>8} {:>10}",
        "geometry", "ETs", "frames", "core mm2", "sim cycles", "IPC", "host sec"
    );

    let points: Vec<Point> = lattice.iter().map(|&g| sweep_point(g, &workloads, threads)).collect();
    for p in &points {
        let cycles: u64 = p.runs.iter().map(|r| r.sim_cycles).sum();
        let host: f64 = p.runs.iter().map(|r| r.wall_secs).sum();
        println!(
            "{:<10} {:>4} {:>7} {:>12.1} {:>14} {:>8.3} {:>10.2}",
            p.geom.name(),
            p.geom.num_ets(),
            p.geom.frames,
            p.core_area_mm2,
            cycles,
            p.ipc(),
            host,
        );
    }

    // Hand-built JSON: the container has no serde. The flat
    // `workloads` array ({name, sim_cycles, wall_secs} per
    // workload-geometry pair) is the row shape compare_simperf.py
    // gates; `points` carries the Pareto curve itself.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"geometry\": \"{}\", \"ets\": {}, \"frames\": {}, \
             \"core_area_mm2\": {:.3}, \"ipc\": {:.4}}}{}\n",
            json_escape_free(&p.geom.name()),
            p.geom.num_ets(),
            p.geom.frames,
            p.core_area_mm2,
            p.ipc(),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"workloads\": [\n");
    let total_rows: usize = points.iter().map(|p| p.runs.len()).sum();
    let mut row = 0;
    for p in &points {
        let gname = p.geom.name();
        for r in &p.runs {
            row += 1;
            json.push_str(&format!(
                "    {{\"name\": \"{}.{}\", \"sim_cycles\": {}, \"wall_secs\": {:.6}, \
                 \"insts_committed\": {}}}{}\n",
                json_escape_free(r.name),
                json_escape_free(&gname),
                r.sim_cycles,
                r.wall_secs,
                r.insts_committed,
                if row == total_rows { "" } else { "," },
            ));
        }
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pareto.json", &json).expect("write BENCH_pareto.json");
    println!("\nwrote BENCH_pareto.json");

    // Self-checks: the Pareto story must actually hold.
    let area_of = |g: CoreGeometry| {
        points.iter().find(|p| p.geom == g).expect("blessed point swept").core_area_mm2
    };
    let (mini, proto, fat) = (
        area_of(CoreGeometry::mini()),
        area_of(CoreGeometry::prototype()),
        area_of(CoreGeometry::fat()),
    );
    let mut failed = false;
    if !(mini < proto && proto < fat) {
        eprintln!(
            "FAIL: core area is not monotone across the lattice \
             (mini {mini:.1} mm2, prototype {proto:.1} mm2, fat {fat:.1} mm2)"
        );
        failed = true;
    }
    let ipc_min = points.iter().map(Point::ipc).fold(f64::INFINITY, f64::min);
    let ipc_max = points.iter().map(Point::ipc).fold(0.0, f64::max);
    let spread = ipc_max / ipc_min.max(1e-12);
    println!(
        "area ordering: mini {mini:.1} < prototype {proto:.1} < fat {fat:.1} mm2; \
         IPC spread {ipc_min:.3}..{ipc_max:.3} ({spread:.2}x)"
    );
    if spread < MIN_IPC_SPREAD {
        eprintln!(
            "FAIL: IPC spread {spread:.3}x across the lattice is trivial \
             (gate: >= {MIN_IPC_SPREAD}x) — the model is no longer sensitive to the geometry"
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
