//! Regenerates Figure 5: (a) the dataflow execution example and
//! (b) the block completion/commit/acknowledgement pipeline overlap.

use trips_core::{CoreConfig, Processor};
use trips_isa::{
    disassemble, ArchReg, Instruction, Opcode, Pred, ProgramImage, ReadInst, Target, TripsBlock,
};
use trips_tasm::{compile, Opcode as TOp, ProgramBuilder, Quality};

/// Figure 5a: the paper's execution example — a predicated load/store
/// diamond with nullification, register read fan-out, and a block-
/// ending call.
fn fig5a() {
    println!("Figure 5a. Execution example (the paper's code sequence).");
    println!();
    let mut b = TripsBlock::new();
    b.set_read(0, ReadInst::new(ArchReg::new(4), [Target::left(1), Target::left(2)]))
        .expect("bank 0 slot");
    b.push(Instruction::movi(0, [Target::right(1), Target::none()])).unwrap(); // N[0]
    b.push(Instruction::op(Opcode::Teq, [Target::pred(2), Target::pred(3)])).unwrap(); // N[1]
    b.push(
        Instruction::opi(Opcode::Muli, 4, [Target::left(32), Target::none()])
            .with_pred(Pred::OnFalse),
    )
    .unwrap(); // N[2]
    b.push(
        Instruction::op(Opcode::Null, [Target::left(34), Target::right(34)])
            .with_pred(Pred::OnTrue),
    )
    .unwrap(); // N[3]
    for _ in 4..32 {
        b.push(Instruction::nop()).unwrap();
    }
    b.push(Instruction::load(Opcode::Lw, 0, 8, Target::left(33))).unwrap(); // N[32]
    b.push(Instruction::op(Opcode::Mov, [Target::left(34), Target::right(34)])).unwrap(); // N[33]
    b.push(Instruction::store(Opcode::Sw, 1, 0)).unwrap(); // N[34]
    b.push(Instruction::branch(Opcode::Halt, 0, 0)).unwrap(); // N[35] (callo in the paper)
    b.header.store_mask = 1 << 1;
    b.validate().expect("the Figure 5a block is well-formed");
    println!("{}", disassemble(&b));

    // Execute it on the cycle-level core. Registers reset to zero, so
    // R4 = 0: the predicate teq(R4, 0) is true, the null instruction
    // fires, and the store commits nullified — exactly the suppressed
    // path of the figure.
    let mut img = ProgramImage::new();
    img.entry = 0x1_0000;
    img.add_block(0x1_0000, &b);
    img.add_segment(0x20_0000, (0..64u8).collect());
    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&img, 100_000).expect("example runs");
    println!(
        "run with R4=0 (predicate true, null path): {} cycles, {} instructions fired, \
         stores performed: {} (the store was nullified but still counted for completion)",
        stats.cycles, stats.insts_committed, stats.stores
    );
}

/// Figure 5b: overlap of fetch, completion, commit, and commit-ack
/// across consecutive blocks.
fn fig5b() {
    println!();
    println!("Figure 5b. Block completion / commit / acknowledgement overlap.");
    println!();
    // A stream of simple blocks: a counted loop gives a steady block
    // sequence through all eight frames.
    let mut p = ProgramBuilder::new();
    let mut f = p.func("stream", 0);
    let i = f.fresh();
    f.iconst_into(i, 0);
    let body = f.new_block();
    let done = f.new_block();
    f.jmp(body);
    f.switch_to(body);
    f.bini_into(i, TOp::Addi, i, 1);
    let buf = f.iconst(0x30_0000);
    f.store(TOp::Sd, buf, 0, i);
    let c = f.bini(TOp::Tlti, i, 24);
    f.br(c, body, done);
    f.switch_to(done);
    f.halt();
    f.finish();
    let img = compile(&p.finish(), Quality::Compiled).expect("compiles").image;
    let mut cpu = Processor::new(CoreConfig::prototype());
    let stats = cpu.run(&img, 1_000_000).expect("runs");

    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>8} {:>6}   (cycles)",
        "block", "fetch", "dispatch", "complete", "commit", "ack"
    );
    for (n, t) in stats.timeline.iter().take(12).enumerate() {
        println!(
            "{:<8} {:>8} {:>9} {:>9} {:>8} {:>6}",
            format!("Block {n}"),
            t.fetch,
            t.dispatch,
            t.complete,
            t.commit,
            t.ack
        );
    }
    // Show the overlap property the figure illustrates: block n+1's
    // fetch begins before block n's commit completes.
    let overlapped = stats.timeline.windows(2).filter(|w| w[1].fetch < w[0].ack).count();
    println!();
    println!(
        "{} of {} consecutive block pairs overlap fetch with the predecessor's \
         commit (pipelined commit, §4.4)",
        overlapped,
        stats.timeline.len().saturating_sub(1)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exec = args.iter().any(|a| a == "--exec");
    let commit = args.iter().any(|a| a == "--commit");
    if exec || !commit {
        fig5a();
    }
    if commit || !exec {
        fig5b();
    }
}
