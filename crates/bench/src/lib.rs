//! # trips-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Target | Regenerates |
//! |---|---|
//! | `cargo run --release -p trips-bench --bin table1` | Table 1 — tile specifications |
//! | `cargo run --release -p trips-bench --bin table2` | Table 2 — control and data networks |
//! | `cargo run --release -p trips-bench --bin table3` | Table 3 — overhead breakdown + performance vs Alpha |
//! | `cargo run --release -p trips-bench --bin fig5`   | Figure 5 — execution example and commit-pipeline timeline |
//! | `cargo run --release -p trips-bench --bin fig6`   | Figure 6 — chip floorplan |
//!
//! plus Criterion ablation benches (`cargo bench -p trips-bench`) for
//! the design choices DESIGN.md calls out: operand-network bandwidth,
//! the dependence predictor, and the next-block predictor, and the
//! `protofuzz` fault-injection fuzzer (`cargo run --release -p
//! trips-bench --bin protofuzz -- --smoke`) behind [`fuzz`].

pub mod fuzz;

use trips_alpha::{AlphaConfig, AlphaCore, AlphaStats};
use trips_core::{CoreConfig, CoreStats, Processor};
use trips_tasm::Quality;
use trips_workloads::Workload;

/// Cycle budget for harness runs.
pub const MAX_CYCLES: u64 = 200_000_000;

/// Runs a workload on the TRIPS core at `quality` with `cfg`.
///
/// # Panics
///
/// Panics on compile or simulation failure — the harness treats any
/// failure as a reportable bug.
pub fn run_trips(wl: &Workload, quality: Quality, cfg: CoreConfig) -> CoreStats {
    let image = wl
        .build_trips(quality)
        .unwrap_or_else(|e| panic!("{} ({quality}): compile failed: {e}", wl.name))
        .image;
    let mut cpu = Processor::new(cfg);
    cpu.run(&image, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{} ({quality}): simulation failed: {e}", wl.name))
}

/// Runs a workload on the baseline core.
///
/// # Panics
///
/// Panics on compile or simulation failure.
pub fn run_alpha(wl: &Workload) -> AlphaStats {
    let prog = wl.build_risc().unwrap_or_else(|e| panic!("{}: risc compile failed: {e}", wl.name));
    let mut cpu = AlphaCore::new(AlphaConfig::alpha21264(), &prog)
        .unwrap_or_else(|e| panic!("{}: invalid program: {e}", wl.name));
    cpu.run(MAX_CYCLES).unwrap_or_else(|e| panic!("{}: alpha failed: {e}", wl.name))
}

/// Speedup of a TRIPS run over the baseline (cycles ratio, as the
/// paper computes it).
pub fn speedup(alpha: &AlphaStats, trips: &CoreStats) -> f64 {
    if trips.cycles == 0 {
        return 0.0;
    }
    alpha.cycles as f64 / trips.cycles as f64
}
