//! The fault-injection fuzzing engine behind the `protofuzz` binary.
//!
//! The loop: seed → [`FaultPlan::random`] → run the cycle-level core
//! under that plan with every protocol invariant checked each tick →
//! compare the final architectural state (all 128 registers, all of
//! memory, committed block count) against the `blockinterp` oracle.
//! Because fault plans perturb *timing only* — never values, never
//! per-link FIFO order — any divergence, invariant violation, hang, or
//! leaked post-halt state is a protocol bug by construction.
//!
//! Failures are minimized by a greedy pass over
//! [`FaultPlan::shrink_candidates`] and rendered as a `#[test]`
//! snippet (see [`repro_snippet`]) that pastes directly into
//! `tests/fault_injection.rs`.

use std::fmt::Write as _;

use trips_core::{
    Chip, ChipConfig, ChipStats, CoreConfig, CoreGeometry, CoreStats, FaultPlan, MemBackend,
    Processor,
};
use trips_isa::mem::SparseMem;
use trips_isa::{ArchReg, ProgramImage};
use trips_mem::MemConfig;
use trips_tasm::{blockinterp, Quality};
use trips_workloads::shared::SharedProgram;
use trips_workloads::{suite, Workload};

/// Cycle budget for one fuzzed run. Random plans slow a run down
/// (stall bursts, chain delays, flush storms) but never wedge it —
/// anything that exhausts this budget is a real hang, and the timeout
/// path attaches a [`trips_core::HangReport`].
pub const FUZZ_MAX_CYCLES: u64 = 50_000_000;

/// Block budget for the architectural oracle.
pub const ORACLE_MAX_BLOCKS: u64 = 10_000_000;

/// Architectural reference for one (workload, quality) pair: the
/// compiled image plus the block interpreter's final state.
pub struct Oracle {
    /// Workload name (for reports).
    pub name: String,
    /// Code quality the image was compiled at.
    pub quality: Quality,
    /// The compiled image every fuzzed run executes.
    pub image: ProgramImage,
    /// Final architectural registers per the block interpreter.
    pub regs: [u64; 128],
    /// Final memory per the block interpreter.
    pub mem: SparseMem,
    /// Blocks the interpreter committed.
    pub blocks: u64,
}

impl Oracle {
    /// Compiles `wl` at `quality` and runs the block interpreter to
    /// produce the reference state.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to compile or the interpreter
    /// fails — both mean the harness itself is broken, not the
    /// protocols under test.
    pub fn build(wl: &Workload, quality: Quality) -> Oracle {
        let image = wl
            .build_trips(quality)
            .unwrap_or_else(|e| panic!("{} ({quality:?}): compile failed: {e}", wl.name))
            .image;
        let r = blockinterp::run_image(&image, ORACLE_MAX_BLOCKS)
            .unwrap_or_else(|e| panic!("{} ({quality:?}): block interp failed: {e}", wl.name));
        Oracle {
            name: wl.name.to_string(),
            quality,
            image,
            regs: r.regs,
            mem: r.mem,
            blocks: r.blocks,
        }
    }
}

/// Runs the oracle's image under `plan` with invariants checked every
/// tick and post-halt drainage enforced, then compares the final
/// architectural state against the oracle.
///
/// # Errors
///
/// A description of the first failure: simulation error (timeout with
/// hang report, invariant violation) or architectural divergence.
pub fn run_against_oracle(
    oracle: &Oracle,
    plan: Option<&FaultPlan>,
    gate: bool,
    max_cycles: u64,
) -> Result<CoreStats, String> {
    run_against_oracle_with(oracle, MemBackend::prototype(), plan, gate, max_cycles)
}

/// [`run_against_oracle`] with an explicit secondary-memory backend.
/// The oracle is architectural, so it is valid for every backend; a
/// divergence under [`MemBackend::Nuca`] that vanishes under the
/// perfect L2 is a bug in the fill/ack plumbing, not in the workload.
///
/// Always runs the prototype die: historical reproducer plans carry
/// prototype OPN coordinates, so this entry point must not follow
/// `TRIPS_GEOMETRY`. Geometry-axis fuzzing goes through
/// [`run_against_oracle_geom`].
///
/// # Errors
///
/// As [`run_against_oracle`].
pub fn run_against_oracle_with(
    oracle: &Oracle,
    backend: MemBackend,
    plan: Option<&FaultPlan>,
    gate: bool,
    max_cycles: u64,
) -> Result<CoreStats, String> {
    run_against_oracle_geom(oracle, backend, CoreGeometry::prototype(), plan, gate, max_cycles)
}

/// [`run_against_oracle_with`] on an explicit tile-array geometry —
/// the protocols must match the architectural oracle on every die,
/// not just the prototype. The plan's OPN coordinates must fit the
/// geometry's mesh (use [`FaultPlan::random_for`]).
///
/// # Errors
///
/// As [`run_against_oracle`].
pub fn run_against_oracle_geom(
    oracle: &Oracle,
    backend: MemBackend,
    geom: CoreGeometry,
    plan: Option<&FaultPlan>,
    gate: bool,
    max_cycles: u64,
) -> Result<CoreStats, String> {
    let cfg = CoreConfig {
        gate_ticks: gate,
        mem_backend: backend,
        faults: plan.cloned(),
        check_invariants: true,
        ..CoreConfig::with_geometry(geom)
    };
    let mut cpu = Processor::new(cfg);
    let stats = cpu.run(&oracle.image, max_cycles).map_err(|e| e.to_string())?;
    compare_arch_state(&cpu, &stats, oracle)?;
    Ok(stats)
}

/// Runs one oracle's image per core of a shared-NUCA [`Chip`] under
/// `plan`, invariants (including the chip-level conservation audit)
/// checked every cycle, then compares every core against its own
/// oracle. The same plan is installed in every core — its OCN faults
/// land on the one shared network (taken from core 0, which is where
/// the chip reads them), so this is the "OCN faults with both cores
/// live" configuration the nightly sweep wants. Contention is
/// timing-only, so any per-core divergence is a protocol bug exactly
/// as in the solo harness.
///
/// # Errors
///
/// As [`run_against_oracle`], prefixed with the diverging core.
pub fn run_chip_against_oracles(
    oracles: &[&Oracle],
    plan: Option<&FaultPlan>,
    gate: bool,
    max_cycles: u64,
) -> Result<ChipStats, String> {
    let core_cfg = CoreConfig {
        gate_ticks: gate,
        faults: plan.cloned(),
        check_invariants: true,
        ..CoreConfig::prototype_pinned()
    };
    let mut chip =
        Chip::new(ChipConfig::with_cores(oracles.len(), core_cfg, MemConfig::prototype()));
    let images: Vec<ProgramImage> = oracles.iter().map(|o| o.image.clone()).collect();
    let stats = chip.run(&images, max_cycles).map_err(|e| e.to_string())?;
    for (k, oracle) in oracles.iter().enumerate() {
        compare_arch_state(chip.core(k), &stats.cores[k], oracle)
            .map_err(|e| format!("core {k} ({}): {e}", oracle.name))?;
    }
    Ok(stats)
}

/// Runs shared-memory workload `name` on a **coherent** `ncores`-core
/// chip (die `geom`) under `plan` — invariants, including the §5g
/// coherence suite (SWMR, directory/cache agreement, message
/// conservation), checked every tick — then checks every core's
/// memory replica against the workload's sequential final-state
/// oracle and requires all replicas byte-identical. Fault plans still
/// perturb timing only, so under *any* plan the oracle must hold:
/// a miss here indicts the coherence protocol, not the workload.
///
/// # Errors
///
/// A description of the first failure: simulation error (hang,
/// invariant violation) or a replica that disagrees with the oracle.
///
/// # Panics
///
/// Panics if `name` is not in the shared registry — the harness's
/// fault, not the protocols'.
pub fn run_shared_against_oracle(
    name: &str,
    ncores: usize,
    geom: CoreGeometry,
    plan: Option<&FaultPlan>,
    gate: bool,
    max_cycles: u64,
) -> Result<ChipStats, String> {
    let wl = suite::shared_by_name(name)
        .unwrap_or_else(|| panic!("unknown shared-memory workload {name:?}"));
    let SharedProgram { images, expected } = (wl.gen)(ncores);
    let mut chip = Chip::new(shared_chip_config(ncores, geom, plan, gate));
    let stats = chip.run(&images, max_cycles).map_err(|e| e.to_string())?;
    compare_shared_state(&chip, &expected)?;
    Ok(stats)
}

/// The chip configuration every shared-memory fuzz case runs:
/// coherence on, invariants on, the plan in every core.
fn shared_chip_config(
    ncores: usize,
    geom: CoreGeometry,
    plan: Option<&FaultPlan>,
    gate: bool,
) -> ChipConfig {
    let core_cfg = CoreConfig {
        gate_ticks: gate,
        faults: plan.cloned(),
        check_invariants: true,
        ..CoreConfig::with_geometry(geom)
    };
    let mut cfg = ChipConfig::with_cores(ncores, core_cfg, MemConfig::prototype());
    cfg.shared_memory = true;
    cfg
}

/// Checks every replica of a finished coherent chip against the
/// sequential oracle, then requires replica convergence (the value
/// plane applied every drained store to every replica in one global
/// order, so any divergence is a propagation bug).
fn compare_shared_state(chip: &Chip, expected: &[(u64, u64)]) -> Result<(), String> {
    for &(addr, want) in expected {
        for k in 0..chip.ncores() {
            let got = chip.core(k).memory().read_u64(addr);
            if got != want {
                return Err(format!(
                    "core {k}'s replica at {addr:#x}: got {got:#x}, the sequential oracle says \
                     {want:#x}"
                ));
            }
        }
    }
    for k in 1..chip.ncores() {
        if chip.core(0).memory() != chip.core(k).memory() {
            return Err(format!("core {k}'s memory replica diverged from core 0's"));
        }
    }
    Ok(())
}

/// Compares a finished core against the oracle: every architectural
/// register, all of memory, and the committed block count.
///
/// # Errors
///
/// A description of every mismatching register plus any memory or
/// block-count divergence.
pub fn compare_arch_state(
    cpu: &Processor,
    stats: &CoreStats,
    oracle: &Oracle,
) -> Result<(), String> {
    if stats.blocks_committed != oracle.blocks {
        return Err(format!(
            "committed {} blocks, oracle committed {}",
            stats.blocks_committed, oracle.blocks
        ));
    }
    let mut diffs = Vec::new();
    for r in 0..128u8 {
        let got = cpu.arch_reg(ArchReg::new(r));
        let want = oracle.regs[r as usize];
        if got != want {
            diffs.push(format!("G{r}: core={got:#x} oracle={want:#x}"));
        }
    }
    if !diffs.is_empty() {
        return Err(format!("register divergence vs blockinterp oracle: {}", diffs.join(", ")));
    }
    let mem_diffs = cpu.memory().diff(&oracle.mem, 256);
    if !mem_diffs.is_empty() {
        let mut bases: Vec<u64> = mem_diffs.iter().map(|&a| a & !7).collect();
        bases.dedup();
        let cells: Vec<String> = bases
            .iter()
            .take(16)
            .map(|&base| {
                format!(
                    "{base:#x}: core={:#x} oracle={:#x}",
                    cpu.memory().read_u64(base),
                    oracle.mem.read_u64(base)
                )
            })
            .collect();
        return Err(format!(
            "memory divergence vs blockinterp oracle ({} cell(s)): {}",
            bases.len(),
            cells.join(", ")
        ));
    }
    Ok(())
}

/// Greedily minimizes a failing plan: repeatedly scans
/// [`FaultPlan::shrink_candidates`] and commits the first candidate
/// that still fails, until no candidate does. Returns the minimal
/// plan and the failure it still produces. Terminates because every
/// candidate strictly reduces a finite measure of the plan.
pub fn shrink<F>(mut plan: FaultPlan, mut why: String, fails: F) -> (FaultPlan, String)
where
    F: Fn(&FaultPlan) -> Option<String>,
{
    loop {
        let step = plan.shrink_candidates().into_iter().find_map(|cand| {
            let w = fails(&cand)?;
            Some((cand, w))
        });
        match step {
            Some((cand, w)) => {
                plan = cand;
                why = w;
            }
            None => return (plan, why),
        }
    }
}

/// Renders a minimized failure as a `#[test]` function that pastes
/// directly into `tests/fault_injection.rs` (which provides the
/// `assert_plan_matches_oracle` helper).
pub fn repro_snippet(
    workload: &str,
    quality: Quality,
    nuca: bool,
    plan: &FaultPlan,
    why: &str,
) -> String {
    repro_snippet_geom(workload, quality, nuca, CoreGeometry::prototype(), plan, why)
}

/// [`repro_snippet`] carrying the tile-array geometry of the failing
/// run. Prototype failures keep the historical helper calls; any
/// other geometry pastes a call to `assert_plan_matches_oracle_geom`,
/// which re-runs the plan on that die by name.
pub fn repro_snippet_geom(
    workload: &str,
    quality: Quality,
    nuca: bool,
    geom: CoreGeometry,
    plan: &FaultPlan,
    why: &str,
) -> String {
    let mut s = String::new();
    let proto = geom == CoreGeometry::prototype();
    let gname = geom.name();
    let ident: String =
        format!("{workload}{}", if proto { String::new() } else { format!("_{gname}") })
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
    let _ = writeln!(s, "/// Minimized protofuzz reproducer (seed {:#x}).", plan.seed);
    if !proto {
        let _ = writeln!(s, "/// Found on the `{gname}` die.");
    }
    for line in why.lines().take(4) {
        let _ = writeln!(s, "/// Failure: {line}");
    }
    let _ = writeln!(s, "#[test]");
    let _ = writeln!(s, "fn protofuzz_repro_{ident}_{:x}() {{", plan.seed);
    let _ = writeln!(s, "    let plan = {};", indent_continuation(&plan.to_rust_literal(), 4));
    if proto {
        let helper =
            if nuca { "assert_plan_matches_oracle_nuca" } else { "assert_plan_matches_oracle" };
        let _ = writeln!(s, "    {helper}(\"{workload}\", Quality::{quality:?}, &plan);");
    } else {
        let _ = writeln!(
            s,
            "    assert_plan_matches_oracle_geom(\"{workload}\", Quality::{quality:?}, \
             \"{gname}\", &plan);"
        );
    }
    let _ = writeln!(s, "}}");
    s
}

/// Indents every line after the first by `n` spaces (for embedding a
/// multi-line literal in generated code).
fn indent_continuation(text: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    let mut lines = text.lines();
    let mut out = lines.next().unwrap_or_default().to_string();
    for l in lines {
        out.push('\n');
        out.push_str(&pad);
        out.push_str(l);
    }
    out
}

/// A failing fuzz case, as collected by the sweep.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The plan's master seed.
    pub seed: u64,
    /// Workload the failure occurred on.
    pub workload: String,
    /// Code quality of the failing image.
    pub quality: Quality,
    /// Whether the run used the NUCA secondary backend.
    pub nuca: bool,
    /// For dual-core chip cases: the co-runner workload on core 1
    /// (the run then used the shared NUCA regardless of `nuca`).
    pub co_runner: Option<String>,
    /// For coherence-axis cases: the core count of the shared-memory
    /// chip (`workload` then names a shared-registry entry and the
    /// run compared every replica against its final-state oracle).
    pub shared_cores: Option<usize>,
    /// Tile-array geometry the failing run used (chip cases are
    /// always the prototype die).
    pub geom: CoreGeometry,
    /// The full (unshrunk) failing plan.
    pub plan: FaultPlan,
    /// Failure description from [`run_against_oracle`].
    pub why: String,
}

/// Builds the machine-readable failure artifact the CI job uploads:
/// the original and shrunk plans, the failure descriptions, the hang
/// report from a traced re-run of the shrunk plan, and the flight
/// recorder's Chrome trace (embedded raw — it is already JSON).
pub fn failure_artifact(
    oracle: &Oracle,
    fail: &FuzzFailure,
    shrunk: &FaultPlan,
    shrunk_why: &str,
    gate: bool,
    max_cycles: u64,
) -> String {
    // Traced re-run of the minimal reproducer: the flight recorder is
    // most useful on exactly the failing run.
    let backend = if fail.nuca { MemBackend::nuca_prototype() } else { MemBackend::prototype() };
    let cfg = CoreConfig {
        gate_ticks: gate,
        mem_backend: backend,
        faults: Some(shrunk.clone()),
        check_invariants: true,
        ..CoreConfig::with_geometry(fail.geom)
    };
    let mut cpu = Processor::new(cfg);
    cpu.enable_tracing(1 << 15);
    let rerun = cpu.run(&oracle.image, max_cycles);
    let hang = cpu.diagnose();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"workload\": \"{}\",", json_escape(&fail.workload));
    let _ = writeln!(s, "  \"quality\": \"{:?}\",", fail.quality);
    let _ = writeln!(s, "  \"geometry\": \"{}\",", fail.geom.name());
    let _ = writeln!(s, "  \"backend\": \"{}\",", if fail.nuca { "nuca" } else { "perfect-l2" });
    let _ = writeln!(s, "  \"seed\": {},", fail.seed);
    let _ = writeln!(s, "  \"failure\": \"{}\",", json_escape(&fail.why));
    let _ = writeln!(s, "  \"plan\": \"{}\",", json_escape(&fail.plan.to_rust_literal()));
    let _ = writeln!(s, "  \"shrunk_plan\": \"{}\",", json_escape(&shrunk.to_rust_literal()));
    let _ = writeln!(s, "  \"shrunk_failure\": \"{}\",", json_escape(shrunk_why));
    let _ = writeln!(
        s,
        "  \"rerun\": \"{}\",",
        json_escape(&match &rerun {
            Ok(st) => format!("ran to halt: {} cycles, {} blocks", st.cycles, st.blocks_committed),
            Err(e) => e.to_string(),
        })
    );
    let _ = writeln!(s, "  \"hang_report\": \"{}\",", json_escape(&hang.summary()));
    let _ = writeln!(s, "  \"chrome_trace\": {}", cpu.tracer().chrome_trace().trim_end());
    s.push('}');
    s.push('\n');
    s
}

/// [`failure_artifact`] for a chip case (one oracle per core):
/// re-runs the shrunk plan on the chip with every core's flight
/// recorder on and embeds the combined per-core Chrome trace plus
/// each core's hang report.
pub fn failure_artifact_chip(
    oracles: &[&Oracle],
    fail: &FuzzFailure,
    shrunk: &FaultPlan,
    shrunk_why: &str,
    gate: bool,
    max_cycles: u64,
) -> String {
    let core_cfg = CoreConfig {
        gate_ticks: gate,
        faults: Some(shrunk.clone()),
        check_invariants: true,
        ..CoreConfig::prototype_pinned()
    };
    let mut chip =
        Chip::new(ChipConfig::with_cores(oracles.len(), core_cfg, MemConfig::prototype()));
    chip.enable_tracing(1 << 14);
    let images: Vec<ProgramImage> = oracles.iter().map(|o| o.image.clone()).collect();
    let rerun = chip.run(&images, max_cycles);
    let hangs: Vec<String> = (0..oracles.len())
        .map(|k| format!("core {k}: {}", chip.core(k).diagnose().summary()))
        .collect();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"workload\": \"{}\",", json_escape(&fail.workload));
    let _ = writeln!(
        s,
        "  \"co_runner\": \"{}\",",
        json_escape(fail.co_runner.as_deref().unwrap_or(""))
    );
    let _ = writeln!(s, "  \"quality\": \"{:?}\",", fail.quality);
    let _ = writeln!(s, "  \"geometry\": \"{}\",", fail.geom.name());
    let _ = writeln!(s, "  \"backend\": \"chip\",");
    let _ = writeln!(s, "  \"seed\": {},", fail.seed);
    let _ = writeln!(s, "  \"failure\": \"{}\",", json_escape(&fail.why));
    let _ = writeln!(s, "  \"plan\": \"{}\",", json_escape(&fail.plan.to_rust_literal()));
    let _ = writeln!(s, "  \"shrunk_plan\": \"{}\",", json_escape(&shrunk.to_rust_literal()));
    let _ = writeln!(s, "  \"shrunk_failure\": \"{}\",", json_escape(shrunk_why));
    let _ = writeln!(
        s,
        "  \"rerun\": \"{}\",",
        json_escape(&match &rerun {
            Ok(st) => format!(
                "ran to halt: {} chip cycles, {:?} blocks",
                st.cycles,
                st.cores.iter().map(|c| c.blocks_committed).collect::<Vec<_>>()
            ),
            Err(e) => e.to_string(),
        })
    );
    let _ = writeln!(s, "  \"hang_report\": \"{}\",", json_escape(&hangs.join("; ")));
    let _ = writeln!(s, "  \"chrome_trace\": {}", chip.chrome_trace().trim_end());
    s.push('}');
    s.push('\n');
    s
}

/// [`failure_artifact`] for a coherence-axis case: re-runs the shrunk
/// plan on the shared-memory chip with every flight recorder on and
/// embeds the per-core hang reports, the final coherence snapshot,
/// and the combined Chrome trace.
pub fn failure_artifact_shared(
    fail: &FuzzFailure,
    shrunk: &FaultPlan,
    shrunk_why: &str,
    gate: bool,
    max_cycles: u64,
) -> String {
    let ncores = fail.shared_cores.expect("a shared-axis failure records its core count");
    let wl = suite::shared_by_name(&fail.workload).expect("shared workload registered");
    let SharedProgram { images, .. } = (wl.gen)(ncores);
    let mut chip = Chip::new(shared_chip_config(ncores, fail.geom, Some(shrunk), gate));
    chip.enable_tracing(1 << 14);
    let rerun = chip.run(&images, max_cycles);
    let hangs: Vec<String> =
        (0..ncores).map(|k| format!("core {k}: {}", chip.core(k).diagnose().summary())).collect();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"workload\": \"{}\",", json_escape(&fail.workload));
    let _ = writeln!(s, "  \"quality\": \"{:?}\",", fail.quality);
    let _ = writeln!(s, "  \"geometry\": \"{}\",", fail.geom.name());
    let _ = writeln!(s, "  \"backend\": \"shared-chip\",");
    let _ = writeln!(s, "  \"cores\": {ncores},");
    let _ = writeln!(s, "  \"seed\": {},", fail.seed);
    let _ = writeln!(s, "  \"failure\": \"{}\",", json_escape(&fail.why));
    let _ = writeln!(s, "  \"plan\": \"{}\",", json_escape(&fail.plan.to_rust_literal()));
    let _ = writeln!(s, "  \"shrunk_plan\": \"{}\",", json_escape(&shrunk.to_rust_literal()));
    let _ = writeln!(s, "  \"shrunk_failure\": \"{}\",", json_escape(shrunk_why));
    let _ = writeln!(
        s,
        "  \"rerun\": \"{}\",",
        json_escape(&match &rerun {
            Ok(st) => format!(
                "ran to halt: {} chip cycles, coherence {:?}",
                st.cycles,
                st.coherence.unwrap_or_default()
            ),
            Err(e) => e.to_string(),
        })
    );
    let _ = writeln!(s, "  \"hang_report\": \"{}\",", json_escape(&hangs.join("; ")));
    let _ = writeln!(s, "  \"chrome_trace\": {}", chip.chrome_trace().trim_end());
    s.push('}');
    s.push('\n');
    s
}

/// [`repro_snippet`] for a coherence-axis failure: pastes into
/// `tests/fault_injection.rs`, which provides
/// `assert_shared_plan_matches_oracle`.
pub fn repro_snippet_shared(
    workload: &str,
    ncores: usize,
    geom: CoreGeometry,
    plan: &FaultPlan,
    why: &str,
) -> String {
    let mut s = String::new();
    let gname = geom.name();
    let ident: String = format!("{workload}_{ncores}c_{gname}")
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let _ = writeln!(s, "/// Minimized protofuzz coherence reproducer (seed {:#x}).", plan.seed);
    for line in why.lines().take(4) {
        let _ = writeln!(s, "/// Failure: {line}");
    }
    let _ = writeln!(s, "#[test]");
    let _ = writeln!(s, "fn protofuzz_repro_shared_{ident}_{:x}() {{", plan.seed);
    let _ = writeln!(s, "    let plan = {};", indent_continuation(&plan.to_rust_literal(), 4));
    let _ = writeln!(
        s,
        "    assert_shared_plan_matches_oracle(\"{workload}\", {ncores}, \"{gname}\", &plan);"
    );
    let _ = writeln!(s, "}}");
    s
}

/// [`repro_snippet`] for a chip failure (`co_runner` is the
/// comma-joined workloads of slots 1..): pastes into
/// `tests/fault_injection.rs`, which provides
/// `assert_chip_plan_matches_oracles`.
pub fn repro_snippet_chip(
    workload: &str,
    co_runner: &str,
    quality: Quality,
    plan: &FaultPlan,
    why: &str,
) -> String {
    let mut s = String::new();
    let ident: String = format!("{workload}_{co_runner}")
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let _ = writeln!(s, "/// Minimized protofuzz chip reproducer (seed {:#x}).", plan.seed);
    for line in why.lines().take(4) {
        let _ = writeln!(s, "/// Failure: {line}");
    }
    let _ = writeln!(s, "#[test]");
    let _ = writeln!(s, "fn protofuzz_repro_chip_{ident}_{:x}() {{", plan.seed);
    let _ = writeln!(s, "    let plan = {};", indent_continuation(&plan.to_rust_literal(), 4));
    let _ = writeln!(
        s,
        "    assert_chip_plan_matches_oracles(\"{workload}\", \"{co_runner}\", \
         Quality::{quality:?}, &plan);"
    );
    let _ = writeln!(s, "}}");
    s
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_workloads::suite;

    #[test]
    fn clean_run_matches_oracle() {
        let wl = suite::by_name("vadd").expect("registered");
        let oracle = Oracle::build(&wl, Quality::Hand);
        let stats = run_against_oracle(&oracle, None, true, FUZZ_MAX_CYCLES)
            .expect("clean run matches oracle");
        assert_eq!(stats.blocks_committed, oracle.blocks);
    }

    #[test]
    fn clean_nuca_run_matches_oracle() {
        let wl = suite::by_name("vadd").expect("registered");
        let oracle = Oracle::build(&wl, Quality::Hand);
        let stats = run_against_oracle_with(
            &oracle,
            MemBackend::nuca_prototype(),
            None,
            true,
            FUZZ_MAX_CYCLES,
        )
        .expect("clean NUCA run matches oracle");
        assert_eq!(stats.blocks_committed, oracle.blocks);
        assert!(stats.mem.is_some(), "NUCA runs export secondary-system stats");
    }

    #[test]
    fn shrinker_reaches_a_fixed_point() {
        // Synthetic predicate: "fails" whenever the plan storms. The
        // minimum is a storm-only plan.
        let plan = FaultPlan::random(0x5eed_0007);
        let mut plan = plan;
        plan.flush_storm = Some(trips_core::Ratio { num: 1, den: 16 });
        let fails = |p: &FaultPlan| p.flush_storm.map(|_| "storm still present".to_string());
        let (min, why) = shrink(plan, "seed failure".into(), fails);
        assert!(min.flush_storm.is_some(), "shrinker must preserve the failure");
        assert!(min.links.is_empty() && min.chain_delay.is_none() && !min.rotate_arbitration);
        assert_eq!(why, "storm still present");
    }

    #[test]
    fn snippet_is_pasteable_shape() {
        let plan = FaultPlan::random(42);
        let snip = repro_snippet("vadd", Quality::Hand, false, &plan, "something diverged");
        assert!(snip.contains("#[test]"));
        assert!(snip.contains("fn protofuzz_repro_vadd_2a()"));
        assert!(snip.contains("assert_plan_matches_oracle(\"vadd\", Quality::Hand, &plan);"));
        let nuca = repro_snippet("vadd", Quality::Hand, true, &plan, "diverged");
        assert!(nuca.contains("assert_plan_matches_oracle_nuca(\"vadd\", Quality::Hand, &plan);"));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
