//! The seven micronetworks of the core, bundled.

use std::collections::VecDeque;

use trips_micronet::{Chain, Mesh, MeshMsg};

use crate::config::{CoreConfig, CoreGeometry};
use crate::diag::NetDiag;
use crate::fault;
use crate::msg::{DsnMsg, GcnMsg, GdnFetch, GrnRefill, GsnMsg, OpnPayload, RowMsg, TileId};
use crate::trace::{OpnClass, TraceKind, Tracer};

/// Chain positions of the GDN/GRN instruction-tile column: the GT at
/// 0, then IT0..ITn.
pub fn it_col_pos(it: usize) -> usize {
    1 + it
}

/// Chain positions within a GDN row: the IT at 0, the GT or DT at 1,
/// and the RTs or ETs from 2.
pub fn row_pos_of_col(col: usize) -> usize {
    2 + col
}

/// Chain positions of the RT status chain: GT at 0, then RT0..RTn.
pub fn rt_chain_pos(rt: usize) -> usize {
    1 + rt
}

/// Chain positions of the DT status chain: GT at 0, then DT0..DTn.
pub fn dt_chain_pos(dt: usize) -> usize {
    1 + dt
}

/// All micronetworks of one core.
pub struct Nets {
    /// The tile-array geometry the networks are sized for.
    pub geom: CoreGeometry,
    /// Operand network(s): one in the prototype, two for the
    /// bandwidth ablation. Traffic steers by destination so that
    /// same-destination operands stay ordered.
    pub opn: Vec<Mesh<OpnPayload>>,
    /// Cycles an outbox head-of-line message waited on a full local
    /// inject FIFO (one count per network per cycle).
    pub opn_inject_stalls: u64,
    /// Per-network high-water marks of in-flight messages.
    pub opn_highwater: Vec<usize>,
    /// GDN, GT → IT column (fetch commands).
    pub gdn_col: Chain<GdnFetch>,
    /// GDN rows, IT → row tiles (dispatch), one chain per IT.
    pub gdn_rows: Vec<Chain<RowMsg>>,
    /// GSN along the RT row (block status / commit acks).
    pub gsn_rt: Chain<GsnMsg>,
    /// GSN along the DT column.
    pub gsn_dt: Chain<GsnMsg>,
    /// GSN along the IT column (refill completion).
    pub gsn_it: Chain<GsnMsg>,
    /// GCN commit/flush wave over all routed tiles
    /// ([`CoreGeometry::gcn_len`] of them).
    pub gcn: Chain<GcnMsg>,
    /// GRN refill commands, GT → ITs.
    pub grn: Chain<GrnRefill>,
    /// DSN between the DTs (store-arrival broadcasts).
    pub dsn: Chain<DsnMsg>,
}

impl Nets {
    /// Networks for the given configuration. When the configuration
    /// carries a [`FaultPlan`](crate::FaultPlan), each network gets its
    /// compiled fault state here, seeded per network so runs replay
    /// exactly.
    pub fn new(cfg: &CoreConfig) -> Nets {
        let g = cfg.geometry;
        let mesh = (g.mesh_rows() as u8, g.mesh_cols() as u8);
        // Row 0 of the GDN carries the GT and RTs, body rows a DT and
        // their ETs; each chain is as long as its row's tile count.
        let row_len = |it: usize| if it == 0 { 2 + g.num_rts() } else { 2 + g.et_cols };
        let mut nets = Nets {
            geom: g,
            opn: (0..cfg.opn_networks.max(1))
                .map(|_| Mesh::new(mesh.0, mesh.1, cfg.opn_fifo))
                .collect(),
            opn_inject_stalls: 0,
            opn_highwater: vec![0; cfg.opn_networks.max(1)],
            gdn_col: Chain::new(1 + g.num_its()),
            gdn_rows: (0..g.num_its()).map(|it| Chain::new(row_len(it))).collect(),
            gsn_rt: Chain::new(1 + g.num_rts()),
            gsn_dt: Chain::new(1 + g.num_dts()),
            gsn_it: Chain::new(1 + g.num_its()),
            gcn: Chain::new(g.gcn_len()),
            grn: Chain::new(1 + g.num_its()),
            dsn: Chain::new(g.num_dts()),
        };
        if let Some(plan) = &cfg.faults {
            for (n, m) in nets.opn.iter_mut().enumerate() {
                m.set_fault(plan.mesh_fault(n).as_ref());
            }
            nets.gdn_col.set_fault(plan.chain_fault(fault::TAG_GDN_COL).as_ref());
            for (r, row) in nets.gdn_rows.iter_mut().enumerate() {
                row.set_fault(plan.chain_fault(fault::TAG_GDN_ROW + r as u64).as_ref());
            }
            nets.gsn_rt.set_fault(plan.chain_fault(fault::TAG_GSN_RT).as_ref());
            nets.gsn_dt.set_fault(plan.chain_fault(fault::TAG_GSN_DT).as_ref());
            nets.gsn_it.set_fault(plan.chain_fault(fault::TAG_GSN_IT).as_ref());
            nets.gcn.set_fault(plan.chain_fault(fault::TAG_GCN).as_ref());
            nets.grn.set_fault(plan.chain_fault(fault::TAG_GRN).as_ref());
            nets.dsn.set_fault(plan.chain_fault(fault::TAG_DSN).as_ref());
        }
        nets
    }

    /// Broadcasts a GCN message from the GT; the wave reaches each
    /// tile after its two-dimensional manhattan distance (§4.3: one
    /// hop per cycle across the array).
    pub fn gcn_broadcast(&mut self, now: u64, msg: GcnMsg) {
        let g = self.geom;
        let from = TileId::Gt.opn();
        let send = |gcn: &mut Chain<GcnMsg>, t: TileId| {
            gcn.send_delayed(now, g.gcn_pos(t), u64::from(from.distance(t.opn())), msg);
        };
        for b in 0..g.num_rts() as u8 {
            send(&mut self.gcn, TileId::Rt(b));
        }
        for d in 0..g.num_dts() as u8 {
            send(&mut self.gcn, TileId::Dt(d));
        }
        for r in 0..g.et_rows as u8 {
            for c in 0..g.et_cols as u8 {
                send(&mut self.gcn, TileId::Et(r, c));
            }
        }
    }

    /// Ticks the contention-modelled networks. Meshes with nothing in
    /// flight are clock-gated ([`Mesh::active`] is their predicate);
    /// the chains are event-driven (send/recv) and never need a tick.
    pub fn tick(&mut self, now: u64) {
        for (n, m) in self.opn.iter_mut().enumerate() {
            if !m.active() {
                continue;
            }
            self.opn_highwater[n] = self.opn_highwater[n].max(m.in_flight());
            m.tick(now);
        }
    }

    /// Head-of-line inject stalls observed by the tile outboxes.
    ///
    /// This is the *only* term of the protocol-level stall count:
    /// [`OpnOutbox::flush`] checks `can_inject` before injecting, so a
    /// stalled cycle increments this counter and never reaches
    /// [`Mesh::inject`] — the mesh's own `inject_fails` counts raw
    /// rejected injections (a different event, nonzero only for
    /// clients that bypass the outbox) and must not be added on top.
    pub fn inject_stalls(&self) -> u64 {
        self.opn_inject_stalls
    }

    /// True if any OPN has a delivered message waiting at `tile` —
    /// part of the tile's clock-gating wakeup predicate.
    pub fn opn_delivered_at(&self, tile: TileId) -> bool {
        let node = tile.opn();
        self.opn.iter().any(|m| m.has_delivered(node))
    }

    /// The parallel OPN carrying traffic for `dst`. Destination
    /// steering (rather than round-robin) keeps every (src, dst) flow
    /// on one network, so same-destination operands cannot be
    /// reordered across networks; Y-X routing and FIFO buffers keep
    /// them in order within one.
    pub fn opn_for(&self, dst: TileId) -> usize {
        let c = dst.opn();
        (c.row as usize + c.col as usize) % self.opn.len()
    }

    /// Occupancy of every network, for the hang diagnoser.
    pub fn diags(&self, now: u64) -> Vec<NetDiag> {
        let mut out = Vec::new();
        for (n, m) in self.opn.iter().enumerate() {
            let pending = m.in_flight() + m.undrained();
            if pending == 0 {
                continue;
            }
            let oldest = m.oldest_in_flight().map(|(at, src, dst, delivered)| {
                let from = TileId::from_opn(src);
                let to = TileId::from_opn(dst);
                let state = if delivered { "awaiting eject at" } else { "en route to" };
                format!("{from}->{to} injected at cycle {at} ({} old), {state} {to}", now - at)
            });
            out.push(NetDiag { net: format!("OPN{n}"), pending, oldest });
        }
        let mut chain = |name: &str, c_pending: usize, c_oldest: Option<(u64, usize)>| {
            if c_pending > 0 {
                out.push(NetDiag {
                    net: name.to_string(),
                    pending: c_pending,
                    oldest: c_oldest
                        .map(|(at, pos)| format!("arrives at cycle {at}, chain position {pos}")),
                });
            }
        };
        chain("GDN column", self.gdn_col.pending(), self.gdn_col.oldest_pending());
        for (r, row) in self.gdn_rows.iter().enumerate() {
            chain(&format!("GDN row {r}"), row.pending(), row.oldest_pending());
        }
        chain("GSN/RT", self.gsn_rt.pending(), self.gsn_rt.oldest_pending());
        chain("GSN/DT", self.gsn_dt.pending(), self.gsn_dt.oldest_pending());
        chain("GSN/IT", self.gsn_it.pending(), self.gsn_it.oldest_pending());
        chain("GCN", self.gcn.pending(), self.gcn.oldest_pending());
        chain("GRN", self.grn.pending(), self.grn.oldest_pending());
        chain("DSN", self.dsn.pending(), self.dsn.oldest_pending());
        out
    }

    /// True once every network has drained.
    pub fn idle(&self) -> bool {
        self.opn.iter().all(|m| m.in_flight() == 0)
            && self.gdn_col.idle()
            && self.gdn_rows.iter().all(Chain::idle)
            && self.gsn_rt.idle()
            && self.gsn_dt.idle()
            && self.gsn_it.idle()
            && self.gcn.idle()
            && self.grn.idle()
            && self.dsn.idle()
    }
}

/// An operand-network outbox: tiles enqueue sends here and the helper
/// injects up to one message per network per cycle, preserving order
/// and modelling the single local-inject port of an OPN router.
///
/// Each destination maps to a fixed network ([`Nets::opn_for`]), so
/// back-to-back operands for the same consumer always share a network
/// and arrive in order. A message whose network's inject port is full
/// (or already granted this cycle) blocks every younger message bound
/// for the same network — but not messages steered elsewhere.
#[derive(Debug, Default)]
pub struct OpnOutbox {
    queue: VecDeque<(TileId, OpnPayload)>,
}

impl OpnOutbox {
    /// An outbox with its queue storage pre-allocated, so the first
    /// sends of a run never touch the allocator mid-tick.
    pub fn with_capacity(cap: usize) -> OpnOutbox {
        OpnOutbox { queue: VecDeque::with_capacity(cap) }
    }

    /// Queues a message for `dst`.
    pub fn push(&mut self, dst: TileId, payload: OpnPayload) {
        self.queue.push_back((dst, payload));
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Messages awaiting injection.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Injects up to one queued message per OPN network this cycle.
    pub fn flush(&mut self, nets: &mut Nets, now: u64, src: TileId, tracer: &mut Tracer) {
        if self.queue.is_empty() {
            return;
        }
        // Per-network grant and stall bits; both block younger
        // same-network messages from overtaking.
        let mut granted = 0u32;
        let mut stalled = 0u32;
        let mut i = 0;
        while i < self.queue.len() {
            let n = nets.opn_for(self.queue[i].0);
            let bit = 1u32 << n;
            if granted & bit != 0 || stalled & bit != 0 {
                i += 1;
                continue;
            }
            if !nets.opn[n].can_inject(src.opn()) {
                stalled |= bit;
                nets.opn_inject_stalls += 1;
                i += 1;
                continue;
            }
            let (dst, payload) = self.queue.remove(i).expect("index in bounds");
            tracer.record(now, || TraceKind::OpnInject {
                net: n as u8,
                class: OpnClass::of(&payload),
                src,
                dst,
            });
            let ok = nets.opn[n].inject(now, MeshMsg::new(src.opn(), dst.opn(), payload));
            debug_assert!(ok, "can_inject said yes");
            granted |= bit;
            // `i` now indexes the next message after the removal.
        }
    }
}

/// Drains *every* delivered OPN message for `tile` this cycle in one
/// call, invoking `deliver` per message — the batched form of
/// [`opn_recv`], and bit-identical to calling it in a loop until
/// `None`. The loop form rescans from network 0 on every call, but a
/// rescan of a just-drained network can never find anything new:
/// ejections happen only inside `Mesh::tick`, never from a tile's
/// receive handler, so draining network 0 fully and then network 1
/// yields the identical sequence. Same-destination operands always
/// share one network ([`Nets::opn_for`] steers by destination), so the
/// full-drain order is also non-overtaking per flow. A network with
/// nothing delivered costs one bit test ([`Mesh::has_delivered`]).
pub fn opn_recv_batch(
    nets: &mut Nets,
    now: u64,
    tile: TileId,
    tracer: &mut Tracer,
    mut deliver: impl FnMut(MeshMsg<OpnPayload>),
) {
    let node = tile.opn();
    for (n, m) in nets.opn.iter_mut().enumerate() {
        if !m.has_delivered(node) {
            continue;
        }
        while let Some(msg) = m.eject(node) {
            tracer.record(now, || TraceKind::OpnEject {
                net: n as u8,
                class: OpnClass::of(&msg.payload),
                src: TileId::from_opn(msg.src),
                dst: tile,
                hops: msg.hops,
                queued: msg.queued,
            });
            deliver(msg);
        }
    }
}

/// Drains one delivered OPN message for `tile`, scanning the parallel
/// networks in order. Returns the message with its hop/queue counts.
/// Used by receive loops whose per-message handling needs `nets` or
/// `tracer` itself (the GT's branch drain flushes, the DT's request
/// drain forwards) — pure consumers use [`opn_recv_batch`].
pub fn opn_recv(
    nets: &mut Nets,
    now: u64,
    tile: TileId,
    tracer: &mut Tracer,
) -> Option<MeshMsg<OpnPayload>> {
    let node = tile.opn();
    for (n, m) in nets.opn.iter_mut().enumerate() {
        if !m.has_delivered(node) {
            continue;
        }
        if let Some(msg) = m.eject(node) {
            tracer.record(now, || TraceKind::OpnEject {
                net: n as u8,
                class: OpnClass::of(&msg.payload),
                src: TileId::from_opn(msg.src),
                dst: tile,
                hops: msg.hops,
                queued: msg.queued,
            });
            return Some(msg);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::FrameId;
    use trips_isa::semantics::Tok;
    use trips_isa::OperandSlot;

    fn operand() -> OpnPayload {
        operand_val(7)
    }

    fn operand_val(v: i64) -> OpnPayload {
        OpnPayload::Operand {
            frame: FrameId(0),
            gen: 0,
            idx: 5,
            slot: OperandSlot::Left,
            tok: Tok::Val(v as u64),
            ev: 0,
        }
    }

    #[test]
    fn outbox_single_port_per_network() {
        let cfg = CoreConfig::prototype_pinned();
        let mut nets = Nets::new(&cfg);
        let mut tr = Tracer::disabled();
        let mut ob = OpnOutbox::default();
        ob.push(TileId::Et(0, 1), operand());
        ob.push(TileId::Et(0, 1), operand());
        ob.flush(&mut nets, 0, TileId::Et(0, 0), &mut tr);
        assert!(!ob.is_empty(), "one network, one inject per cycle");
        ob.flush(&mut nets, 1, TileId::Et(0, 0), &mut tr);
        assert!(ob.is_empty());
    }

    #[test]
    fn two_networks_double_injection_for_distinct_destinations() {
        let cfg = CoreConfig { opn_networks: 2, ..CoreConfig::prototype_pinned() };
        let mut nets = Nets::new(&cfg);
        let mut tr = Tracer::disabled();
        let mut ob = OpnOutbox::default();
        // Destinations steered to different networks.
        let (a, b) = (TileId::Et(0, 1), TileId::Et(0, 2));
        assert_ne!(nets.opn_for(a), nets.opn_for(b));
        ob.push(a, operand());
        ob.push(b, operand());
        ob.flush(&mut nets, 0, TileId::Et(0, 0), &mut tr);
        assert!(ob.is_empty(), "two networks accept two per cycle");
    }

    #[test]
    fn same_destination_shares_a_network_and_stays_ordered() {
        let cfg = CoreConfig { opn_networks: 2, ..CoreConfig::prototype_pinned() };
        let mut nets = Nets::new(&cfg);
        let mut tr = Tracer::disabled();
        let mut ob = OpnOutbox::default();
        let src = TileId::Et(3, 3);
        let dst = TileId::Et(0, 0);
        for v in 0..8 {
            ob.push(dst, operand_val(v));
        }
        let mut got = Vec::new();
        for t in 0..64u64 {
            ob.flush(&mut nets, t, src, &mut tr);
            nets.tick(t);
            while let Some(m) = opn_recv(&mut nets, t, dst, &mut tr) {
                let OpnPayload::Operand { tok: Tok::Val(v), .. } = m.payload else {
                    panic!("unexpected payload")
                };
                got.push(v);
            }
        }
        assert_eq!(got, (0..8).collect::<Vec<u64>>(), "same-destination FIFO order");
    }

    #[test]
    fn blocked_network_does_not_block_the_other() {
        let cfg = CoreConfig { opn_networks: 2, ..CoreConfig::prototype_pinned() };
        let mut nets = Nets::new(&cfg);
        let mut tr = Tracer::disabled();
        let src = TileId::Et(0, 0);
        let blocked_dst = TileId::Et(0, 1); // odd coordinate sum
        let open_dst = TileId::Et(0, 2); // even coordinate sum
        let nb = nets.opn_for(blocked_dst);
        let no = nets.opn_for(open_dst);
        assert_ne!(nb, no);
        // Fill the blocked network's local inject FIFO at src.
        while nets.opn[nb].can_inject(src.opn()) {
            nets.opn[nb].inject(0, MeshMsg::new(src.opn(), blocked_dst.opn(), operand()));
        }
        let mut ob = OpnOutbox::default();
        ob.push(blocked_dst, operand_val(1)); // head of line, stalled
        ob.push(open_dst, operand_val(2)); // different network, must proceed
        let before = nets.opn[no].stats.injected;
        ob.flush(&mut nets, 0, src, &mut tr);
        assert_eq!(nets.opn[no].stats.injected, before + 1, "open network injected");
        assert_eq!(ob.len(), 1, "stalled head stays queued");
        assert!(nets.opn_inject_stalls >= 1, "stall was counted");
    }

    #[test]
    fn inject_stalls_count_outbox_stalls_once() {
        // Regression for a double count: the protocol-level stall
        // statistic must equal the outbox head-of-line stall counter
        // alone. The mesh's `inject_fails` tracks raw rejected
        // injections — the outbox never produces those (it checks
        // `can_inject` first), so adding the two terms would count a
        // single full-FIFO episode twice for any client that also
        // drives `inject` directly.
        let cfg = CoreConfig::prototype_pinned();
        let mut nets = Nets::new(&cfg);
        let mut tr = Tracer::disabled();
        let src = TileId::Et(0, 0);
        let dst = TileId::Et(0, 1);
        // Fill the inject FIFO at src by direct injection, then one
        // raw failed injection (the non-outbox path).
        while nets.opn[0].can_inject(src.opn()) {
            nets.opn[0].inject(0, MeshMsg::new(src.opn(), dst.opn(), operand()));
        }
        assert!(!nets.opn[0].inject(0, MeshMsg::new(src.opn(), dst.opn(), operand())));
        assert_eq!(nets.opn[0].stats.inject_fails, 1);
        // Outbox head-of-line stall against the same full FIFO.
        let mut ob = OpnOutbox::default();
        ob.push(dst, operand());
        ob.flush(&mut nets, 0, src, &mut tr);
        assert_eq!(ob.len(), 1, "head stays queued");
        assert_eq!(nets.inject_stalls(), 1, "one stalled cycle, counted once");
        // The audited statistic is the outbox counter alone; the old
        // `stalls + inject_fails` formula would have reported 2 here.
        assert_ne!(nets.inject_stalls() + nets.opn[0].stats.inject_fails, nets.inject_stalls());
        // A failed direct injection did not bump the outbox counter.
        assert_eq!(nets.opn_inject_stalls, 1);
    }

    #[test]
    fn gcn_wave_arrives_at_manhattan_distance() {
        let cfg = CoreConfig::prototype_pinned();
        let mut nets = Nets::new(&cfg);
        let msg = GcnMsg::Commit { frame: FrameId(1), gen: 0 };
        nets.gcn_broadcast(0, msg);
        // RT0 is one hop away.
        assert_eq!(nets.gcn.recv(1, nets.geom.gcn_pos(TileId::Rt(0))), Some(msg));
        // ET(3,3) is eight hops away.
        assert_eq!(nets.gcn.recv(7, nets.geom.gcn_pos(TileId::Et(3, 3))), None);
        assert_eq!(nets.gcn.recv(8, nets.geom.gcn_pos(TileId::Et(3, 3))), Some(msg));
    }

    #[test]
    fn opn_roundtrip_through_fabric() {
        let cfg = CoreConfig::prototype_pinned();
        let mut nets = Nets::new(&cfg);
        let mut tr = Tracer::enabled(16);
        let mut ob = OpnOutbox::default();
        ob.push(TileId::Gt, operand());
        ob.flush(&mut nets, 0, TileId::Et(3, 3), &mut tr);
        let mut got = None;
        for t in 0..30 {
            nets.tick(t);
            if let Some(m) = opn_recv(&mut nets, t, TileId::Gt, &mut tr) {
                got = Some((t, m));
                break;
            }
        }
        let (_, m) = got.expect("delivered");
        assert_eq!(m.hops, 8);
        // The tracer saw the matching inject/eject pair.
        assert_eq!(tr.opn_injected, 1);
        assert_eq!(tr.opn_ejected, 1);
        assert!(tr.events().any(|e| matches!(
            e.kind,
            TraceKind::OpnEject { hops: 8, src: TileId::Et(3, 3), dst: TileId::Gt, .. }
        )));
    }
}
