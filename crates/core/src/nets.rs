//! The seven micronetworks of the core, bundled.

use std::collections::VecDeque;

use trips_micronet::{Chain, Mesh, MeshMsg};

use crate::config::CoreConfig;
use crate::msg::{DsnMsg, GcnMsg, GdnFetch, GrnRefill, GsnMsg, OpnPayload, RowMsg, TileId};

/// Chain positions of the GDN/GRN instruction-tile column: the GT at
/// 0, IT0..IT4 at 1..=5.
pub fn it_col_pos(it: usize) -> usize {
    1 + it
}

/// Chain positions within a GDN row: the IT at 0, the GT or DT at 1,
/// and the RTs or ETs at 2..=5.
pub fn row_pos_of_col(col: usize) -> usize {
    2 + col
}

/// Chain positions of the RT status chain: GT at 0, RT0..RT3 at 1..=4.
pub fn rt_chain_pos(rt: usize) -> usize {
    1 + rt
}

/// Chain positions of the DT status chain: GT at 0, DT0..DT3 at 1..=4.
pub fn dt_chain_pos(dt: usize) -> usize {
    1 + dt
}

/// GCN position of a routed tile (0 = GT, 1..=4 RTs, 5..=8 DTs,
/// 9..=24 ETs row-major).
pub fn gcn_pos(tile: TileId) -> usize {
    match tile {
        TileId::Gt => 0,
        TileId::Rt(b) => 1 + b as usize,
        TileId::Dt(d) => 5 + d as usize,
        TileId::Et(r, c) => 9 + r as usize * 4 + c as usize,
    }
}

/// All micronetworks of one core.
pub struct Nets {
    /// Operand network(s): one in the prototype, two for the
    /// bandwidth ablation. Traffic round-robins across them.
    pub opn: Vec<Mesh<OpnPayload>>,
    opn_next: usize,
    /// GDN, GT → IT column (fetch commands).
    pub gdn_col: Chain<GdnFetch>,
    /// GDN rows, IT → row tiles (dispatch), one chain per row 0..=4.
    pub gdn_rows: Vec<Chain<RowMsg>>,
    /// GSN along the RT row (block status / commit acks).
    pub gsn_rt: Chain<GsnMsg>,
    /// GSN along the DT column.
    pub gsn_dt: Chain<GsnMsg>,
    /// GSN along the IT column (refill completion).
    pub gsn_it: Chain<GsnMsg>,
    /// GCN commit/flush wave over all 25 routed tiles.
    pub gcn: Chain<GcnMsg>,
    /// GRN refill commands, GT → ITs.
    pub grn: Chain<GrnRefill>,
    /// DSN between the DTs (store-arrival broadcasts).
    pub dsn: Chain<DsnMsg>,
}

impl Nets {
    /// Networks for the given configuration.
    pub fn new(cfg: &CoreConfig) -> Nets {
        Nets {
            opn: (0..cfg.opn_networks.max(1))
                .map(|_| Mesh::new(5, 5, cfg.opn_fifo))
                .collect(),
            opn_next: 0,
            gdn_col: Chain::new(6),
            gdn_rows: (0..5).map(|_| Chain::new(6)).collect(),
            gsn_rt: Chain::new(5),
            gsn_dt: Chain::new(5),
            gsn_it: Chain::new(6),
            gcn: Chain::new(25),
            grn: Chain::new(6),
            dsn: Chain::new(4),
        }
    }

    /// Broadcasts a GCN message from the GT; the wave reaches each
    /// tile after its two-dimensional manhattan distance (§4.3: one
    /// hop per cycle across the array).
    pub fn gcn_broadcast(&mut self, now: u64, msg: GcnMsg) {
        let from = TileId::Gt.opn();
        for b in 0..4u8 {
            let t = TileId::Rt(b);
            self.gcn.send_delayed(now, gcn_pos(t), u64::from(from.distance(t.opn())), msg);
        }
        for d in 0..4u8 {
            let t = TileId::Dt(d);
            self.gcn.send_delayed(now, gcn_pos(t), u64::from(from.distance(t.opn())), msg);
        }
        for r in 0..4u8 {
            for c in 0..4u8 {
                let t = TileId::Et(r, c);
                self.gcn.send_delayed(now, gcn_pos(t), u64::from(from.distance(t.opn())), msg);
            }
        }
    }

    /// Ticks the contention-modelled networks.
    pub fn tick(&mut self, now: u64) {
        for m in &mut self.opn {
            m.tick(now);
        }
    }

    /// True once every network has drained.
    pub fn idle(&self) -> bool {
        self.opn.iter().all(|m| m.in_flight() == 0)
            && self.gdn_col.idle()
            && self.gdn_rows.iter().all(Chain::idle)
            && self.gsn_rt.idle()
            && self.gsn_dt.idle()
            && self.gsn_it.idle()
            && self.gcn.idle()
            && self.grn.idle()
            && self.dsn.idle()
    }
}

/// An operand-network outbox: tiles enqueue sends here and the helper
/// injects up to one message per network per cycle, preserving order
/// and modelling the single local-inject port of an OPN router.
#[derive(Debug, Default)]
pub struct OpnOutbox {
    queue: VecDeque<(TileId, OpnPayload)>,
}

impl OpnOutbox {
    /// Queues a message for `dst`.
    pub fn push(&mut self, dst: TileId, payload: OpnPayload) {
        self.queue.push_back((dst, payload));
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Injects up to one queued message per OPN network this cycle.
    pub fn flush(&mut self, nets: &mut Nets, now: u64, src: TileId) {
        for _ in 0..nets.opn.len() {
            let Some(&(_dst, _)) = self.queue.front() else { return };
            let n = nets.opn_next % nets.opn.len();
            nets.opn_next = nets.opn_next.wrapping_add(1);
            let mesh = &mut nets.opn[n];
            if !mesh.can_inject(src.opn()) {
                continue;
            }
            let (dst, payload) = self.queue.pop_front().expect("checked front");
            let ok = mesh.inject(now, MeshMsg::new(src.opn(), dst.opn(), payload));
            debug_assert!(ok, "can_inject said yes");
        }
    }
}

/// Drains one delivered OPN message for `tile`, scanning the parallel
/// networks round-robin. Returns the message with its hop/queue
/// counts.
pub fn opn_recv(nets: &mut Nets, tile: TileId) -> Option<MeshMsg<OpnPayload>> {
    let node = tile.opn();
    for m in &mut nets.opn {
        if let Some(msg) = m.eject(node) {
            return Some(msg);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::FrameId;
    use trips_isa::semantics::Tok;
    use trips_isa::OperandSlot;

    fn operand() -> OpnPayload {
        OpnPayload::Operand {
            frame: FrameId(0),
            gen: 0,
            idx: 5,
            slot: OperandSlot::Left,
            tok: Tok::Val(7),
            ev: 0,
        }
    }

    #[test]
    fn outbox_single_port_per_network() {
        let cfg = CoreConfig::prototype();
        let mut nets = Nets::new(&cfg);
        let mut ob = OpnOutbox::default();
        ob.push(TileId::Et(0, 1), operand());
        ob.push(TileId::Et(0, 1), operand());
        ob.flush(&mut nets, 0, TileId::Et(0, 0));
        assert!(!ob.is_empty(), "one network, one inject per cycle");
        ob.flush(&mut nets, 1, TileId::Et(0, 0));
        assert!(ob.is_empty());
    }

    #[test]
    fn two_networks_double_injection() {
        let cfg = CoreConfig { opn_networks: 2, ..CoreConfig::prototype() };
        let mut nets = Nets::new(&cfg);
        let mut ob = OpnOutbox::default();
        ob.push(TileId::Et(0, 1), operand());
        ob.push(TileId::Et(0, 1), operand());
        ob.flush(&mut nets, 0, TileId::Et(0, 0));
        assert!(ob.is_empty(), "two networks accept two per cycle");
    }

    #[test]
    fn gcn_wave_arrives_at_manhattan_distance() {
        let cfg = CoreConfig::prototype();
        let mut nets = Nets::new(&cfg);
        let msg = GcnMsg::Commit { frame: FrameId(1), gen: 0 };
        nets.gcn_broadcast(0, msg);
        // RT0 is one hop away.
        assert_eq!(nets.gcn.recv(1, gcn_pos(TileId::Rt(0))), Some(msg));
        // ET(3,3) is eight hops away.
        assert_eq!(nets.gcn.recv(7, gcn_pos(TileId::Et(3, 3))), None);
        assert_eq!(nets.gcn.recv(8, gcn_pos(TileId::Et(3, 3))), Some(msg));
    }

    #[test]
    fn opn_roundtrip_through_fabric() {
        let cfg = CoreConfig::prototype();
        let mut nets = Nets::new(&cfg);
        let mut ob = OpnOutbox::default();
        ob.push(TileId::Gt, operand());
        ob.flush(&mut nets, 0, TileId::Et(3, 3));
        let mut got = None;
        for t in 0..30 {
            nets.tick(t);
            if let Some(m) = opn_recv(&mut nets, TileId::Gt) {
                got = Some((t, m));
                break;
            }
        }
        let (_, m) = got.expect("delivered");
        assert_eq!(m.hops, 8);
    }
}
