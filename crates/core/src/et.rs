//! Execution tiles (§3.4).
//!
//! Each ET is a single-issue pipeline with 64 reservation stations
//! (eight per in-flight block), an integer unit, and an FP unit; all
//! units are pipelined except divide. Operands arriving from the OPN
//! wake instructions; a selected instruction executes and routes its
//! result either through the local bypass (back-to-back issue on the
//! same ET) or onto the OPN toward a remote consumer, a register
//! tile's write queue, a data tile (loads/stores), or the GT
//! (branches) — §4.2.

use trips_isa::semantics::{eval, Tok};
use trips_isa::{Instruction, Opcode, OperandNeeds, OperandSlot, Pred, Target};

use crate::config::{CoreConfig, CoreGeometry, FrameMask, StationMask};
use crate::critpath::{Cat, CritPath};
use crate::msg::{EvId, FrameId, GcnMsg, Gen, OpnPayload, RowMsg, TileId};
use crate::nets::{opn_recv_batch, row_pos_of_col, Nets, OpnOutbox};
use crate::stats::CoreStats;
use crate::trace::{TraceKind, Tracer};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SState {
    Waiting,
    Issued,
    Done,
    Dead,
}

#[derive(Debug, Clone)]
struct Station {
    inst: Instruction,
    idx: u8,
    ops: [Option<(Tok, EvId)>; 3],
    state: SState,
    disp_ev: EvId,
}

#[derive(Debug, Default)]
struct EtFrame {
    active: bool,
    gen: Gen,
    stations: Vec<Option<Station>>,
    /// Bit `s` set iff `stations[s]` is waiting with all needed
    /// operands present — maintained at dispatch and operand delivery
    /// so the select stage walks a mask instead of rescanning every
    /// station each cycle.
    ready: StationMask,
    early: Vec<(u8, OperandSlot, Tok, EvId)>,
    fired: u64,
}

impl EtFrame {
    /// Re-arms the frame in place, preserving the station vector's
    /// length and the `early` buffer's capacity (the prototype used
    /// `EtFrame::default()` here; with geometry-sized `Vec` stations
    /// the replacement would both shrink the array and reallocate
    /// every flush).
    fn reset(&mut self, active: bool, gen: Gen) {
        self.active = active;
        self.gen = gen;
        self.stations.fill(None);
        self.ready = 0;
        self.early.clear();
        self.fired = 0;
    }
}

#[derive(Debug)]
struct InFlight {
    done: u64,
    frame: FrameId,
    gen: Gen,
    slot: usize,
}

/// One execution tile.
pub struct ExecTile {
    /// Grid row (0..geometry rows).
    pub row: u8,
    /// Grid column (0..geometry cols).
    pub col: u8,
    geom: CoreGeometry,
    frames: Vec<EtFrame>,
    order: Vec<FrameId>,
    inflight: Vec<InFlight>,
    local_q: Vec<(u64, FrameId, Gen, u8, OperandSlot, Tok, EvId)>,
    fu_busy_until: u64,
    outbox: OpnOutbox,
    /// Sticky issue-wakeup flag: set whenever a station or operand
    /// arrival may have created an issueable instruction; cleared only
    /// when a full select scan proves nothing can issue (and nothing
    /// was held back by a busy unpipelined unit). While false, the
    /// select stage is provably a no-op, so the clock-gating predicate
    /// can let the tile sleep.
    maybe_ready: bool,
    /// Bit `fi` set iff `frames[fi].ready != 0` — the dirty-frame
    /// work list for the select stage, maintained wherever a `ready`
    /// bit is set or cleared and audited against the frames. A frame
    /// with no ready station contributes nothing to select (its mask
    /// walk is empty and it cannot set the unpipelined-deferral
    /// flag), so skipping it is invisible; `cfg.work_lists` only
    /// selects which iteration the tick uses.
    ready_frames: FrameMask,
    /// Frames examined by the select walk (not in [`CoreStats`];
    /// host-side observability for the non-vacuousness tests).
    pub(crate) select_visits: u64,
}

fn slot_ix(slot: OperandSlot) -> usize {
    match slot {
        OperandSlot::Left => 0,
        OperandSlot::Right => 1,
        OperandSlot::Predicate => 2,
    }
}

impl ExecTile {
    /// A fresh ET at (row, col).
    pub fn new(row: u8, col: u8, geom: CoreGeometry) -> ExecTile {
        ExecTile {
            row,
            col,
            geom,
            frames: (0..geom.frames)
                .map(|_| EtFrame { stations: vec![None; geom.rs_per_frame], ..EtFrame::default() })
                .collect(),
            order: Vec::with_capacity(geom.frames),
            inflight: Vec::with_capacity(geom.rs_per_frame),
            local_q: Vec::with_capacity(geom.rs_per_frame),
            fu_busy_until: 0,
            outbox: OpnOutbox::with_capacity(16),
            maybe_ready: false,
            ready_frames: 0,
            select_visits: 0,
        }
    }

    /// True when nothing is pending.
    pub fn idle(&self) -> bool {
        self.inflight.is_empty() && self.local_q.is_empty() && self.outbox.is_empty()
    }

    /// True while a tick can make progress without a new message:
    /// an instruction may be selectable, an execution is in flight, a
    /// bypass value or outbox message is queued.
    fn busy(&self) -> bool {
        self.maybe_ready || !self.idle()
    }

    /// Clock-gating predicate: internal work pending, or a message
    /// bound for this tile on the GCN, its GDN row, or the OPN.
    pub fn active(&self, nets: &Nets) -> bool {
        self.busy()
            || nets.gcn.has_pending_at(self.geom.gcn_pos(TileId::Et(self.row, self.col)))
            || nets.gdn_rows[self.row as usize + 1]
                .has_pending_at(row_pos_of_col(self.col as usize))
            || nets.opn_delivered_at(TileId::Et(self.row, self.col))
    }

    /// The earliest cycle a tick can make progress without a new
    /// message, for the epoch-skipping scheduler: now while an
    /// instruction may be selectable or the outbox holds operands,
    /// else the earliest in-flight completion or queued bypass
    /// delivery. A tile with only waiting stations returns `None` —
    /// the operand that fills them arrives by message, which the
    /// activity scan folds from the OPN and chains.
    pub(crate) fn next_wake(&self, now: u64) -> Option<u64> {
        if self.maybe_ready || !self.outbox.is_empty() {
            return Some(now);
        }
        let mut wake: Option<u64> = None;
        for f in &self.inflight {
            wake = Some(wake.map_or(f.done, |w: u64| w.min(f.done)));
        }
        for &(t, ..) in &self.local_q {
            wake = Some(wake.map_or(t, |w: u64| w.min(t)));
        }
        wake.map(|w| w.max(now))
    }

    /// Queued work for the hang diagnoser (`None` when idle and no
    /// station waits on a missing operand).
    pub fn diag(&self) -> Option<String> {
        let waiting: usize = self
            .frames
            .iter()
            .filter(|f| f.active)
            .flat_map(|f| f.stations.iter().flatten())
            .filter(|s| s.state == SState::Waiting)
            .count();
        if self.idle() && waiting == 0 {
            return None;
        }
        let mut parts = Vec::new();
        if waiting > 0 {
            parts.push(format!("{waiting} station(s) awaiting operands"));
        }
        if !self.inflight.is_empty() {
            parts.push(format!("{} execution(s) in flight", self.inflight.len()));
        }
        if !self.local_q.is_empty() {
            parts.push(format!("{} bypass value(s) queued", self.local_q.len()));
        }
        if !self.outbox.is_empty() {
            parts.push(format!("outbox {}", self.outbox.len()));
        }
        Some(parts.join(", "))
    }

    /// ET-side protocol invariants (see [`crate::invariants`]).
    pub(crate) fn audit(&self, gt_gens: &[Gen], gt_free: &[bool]) -> Result<(), String> {
        let at = format!("ET({},{})", self.row, self.col);
        let mut seen: FrameMask = 0;
        for &f in &self.order {
            let bit = (1 as FrameMask) << f.0;
            if seen & bit != 0 {
                return Err(format!("{at}: frame {} twice in activation order", f.0));
            }
            seen |= bit;
        }
        for (fi, f) in self.frames.iter().enumerate() {
            let listed = self.ready_frames & (1 << fi) != 0;
            if (f.ready != 0) != listed {
                return Err(format!(
                    "{at}: frame {fi} ready mask {:#04x} but work-list bit {listed}",
                    f.ready
                ));
            }
            let in_order = seen & (1 << fi) != 0;
            if f.active != in_order {
                return Err(format!(
                    "{at}: frame {fi} active={} but {} the activation order",
                    f.active,
                    if in_order { "in" } else { "not in" }
                ));
            }
            if !f.active {
                continue;
            }
            if f.gen > gt_gens[fi] {
                return Err(format!(
                    "{at}: frame {fi} active at gen {} but the GT is at gen {}",
                    f.gen, gt_gens[fi]
                ));
            }
            if f.gen == gt_gens[fi] && gt_free[fi] {
                return Err(format!(
                    "{at}: frame {fi} active at the GT's current gen {} but the GT slot is free",
                    f.gen
                ));
            }
        }
        Ok(())
    }

    fn tile_id(&self) -> TileId {
        TileId::Et(self.row, self.col)
    }

    fn exec_latency(&self, cfg: &CoreConfig, op: Opcode) -> (u64, bool) {
        // (latency, pipelined)
        match op {
            Opcode::Div | Opcode::Divu | Opcode::Mod => (cfg.div_lat, false),
            Opcode::Fdiv | Opcode::Fsqrt => (cfg.fdiv_lat, false),
            Opcode::Mul => (cfg.mul_lat, true),
            o if o.is_fp() => (cfg.fp_lat, true),
            _ => (cfg.int_lat, true),
        }
    }

    fn ensure_frame(&mut self, frame: FrameId, gen: Gen) -> bool {
        let f = &mut self.frames[frame.0 as usize];
        if f.active && f.gen == gen {
            return true;
        }
        if f.gen > gen {
            return false;
        }
        f.reset(true, gen);
        self.ready_frames &= !((1 as FrameMask) << frame.0);
        self.order.push(frame);
        true
    }

    fn frame_ok(&self, frame: FrameId, gen: Gen) -> bool {
        let f = &self.frames[frame.0 as usize];
        f.active && f.gen == gen
    }

    /// One cycle.
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        nets: &mut Nets,
        crit: &mut CritPath,
        stats: &mut CoreStats,
        tracer: &mut Tracer,
    ) {
        let tile = self.tile_id();
        // GCN commit/flush.
        while let Some(msg) = nets.gcn.recv(now, self.geom.gcn_pos(tile)) {
            match msg {
                GcnMsg::Commit { frame, gen } => {
                    if self.frame_ok(frame, gen) {
                        tracer.record(now, || TraceKind::CommitWave { tile, frame });
                        let f = &mut self.frames[frame.0 as usize];
                        stats.insts_committed += f.fired;
                        // The commit command flushes remaining
                        // speculative in-flight state for the block
                        // (§4.4). Bumping the generation matches the
                        // GT's deallocation bump so straggler operands
                        // of this incarnation are recognized as stale.
                        f.active = false;
                        f.gen += 1;
                        f.stations.fill(None);
                        f.ready = 0;
                        f.early.clear();
                        self.ready_frames &= !((1 as FrameMask) << frame.0);
                        self.order.retain(|&x| x != frame);
                    }
                }
                GcnMsg::Flush { mask, gens } => {
                    tracer.record(now, || TraceKind::FlushWave { tile, mask });
                    for (fi, &new_gen) in gens.iter().enumerate().take(self.frames.len()) {
                        if mask & ((1 as FrameMask) << fi) == 0 {
                            continue;
                        }
                        let f = &mut self.frames[fi];
                        if f.gen < new_gen {
                            f.reset(false, new_gen);
                            self.ready_frames &= !((1 as FrameMask) << fi);
                            self.order.retain(|&x| x.0 as usize != fi);
                        }
                    }
                }
            }
        }

        // Instruction dispatch from this row's IT.
        let row_chain = self.row as usize + 1;
        let pos = row_pos_of_col(self.col as usize);
        while let Some(msg) = nets.gdn_rows[row_chain].recv(now, pos) {
            if let RowMsg::Inst { frame, gen, idx, inst, ev } = msg {
                if !self.ensure_frame(frame, gen) {
                    continue;
                }
                let dev = crit.event(now, ev, Cat::IFetch, now.saturating_sub(crit.time_of(ev)));
                let slot = self.geom.inst_slot(idx);
                let f = &mut self.frames[frame.0 as usize];
                debug_assert!(f.stations[slot].is_none(), "reservation station collision");
                let mut st =
                    Station { inst, idx, ops: [None; 3], state: SState::Waiting, disp_ev: dev };
                // Apply any operands that arrived early.
                let early = std::mem::take(&mut f.early);
                for (eidx, eslot, tok, eev) in early {
                    if eidx == idx {
                        st.ops[slot_ix(eslot)] = Some((tok, eev));
                    } else {
                        f.early.push((eidx, eslot, tok, eev));
                    }
                }
                check_dead(&mut st);
                if st.state == SState::Waiting && is_ready(&st) {
                    f.ready |= 1 << slot;
                    self.ready_frames |= 1 << frame.0;
                }
                f.stations[slot] = Some(st);
                self.maybe_ready = true;
            }
        }

        // OPN operand arrivals, one batched drain per cycle. Operands
        // may beat this ET's dispatch beats, so arrival activates the
        // frame and buffers early.
        opn_recv_batch(nets, now, self.tile_id(), tracer, |m| {
            let (hops, queued) = (m.hops, m.queued);
            if let OpnPayload::Operand { frame, gen, idx, slot, tok, ev } = m.payload {
                if !self.ensure_frame(frame, gen) {
                    return;
                }
                let e_hop =
                    crit.event(now - u64::from(queued), ev, Cat::OpnHop, u64::from(hops) + 1);
                let e_arr = crit.event(now, e_hop, Cat::OpnContention, u64::from(queued));
                self.deliver_operand(frame, idx, slot, tok, e_arr);
            }
        });

        // Completion of in-flight executions (before local bypass
        // delivery so a result can reach a same-ET consumer in time
        // for back-to-back issue, §4.2). finish() never touches
        // `inflight`, so finishing inline while scanning is safe.
        let mut j = 0;
        while j < self.inflight.len() {
            if self.inflight[j].done <= now {
                let fin = self.inflight.swap_remove(j);
                self.finish(now, fin, crit, stats);
            } else {
                j += 1;
            }
        }

        // Local bypass deliveries.
        let mut i = 0;
        while i < self.local_q.len() {
            if self.local_q[i].0 <= now {
                let (_, frame, gen, idx, slot, tok, ev) = self.local_q.swap_remove(i);
                if self.frame_ok(frame, gen) {
                    self.deliver_operand(frame, idx, slot, tok, ev);
                }
            } else {
                i += 1;
            }
        }

        // Select and issue one ready instruction (oldest frame first).
        self.select_and_issue(now, cfg, crit, stats);

        self.outbox.flush(nets, now, self.tile_id(), tracer);
    }

    fn deliver_operand(&mut self, frame: FrameId, idx: u8, slot: OperandSlot, tok: Tok, ev: EvId) {
        self.maybe_ready = true;
        let sslot = self.geom.inst_slot(idx);
        let f = &mut self.frames[frame.0 as usize];
        match &mut f.stations[sslot] {
            Some(st) if st.idx == idx => {
                let cell = &mut st.ops[slot_ix(slot)];
                assert!(
                    cell.is_none(),
                    "double operand delivery to N[{idx}] {slot} at ET({},{})",
                    self.row,
                    self.col
                );
                *cell = Some((tok, ev));
                check_dead(st);
                if st.state == SState::Waiting && is_ready(st) {
                    f.ready |= 1 << sslot;
                    self.ready_frames |= 1 << frame.0;
                }
            }
            _ => f.early.push((idx, slot, tok, ev)),
        }
    }

    fn select_and_issue(
        &mut self,
        now: u64,
        cfg: &CoreConfig,
        crit: &mut CritPath,
        stats: &mut CoreStats,
    ) {
        if !self.maybe_ready {
            // No station became selectable since the last empty scan;
            // the walk below would find nothing.
            return;
        }
        // A ready station skipped only because the unpipelined unit is
        // busy must keep the wakeup flag set: it becomes selectable
        // again by the passage of time alone, with no new message.
        let mut deferred = false;
        for oi in 0..self.order.len() {
            let frame = self.order[oi];
            let fi = frame.0 as usize;
            if cfg.work_lists && self.ready_frames & (1 << fi) == 0 {
                // A frame with an empty ready mask yields an empty
                // walk below and cannot set `deferred`; skipping it
                // is invisible.
                continue;
            }
            self.select_visits += 1;
            if !self.frames[fi].active {
                continue;
            }
            // The ready mask tracks exactly the stations the old full
            // scan would have accepted (waiting, operands complete),
            // in the same slot order.
            let mut mask = self.frames[fi].ready;
            while mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let st =
                    self.frames[fi].stations[slot].as_ref().expect("ready bit implies station");
                debug_assert!(st.state == SState::Waiting && is_ready(st), "stale ready bit");
                let (lat, pipelined) = self.exec_latency(cfg, st.inst.opcode);
                if !pipelined && self.fu_busy_until > now {
                    deferred = true;
                    continue;
                }
                // Issue.
                let gen = self.frames[fi].gen;
                self.frames[fi].ready &= !(1 << slot);
                if self.frames[fi].ready == 0 {
                    self.ready_frames &= !(1 << fi);
                }
                self.frames[fi].fired += 1;
                let st = self.frames[fi].stations[slot].as_mut().expect("checked above");
                st.state = SState::Issued;
                let mut parent = st.disp_ev;
                for op in st.ops.iter().flatten() {
                    parent = crit.later(parent, op.1);
                }
                let iev =
                    crit.event(now, parent, Cat::Other, now.saturating_sub(crit.time_of(parent)));
                st.disp_ev = iev; // reuse the field to carry the issue event
                if !pipelined {
                    self.fu_busy_until = now + lat;
                }
                stats.insts_executed += 1;
                if st.inst.opcode == Opcode::Mov {
                    stats.fanout_movs += 1;
                }
                self.inflight.push(InFlight { done: now + lat, frame, gen, slot });
                return;
            }
        }
        // Full scan, nothing issued: the flag stays set only if a
        // ready station was held back by a busy unpipelined unit.
        self.maybe_ready = deferred;
    }

    fn finish(&mut self, now: u64, fin: InFlight, crit: &mut CritPath, stats: &mut CoreStats) {
        if !self.frame_ok(fin.frame, fin.gen) {
            return;
        }
        let fi = fin.frame.0 as usize;
        let gen = fin.gen;
        let st = {
            let f = &mut self.frames[fi];
            let Some(st) = f.stations[fin.slot].as_mut() else {
                return;
            };
            st.state = SState::Done;
            st.clone()
        };
        let inst = st.inst;
        let iev = st.disp_ev;
        let cat = if inst.opcode == Opcode::Mov { Cat::Fanout } else { Cat::Other };
        let dev = crit.event(now, iev, cat, now.saturating_sub(crit.time_of(iev)).max(1));

        let l = st.ops[0].map(|(t, _)| t);
        let r = st.ops[1].map(|(t, _)| t);
        let nullified = l == Some(Tok::Null) || r == Some(Tok::Null) || pred_is_null(&st);

        if inst.opcode.is_store() {
            let (ea, val, dst) = if nullified {
                (0, 0, TileId::Dt(self.geom.dt_of_lsid(inst.lsid)))
            } else {
                let a = l.and_then(Tok::value).expect("store address");
                let v = r.and_then(Tok::value).expect("store data");
                let ea = a.wrapping_add(inst.imm as i64 as u64);
                (ea, v, self.geom.tile_of_addr(ea))
            };
            self.outbox.push(
                dst,
                OpnPayload::StoreReq {
                    frame: fin.frame,
                    gen,
                    lsid: inst.lsid,
                    ea,
                    val,
                    bytes: inst.opcode.access_bytes(),
                    nullified,
                    ev: dev,
                },
            );
        } else if inst.opcode.is_load() {
            if nullified {
                // A nullified load delivers null straight to its
                // consumers; it is not a block output.
                for t in inst.live_targets() {
                    self.route_value(now, fin.frame, gen, t, Tok::Null, dev);
                }
            } else {
                let a = l.and_then(Tok::value).expect("load address");
                let ea = a.wrapping_add(inst.imm as i64 as u64);
                stats.loads += 1;
                self.outbox.push(
                    self.geom.tile_of_addr(ea),
                    OpnPayload::LoadReq {
                        frame: fin.frame,
                        gen,
                        lsid: inst.lsid,
                        opcode: inst.opcode,
                        ea,
                        target: inst.targets[0],
                        ev: dev,
                    },
                );
            }
        } else if let Some(kind) = inst.opcode.branch_kind() {
            let reg_target = if inst.opcode.format() == trips_isa::Format::G {
                Some(l.and_then(Tok::value).unwrap_or(0))
            } else {
                None
            };
            self.outbox.push(
                TileId::Gt,
                OpnPayload::Branch {
                    frame: fin.frame,
                    gen,
                    kind,
                    exit: inst.exit,
                    offset: inst.imm,
                    reg_target,
                    ev: dev,
                },
            );
        } else {
            // A value producer.
            let tok = if inst.opcode == Opcode::Null || nullified {
                Tok::Null
            } else {
                let lv = l.and_then(Tok::value).unwrap_or(0);
                let rv = r.and_then(Tok::value).unwrap_or(0);
                Tok::Val(eval(inst.opcode, lv, rv, inst.imm))
            };
            for t in inst.live_targets() {
                self.route_value(now, fin.frame, gen, t, tok, dev);
            }
        }
    }

    fn route_value(
        &mut self,
        now: u64,
        frame: FrameId,
        gen: Gen,
        target: Target,
        tok: Tok,
        ev: EvId,
    ) {
        match target {
            Target::None => {}
            Target::Inst { idx, slot } => {
                let dest = self.geom.tile_of_inst(idx);
                if dest == self.tile_id() {
                    // Local bypass: delivered this cycle so the
                    // consumer can issue back-to-back next cycle.
                    self.local_q.push((now, frame, gen, idx, slot, tok, ev));
                } else {
                    self.outbox.push(dest, OpnPayload::Operand { frame, gen, idx, slot, tok, ev });
                }
            }
            Target::Write { slot } => {
                self.outbox.push(
                    self.geom.tile_of_header_slot(slot),
                    OpnPayload::WriteVal { frame, gen, wslot: slot, tok, ev },
                );
            }
        }
    }
}

fn pred_is_null(st: &Station) -> bool {
    st.inst.pred != Pred::None && st.ops[2].map(|(t, _)| t) == Some(Tok::Null)
}

fn is_ready(st: &Station) -> bool {
    let needs = st.inst.opcode.needs();
    let data_ok = match needs {
        OperandNeeds::None => true,
        OperandNeeds::Left => st.ops[0].is_some(),
        OperandNeeds::LeftRight => st.ops[0].is_some() && st.ops[1].is_some(),
    };
    let pred_ok = st.inst.pred == Pred::None || st.ops[2].is_some();
    data_ok && pred_ok
}

/// Marks a station dead when its predicate has arrived and mismatches.
fn check_dead(st: &mut Station) {
    if st.inst.pred == Pred::None || st.state != SState::Waiting {
        return;
    }
    if let Some((Tok::Val(v), _)) = st.ops[2] {
        if !st.inst.pred.matches(v) {
            st.state = SState::Dead;
        }
    }
}
