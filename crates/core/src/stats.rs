//! Run statistics.

use crate::critpath::CritBreakdown;
use trips_micronet::{MeshStats, PacketStats};

/// Lifecycle timestamps of one committed block, for the Figure 5b
/// commit-pipeline timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTiming {
    /// Block header address.
    pub pc: u64,
    /// Cycle the GT began fetching the block.
    pub fetch: u64,
    /// Cycle the GT issued the dispatch command.
    pub dispatch: u64,
    /// Cycle the GT learned all outputs arrived (block complete).
    pub complete: u64,
    /// Cycle the commit command went out on the GCN.
    pub commit: u64,
    /// Cycle both commit acknowledgements arrived (deallocation).
    pub ack: u64,
}

/// A fixed-bucket latency histogram: buckets 0..31 hold exact cycle
/// counts, the last bucket holds everything at 31 cycles and above.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = (v as usize).min(self.buckets.len() - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of bucket `b` (bucket 31 aggregates `>= 31`).
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets[b]
    }

    /// The smallest value `p` such that at least `fraction` of the
    /// samples are `<= p` (bucket-granular; saturates at 31).
    pub fn percentile(&self, fraction: f64) -> u64 {
        let need = (self.count as f64 * fraction).ceil() as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= need {
                return b as u64;
            }
        }
        (self.buckets.len() - 1) as u64
    }
}

/// Counters for the distributed protocols themselves — the timing
/// behaviour the paper's §4 and §5 argue about, as opposed to the
/// workload-facing counters in [`CoreStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Cycles from fetch start to the GDN dispatch command, per block.
    pub fetch_to_dispatch: Histogram,
    /// Fetches started (the overlap-ratio denominator).
    pub fetches_started: u64,
    /// Fetches started while some older block was committing — the
    /// Figure 5b claim that fetch of block N+7 overlaps commit of
    /// block N.
    pub overlapped_fetches: u64,
    /// Cycles an operand outbox's head-of-line message waited on a
    /// full OPN inject port (contention the critical path feels).
    pub opn_inject_stalls: u64,
    /// Per-network high-water marks of in-flight OPN messages.
    pub opn_inflight_highwater: Vec<usize>,
    /// Flushes forced by a fault plan's flush storm (always 0 without
    /// one, which keeps fuzz-disabled `CoreStats` values bit-identical
    /// to builds without the fault hooks).
    pub forced_flushes: u64,
}

impl ProtocolStats {
    /// Fraction of fetches that overlapped an in-progress commit.
    pub fn commit_fetch_overlap(&self) -> f64 {
        if self.fetches_started == 0 {
            0.0
        } else {
            self.overlapped_fetches as f64 / self.fetches_started as f64
        }
    }
}

/// Counters for the NUCA secondary memory system, populated only when
/// the run used [`MemBackend::Nuca`](crate::MemBackend) — the perfect
/// L2 holds no state worth counting, and leaving the field `None`
/// keeps [`CoreStats`] bit-identical to the pre-backend model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemSysStats {
    /// D-side line fills requested (DT MSHR misses).
    pub dside_fills: u64,
    /// I-side line fills requested (I-cache refill chunks).
    pub iside_fills: u64,
    /// Commit-time store-line writebacks issued (ESN-style acks gate
    /// commit completion).
    pub store_writebacks: u64,
    /// Cycles a client's head-of-queue request was refused by its OCN
    /// inject port.
    pub inject_stalls: u64,
    /// Cycles a client's head-of-queue request was held back because
    /// its home bank was granted to another core this cycle (always 0
    /// for a solo core — only a chip's cross-core arbiter stalls).
    pub bank_conflict_stalls: u64,
    /// Fill round-trip latency in **8-cycle buckets** (request handed
    /// to the adapter until the fill event is queued): bucket `b`
    /// covers `8b..8b+8` cycles, bucket 31 everything ≥ 248.
    pub fill_latency: Histogram,
    /// OCN aggregate statistics (hops, queueing, inject stalls).
    pub ocn: PacketStats,
    /// DRAM accesses behind the banks.
    pub dram_accesses: u64,
    /// Per-bank hit counts.
    pub bank_hits: Vec<u64>,
    /// Per-bank miss counts.
    pub bank_misses: Vec<u64>,
    /// Per-bank high-water marks of concurrently-serviced requests.
    pub bank_peak_occupancy: Vec<u64>,
    /// High-water mark of outstanding requests across all clients.
    pub peak_outstanding: u64,
    /// Directory invalidations received by this core's DTs (coherent
    /// shared-memory chips only; always 0 otherwise).
    pub invals_received: u64,
}

impl MemSysStats {
    /// Aggregate bank hit rate (1.0 when no bank was touched).
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.bank_hits.iter().sum();
        let misses: u64 = self.bank_misses.iter().sum();
        if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// Statistics accumulated over one run of the core.
///
/// Derives `PartialEq` so the gating-equivalence and determinism
/// suites can require *whole-struct* bit-identical results between
/// configurations that must not disagree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Blocks committed.
    pub blocks_committed: u64,
    /// Useful instructions executed by committed blocks (the IPC
    /// numerator; register reads/writes and nullified outputs count,
    /// as in the hardware's accounting of fired instructions).
    pub insts_committed: u64,
    /// Instructions executed including squashed (speculative) work.
    pub insts_executed: u64,
    /// Blocks fetched (including squashed).
    pub blocks_fetched: u64,
    /// Pipeline flushes from branch mispredictions.
    pub branch_flushes: u64,
    /// Pipeline flushes from memory-ordering violations.
    pub violation_flushes: u64,
    /// Pipeline flushes forced by a remote core's store overlapping a
    /// speculatively performed load (coherent shared-memory chips
    /// only; always 0 otherwise).
    pub coherence_flushes: u64,
    /// Next-block predictions made.
    pub predictions: u64,
    /// Next-block mispredictions.
    pub mispredictions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores performed.
    pub stores: u64,
    /// L1D hits.
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// I-cache block misses (refills).
    pub icache_refills: u64,
    /// Loads stalled by the dependence predictor.
    pub deppred_stalls: u64,
    /// Store-to-load forwards in the LSQ.
    pub lsq_forwards: u64,
    /// Peak LSQ occupancy observed across DTs (for the §5.2 claim that
    /// maximum occupancy of the replicated LSQs is ~25%).
    pub lsq_peak_occupancy: usize,
    /// Fanout `mov` instructions executed.
    pub fanout_movs: u64,
    /// Operand-network statistics (summed across parallel networks).
    pub opn: MeshStats,
    /// Protocol-level timing counters (fetch cadence, commit overlap,
    /// OPN contention).
    pub protocol: ProtocolStats,
    /// Secondary-memory-system counters (present only under the NUCA
    /// backend; `None` under the default perfect L2).
    pub mem: Option<MemSysStats>,
    /// Critical-path breakdown (present when recording was enabled).
    pub critpath: Option<CritBreakdown>,
    /// Lifecycle timestamps of the first committed blocks (up to 64),
    /// recording the Figure 5b fetch/complete/commit/ack overlap.
    pub timeline: Vec<BlockTiming>,
}

impl CoreStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_committed as f64 / self.cycles as f64
        }
    }

    /// Next-block prediction accuracy.
    pub fn prediction_accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 5, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(31), 1, "overflow clamps to the last bucket");
        assert!((h.mean() - 47.0 / 5.0).abs() < 1e-12);
        assert_eq!(h.percentile(0.5), 1);
        assert_eq!(h.percentile(1.0), 31);
    }

    #[test]
    fn overlap_ratio() {
        let p = ProtocolStats { fetches_started: 8, overlapped_fetches: 6, ..Default::default() };
        assert!((p.commit_fetch_overlap() - 0.75).abs() < 1e-12);
        assert_eq!(ProtocolStats::default().commit_fetch_overlap(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = CoreStats {
            cycles: 100,
            insts_committed: 250,
            predictions: 10,
            mispredictions: 1,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.prediction_accuracy() - 0.9).abs() < 1e-12);
        let empty = CoreStats::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.prediction_accuracy(), 1.0);
    }
}
