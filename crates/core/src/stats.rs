//! Run statistics.

use crate::critpath::CritBreakdown;
use trips_micronet::MeshStats;

/// Lifecycle timestamps of one committed block, for the Figure 5b
/// commit-pipeline timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTiming {
    /// Block header address.
    pub pc: u64,
    /// Cycle the GT began fetching the block.
    pub fetch: u64,
    /// Cycle the GT issued the dispatch command.
    pub dispatch: u64,
    /// Cycle the GT learned all outputs arrived (block complete).
    pub complete: u64,
    /// Cycle the commit command went out on the GCN.
    pub commit: u64,
    /// Cycle both commit acknowledgements arrived (deallocation).
    pub ack: u64,
}

/// Statistics accumulated over one run of the core.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Blocks committed.
    pub blocks_committed: u64,
    /// Useful instructions executed by committed blocks (the IPC
    /// numerator; register reads/writes and nullified outputs count,
    /// as in the hardware's accounting of fired instructions).
    pub insts_committed: u64,
    /// Instructions executed including squashed (speculative) work.
    pub insts_executed: u64,
    /// Blocks fetched (including squashed).
    pub blocks_fetched: u64,
    /// Pipeline flushes from branch mispredictions.
    pub branch_flushes: u64,
    /// Pipeline flushes from memory-ordering violations.
    pub violation_flushes: u64,
    /// Next-block predictions made.
    pub predictions: u64,
    /// Next-block mispredictions.
    pub mispredictions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores performed.
    pub stores: u64,
    /// L1D hits.
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// I-cache block misses (refills).
    pub icache_refills: u64,
    /// Loads stalled by the dependence predictor.
    pub deppred_stalls: u64,
    /// Store-to-load forwards in the LSQ.
    pub lsq_forwards: u64,
    /// Peak LSQ occupancy observed across DTs (for the §5.2 claim that
    /// maximum occupancy of the replicated LSQs is ~25%).
    pub lsq_peak_occupancy: usize,
    /// Fanout `mov` instructions executed.
    pub fanout_movs: u64,
    /// Operand-network statistics (summed across parallel networks).
    pub opn: MeshStats,
    /// Critical-path breakdown (present when recording was enabled).
    pub critpath: Option<CritBreakdown>,
    /// Lifecycle timestamps of the first committed blocks (up to 64),
    /// recording the Figure 5b fetch/complete/commit/ack overlap.
    pub timeline: Vec<BlockTiming>,
}

impl CoreStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_committed as f64 / self.cycles as f64
        }
    }

    /// Next-block prediction accuracy.
    pub fn prediction_accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = CoreStats {
            cycles: 100,
            insts_committed: 250,
            predictions: 10,
            mispredictions: 1,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.prediction_accuracy() - 0.9).abs() < 1e-12);
        let empty = CoreStats::default();
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.prediction_accuracy(), 1.0);
    }
}
