//! Seeded fault plans: core-level timing-fault configuration.
//!
//! A [`FaultPlan`] hangs off [`CoreConfig`](crate::CoreConfig) and
//! describes a *timing-only* perturbation of the whole core: stall
//! bursts on OPN router ports, randomized OPN arbitration, extra delay
//! on every control chain, and forced extra flush storms from the GT.
//! Values are never touched and per-link FIFO order is never broken —
//! the perturbations stay inside the envelope the paper's §4 protocols
//! claim to tolerate, so a run under any plan must still match the
//! `blockinterp` architectural oracle. `protofuzz` sweeps seeds
//! through [`FaultPlan::random`] and shrinks failures through
//! [`FaultPlan::shrink_candidates`].
//!
//! Everything derives from one `seed`; each network gets a private
//! PRNG via [`FaultPlan::subseed`] so dropping one fault from a plan
//! does not shift the random streams of the others (crucial for
//! shrinking to stay meaningful).

use trips_harness::Rng;
use trips_micronet::{ChainFaultConfig, Coord, FaultPort, MeshFaultConfig, PortStall};

use crate::config::CoreGeometry;

/// Sub-seed tag: the OPN mesh for network `n` uses `TAG_MESH + n`.
pub(crate) const TAG_MESH: u64 = 0x10;
/// Sub-seed tag: GDN column chain.
pub(crate) const TAG_GDN_COL: u64 = 0x20;
/// Sub-seed tag: GDN row `r` uses `TAG_GDN_ROW + r`.
pub(crate) const TAG_GDN_ROW: u64 = 0x21;
/// Sub-seed tag: GSN along the RT row.
pub(crate) const TAG_GSN_RT: u64 = 0x30;
/// Sub-seed tag: GSN along the DT column.
pub(crate) const TAG_GSN_DT: u64 = 0x31;
/// Sub-seed tag: GSN along the IT column.
pub(crate) const TAG_GSN_IT: u64 = 0x32;
/// Sub-seed tag: GCN commit/flush wave.
pub(crate) const TAG_GCN: u64 = 0x40;
/// Sub-seed tag: GRN refill chain.
pub(crate) const TAG_GRN: u64 = 0x41;
/// Sub-seed tag: DSN store-arrival broadcast chain.
pub(crate) const TAG_DSN: u64 = 0x42;
/// Sub-seed tag: the GT's flush-storm PRNG.
pub(crate) const TAG_STORM: u64 = 0x50;
/// Sub-seed tag: the secondary system's OCN (NUCA backend only).
pub(crate) const TAG_OCN: u64 = 0x60;

/// A probability `num / den` (`den` must be nonzero; `num == 0` means
/// never, `num >= den` means always).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    /// Numerator.
    pub num: u64,
    /// Denominator (nonzero).
    pub den: u64,
}

/// A stall fault on one OPN router output port (see
/// [`PortStall`] for burst semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Which parallel operand network (0 in the prototype).
    pub net: usize,
    /// Router row in the 5×5 OPN.
    pub row: u8,
    /// Router column.
    pub col: u8,
    /// The output port to stall.
    pub port: FaultPort,
    /// Per-cycle burst-start probability (`num >= den` = permanently
    /// dead, for deliberate-deadlock tests).
    pub chance: Ratio,
    /// Maximum burst length in cycles.
    pub max_burst: u64,
}

/// A stall fault on one OCN router output port (the secondary
/// system's 10×4 packet mesh; only installed under the NUCA backend —
/// the perfect L2 has no network to stall).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OcnFault {
    /// Router row in the 10×4 OCN.
    pub row: u8,
    /// Router column.
    pub col: u8,
    /// The output port to stall.
    pub port: FaultPort,
    /// Per-cycle burst-start probability.
    pub chance: Ratio,
    /// Maximum burst length in cycles.
    pub max_burst: u64,
}

/// Extra-delay fault applied to every control chain (GDN, GSN, GCN,
/// GRN, DSN). Per-inbox send order is preserved — see
/// [`ChainFaultConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainDelay {
    /// Per-message extra-delay probability (`num == 0` installs the
    /// hook but keeps it inert).
    pub chance: Ratio,
    /// Maximum extra delay in cycles.
    pub max_extra: u64,
}

/// A complete, seeded, timing-only fault plan for one core.
///
/// `Default` is the empty plan: hooks installed nowhere, behaviour
/// bit-identical to `CoreConfig { faults: None, .. }`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Master seed; every per-network PRNG derives from it.
    pub seed: u64,
    /// Re-randomize OPN round-robin arbitration pointers every cycle.
    pub rotate_arbitration: bool,
    /// Stall bursts on OPN router output ports.
    pub links: Vec<LinkFault>,
    /// Stall bursts on the secondary system's OCN router output ports
    /// (ignored — no hook exists — under the perfect-L2 backend).
    pub ocn_links: Vec<OcnFault>,
    /// Extra delay on every control chain.
    pub chain_delay: Option<ChainDelay>,
    /// Per-resolved-branch probability of forcing a flush storm: the
    /// GT treats a *correctly* predicted branch as if it had
    /// mispredicted, flushing all younger speculative frames and
    /// refetching from the (correct) target. Architecturally invisible
    /// — only speculative work is destroyed and refetched.
    pub flush_storm: Option<Ratio>,
}

impl FaultPlan {
    /// A random plan for `seed`, drawn from the distribution the
    /// `protofuzz` sweep uses: up to four stalled OPN ports, even odds
    /// of arbitration rotation and of chain delays, one-in-three odds
    /// of a flush storm. Never includes a permanent stall, so a random
    /// plan can slow a run down but not wedge it.
    pub fn random(seed: u64) -> FaultPlan {
        let mut rng = Rng::new(seed);
        let links = (0..rng.range_usize(0, 5))
            .map(|_| LinkFault {
                net: 0,
                row: rng.range_u8(0, 5),
                col: rng.range_u8(0, 5),
                port: FaultPort::ALL[rng.range_usize(0, 5)],
                chance: Ratio { num: 1, den: [2, 4, 8, 16][rng.range_usize(0, 4)] },
                max_burst: 1 + rng.range_u64(0, 8),
            })
            .collect();
        let rotate_arbitration = rng.chance(1, 2);
        let chain_delay = rng.chance(1, 2).then(|| ChainDelay {
            chance: Ratio { num: 1, den: [2, 4, 8][rng.range_usize(0, 3)] },
            max_extra: 1 + rng.range_u64(0, 6),
        });
        let flush_storm =
            rng.chance(1, 3).then(|| Ratio { num: 1, den: [16, 32, 64][rng.range_usize(0, 3)] });
        // Drawn last so adding the OCN dimension left every earlier
        // seed's OPN/chain/storm draws unchanged.
        let ocn_links = (0..rng.range_usize(0, 3))
            .map(|_| OcnFault {
                row: rng.range_u8(0, 10),
                col: rng.range_u8(0, 4),
                port: FaultPort::ALL[rng.range_usize(0, 5)],
                chance: Ratio { num: 1, den: [2, 4, 8, 16][rng.range_usize(0, 4)] },
                max_burst: 1 + rng.range_u64(0, 8),
            })
            .collect();
        FaultPlan { seed, rotate_arbitration, links, ocn_links, chain_delay, flush_storm }
    }

    /// [`FaultPlan::random`] retargeted at an arbitrary tile-array
    /// geometry: the seed draws exactly the plan [`FaultPlan::random`]
    /// would, then each OPN router coordinate is folded into `geom`'s
    /// mesh. On the prototype (a 5×5 mesh, matching the draw range)
    /// the fold is the identity, so historical seeds keep producing
    /// byte-identical plans.
    pub fn random_for(seed: u64, geom: CoreGeometry) -> FaultPlan {
        let mut plan = FaultPlan::random(seed);
        for l in &mut plan.links {
            l.row %= geom.mesh_rows() as u8;
            l.col %= geom.mesh_cols() as u8;
        }
        plan
    }

    /// A plan that installs a fault state on *every* hook but with all
    /// probabilities zero: the code paths run, the behaviour must be
    /// bit-identical to no plan at all. The zero-overhead regression
    /// suite runs this.
    pub fn inert_probe(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rotate_arbitration: false,
            links: vec![LinkFault {
                net: 0,
                row: 0,
                col: 0,
                port: FaultPort::Eject,
                chance: Ratio { num: 0, den: 1 },
                max_burst: 1,
            }],
            ocn_links: vec![OcnFault {
                row: 0,
                col: 0,
                port: FaultPort::Eject,
                chance: Ratio { num: 0, den: 1 },
                max_burst: 1,
            }],
            chain_delay: Some(ChainDelay { chance: Ratio { num: 0, den: 1 }, max_extra: 1 }),
            flush_storm: Some(Ratio { num: 0, den: 1 }),
        }
    }

    /// True when the plan perturbs nothing (no hooks would fire; note
    /// an [`FaultPlan::inert_probe`] is *not* `is_empty` — it installs
    /// hooks that then never fire).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.ocn_links.is_empty()
            && !self.rotate_arbitration
            && self.chain_delay.is_none()
            && self.flush_storm.is_none()
    }

    /// The derived seed for sub-PRNG `tag`. Mixing the tag through a
    /// SplitMix64 round keeps each network's stream independent of
    /// which other faults the plan carries.
    pub(crate) fn subseed(&self, tag: u64) -> u64 {
        Rng::new(self.seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
    }

    /// The mesh fault configuration for OPN network `net`, if any.
    pub(crate) fn mesh_fault(&self, net: usize) -> Option<MeshFaultConfig> {
        let stalls: Vec<PortStall> = self
            .links
            .iter()
            .filter(|l| l.net == net)
            .map(|l| PortStall {
                router: Coord { row: l.row, col: l.col },
                port: l.port,
                num: l.chance.num,
                den: l.chance.den,
                max_burst: l.max_burst,
            })
            .collect();
        if stalls.is_empty() && !self.rotate_arbitration {
            return None;
        }
        Some(MeshFaultConfig {
            seed: self.subseed(TAG_MESH + net as u64),
            rotate_arbitration: self.rotate_arbitration,
            stalls,
        })
    }

    /// The mesh fault configuration for the secondary system's OCN, if
    /// any (installed by the NUCA backend only; arbitration rotation
    /// extends to the OCN's round-robin pointers too).
    pub(crate) fn ocn_fault(&self) -> Option<MeshFaultConfig> {
        let stalls: Vec<PortStall> = self
            .ocn_links
            .iter()
            .map(|l| PortStall {
                router: Coord { row: l.row, col: l.col },
                port: l.port,
                num: l.chance.num,
                den: l.chance.den,
                max_burst: l.max_burst,
            })
            .collect();
        if stalls.is_empty() && !self.rotate_arbitration {
            return None;
        }
        Some(MeshFaultConfig {
            seed: self.subseed(TAG_OCN),
            rotate_arbitration: self.rotate_arbitration,
            stalls,
        })
    }

    /// The chain fault configuration for sub-seed `tag`, if the plan
    /// delays chains.
    pub(crate) fn chain_fault(&self, tag: u64) -> Option<ChainFaultConfig> {
        let d = self.chain_delay?;
        Some(ChainFaultConfig {
            seed: self.subseed(tag),
            num: d.chance.num,
            den: d.chance.den,
            max_extra: d.max_extra,
        })
    }

    /// The GT's flush-storm state, if the plan storms.
    pub(crate) fn storm_state(&self) -> Option<StormState> {
        let r = self.flush_storm?;
        Some(StormState { rng: Rng::new(self.subseed(TAG_STORM)), num: r.num, den: r.den })
    }

    /// One-step-simpler variants of this plan, for the shrinker: drop
    /// each faulted link, weaken each link (halved burst, halved
    /// probability), disable rotation, drop or halve the chain delay,
    /// drop the flush storm. A greedy loop over these candidates
    /// converges because every candidate strictly reduces a finite
    /// measure (fault count + Σ log den + Σ burst/extra).
    pub fn shrink_candidates(&self) -> Vec<FaultPlan> {
        let mut out = Vec::new();
        for i in 0..self.links.len() {
            let mut p = self.clone();
            p.links.remove(i);
            out.push(p);
        }
        for i in 0..self.links.len() {
            let l = self.links[i];
            if l.max_burst > 1 {
                let mut p = self.clone();
                p.links[i].max_burst = l.max_burst / 2;
                out.push(p);
            }
            if l.chance.num < l.chance.den && l.chance.den <= 512 {
                let mut p = self.clone();
                p.links[i].chance.den = l.chance.den * 2;
                out.push(p);
            }
        }
        for i in 0..self.ocn_links.len() {
            let mut p = self.clone();
            p.ocn_links.remove(i);
            out.push(p);
        }
        for i in 0..self.ocn_links.len() {
            let l = self.ocn_links[i];
            if l.max_burst > 1 {
                let mut p = self.clone();
                p.ocn_links[i].max_burst = l.max_burst / 2;
                out.push(p);
            }
            if l.chance.num < l.chance.den && l.chance.den <= 512 {
                let mut p = self.clone();
                p.ocn_links[i].chance.den = l.chance.den * 2;
                out.push(p);
            }
        }
        if self.rotate_arbitration {
            let mut p = self.clone();
            p.rotate_arbitration = false;
            out.push(p);
        }
        if let Some(d) = self.chain_delay {
            let mut p = self.clone();
            p.chain_delay = None;
            out.push(p);
            if d.max_extra > 1 {
                let mut p = self.clone();
                p.chain_delay = Some(ChainDelay { max_extra: d.max_extra / 2, ..d });
                out.push(p);
            }
            if d.chance.den <= 512 {
                let mut p = self.clone();
                p.chain_delay = Some(ChainDelay {
                    chance: Ratio { num: d.chance.num, den: d.chance.den * 2 },
                    ..d
                });
                out.push(p);
            }
        }
        if self.flush_storm.is_some() {
            let mut p = self.clone();
            p.flush_storm = None;
            out.push(p);
        }
        out
    }

    /// Renders the plan as a Rust expression that reconstructs it —
    /// the `protofuzz` reproducer snippet pastes this into a `#[test]`.
    pub fn to_rust_literal(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "FaultPlan {{");
        let _ = writeln!(s, "    seed: {:#x},", self.seed);
        let _ = writeln!(s, "    rotate_arbitration: {},", self.rotate_arbitration);
        if self.links.is_empty() {
            let _ = writeln!(s, "    links: vec![],");
        } else {
            let _ = writeln!(s, "    links: vec![");
            for l in &self.links {
                let _ = writeln!(
                    s,
                    "        LinkFault {{ net: {}, row: {}, col: {}, port: FaultPort::{:?}, \
                     chance: Ratio {{ num: {}, den: {} }}, max_burst: {} }},",
                    l.net, l.row, l.col, l.port, l.chance.num, l.chance.den, l.max_burst
                );
            }
            let _ = writeln!(s, "    ],");
        }
        if self.ocn_links.is_empty() {
            let _ = writeln!(s, "    ocn_links: vec![],");
        } else {
            let _ = writeln!(s, "    ocn_links: vec![");
            for l in &self.ocn_links {
                let _ = writeln!(
                    s,
                    "        OcnFault {{ row: {}, col: {}, port: FaultPort::{:?}, \
                     chance: Ratio {{ num: {}, den: {} }}, max_burst: {} }},",
                    l.row, l.col, l.port, l.chance.num, l.chance.den, l.max_burst
                );
            }
            let _ = writeln!(s, "    ],");
        }
        match self.chain_delay {
            None => {
                let _ = writeln!(s, "    chain_delay: None,");
            }
            Some(d) => {
                let _ = writeln!(
                    s,
                    "    chain_delay: Some(ChainDelay {{ chance: Ratio {{ num: {}, den: {} }}, \
                     max_extra: {} }}),",
                    d.chance.num, d.chance.den, d.max_extra
                );
            }
        }
        match self.flush_storm {
            None => {
                let _ = writeln!(s, "    flush_storm: None,");
            }
            Some(r) => {
                let _ = writeln!(
                    s,
                    "    flush_storm: Some(Ratio {{ num: {}, den: {} }}),",
                    r.num, r.den
                );
            }
        }
        let _ = write!(s, "}}");
        s
    }
}

/// The GT's flush-storm coin: per resolved (correctly predicted,
/// non-halt) branch, flush anyway with probability `num/den`.
#[derive(Debug, Clone)]
pub(crate) struct StormState {
    rng: Rng,
    num: u64,
    den: u64,
}

impl StormState {
    /// Rolls the storm coin.
    pub(crate) fn roll(&mut self) -> bool {
        self.num > 0 && self.rng.chance(self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_varied() {
        let a = FaultPlan::random(1234);
        let b = FaultPlan::random(1234);
        assert_eq!(a, b, "same seed, same plan");
        let distinct = (0..64).map(FaultPlan::random).filter(|p| !p.is_empty()).count();
        assert!(distinct > 32, "most random plans perturb something");
    }

    #[test]
    fn subseeds_are_independent_of_other_faults() {
        let full = FaultPlan::random(7);
        let mut stripped = full.clone();
        stripped.links.clear();
        stripped.rotate_arbitration = false;
        assert_eq!(
            full.chain_fault(TAG_GCN),
            stripped.chain_fault(TAG_GCN),
            "dropping mesh faults must not shift the chain PRNG streams"
        );
    }

    #[test]
    fn shrinking_strictly_reduces_and_terminates() {
        let mut plan = FaultPlan::random(99);
        // Greedily take the first candidate every time; must terminate.
        let mut steps = 0;
        while let Some(next) = plan.shrink_candidates().into_iter().next() {
            assert_ne!(next, plan);
            plan = next;
            steps += 1;
            assert!(steps < 10_000, "shrinker failed to converge");
        }
        assert!(plan.is_empty() || plan.shrink_candidates().is_empty());
    }

    #[test]
    fn literal_roundtrip_mentions_every_fault() {
        let plan = FaultPlan {
            seed: 0xabc,
            rotate_arbitration: true,
            links: vec![LinkFault {
                net: 0,
                row: 2,
                col: 3,
                port: FaultPort::North,
                chance: Ratio { num: 1, den: 8 },
                max_burst: 4,
            }],
            ocn_links: vec![OcnFault {
                row: 9,
                col: 1,
                port: FaultPort::South,
                chance: Ratio { num: 1, den: 16 },
                max_burst: 7,
            }],
            chain_delay: Some(ChainDelay { chance: Ratio { num: 1, den: 4 }, max_extra: 3 }),
            flush_storm: Some(Ratio { num: 1, den: 32 }),
        };
        let lit = plan.to_rust_literal();
        for needle in [
            "0xabc",
            "FaultPort::North",
            "max_burst: 4",
            "max_extra: 3",
            "den: 32",
            "OcnFault { row: 9",
            "FaultPort::South",
        ] {
            assert!(lit.contains(needle), "literal missing {needle}:\n{lit}");
        }
    }

    #[test]
    fn inert_probe_installs_hooks_everywhere() {
        let p = FaultPlan::inert_probe(5);
        assert!(p.mesh_fault(0).is_some());
        assert!(p.ocn_fault().is_some());
        assert!(p.chain_fault(TAG_GCN).is_some());
        assert!(p.storm_state().is_some());
        assert!(!p.storm_state().expect("present").roll(), "num == 0 never fires");
    }
}
