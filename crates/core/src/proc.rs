//! The assembled processor: one GT, a column of ITs, a row of RTs, an
//! ET array, and a column of DTs (sized by [`CoreGeometry`]; the
//! prototype is 1 + 5 + 4 + 16 + 4), plus the seven micronetworks
//! connecting them.

use std::fmt;

use trips_isa::mem::SparseMem;
use trips_isa::{ArchReg, ProgramImage};
use trips_micronet::MeshStats;

use crate::config::{CoreConfig, CoreGeometry, TileMask};
use crate::critpath::CritPath;
use crate::diag::{HangReport, TileDiag};
use crate::dt::DataTile;
use crate::et::ExecTile;
use crate::gt::GlobalTile;
use crate::invariants::{self, InvariantViolation};
use crate::it::InstTile;
use crate::memsys::{MemClient, MemSys};
use crate::msg::TileId;
use crate::nets::{dt_chain_pos, it_col_pos, row_pos_of_col, rt_chain_pos, Nets};
use crate::profile::{TickPhase, TickProfile};
use crate::rt::RegTile;
use crate::stats::CoreStats;
use crate::trace::Tracer;

/// Errors from running the processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run did not halt within the cycle budget.
    Timeout {
        /// Cycles simulated.
        cycles: u64,
        /// Blocks committed before the timeout.
        blocks_committed: u64,
        /// Where the work got stuck: every in-flight frame, every tile
        /// holding queued work, and every micronetwork with an
        /// undelivered message (boxed — it is much larger than the
        /// happy path needs).
        diagnosis: Box<HangReport>,
    },
    /// A protocol invariant failed (only possible when
    /// [`CoreConfig::check_invariants`] is on — see
    /// [`crate::invariants`] for the catalogue).
    Invariant {
        /// Cycle at which the check failed.
        cycle: u64,
        /// The violated property.
        violation: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles, blocks_committed, diagnosis } => {
                writeln!(
                    f,
                    "timeout after {cycles} cycles ({blocks_committed} blocks committed); \
                     {}",
                    diagnosis.summary()
                )?;
                write!(f, "{diagnosis}")
            }
            SimError::Invariant { cycle, violation } => {
                write!(f, "protocol invariant violated at cycle {cycle}: {violation}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Host-side clock-gating counters.
///
/// Deliberately kept *outside* [`CoreStats`]: gating is a host
/// optimization, and the gated/ungated equivalence suite compares
/// whole `CoreStats` values bit-for-bit — these counters necessarily
/// differ between the two modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatingStats {
    /// Tile ticks executed (the tile's `active()` held, or gating off).
    pub ticks_run: u64,
    /// Tile ticks skipped because the tile was provably inactive —
    /// including every tile of every epoch-skipped cycle, so
    /// [`gated_fraction`](GatingStats::gated_fraction) keeps meaning
    /// "fraction of tile-cycles the host did not simulate".
    pub ticks_gated: u64,
    /// Whole cycles fast-forwarded by the epoch-skipping scheduler.
    pub cycles_skipped: u64,
    /// Fast-forward jumps taken (each covers ≥ 1 skipped cycle).
    pub epochs_skipped: u64,
}

impl GatingStats {
    /// Fraction of tile ticks skipped, in `[0, 1]`.
    pub fn gated_fraction(&self) -> f64 {
        let total = self.ticks_run + self.ticks_gated;
        if total == 0 {
            0.0
        } else {
            self.ticks_gated as f64 / total as f64
        }
    }
}

/// Activity-mask bit of the GT (the per-geometry first bits of the
/// other tile classes come from [`CoreGeometry::it_bit`] and friends;
/// the mask itself is a [`TileMask`] so the 8×8 "fat" geometry's 86
/// tile ticks fit).
const GT_BIT: u32 = 0;

/// A TRIPS processor core.
pub struct Processor {
    pub(crate) cfg: CoreConfig,
    pub(crate) gt: GlobalTile,
    pub(crate) its: Vec<InstTile>,
    pub(crate) rts: Vec<RegTile>,
    pub(crate) ets: Vec<ExecTile>,
    pub(crate) dts: Vec<DataTile>,
    pub(crate) nets: Nets,
    pub(crate) memsys: MemSys,
    pub(crate) mem: SparseMem,
    pub(crate) crit: CritPath,
    pub(crate) stats: CoreStats,
    pub(crate) tracer: Tracer,
    pub(crate) gating: GatingStats,
    pub(crate) profile: TickProfile,
    pub(crate) cycle: u64,
    /// Set when the previous scanned cycle found every tile active:
    /// the next cycle ticks all tiles without scanning. Ticking a tile
    /// whose predicate is false is a provable no-op (the predicates
    /// are conservative), so this trades a handful of no-op ticks for
    /// half the scan overhead on fully-busy stretches.
    scan_holiday: bool,
}

impl Processor {
    /// A processor with the given configuration (state is built when
    /// [`Processor::run`] loads a program).
    pub fn new(cfg: CoreConfig) -> Processor {
        let mut p = Processor {
            gt: GlobalTile::new(&cfg, 0),
            its: Vec::new(),
            rts: Vec::new(),
            ets: Vec::new(),
            dts: Vec::new(),
            nets: Nets::new(&cfg),
            memsys: MemSys::new(&cfg),
            mem: SparseMem::new(),
            crit: CritPath::new(cfg.critpath),
            stats: CoreStats::default(),
            tracer: Tracer::disabled(),
            gating: GatingStats::default(),
            profile: TickProfile::disabled(),
            cycle: 0,
            scan_holiday: false,
            cfg,
        };
        p.reset(0);
        p
    }

    fn reset(&mut self, entry: u64) {
        let g = self.cfg.geometry;
        self.gt = GlobalTile::new(&self.cfg, entry);
        self.its = (0..g.num_its()).map(InstTile::new).collect();
        self.rts = (0..g.num_rts()).map(|b| RegTile::new(b as u8, g)).collect();
        self.ets = (0..g.et_rows)
            .flat_map(|r| (0..g.et_cols).map(move |c| ExecTile::new(r as u8, c as u8, g)))
            .collect();
        self.dts = (0..g.num_dts()).map(|d| DataTile::new(d as u8, &self.cfg)).collect();
        self.nets = Nets::new(&self.cfg);
        self.memsys = MemSys::new(&self.cfg);
        self.crit = CritPath::new(self.cfg.critpath);
        self.stats = CoreStats::default();
        self.tracer.clear();
        self.gating = GatingStats::default();
        self.profile.clear();
        self.cycle = 0;
    }

    /// Turns on the flight recorder with a ring buffer of `capacity`
    /// events (the recorder survives [`Processor::run`]'s reset, but
    /// each run starts from an empty buffer).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled_with(capacity, self.cfg.geometry);
    }

    /// Turns the flight recorder off and discards its buffer.
    pub fn disable_tracing(&mut self) {
        self.tracer = Tracer::disabled();
    }

    /// The flight recorder (empty unless tracing is enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Turns on the per-phase tick profiler (see [`TickProfile`]).
    /// Like the tracer, the enabled state survives [`Processor::run`]'s
    /// reset but each run starts its counts from zero. Profiling only
    /// reads the host clock — profiled runs are architecturally
    /// identical to unprofiled ones.
    pub fn enable_profiling(&mut self) {
        self.profile = TickProfile::enabled();
    }

    /// The per-phase tick profile (all zeros unless
    /// [enabled](Processor::enable_profiling)).
    pub fn profile(&self) -> &TickProfile {
        &self.profile
    }

    /// Total frames examined by the work-list-driven tile walks (RT
    /// and DT frame advancement, ET select) since construction.
    /// Host-side observability only — not part of [`CoreStats`], so
    /// it never participates in bit-identity comparisons. The
    /// gating-equivalence tests use it to prove the dirty-frame lists
    /// are non-vacuous: with `work_lists` on, real workloads must
    /// examine strictly fewer frames than the full scans do.
    pub fn work_list_visits(&self) -> u64 {
        self.rts.iter().map(|t| t.advance_visits).sum::<u64>()
            + self.dts.iter().map(|t| t.advance_visits).sum::<u64>()
            + self.ets.iter().map(|t| t.select_visits).sum::<u64>()
    }

    /// The simulated memory (for inspecting results after a run).
    pub fn memory(&self) -> &SparseMem {
        &self.mem
    }

    /// An architectural register value (thread 0).
    pub fn arch_reg(&self, reg: ArchReg) -> u64 {
        let g = self.cfg.geometry;
        self.rts[g.reg_bank(reg.num())].arch_reg(g.reg_index(reg.num()) as u8)
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Clock-gating counters for the current/most recent run.
    pub fn gating_stats(&self) -> GatingStats {
        self.gating
    }

    /// Runs `image` from its entry block until a `halt` branch commits
    /// or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] if the program does not halt in budget.
    pub fn run(&mut self, image: &ProgramImage, max_cycles: u64) -> Result<CoreStats, SimError> {
        self.start(image);
        while !self.gt.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.cycle,
                    blocks_committed: self.stats.blocks_committed,
                    diagnosis: Box::new(self.diagnose()),
                });
            }
            self.tick();
            if self.cfg.check_invariants {
                self.check_invariants()
                    .map_err(|v| SimError::Invariant { cycle: v.cycle, violation: v.detail })?;
            }
        }
        // Snapshot the stats *before* any drain ticks so the reported
        // counters describe the program run, not the post-halt drain.
        let out = self.finish_stats();
        if self.cfg.check_invariants {
            // Leak check: after halt, every in-flight operand, wave,
            // and queue must drain. An operand created but never
            // consumed, or a flush that left residue behind, keeps a
            // tile or net active forever and fails here.
            if !self.drain(10_000) {
                return Err(SimError::Invariant {
                    cycle: self.cycle,
                    violation: format!(
                        "core failed to quiesce within 10000 cycles after halt \
                         (leaked operand or undrained queue): {}",
                        self.diagnose().summary()
                    ),
                });
            }
            self.check_invariants()
                .map_err(|v| SimError::Invariant { cycle: v.cycle, violation: v.detail })?;
        }
        Ok(out)
    }

    /// Resets the core and loads `image`: the first half of
    /// [`Processor::run`], split out so a [`Chip`](crate::chip::Chip)
    /// can prepare every core and then drive the lockstep tick loop
    /// itself.
    pub(crate) fn start(&mut self, image: &ProgramImage) {
        self.reset(image.entry);
        self.mem = SparseMem::from_image(image);
    }

    /// Whether the GT has committed a `halt` branch.
    pub(crate) fn halted(&self) -> bool {
        self.gt.halted
    }

    /// The invalidation half of the chip's value-plane store
    /// propagation, run on every core *except* the writer (whose
    /// replica simply takes the write): each DT homing a line the
    /// store touched drops/poisons its copy and raises a violation
    /// flush for any speculatively performed overlapping load.
    pub(crate) fn shared_invalidate(&mut self, now: u64, ea: u64, bytes: usize) {
        let (s0, s1) = (ea, ea + bytes as u64);
        let nd = self.cfg.geometry.num_dts() as u64;
        let mut seen: u64 = 0; // bitmask of DTs already visited
        for line in (s0 >> 6)..=((s1 - 1) >> 6) {
            let d = (line % nd) as usize;
            if seen & (1 << d) != 0 {
                continue;
            }
            seen |= 1 << d;
            self.dts[d].shared_invalidate(
                now,
                ea,
                bytes,
                &self.cfg,
                &mut self.nets,
                &mut self.stats,
                &mut self.tracer,
            );
        }
    }

    /// Finalizes and snapshots the run statistics — the second half of
    /// [`Processor::run`], called at halt time (before any post-halt
    /// drain ticks, so the counters describe the program run).
    pub(crate) fn finish_stats(&mut self) -> CoreStats {
        self.stats.cycles = self.cycle;
        self.stats.opn = self.nets.opn.iter().fold(MeshStats::default(), |mut acc, m| {
            acc.merge(&m.stats);
            acc
        });
        // Inject stalls are counted once, at the outbox (the outbox
        // only calls `inject` after `can_inject`, so the meshes' own
        // `inject_fails` would double-count any raw-inject user if it
        // were added here — see `Nets::inject_stalls`).
        self.stats.protocol.opn_inject_stalls = self.nets.inject_stalls();
        self.stats.protocol.opn_inflight_highwater = self.nets.opn_highwater.clone();
        self.stats.mem = self.memsys.stats_snapshot();
        if self.crit.enabled() {
            self.stats.critpath = Some(self.crit.walk(self.gt.final_ev));
        }
        self.stats.clone()
    }

    /// Ticks the core until it [quiesces](Self::quiesced) or `budget`
    /// cycles elapse; returns whether it quiesced. Used by the
    /// invariant harness to prove post-halt drainage, and available to
    /// tests that stop the clock by hand.
    pub fn drain(&mut self, budget: u64) -> bool {
        // Cycle-denominated (not iteration-denominated) so an
        // epoch-skipping drain covers the same simulated span as a
        // cycle-by-cycle one.
        let end = self.cycle.saturating_add(budget);
        while self.cycle < end {
            if self.quiesced() {
                return true;
            }
            self.tick();
        }
        self.quiesced()
    }

    /// Runs the per-tick protocol invariant suite against the current
    /// state (see [`crate::invariants`]).
    ///
    /// # Errors
    ///
    /// The first violated invariant, with the current cycle.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        invariants::check(self)
    }

    /// Snapshots which frames, tiles, and micronetworks still hold
    /// work — the hang diagnoser behind [`SimError::Timeout`], also
    /// callable directly when stepping the clock by hand.
    pub fn diagnose(&self) -> HangReport {
        let mut tiles = Vec::new();
        for (i, it) in self.its.iter().enumerate() {
            if let Some(detail) = it.diag() {
                tiles.push(TileDiag { tile: format!("IT{i}"), detail });
            }
        }
        for (b, rt) in self.rts.iter().enumerate() {
            if let Some(detail) = rt.diag() {
                tiles.push(TileDiag { tile: format!("RT{b}"), detail });
            }
        }
        for (i, et) in self.ets.iter().enumerate() {
            if let Some(detail) = et.diag() {
                let cols = self.cfg.geometry.et_cols;
                tiles.push(TileDiag { tile: format!("ET({},{})", i / cols, i % cols), detail });
            }
        }
        for (d, dt) in self.dts.iter().enumerate() {
            if let Some(detail) = dt.diag() {
                tiles.push(TileDiag { tile: format!("DT{d}"), detail });
            }
        }
        if let Some(detail) = self.memsys.diag() {
            tiles.push(TileDiag { tile: "MemSys".into(), detail });
        }
        HangReport {
            cycle: self.cycle,
            frames_in_flight: self.gt.in_flight(),
            frames: self.gt.frame_diags(),
            tiles,
            nets: self.nets.diags(self.cycle),
        }
    }

    /// True when every tile and network has drained (no queued work
    /// besides architectural state) — useful for tests that stop the
    /// clock manually.
    ///
    /// Defined as the complement of the clock-gating `active()`
    /// predicates, so "quiesced" and "every tile gated off" can never
    /// disagree: a core is quiesced exactly when a gated scheduler
    /// would skip every tile and network.
    pub fn quiesced(&self) -> bool {
        self.nets.idle()
            && !self.gt.active(&self.nets)
            && self.its.iter().all(|t| !t.active(&self.nets))
            && self.rts.iter().all(|t| !t.active(&self.nets))
            && self.ets.iter().all(|t| !t.active(&self.nets))
            && self.dts.iter().all(|t| !t.active(&self.nets))
            && self.memsys.quiet()
    }

    /// A diagnostic snapshot for debugging hangs.
    pub fn dump(&self) -> String {
        format!("cycle {}\n{}", self.cycle, self.gt.dump())
    }

    /// Renders the tail of the recorded critical path (debugging).
    pub fn debug_critpath(&self, n: usize) -> String {
        self.crit.debug_chain(self.gt.final_ev, n)
    }

    /// One fused pass over every wake source, producing the cycle's
    /// tile activity mask and the earliest *future* cycle anything in
    /// the core can act (`None`: only a new external event could).
    ///
    /// A tile's mask bit is set when it can make progress at `now`:
    /// its own [`next_wake`] says so, a message bound for it has
    /// *matured* (`arrival ≤ now`), an OPN delivery awaits it, or a
    /// memory-system completion is queued for it. Messages still in
    /// flight fold their arrival times into the returned wake instead
    /// of waking the tile early — a tick whose only stimulus is an
    /// immature message is a provable no-op, so this gates *tighter*
    /// than the `active()` predicates while remaining bit-identical.
    /// The OPN meshes and the memory system fold in as `now` whenever
    /// they must tick this cycle (packets in routers, injections or
    /// completions pending), or as their earliest bank timer.
    ///
    /// Evaluating the whole mask at cycle start (rather than each
    /// predicate just before its tile) can only gate *more*: every
    /// micronet has at least one cycle of latency, so anything an
    /// earlier tile sends this cycle matures next cycle at the
    /// soonest, and the skipped tick would have been one of those
    /// no-op ticks.
    ///
    /// [`next_wake`]: GlobalTile::next_wake
    pub(crate) fn scan_activity(&self, now: u64) -> (TileMask, Option<u64>) {
        let g = self.cfg.geometry;
        let mut mask: TileMask = 0;
        // Earliest future wake seen so far (`u64::MAX` = none). Only
        // consumed when the final mask is 0 — i.e. when no source
        // anywhere was mature — so per-tile short-circuiting below
        // (which stops folding a tile's remaining sources once one is
        // mature) can never lose a wake the scheduler would use.
        let mut wake = u64::MAX;
        // True iff the source is mature (can act at `now`); folds a
        // future time into the wake accumulator otherwise.
        let chk = |wake: &mut u64, src: Option<u64>| -> bool {
            match src {
                Some(t) if t <= now => true,
                Some(t) => {
                    *wake = (*wake).min(t);
                    false
                }
                None => false,
            }
        };

        let nets = &self.nets;
        // GT.
        if chk(&mut wake, self.gt.next_wake(now, self.cfg.max_frames))
            || chk(&mut wake, nets.gsn_rt.next_arrival(0))
            || chk(&mut wake, nets.gsn_dt.next_arrival(0))
            || chk(&mut wake, nets.gsn_it.next_arrival(0))
            || nets.opn_delivered_at(TileId::Gt)
        {
            mask |= (1 as TileMask) << GT_BIT;
        }
        // ITs.
        for (i, it) in self.its.iter().enumerate() {
            let pos = it_col_pos(i);
            if chk(&mut wake, it.next_wake(now))
                || chk(&mut wake, nets.gdn_col.next_arrival(pos))
                || chk(&mut wake, nets.grn.next_arrival(pos))
                || chk(&mut wake, nets.gsn_it.next_arrival(pos))
                || self.memsys.has_events(MemClient::It(i as u8))
            {
                mask |= (1 as TileMask) << (g.it_bit() + i as u32);
            }
        }
        // RTs.
        for (b, rt) in self.rts.iter().enumerate() {
            if chk(&mut wake, rt.next_wake(now))
                || chk(&mut wake, nets.gdn_rows[0].next_arrival(row_pos_of_col(b)))
                || chk(&mut wake, nets.gcn.next_arrival(g.gcn_pos(TileId::Rt(b as u8))))
                || chk(&mut wake, nets.gsn_rt.next_arrival(rt_chain_pos(b)))
                || nets.opn_delivered_at(TileId::Rt(b as u8))
            {
                mask |= (1 as TileMask) << (g.rt_bit() + b as u32);
            }
        }
        // ETs.
        for (k, et) in self.ets.iter().enumerate() {
            let (r, c) = (k / g.et_cols, k % g.et_cols);
            if chk(&mut wake, et.next_wake(now))
                || chk(&mut wake, nets.gcn.next_arrival(g.gcn_pos(TileId::Et(r as u8, c as u8))))
                || chk(&mut wake, nets.gdn_rows[r + 1].next_arrival(row_pos_of_col(c)))
                || nets.opn_delivered_at(TileId::Et(r as u8, c as u8))
            {
                mask |= (1 as TileMask) << (g.et_bit() + k as u32);
            }
        }
        // DTs.
        for (d, dt) in self.dts.iter().enumerate() {
            if chk(&mut wake, dt.next_wake(now))
                || chk(&mut wake, nets.gcn.next_arrival(g.gcn_pos(TileId::Dt(d as u8))))
                || chk(&mut wake, nets.gdn_rows[d + 1].next_arrival(1))
                || chk(&mut wake, nets.dsn.next_arrival(d))
                || chk(&mut wake, nets.gsn_dt.next_arrival(dt_chain_pos(d)))
                || nets.opn_delivered_at(TileId::Dt(d as u8))
                || self.memsys.has_events(MemClient::Dt(d as u8))
            {
                mask |= (1 as TileMask) << (g.dt_bit() + d as u32);
            }
        }
        // The OPN meshes tick every cycle they hold packets; the
        // memory system folds its injection/completion queues and bank
        // timers. These are bit-less sources: mature ⇒ wake = now.
        for m in &nets.opn {
            if let Some(t) = m.next_event(now) {
                wake = wake.min(t.max(now));
            }
        }
        if let Some(t) = self.memsys.next_event(now) {
            wake = wake.min(t.max(now));
        }
        (mask, if wake == u64::MAX { None } else { Some(wake) })
    }

    /// The earliest future cycle at which anything in this core can
    /// act, or `None` when it is fully quiescent (or can act *now*).
    /// The fold of every tile's `next_wake`, every micronet's next
    /// arrival, and the memory system's pending-event times.
    pub fn next_wake(&self) -> Option<u64> {
        let (mask, wake) = self.scan_activity(self.cycle);
        if mask != 0 {
            Some(self.cycle)
        } else {
            wake
        }
    }

    /// Books the gating accounting for fast-forwarding from the
    /// current cycle to `w` (exclusive): every tile of every skipped
    /// cycle counts as gated, keeping `gated_fraction` meaningful.
    pub(crate) fn skip_to(&mut self, w: u64) {
        debug_assert!(w > self.cycle);
        let skipped = w - self.cycle;
        self.gating.ticks_gated += self.cfg.geometry.tile_ticks() as u64 * skipped;
        self.gating.cycles_skipped += skipped;
        self.gating.epochs_skipped += 1;
        self.cycle = w;
    }

    /// Advances one cycle.
    ///
    /// With [`CoreConfig::gate_ticks`] set (the default) the cycle
    /// starts with one `scan_activity` pass and
    /// each tile whose mask bit is clear is skipped; the common
    /// fully-busy cycle reduces to a single mask comparison. With
    /// [`CoreConfig::skip_epochs`] also set, a cycle in which *no*
    /// tile can act and every wake source is in the future
    /// fast-forwards `cycle` straight to the earliest wake instead of
    /// grinding the intervening no-op cycles (the skipped cycles are
    /// provably inert: no tile can progress, the meshes are empty, and
    /// the memory system's earliest timer is the wake itself). Gated,
    /// epoch-skipped, and ungated runs are all bit-identical in
    /// architectural state and `CoreStats` (enforced by the
    /// `gating_equivalence` test suite).
    pub fn tick(&mut self) {
        let gate = self.cfg.gate_ticks;
        let full = self.cfg.geometry.full_mask();
        let mask = if !gate {
            full
        } else if self.scan_holiday {
            // The previous scan found every tile active; tick them all
            // again without paying for a scan. Any tile that went idle
            // in between ticks as a no-op — bit-identical by the same
            // argument that makes ungated runs identical to gated ones.
            self.scan_holiday = false;
            full
        } else {
            let tp = self.profile.begin();
            let mask = loop {
                let now = self.cycle;
                let (mask, wake) = self.scan_activity(now);
                if mask == 0 && self.cfg.skip_epochs {
                    if let Some(w) = wake {
                        if w > now {
                            self.skip_to(w);
                            // Re-scan at the landing cycle: a timer or
                            // arrival has just matured there.
                            continue;
                        }
                    }
                }
                break mask;
            };
            self.scan_holiday = mask == full;
            self.profile.end(TickPhase::Scan, tp);
            mask
        };
        self.tick_with_mask(mask);
    }

    /// Advances one cycle with a precomputed activity mask (the
    /// masked-tile phase, then the micronets and memory system). The
    /// [`Chip`](crate::chip::Chip) computes its cores' masks up front
    /// so it can coordinate epoch skips across the whole chip before
    /// committing any core to a tick.
    pub(crate) fn tick_with_mask(&mut self, mask: TileMask) {
        let now = self.cycle;
        if mask == self.cfg.geometry.full_mask() {
            self.tick_tiles_all(now);
        } else {
            self.tick_tiles_masked(now, mask);
        }
        let tp = self.profile.begin();
        self.nets.tick(now);
        self.profile.end(TickPhase::Nets, tp);
        // The secondary system runs after the tiles and nets: requests
        // issued this cycle inject now, and responses it delivers are
        // consumed by the tiles next cycle (see DESIGN.md §5d).
        let tp = self.profile.begin();
        self.memsys.tick(now, &mut self.tracer);
        self.profile.end(TickPhase::MemSys, tp);
        self.cycle += 1;
    }

    /// The fully-busy fast path: every tile ticks, no per-tile
    /// branching.
    fn tick_tiles_all(&mut self, now: u64) {
        self.gt.tick(
            now,
            &self.cfg,
            &mut self.nets,
            &mut self.crit,
            &mut self.stats,
            &self.mem,
            &mut self.tracer,
            &mut self.profile,
        );
        let tp = self.profile.begin();
        for i in 0..self.its.len() {
            self.its[i].tick(
                now,
                &self.cfg,
                &mut self.nets,
                &self.mem,
                &mut self.memsys,
                &mut self.tracer,
            );
        }
        self.profile.end(TickPhase::It, tp);
        let tp = self.profile.begin();
        for i in 0..self.rts.len() {
            self.rts[i].tick(
                now,
                &self.cfg,
                &mut self.nets,
                &mut self.crit,
                &mut self.stats,
                &mut self.tracer,
            );
        }
        self.profile.end(TickPhase::Rt, tp);
        let tp = self.profile.begin();
        for i in 0..self.ets.len() {
            self.ets[i].tick(
                now,
                &self.cfg,
                &mut self.nets,
                &mut self.crit,
                &mut self.stats,
                &mut self.tracer,
            );
        }
        self.profile.end(TickPhase::Et, tp);
        let tp = self.profile.begin();
        for i in 0..self.dts.len() {
            self.dts[i].tick(
                now,
                &self.cfg,
                &mut self.nets,
                &mut self.crit,
                &mut self.stats,
                &mut self.mem,
                &mut self.memsys,
                &mut self.tracer,
            );
        }
        self.profile.end(TickPhase::Dt, tp);
        self.gating.ticks_run += self.cfg.geometry.tile_ticks() as u64;
    }

    /// The gated path: tick exactly the tiles whose mask bit is set.
    fn tick_tiles_masked(&mut self, now: u64, mask: TileMask) {
        let g: CoreGeometry = self.cfg.geometry;
        if mask & ((1 as TileMask) << GT_BIT) != 0 {
            self.gt.tick(
                now,
                &self.cfg,
                &mut self.nets,
                &mut self.crit,
                &mut self.stats,
                &self.mem,
                &mut self.tracer,
                &mut self.profile,
            );
        }
        let tp = self.profile.begin();
        for i in 0..self.its.len() {
            if mask & ((1 as TileMask) << (g.it_bit() + i as u32)) != 0 {
                self.its[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &self.mem,
                    &mut self.memsys,
                    &mut self.tracer,
                );
            }
        }
        self.profile.end(TickPhase::It, tp);
        let tp = self.profile.begin();
        for i in 0..self.rts.len() {
            if mask & ((1 as TileMask) << (g.rt_bit() + i as u32)) != 0 {
                self.rts[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &mut self.crit,
                    &mut self.stats,
                    &mut self.tracer,
                );
            }
        }
        self.profile.end(TickPhase::Rt, tp);
        let tp = self.profile.begin();
        for i in 0..self.ets.len() {
            if mask & ((1 as TileMask) << (g.et_bit() + i as u32)) != 0 {
                self.ets[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &mut self.crit,
                    &mut self.stats,
                    &mut self.tracer,
                );
            }
        }
        self.profile.end(TickPhase::Et, tp);
        let tp = self.profile.begin();
        for i in 0..self.dts.len() {
            if mask & ((1 as TileMask) << (g.dt_bit() + i as u32)) != 0 {
                self.dts[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &mut self.crit,
                    &mut self.stats,
                    &mut self.mem,
                    &mut self.memsys,
                    &mut self.tracer,
                );
            }
        }
        self.profile.end(TickPhase::Dt, tp);
        let run = u64::from(mask.count_ones());
        self.gating.ticks_run += run;
        self.gating.ticks_gated += g.tile_ticks() as u64 - run;
    }
}
