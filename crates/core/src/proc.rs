//! The assembled processor: one GT, five ITs, four RTs, sixteen ETs,
//! four DTs, and the seven micronetworks connecting them.

use std::fmt;

use trips_isa::mem::SparseMem;
use trips_isa::{ArchReg, ProgramImage};
use trips_micronet::MeshStats;

use crate::config::{CoreConfig, ET_COLS, ET_ROWS, NUM_DTS, NUM_ITS, NUM_RTS};
use crate::critpath::CritPath;
use crate::diag::{HangReport, TileDiag};
use crate::dt::DataTile;
use crate::et::ExecTile;
use crate::gt::GlobalTile;
use crate::invariants::{self, InvariantViolation};
use crate::it::InstTile;
use crate::memsys::{MemClient, MemSys};
use crate::nets::Nets;
use crate::rt::RegTile;
use crate::stats::CoreStats;
use crate::trace::Tracer;

/// Errors from running the processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run did not halt within the cycle budget.
    Timeout {
        /// Cycles simulated.
        cycles: u64,
        /// Blocks committed before the timeout.
        blocks_committed: u64,
        /// Where the work got stuck: every in-flight frame, every tile
        /// holding queued work, and every micronetwork with an
        /// undelivered message (boxed — it is much larger than the
        /// happy path needs).
        diagnosis: Box<HangReport>,
    },
    /// A protocol invariant failed (only possible when
    /// [`CoreConfig::check_invariants`] is on — see
    /// [`crate::invariants`] for the catalogue).
    Invariant {
        /// Cycle at which the check failed.
        cycle: u64,
        /// The violated property.
        violation: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { cycles, blocks_committed, diagnosis } => {
                writeln!(
                    f,
                    "timeout after {cycles} cycles ({blocks_committed} blocks committed); \
                     {}",
                    diagnosis.summary()
                )?;
                write!(f, "{diagnosis}")
            }
            SimError::Invariant { cycle, violation } => {
                write!(f, "protocol invariant violated at cycle {cycle}: {violation}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Host-side clock-gating counters.
///
/// Deliberately kept *outside* [`CoreStats`]: gating is a host
/// optimization, and the gated/ungated equivalence suite compares
/// whole `CoreStats` values bit-for-bit — these counters necessarily
/// differ between the two modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatingStats {
    /// Tile ticks executed (the tile's `active()` held, or gating off).
    pub ticks_run: u64,
    /// Tile ticks skipped because the tile was provably inactive.
    pub ticks_gated: u64,
}

impl GatingStats {
    /// Fraction of tile ticks skipped, in `[0, 1]`.
    pub fn gated_fraction(&self) -> f64 {
        let total = self.ticks_run + self.ticks_gated;
        if total == 0 {
            0.0
        } else {
            self.ticks_gated as f64 / total as f64
        }
    }
}

/// A TRIPS processor core.
pub struct Processor {
    pub(crate) cfg: CoreConfig,
    pub(crate) gt: GlobalTile,
    pub(crate) its: Vec<InstTile>,
    pub(crate) rts: Vec<RegTile>,
    pub(crate) ets: Vec<ExecTile>,
    pub(crate) dts: Vec<DataTile>,
    pub(crate) nets: Nets,
    pub(crate) memsys: MemSys,
    pub(crate) mem: SparseMem,
    pub(crate) crit: CritPath,
    pub(crate) stats: CoreStats,
    pub(crate) tracer: Tracer,
    pub(crate) gating: GatingStats,
    pub(crate) cycle: u64,
}

impl Processor {
    /// A processor with the given configuration (state is built when
    /// [`Processor::run`] loads a program).
    pub fn new(cfg: CoreConfig) -> Processor {
        let mut p = Processor {
            gt: GlobalTile::new(&cfg, 0),
            its: Vec::new(),
            rts: Vec::new(),
            ets: Vec::new(),
            dts: Vec::new(),
            nets: Nets::new(&cfg),
            memsys: MemSys::new(&cfg),
            mem: SparseMem::new(),
            crit: CritPath::new(cfg.critpath),
            stats: CoreStats::default(),
            tracer: Tracer::disabled(),
            gating: GatingStats::default(),
            cycle: 0,
            cfg,
        };
        p.reset(0);
        p
    }

    fn reset(&mut self, entry: u64) {
        self.gt = GlobalTile::new(&self.cfg, entry);
        self.its = (0..NUM_ITS).map(InstTile::new).collect();
        self.rts = (0..NUM_RTS).map(|b| RegTile::new(b as u8)).collect();
        self.ets = (0..ET_ROWS)
            .flat_map(|r| (0..ET_COLS).map(move |c| ExecTile::new(r as u8, c as u8)))
            .collect();
        self.dts = (0..NUM_DTS).map(|d| DataTile::new(d as u8, &self.cfg)).collect();
        self.nets = Nets::new(&self.cfg);
        self.memsys = MemSys::new(&self.cfg);
        self.crit = CritPath::new(self.cfg.critpath);
        self.stats = CoreStats::default();
        self.tracer.clear();
        self.gating = GatingStats::default();
        self.cycle = 0;
    }

    /// Turns on the flight recorder with a ring buffer of `capacity`
    /// events (the recorder survives [`Processor::run`]'s reset, but
    /// each run starts from an empty buffer).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled(capacity);
    }

    /// Turns the flight recorder off and discards its buffer.
    pub fn disable_tracing(&mut self) {
        self.tracer = Tracer::disabled();
    }

    /// The flight recorder (empty unless tracing is enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The simulated memory (for inspecting results after a run).
    pub fn memory(&self) -> &SparseMem {
        &self.mem
    }

    /// An architectural register value (thread 0).
    pub fn arch_reg(&self, reg: ArchReg) -> u64 {
        self.rts[reg.bank() as usize].arch_reg(reg.index_in_bank())
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Clock-gating counters for the current/most recent run.
    pub fn gating_stats(&self) -> GatingStats {
        self.gating
    }

    /// Runs `image` from its entry block until a `halt` branch commits
    /// or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] if the program does not halt in budget.
    pub fn run(&mut self, image: &ProgramImage, max_cycles: u64) -> Result<CoreStats, SimError> {
        self.start(image);
        while !self.gt.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::Timeout {
                    cycles: self.cycle,
                    blocks_committed: self.stats.blocks_committed,
                    diagnosis: Box::new(self.diagnose()),
                });
            }
            self.tick();
            if self.cfg.check_invariants {
                self.check_invariants()
                    .map_err(|v| SimError::Invariant { cycle: v.cycle, violation: v.detail })?;
            }
        }
        // Snapshot the stats *before* any drain ticks so the reported
        // counters describe the program run, not the post-halt drain.
        let out = self.finish_stats();
        if self.cfg.check_invariants {
            // Leak check: after halt, every in-flight operand, wave,
            // and queue must drain. An operand created but never
            // consumed, or a flush that left residue behind, keeps a
            // tile or net active forever and fails here.
            if !self.drain(10_000) {
                return Err(SimError::Invariant {
                    cycle: self.cycle,
                    violation: format!(
                        "core failed to quiesce within 10000 cycles after halt \
                         (leaked operand or undrained queue): {}",
                        self.diagnose().summary()
                    ),
                });
            }
            self.check_invariants()
                .map_err(|v| SimError::Invariant { cycle: v.cycle, violation: v.detail })?;
        }
        Ok(out)
    }

    /// Resets the core and loads `image`: the first half of
    /// [`Processor::run`], split out so a [`Chip`](crate::chip::Chip)
    /// can prepare every core and then drive the lockstep tick loop
    /// itself.
    pub(crate) fn start(&mut self, image: &ProgramImage) {
        self.reset(image.entry);
        self.mem = SparseMem::from_image(image);
    }

    /// Whether the GT has committed a `halt` branch.
    pub(crate) fn halted(&self) -> bool {
        self.gt.halted
    }

    /// Finalizes and snapshots the run statistics — the second half of
    /// [`Processor::run`], called at halt time (before any post-halt
    /// drain ticks, so the counters describe the program run).
    pub(crate) fn finish_stats(&mut self) -> CoreStats {
        self.stats.cycles = self.cycle;
        self.stats.opn = self.nets.opn.iter().fold(MeshStats::default(), |mut acc, m| {
            acc.merge(&m.stats);
            acc
        });
        // Inject stalls are counted once, at the outbox (the outbox
        // only calls `inject` after `can_inject`, so the meshes' own
        // `inject_fails` would double-count any raw-inject user if it
        // were added here — see `Nets::inject_stalls`).
        self.stats.protocol.opn_inject_stalls = self.nets.inject_stalls();
        self.stats.protocol.opn_inflight_highwater = self.nets.opn_highwater.clone();
        self.stats.mem = self.memsys.stats_snapshot();
        if self.crit.enabled() {
            self.stats.critpath = Some(self.crit.walk(self.gt.final_ev));
        }
        self.stats.clone()
    }

    /// Ticks the core until it [quiesces](Self::quiesced) or `budget`
    /// cycles elapse; returns whether it quiesced. Used by the
    /// invariant harness to prove post-halt drainage, and available to
    /// tests that stop the clock by hand.
    pub fn drain(&mut self, budget: u64) -> bool {
        for _ in 0..budget {
            if self.quiesced() {
                return true;
            }
            self.tick();
        }
        self.quiesced()
    }

    /// Runs the per-tick protocol invariant suite against the current
    /// state (see [`crate::invariants`]).
    ///
    /// # Errors
    ///
    /// The first violated invariant, with the current cycle.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        invariants::check(self)
    }

    /// Snapshots which frames, tiles, and micronetworks still hold
    /// work — the hang diagnoser behind [`SimError::Timeout`], also
    /// callable directly when stepping the clock by hand.
    pub fn diagnose(&self) -> HangReport {
        let mut tiles = Vec::new();
        for (i, it) in self.its.iter().enumerate() {
            if let Some(detail) = it.diag() {
                tiles.push(TileDiag { tile: format!("IT{i}"), detail });
            }
        }
        for (b, rt) in self.rts.iter().enumerate() {
            if let Some(detail) = rt.diag() {
                tiles.push(TileDiag { tile: format!("RT{b}"), detail });
            }
        }
        for (i, et) in self.ets.iter().enumerate() {
            if let Some(detail) = et.diag() {
                tiles.push(TileDiag {
                    tile: format!("ET({},{})", i / ET_COLS, i % ET_COLS),
                    detail,
                });
            }
        }
        for (d, dt) in self.dts.iter().enumerate() {
            if let Some(detail) = dt.diag() {
                tiles.push(TileDiag { tile: format!("DT{d}"), detail });
            }
        }
        if let Some(detail) = self.memsys.diag() {
            tiles.push(TileDiag { tile: "MemSys".into(), detail });
        }
        HangReport {
            cycle: self.cycle,
            frames_in_flight: self.gt.in_flight(),
            frames: self.gt.frame_diags(),
            tiles,
            nets: self.nets.diags(self.cycle),
        }
    }

    /// True when every tile and network has drained (no queued work
    /// besides architectural state) — useful for tests that stop the
    /// clock manually.
    ///
    /// Defined as the complement of the clock-gating `active()`
    /// predicates, so "quiesced" and "every tile gated off" can never
    /// disagree: a core is quiesced exactly when a gated scheduler
    /// would skip every tile and network.
    pub fn quiesced(&self) -> bool {
        self.nets.idle()
            && !self.gt.active(&self.nets)
            && self.its.iter().all(|t| !t.active(&self.nets))
            && self.rts.iter().all(|t| !t.active(&self.nets))
            && self.ets.iter().all(|t| !t.active(&self.nets))
            && self.dts.iter().all(|t| !t.active(&self.nets))
            && self.memsys.quiet()
    }

    /// A diagnostic snapshot for debugging hangs.
    pub fn dump(&self) -> String {
        format!("cycle {}\n{}", self.cycle, self.gt.dump())
    }

    /// Renders the tail of the recorded critical path (debugging).
    pub fn debug_critpath(&self, n: usize) -> String {
        self.crit.debug_chain(self.gt.final_ev, n)
    }

    /// Advances one cycle.
    ///
    /// With [`CoreConfig::gate_ticks`] set (the default) each tile is
    /// skipped when its `active()` predicate is false. The predicates
    /// are conservative — a tile may tick unnecessarily, but a tile
    /// with pending work or an inbound message always ticks — and a
    /// tick of an inactive tile is a provable no-op, so gated and
    /// ungated runs are bit-identical (enforced by the
    /// `gating_equivalence` test suite). Evaluating a predicate just
    /// before the tile's tick (rather than at cycle start) can only
    /// wake a tile *earlier*: every micronet has at least one cycle of
    /// latency, so a message sent this cycle matures next cycle at the
    /// soonest, and an early wake-up is one of those no-op ticks.
    pub fn tick(&mut self) {
        let now = self.cycle;
        let gate = self.cfg.gate_ticks;
        if !gate || self.gt.active(&self.nets) {
            self.gt.tick(
                now,
                &self.cfg,
                &mut self.nets,
                &mut self.crit,
                &mut self.stats,
                &self.mem,
                &mut self.tracer,
            );
            self.gating.ticks_run += 1;
        } else {
            self.gating.ticks_gated += 1;
        }
        for i in 0..self.its.len() {
            // A pending memory-system event must wake the tile even
            // though its own `active()` cannot see the adapter.
            if !gate
                || self.its[i].active(&self.nets)
                || self.memsys.has_events(MemClient::It(i as u8))
            {
                self.its[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &self.mem,
                    &mut self.memsys,
                    &mut self.tracer,
                );
                self.gating.ticks_run += 1;
            } else {
                self.gating.ticks_gated += 1;
            }
        }
        for i in 0..self.rts.len() {
            if !gate || self.rts[i].active(&self.nets) {
                self.rts[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &mut self.crit,
                    &mut self.stats,
                    &mut self.tracer,
                );
                self.gating.ticks_run += 1;
            } else {
                self.gating.ticks_gated += 1;
            }
        }
        for i in 0..self.ets.len() {
            if !gate || self.ets[i].active(&self.nets) {
                self.ets[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &mut self.crit,
                    &mut self.stats,
                    &mut self.tracer,
                );
                self.gating.ticks_run += 1;
            } else {
                self.gating.ticks_gated += 1;
            }
        }
        for i in 0..self.dts.len() {
            if !gate
                || self.dts[i].active(&self.nets)
                || self.memsys.has_events(MemClient::Dt(i as u8))
            {
                self.dts[i].tick(
                    now,
                    &self.cfg,
                    &mut self.nets,
                    &mut self.crit,
                    &mut self.stats,
                    &mut self.mem,
                    &mut self.memsys,
                    &mut self.tracer,
                );
                self.gating.ticks_run += 1;
            } else {
                self.gating.ticks_gated += 1;
            }
        }
        self.nets.tick(now);
        // The secondary system runs after the tiles and nets: requests
        // issued this cycle inject now, and responses it delivers are
        // consumed by the tiles next cycle (see DESIGN.md §5d).
        self.memsys.tick(now, &mut self.tracer);
        self.cycle += 1;
    }
}
