//! The TRIPS chip: N cores in lockstep around one shared NUCA.
//!
//! The prototype die carries **two** processor cores and a single
//! 1 MB NUCA secondary memory, reached over the 4×10 OCN whose twenty
//! client ports are split between the cores' L1 banks (§2, §3.6 of
//! the paper). [`Chip`] reproduces that arrangement and scales it to
//! 1..=16-core dies by tiling the prototype block vertically (see
//! [`trips_mem::OcnGeometry`]): each core is an unmodified
//! [`Processor`] whose `memsys` adapter is bound to a disjoint
//! computed `PortMap` slice of the shared [`SecondarySystem`], and
//! the chip drives the inject → OCN/bank tick → drain phases once per
//! cycle for all cores around the one system. Because each slot's
//! port/bank picture is a whole-block translation of a prototype
//! slot, a core of any die is cycle-bit-identical to the same slot of
//! the prototype die (pinned by `tests/chip_equivalence.rs`).
//!
//! **Arbitration.** Within a core the original fixed client order
//! stands, so a solo core is never restricted — a one-core chip is
//! bit-identical to the `Processor` + `Nuca` path (pinned by
//! `tests/chip_equivalence.rs`). Across cores, a per-cycle
//! round-robin `BankArb` admits only one core's injections per NUCA
//! bank per cycle; the losing core's client stalls in place (FIFO
//! order preserved) and the priority rotates every cycle, so the wait
//! for a contested bank is bounded by `ncores − 1` cycles.
//!
//! **What is (and is not) coherent.** By default, nothing: the cores
//! run disjoint address spaces — each adapter offsets its physical
//! addresses by a per-core base so lines never alias in the shared
//! bank tags — and data authority stays with each core's own memory
//! image (the backend is timing-only, as in DESIGN.md §5d).
//! Contention is therefore purely a *timing* interaction: per-core
//! architectural results are independent of the co-runner, which the
//! equivalence suite asserts across workload pairs.
//!
//! With [`ChipConfig::shared_memory`] set, the cores instead share
//! one physical address space under a directory MSI protocol: each
//! NUCA bank carries a directory slice over the lines it homes,
//! D-side fills travel as GetS, store writebacks as GetM, and the
//! directory invalidates remote copies over the same OCN. Values
//! still follow the timing-only discipline — every committed store is
//! propagated to every core's memory replica in one global order (the
//! chip's *value plane*), while the protocol messages decide *when*
//! fills and store acks complete (the *timing plane*). See DESIGN.md
//! §5g for the protocol tables and the invariant arguments.

use std::collections::BTreeMap;

use trips_isa::ProgramImage;
use trips_mem::{CohSnapshot, DirView, MemConfig, SecondarySystem};
use trips_micronet::MAX_TAGS;

use crate::config::TileMask;
use crate::memsys::{BankArb, MemSys};
use crate::proc::{Processor, SimError};
use crate::stats::CoreStats;
use crate::trace::{chrome_trace_chip, Tracer};
use crate::CoreConfig;

/// Configuration of a [`Chip`]: one [`CoreConfig`] per core plus the
/// shared secondary system.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Per-core configurations. `mem_backend` is ignored — every core
    /// of a chip shares [`ChipConfig::mem`]; OCN faults are taken from
    /// core 0's fault plan (the OCN is chip-level hardware), while
    /// OPN/chain faults stay per-core.
    pub cores: Vec<CoreConfig>,
    /// The shared NUCA secondary system.
    pub mem: MemConfig,
    /// Tick the cores on separate host threads, synchronizing at the
    /// shared-system boundary each cycle. `None` (the default) enables
    /// threading exactly when the host has more than one worker
    /// ([`trips_harness::num_threads`]); `Some(b)` forces it. The
    /// core-tick phase touches only per-core state, so threaded and
    /// serial chips are bit-identical (pinned by
    /// `tests/chip_equivalence.rs`).
    pub threaded: Option<bool>,
    /// Run the cores in one coherent physical address space (MSI
    /// directory protocol at the NUCA banks) instead of the default
    /// disjoint multiprogrammed spaces. Off must be — and is, pinned
    /// by `tests/chip_equivalence.rs` — bit-identical to a chip built
    /// before this field existed.
    pub shared_memory: bool,
}

impl ChipConfig {
    /// The prototype chip: two cores on the §3.6 NUCA.
    pub fn prototype() -> ChipConfig {
        ChipConfig {
            cores: vec![CoreConfig::prototype(); 2],
            mem: MemConfig::prototype(),
            threaded: None,
            shared_memory: false,
        }
    }

    /// A chip of `n` identical cores (1..=16; the OCN geometry tiles
    /// a twenty-port prototype block per core pair).
    pub fn with_cores(n: usize, core: CoreConfig, mem: MemConfig) -> ChipConfig {
        ChipConfig { cores: vec![core; n], mem, threaded: None, shared_memory: false }
    }

    /// An `n`-core die of prototype cores on the prototype NUCA — the
    /// `--ncores` constructor.
    pub fn n_cores(n: usize) -> ChipConfig {
        ChipConfig::with_cores(n, CoreConfig::prototype(), MemConfig::prototype())
    }
}

/// Chip-level statistics: everything a single [`CoreStats`] cannot
/// express because it belongs to the shared fabric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChipStats {
    /// Per-core run statistics, snapshotted at each core's own halt
    /// time (the per-core NUCA round-trip histogram is
    /// `cores[k].mem.fill_latency`).
    pub cores: Vec<CoreStats>,
    /// Chip cycles until the last core halted.
    pub cycles: u64,
    /// Per-bank cross-core conflict stalls from the round-robin bank
    /// arbiter (all zero for a single-core chip).
    pub bank_conflict_stalls: Vec<u64>,
    /// Per-core high-water marks of in-flight OCN packets (tagged at
    /// injection; index = core).
    pub ocn_tag_highwater: Vec<usize>,
    /// Per-core OCN `(injected, ejected)` packet counts.
    pub ocn_tag_counts: Vec<(u64, u64)>,
    /// Coherence-protocol counters (`Some` only on a
    /// [`ChipConfig::shared_memory`] chip, keeping the off-mode stats
    /// bit-identical to the pre-coherence chip).
    pub coherence: Option<CohSnapshot>,
}

impl ChipStats {
    /// Total cross-core bank conflict stalls.
    pub fn total_conflict_stalls(&self) -> u64 {
        self.bank_conflict_stalls.iter().sum()
    }
}

/// N cores ticked in lockstep around one shared [`SecondarySystem`].
pub struct Chip {
    cores: Vec<Processor>,
    sys: SecondarySystem,
    arb: BankArb,
    cfg: ChipConfig,
    /// Round-robin injection priority: core `rr` injects first this
    /// cycle.
    rr: usize,
    cycle: u64,
    /// Each core's stats, captured the cycle it halted.
    finished: Vec<Option<CoreStats>>,
    /// Host threads for the core-tick phase (1 = serial), resolved
    /// from [`ChipConfig::threaded`] at construction.
    threads: usize,
    /// Scratch for the per-core activity scans (avoids a per-cycle
    /// allocation).
    scans: Vec<(TileMask, Option<u64>)>,
}

impl Chip {
    /// Builds the chip: one [`Processor`] per entry of `cfg.cores`,
    /// all bound to one shared secondary system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is empty or holds more cores than the
    /// largest die the computed OCN geometry (and the OCN tag space)
    /// supports ([`trips_mem::MAX_CORES`] = 16).
    pub fn new(cfg: ChipConfig) -> Chip {
        let n = cfg.cores.len();
        assert!(n >= 1, "a chip has at least one core");
        const _: () = assert!(trips_mem::MAX_CORES <= MAX_TAGS, "core tags must fit the tag space");
        assert!(n <= trips_mem::MAX_CORES, "a die seats at most {} cores", trips_mem::MAX_CORES);
        let cores: Vec<Processor> = cfg.cores.iter().cloned().map(Processor::new).collect();
        let sys = Chip::build_sys(&cfg);
        let banks = sys.geometry().banks();
        let threads = match cfg.threaded {
            Some(true) => n,
            Some(false) => 1,
            None => trips_harness::num_threads().min(n),
        };
        Chip {
            cores,
            sys,
            arb: BankArb::new(banks),
            cfg,
            rr: 0,
            cycle: 0,
            finished: vec![None; n],
            threads,
            scans: vec![(0, None); n],
        }
    }

    fn build_sys(cfg: &ChipConfig) -> SecondarySystem {
        let n = cfg.cores.len();
        let mut sys = if cfg.shared_memory {
            SecondarySystem::for_cores_shared(cfg.mem.clone(), n)
        } else {
            SecondarySystem::for_cores(cfg.mem.clone(), n)
        };
        if let Some(plan) = &cfg.cores[0].faults {
            sys.set_ocn_fault(plan.ocn_fault().as_ref());
        }
        for (k, core_cfg) in cfg.cores.iter().enumerate() {
            for port in MemSys::ports_for_core(k, n).ports(core_cfg.geometry) {
                sys.set_port_tag(port, k as u8);
            }
        }
        sys
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.cores.len()
    }

    /// Core `k`, for inspecting architectural state after a run.
    pub fn core(&self, k: usize) -> &Processor {
        &self.cores[k]
    }

    /// The shared secondary system.
    pub fn secondary(&self) -> &SecondarySystem {
        &self.sys
    }

    /// Turns on every core's flight recorder (`capacity` events each).
    pub fn enable_tracing(&mut self, capacity: usize) {
        for core in &mut self.cores {
            core.enable_tracing(capacity);
        }
    }

    /// The combined Chrome trace: one process per core, one lane per
    /// tile (see [`chrome_trace_chip`]).
    pub fn chrome_trace(&self) -> String {
        let tracers: Vec<&Tracer> = self.cores.iter().map(Processor::tracer).collect();
        chrome_trace_chip(&tracers)
    }

    /// Runs one program image per core until every core halts or
    /// `max_cycles` chip cycles elapse. Cores that halt early keep
    /// draining their share of the OCN traffic while the rest run.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] (diagnosing the first still-running
    /// core) or [`SimError::Invariant`] when a per-core invariant or
    /// the chip-level conservation audit fails.
    ///
    /// # Panics
    ///
    /// Panics unless `images.len()` equals the core count.
    pub fn run(&mut self, images: &[ProgramImage], max_cycles: u64) -> Result<ChipStats, SimError> {
        assert_eq!(images.len(), self.cores.len(), "one program image per core");
        let selected: Vec<Option<&ProgramImage>> = images.iter().map(Some).collect();
        self.run_select(&selected, max_cycles)
    }

    /// [`Chip::run`] with optional per-slot images: a `None` slot
    /// stays **idle** — its core is reset and parked pre-halted, so
    /// it ticks in lockstep (cheaply, fully gated) but never fetches,
    /// injects no OCN traffic, and reports default stats. The
    /// equivalence suite uses this to pin that one live core in any
    /// slot of any die behaves exactly like the matching slot of the
    /// prototype die (and, for even slots, exactly like the solo
    /// `Processor` + NUCA path).
    ///
    /// # Errors
    ///
    /// As [`Chip::run`].
    ///
    /// # Panics
    ///
    /// Panics unless `images.len()` equals the core count and at
    /// least one slot is live.
    pub fn run_select(
        &mut self,
        images: &[Option<&ProgramImage>],
        max_cycles: u64,
    ) -> Result<ChipStats, SimError> {
        assert_eq!(images.len(), self.cores.len(), "one image slot per core");
        assert!(images.iter().any(Option::is_some), "at least one slot must be live");
        let n = self.cores.len();
        // Reset chip-level state for back-to-back runs.
        self.sys = Chip::build_sys(&self.cfg);
        self.arb = BankArb::new(self.sys.geometry().banks());
        self.rr = 0;
        self.cycle = 0;
        self.finished = vec![None; n];
        for (k, core) in self.cores.iter_mut().enumerate() {
            match images[k] {
                Some(image) => core.start(image),
                None => {
                    // An idle slot: a freshly reset core, parked
                    // pre-halted. The run loop already lets halted
                    // cores tick along in lockstep; one that starts
                    // halted simply never does anything.
                    *core = Processor::new(self.cfg.cores[k].clone());
                    core.gt.halted = true;
                }
            }
            // `start` rebuilt the core-owned backend from its config;
            // a chip core instead adapts to the shared system.
            core.memsys = if self.cfg.shared_memory {
                MemSys::shared_coherent(k, n, self.cfg.cores[k].geometry)
            } else {
                MemSys::shared(k, n, self.cfg.cores[k].geometry)
            };
        }
        if self.cfg.shared_memory {
            // One physical address space: every core's memory replica
            // is the union of every live image, loaded in slot order —
            // identical across cores by construction, which is the
            // value plane's starting condition (store propagation
            // keeps the replicas identical from here on).
            for core in self.cores.iter_mut() {
                core.mem = trips_isa::mem::SparseMem::new();
                for image in images.iter().flatten() {
                    core.mem.load_image(image);
                }
            }
        }
        for (k, image) in images.iter().enumerate() {
            if image.is_none() {
                self.finished[k] = Some(CoreStats::default());
            }
        }
        let check = self.cfg.cores.iter().any(|c| c.check_invariants);
        while !self.cores.iter().all(Processor::halted) {
            if self.cycle >= max_cycles {
                let k = self.cores.iter().position(|c| !c.halted()).expect("an unhalted core");
                return Err(SimError::Timeout {
                    cycles: self.cycle,
                    blocks_committed: self.cores[k].stats.blocks_committed,
                    diagnosis: Box::new(self.cores[k].diagnose()),
                });
            }
            self.tick();
            if check {
                self.check_invariants()?;
            }
            for k in 0..self.cores.len() {
                if self.cores[k].halted() && self.finished[k].is_none() {
                    self.cores[k].memsys.absorb_sys(&self.sys);
                    self.finished[k] = Some(self.cores[k].finish_stats());
                }
            }
        }
        let stats = self.collect_stats();
        if check {
            // Leak check, as in the solo path: after every core halts,
            // the whole chip — cores and the shared system — must
            // drain.
            if !self.drain(10_000) {
                return Err(SimError::Invariant {
                    cycle: self.cycle,
                    violation: format!(
                        "chip failed to quiesce within 10000 cycles after halt: {}",
                        self.cores
                            .iter()
                            .map(|c| c.diagnose().summary())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ),
                });
            }
            self.check_invariants()?;
        }
        Ok(stats)
    }

    fn collect_stats(&mut self) -> ChipStats {
        let tag_hw = self.sys.ocn_tag_highwater();
        let tag_counts = self.sys.ocn_tag_counts();
        let n = self.cores.len();
        ChipStats {
            cores: self.finished.iter().map(|s| s.clone().expect("core finished")).collect(),
            cycles: self.cycle,
            bank_conflict_stalls: self.arb.conflict_stalls.clone(),
            ocn_tag_highwater: tag_hw[..n].to_vec(),
            ocn_tag_counts: tag_counts[..n].to_vec(),
            coherence: self.cfg.shared_memory.then(|| self.sys.coherence()),
        }
    }

    /// One chip cycle: every core's tiles and micronets tick (a
    /// halted core is near-quiesced, so its gated tick is cheap and
    /// lets it keep consuming late completions), then the shared
    /// memory phase runs — inject per core in rotating priority
    /// order, tick the OCN and banks once, drain responses per core.
    /// The phase is skipped entirely when every adapter is quiet,
    /// mirroring the solo fast path.
    ///
    /// **Epoch skipping.** Cores of a chip must stay in lockstep, so
    /// a core never fast-forwards on its own; instead the chip scans
    /// every core up front and, when *all* of them report no runnable
    /// tile, jumps the whole chip — every core's clock, the rotating
    /// injection priority, and the chip cycle — to the earliest wake
    /// across the cores and the shared system's own bank timers. The
    /// priority counter advances by the skipped span exactly as it
    /// would have cycle-by-cycle, so arbitration after a skip is
    /// bit-identical.
    ///
    /// **Threading.** With more than one host worker the per-core tick
    /// phase runs on `trips_harness` scoped threads (one core per
    /// worker); cores touch only their own state during that phase —
    /// a `Shared` memsys tick is a no-op — so the join before the
    /// shared-system phase is the only synchronization needed, and
    /// threaded/serial schedules are bit-identical.
    fn tick(&mut self) {
        let n = self.cores.len();
        let skip_all = self.cfg.cores.iter().all(|c| c.gate_ticks && c.skip_epochs);
        loop {
            let now = self.cycle;
            for (k, core) in self.cores.iter().enumerate() {
                self.scans[k] = if self.cfg.cores[k].gate_ticks {
                    core.scan_activity(now)
                } else {
                    (self.cfg.cores[k].geometry.full_mask(), None)
                };
            }
            if skip_all && self.scans.iter().all(|&(mask, _)| mask == 0) {
                let wake =
                    self.scans.iter().filter_map(|&(_, w)| w).chain(self.sys.next_event(now)).min();
                if let Some(w) = wake {
                    if w > now {
                        for core in &mut self.cores {
                            core.skip_to(w);
                        }
                        let skipped = (w - now) as usize;
                        self.rr = (self.rr + skipped) % n;
                        self.cycle = w;
                        continue;
                    }
                }
            }
            break;
        }
        let now = self.cycle;
        if self.threads > 1 {
            // A halted core ticks too: its clock stays in lockstep
            // and its tiles consume still-arriving completions (its
            // stats were snapshotted the cycle it halted).
            let cores = std::mem::take(&mut self.cores);
            let jobs: Vec<(Processor, TileMask)> =
                cores.into_iter().zip(self.scans.iter().map(|&(m, _)| m)).collect();
            self.cores = trips_harness::parallel_map(jobs, self.threads, |(mut core, mask)| {
                core.tick_with_mask(mask);
                core
            });
        } else {
            for (k, core) in self.cores.iter_mut().enumerate() {
                core.tick_with_mask(self.scans[k].0);
            }
        }
        if self.cfg.shared_memory {
            self.propagate_stores(now);
        }
        if self.cores.iter().any(|c| !c.memsys.quiet()) {
            self.arb.begin_cycle();
            for i in 0..n {
                let k = (self.rr + i) % n;
                let Processor { memsys, tracer, .. } = &mut self.cores[k];
                memsys.shared_inject(now, &mut self.sys, tracer, &mut self.arb, k as u8);
            }
            self.sys.tick(now);
            for core in &mut self.cores {
                let Processor { memsys, tracer, .. } = core;
                memsys.shared_drain(now, &mut self.sys, tracer);
            }
        }
        self.rr = (self.rr + 1) % n;
        self.cycle += 1;
    }

    /// The value plane of the coherent chip: every store drained at
    /// commit this cycle is applied to **every** core's memory
    /// replica — the writer's included — in one global order (writer
    /// core index, then drain order within the core), so same-cycle
    /// conflicting stores resolve identically everywhere and the
    /// replicas stay byte-for-byte equal. A serial phase, run after
    /// the (possibly threaded) core-tick join. Remote cores also take
    /// the speculation repair: cached copies of the touched lines are
    /// dropped, in-flight fills poisoned, and any speculatively
    /// performed overlapping load squashed via a violation flush.
    fn propagate_stores(&mut self, now: u64) {
        for k in 0..self.cores.len() {
            let props = self.cores[k].memsys.take_propagations();
            for (ea, val, bytes) in props {
                for j in 0..self.cores.len() {
                    self.cores[j].mem.write_uint(ea, val, bytes as u32);
                    if j != k {
                        self.cores[j].shared_invalidate(now, ea, bytes);
                    }
                }
            }
        }
    }

    /// Ticks until every core quiesces (or `budget` cycles elapse —
    /// cycle-denominated, so an epoch-skipping drain covers the same
    /// simulated span as a cycle-by-cycle one); returns whether the
    /// chip quiesced.
    pub fn drain(&mut self, budget: u64) -> bool {
        let end = self.cycle.saturating_add(budget);
        while self.cycle < end {
            if self.quiesced() {
                return true;
            }
            self.tick();
        }
        self.quiesced()
    }

    /// True when every core has quiesced and nothing is left in the
    /// shared system.
    pub fn quiesced(&self) -> bool {
        self.cores.iter().all(Processor::quiesced) && self.sys.in_system() == 0
    }

    /// Chip-level conservation plus every core's own invariant suite:
    /// the shared OCN's packet accounting balances, and the cores'
    /// accepted-but-undelivered requests sum to exactly what the
    /// system holds (no response can be lost *or* misdelivered to
    /// another core's port without this failing).
    ///
    /// # Errors
    ///
    /// The first violated invariant as a [`SimError::Invariant`].
    pub fn check_invariants(&self) -> Result<(), SimError> {
        for (k, core) in self.cores.iter().enumerate() {
            core.check_invariants().map_err(|v| SimError::Invariant {
                cycle: v.cycle,
                violation: format!("core {k}: {}", v.detail),
            })?;
        }
        self.audit().map_err(|e| SimError::Invariant { cycle: self.cycle, violation: e })?;
        if self.cfg.shared_memory {
            self.check_coherence()
                .map_err(|e| SimError::Invariant { cycle: self.cycle, violation: e })?;
        }
        Ok(())
    }

    /// The coherence invariant suite, run every checked tick of a
    /// shared-memory chip (see DESIGN.md §5g for the arguments):
    ///
    /// 1. **Directory sanity** — no duplicate sharers, the owner is
    ///    not also a sharer, pending victims are disjoint from the
    ///    sharer list, and a stable M entry (owner set, no pending
    ///    invalidations) lists no sharers.
    /// 2. **Inclusion / agreement** — every line a DT cache actually
    ///    holds is listed for that DT's port at the line's home
    ///    directory (as owner, sharer, or pending victim). The
    ///    directory may over-approximate (silent evictions), never
    ///    under-approximate.
    /// 3. **SWMR** — a stable M line has exactly one cached copy:
    ///    the owner's. (With 2., any other copy would have to be
    ///    listed, and 1. says a stable M entry lists nobody else.)
    /// 4. **Message conservation** — unacknowledged invalidations
    ///    equal invalidations sent minus acks counted, and every
    ///    entry mid-invalidation parks exactly one deferred write
    ///    ack.
    fn check_coherence(&self) -> Result<(), String> {
        let views = self.sys.dir_views();
        let coh = self.sys.coherence();
        let mut by_line: BTreeMap<u64, &DirView> = BTreeMap::new();
        for v in &views {
            if let Some(o) = v.owner_port {
                if v.sharer_ports.contains(&o) {
                    return Err(format!(
                        "dir bank {} line {:#x}: owner port {o} also on the sharer list",
                        v.bank, v.line
                    ));
                }
            }
            for (i, &s) in v.sharer_ports.iter().enumerate() {
                if v.sharer_ports[..i].contains(&s) {
                    return Err(format!(
                        "dir bank {} line {:#x}: duplicate sharer port {s}",
                        v.bank, v.line
                    ));
                }
            }
            if v.pending_ports.iter().any(|p| v.sharer_ports.contains(p)) {
                return Err(format!(
                    "dir bank {} line {:#x}: a pending victim is still on the sharer list",
                    v.bank, v.line
                ));
            }
            if v.owner_port.is_some() && v.pending_ports.is_empty() && !v.sharer_ports.is_empty() {
                return Err(format!(
                    "dir bank {} line {:#x}: stable M (owner {:?}) with sharers {:?}",
                    v.bank, v.line, v.owner_port, v.sharer_ports
                ));
            }
            by_line.insert(v.line, v);
        }
        // Inclusion, and SWMR via the holder sets it implies.
        for (k, core) in self.cores.iter().enumerate() {
            for dt in &core.dts {
                let port = core.memsys.dt_port(dt.index) as u16;
                for line in dt.cached_lines() {
                    let Some(v) = by_line.get(&line) else {
                        return Err(format!(
                            "core {k} DT{} caches line {line:#x} with no directory entry",
                            dt.index
                        ));
                    };
                    let listed = v.owner_port == Some(port)
                        || v.sharer_ports.contains(&port)
                        || v.pending_ports.contains(&port);
                    if !listed {
                        return Err(format!(
                            "core {k} DT{} caches line {line:#x} but the home directory \
                             (bank {}) does not list port {port}: owner {:?} sharers {:?} \
                             pending {:?}",
                            dt.index, v.bank, v.owner_port, v.sharer_ports, v.pending_ports
                        ));
                    }
                    if let Some(o) = v.owner_port {
                        if v.pending_ports.is_empty() && o != port {
                            return Err(format!(
                                "SWMR violated: line {line:#x} is stable M at port {o} but \
                                 core {k} DT{} (port {port}) holds a copy",
                                dt.index
                            ));
                        }
                    }
                }
            }
        }
        // Conservation.
        let pending_total: u64 = views.iter().map(|v| v.pending_ports.len() as u64).sum();
        if pending_total != coh.invals_sent - coh.inval_acks {
            return Err(format!(
                "invalidation conservation broken: {pending_total} pending victims != \
                 {} sent - {} acked",
                coh.invals_sent, coh.inval_acks
            ));
        }
        let mid_inval = views.iter().filter(|v| !v.pending_ports.is_empty()).count();
        if mid_inval != self.sys.dir_deferred() {
            return Err(format!(
                "deferred-ack conservation broken: {mid_inval} entries mid-invalidation != \
                 {} parked write acks",
                self.sys.dir_deferred()
            ));
        }
        Ok(())
    }

    /// The chip-wide conservation audit (see
    /// [`Chip::check_invariants`]).
    ///
    /// # Errors
    ///
    /// A description of the first violated accounting equation.
    pub fn audit(&self) -> Result<(), String> {
        self.sys.audit().map_err(|e| format!("OCN: {e}"))?;
        let (issued, delivered) = self
            .cores
            .iter()
            .map(|c| c.memsys.flow())
            .fold((0u64, 0u64), |(i, d), (ci, cd)| (i + ci, d + cd));
        // Coherence tokens (invalidations and their acks) travel the
        // OCN outside the request/response ledger, and a write ack
        // parked at the directory mid-invalidation is *outside* the
        // system until released — both terms are zero on a
        // non-coherent chip, degenerating to the original equation.
        let in_system = self.sys.in_system() as i64;
        let flow = issued as i64 - delivered as i64;
        let expect = in_system - self.sys.coh_tokens_in_system() + self.sys.dir_deferred() as i64;
        if flow != expect {
            return Err(format!(
                "chip conservation broken: Σissued {issued} - Σdelivered {delivered} \
                 != in-system {in_system} - coherence tokens {} + parked acks {}",
                self.sys.coh_tokens_in_system(),
                self.sys.dir_deferred()
            ));
        }
        Ok(())
    }
}
