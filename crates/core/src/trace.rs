//! The flight recorder: core-wide event tracing for the distributed
//! protocols.
//!
//! The paper's argument is about *protocol timing* — fetch cadence,
//! commit overlap, flush waves — but a cycle simulator is opaque while
//! it runs. The [`Tracer`] is a bounded ring buffer of typed
//! [`TraceEvent`]s threaded through [`Processor::tick`] into every
//! tile and micronet. It is **zero-cost when disabled**: every record
//! site is a single branch on a bool, and the event value is built
//! inside a closure that never runs unless tracing is on.
//!
//! Enabled, it captures the full protocol choreography — fetch issue,
//! dispatch beats, operand inject/eject with hop and queue counts, LSQ
//! insert/wakeup, commit/flush wave arrival per tile, and block
//! acknowledgement — and can render it as Chrome `trace_event` JSON
//! ([`Tracer::chrome_trace`]) with one lane per tile, loadable in
//! `about:tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! [`Processor::tick`]: crate::Processor::tick

use std::fmt::Write as _;

use crate::config::{CoreGeometry, FrameMask};
use crate::msg::{FrameId, OpnPayload, TileId};

/// Classes of operand-network payloads, for trace labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpnClass {
    /// An operand for an ET reservation station.
    Operand,
    /// A register-write value for an RT write queue.
    WriteVal,
    /// A load request for a DT.
    LoadReq,
    /// A store (or nullified store) for a DT.
    StoreReq,
    /// A resolved branch for the GT.
    Branch,
}

impl OpnClass {
    /// The payload's class.
    pub fn of(p: &OpnPayload) -> OpnClass {
        match p {
            OpnPayload::Operand { .. } => OpnClass::Operand,
            OpnPayload::WriteVal { .. } => OpnClass::WriteVal,
            OpnPayload::LoadReq { .. } => OpnClass::LoadReq,
            OpnPayload::StoreReq { .. } => OpnClass::StoreReq,
            OpnPayload::Branch { .. } => OpnClass::Branch,
        }
    }

    fn name(self) -> &'static str {
        match self {
            OpnClass::Operand => "operand",
            OpnClass::WriteVal => "writeval",
            OpnClass::LoadReq => "load",
            OpnClass::StoreReq => "store",
            OpnClass::Branch => "branch",
        }
    }
}

/// One typed protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// The GT began fetching a block into `frame`.
    FetchIssued {
        /// Destination frame.
        frame: FrameId,
        /// Block header address.
        pc: u64,
    },
    /// The GT issued the GDN dispatch command for `frame`.
    DispatchCmd {
        /// The frame.
        frame: FrameId,
        /// Block header address.
        pc: u64,
    },
    /// An IT streamed one dispatch beat to its row.
    DispatchBeat {
        /// The IT (0..5).
        it: u8,
        /// The frame being dispatched.
        frame: FrameId,
        /// Beat number (0..8).
        beat: u8,
    },
    /// A message entered an operand network.
    OpnInject {
        /// Which parallel OPN (0-based).
        net: u8,
        /// Payload class.
        class: OpnClass,
        /// Injecting tile.
        src: TileId,
        /// Destination tile.
        dst: TileId,
    },
    /// A message left an operand network at its destination.
    OpnEject {
        /// Which parallel OPN (0-based).
        net: u8,
        /// Payload class.
        class: OpnClass,
        /// Injecting tile.
        src: TileId,
        /// Destination tile.
        dst: TileId,
        /// Router-to-router link traversals.
        hops: u32,
        /// Cycles queued beyond the minimum (contention).
        queued: u32,
    },
    /// A DT accepted a load or store into its LSQ copy.
    LsqInsert {
        /// The DT (0..4).
        dt: u8,
        /// The frame.
        frame: FrameId,
        /// The access's LSID.
        lsid: u8,
        /// True for stores.
        store: bool,
    },
    /// A deferred load woke after its prior stores arrived.
    LsqWakeup {
        /// The DT (0..4).
        dt: u8,
        /// The frame.
        frame: FrameId,
        /// The load's LSID.
        lsid: u8,
    },
    /// An RT observed all declared writes of `frame` and joined the
    /// completion daisy chain.
    WritesDone {
        /// The RT bank (0..4).
        rt: u8,
        /// The frame.
        frame: FrameId,
    },
    /// DT0 observed all expected stores of `frame` and notified the GT.
    StoresDone {
        /// The frame.
        frame: FrameId,
    },
    /// The GT marked `frame` complete (writes + stores + branch).
    BlockComplete {
        /// The frame.
        frame: FrameId,
    },
    /// The GT put the commit command for `frame` on the GCN.
    CommitCmd {
        /// The frame.
        frame: FrameId,
    },
    /// The GCN commit wave reached `tile`.
    CommitWave {
        /// The tile.
        tile: TileId,
        /// The frame.
        frame: FrameId,
    },
    /// The GCN flush wave reached `tile`.
    FlushWave {
        /// The tile.
        tile: TileId,
        /// Frame mask being flushed.
        mask: FrameMask,
    },
    /// A tile finished its commit work and joined the ack chain.
    CommitAck {
        /// The tile (an RT or DT).
        tile: TileId,
        /// The frame.
        frame: FrameId,
    },
    /// Both acks arrived at the GT: `frame` deallocated.
    BlockAck {
        /// The frame.
        frame: FrameId,
        /// The committed block's address.
        pc: u64,
    },
    /// A DT raised a memory-ordering violation against `frame`.
    Violation {
        /// The detecting DT.
        dt: u8,
        /// The flushed-from frame.
        frame: FrameId,
    },
    /// An IT began an I-cache refill.
    RefillStart {
        /// The IT (0..5).
        it: u8,
        /// Block address.
        addr: u64,
    },
    /// An IT's refill chunk arrived and the completion chain advanced.
    RefillDone {
        /// The IT (0..5).
        it: u8,
        /// Block address.
        addr: u64,
    },
    /// A secondary-memory request entered the OCN (NUCA backend).
    OcnInject {
        /// Client port (0..4 = DT0..3, 10..15 = IT0..4).
        port: u8,
        /// Line-aligned byte address.
        addr: u64,
        /// True for a store writeback, false for a line fill.
        write: bool,
    },
    /// A secondary-memory response left the OCN at its client.
    OcnEject {
        /// Client port (0..4 = DT0..3, 10..15 = IT0..4).
        port: u8,
        /// Line-aligned byte address.
        addr: u64,
        /// True for a writeback acknowledgement, false for a fill.
        write: bool,
    },
}

/// One recorded event with its cycle stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The cycle the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// Default ring-buffer capacity (events) for [`Tracer::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The flight recorder: a bounded ring buffer of [`TraceEvent`]s.
///
/// Disabled (the default), every [`Tracer::record`] call is one branch
/// and nothing allocates. Enabled, the buffer holds the most recent
/// `capacity` events; older events are dropped (counted in
/// [`Tracer::dropped`]) without reallocating.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    cap: usize,
    /// Geometry the lane layout is derived from (the prototype's
    /// 4×4 array reproduces the original fixed lane numbers exactly).
    geom: CoreGeometry,
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    /// OPN messages recorded injected (tracing on only).
    pub opn_injected: u64,
    /// OPN messages recorded ejected (tracing on only).
    pub opn_ejected: u64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A disabled tracer: every record call is a single branch.
    pub fn disabled() -> Tracer {
        Tracer {
            enabled: false,
            cap: 0,
            geom: CoreGeometry::prototype(),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            opn_injected: 0,
            opn_ejected: 0,
        }
    }

    /// An enabled tracer retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn enabled(capacity: usize) -> Tracer {
        Tracer::enabled_with(capacity, CoreGeometry::prototype())
    }

    /// An enabled tracer whose lane layout is sized for `geom`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn enabled_with(capacity: usize, geom: CoreGeometry) -> Tracer {
        assert!(capacity > 0, "trace ring must hold at least one event");
        Tracer {
            enabled: true,
            cap: capacity,
            geom,
            buf: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            opn_injected: 0,
            opn_ejected: 0,
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in events (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted from the ring since the last [`Tracer::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one event. `make` only runs when tracing is enabled, so
    /// disabled call sites pay one branch and never construct the
    /// event.
    #[inline(always)]
    pub fn record<F: FnOnce() -> TraceKind>(&mut self, cycle: u64, make: F) {
        if !self.enabled {
            return;
        }
        self.push(cycle, make());
    }

    #[inline(never)]
    fn push(&mut self, cycle: u64, kind: TraceKind) {
        match kind {
            TraceKind::OpnInject { .. } => self.opn_injected += 1,
            TraceKind::OpnEject { .. } => self.opn_ejected += 1,
            _ => {}
        }
        let ev = TraceEvent { cycle, kind };
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            // Overwrite the oldest slot in place: bounded memory, no
            // reallocation.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Clears retained events and counters, keeping the enabled state
    /// and the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
        self.opn_injected = 0;
        self.opn_ejected = 0;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Renders the retained events as Chrome `trace_event` JSON with
    /// one lane (thread) per tile plus one per operand network — open
    /// the result in `about:tracing` or Perfetto. One simulated cycle
    /// maps to one microsecond of trace time.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + self.buf.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        self.chrome_body(&mut out, 0, &mut first);
        out.push_str("\n]}\n");
        out
    }

    /// The lane metadata and events of one core, written as process
    /// `pid` — the body shared between the solo and chip exporters.
    fn chrome_body(&self, out: &mut String, pid: u32, first: &mut bool) {
        // Lane names, derived from the geometry (prototype layout:
        // GT 0, IT 1..6, RT 6..10, DT 10..14, ET 14..30, OPN 30..34,
        // OCN 34 — exactly the original fixed numbering).
        let g = self.geom;
        let mut lanes: Vec<(u32, String)> = vec![(LANE_GT, "GT".into())];
        for it in 0..g.num_its() as u8 {
            lanes.push((lane_it(it), format!("IT{it}")));
        }
        for rt in 0..g.num_rts() as u8 {
            lanes.push((lane_tile(g, TileId::Rt(rt)), format!("RT{rt}")));
        }
        for dt in 0..g.num_dts() as u8 {
            lanes.push((lane_tile(g, TileId::Dt(dt)), format!("DT{dt}")));
        }
        for r in 0..g.et_rows as u8 {
            for c in 0..g.et_cols as u8 {
                lanes.push((lane_tile(g, TileId::Et(r, c)), format!("ET({r},{c})")));
            }
        }
        for net in 0..4u8 {
            lanes.push((lane_opn(g, net), format!("OPN{net}")));
        }
        lanes.push((lane_ocn(g), "OCN".into()));
        for (tid, name) in lanes {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        for ev in self.events() {
            out.push_str(",\n");
            self.chrome_event(out, pid, ev);
        }
    }

    fn chrome_event(&self, out: &mut String, pid: u32, ev: &TraceEvent) {
        let ts = ev.cycle;
        let (tid, name, args) = describe(self.geom, &ev.kind);
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts},\"args\":{{{args}}}}}"
        );
    }
}

/// Renders several cores' flight recorders as one Chrome `trace_event`
/// JSON document: one *process* per core (named `core K`), with the
/// usual one-lane-per-tile threads inside each — the chip view of the
/// per-core recorder. A one-element slice produces the same lanes as
/// [`Tracer::chrome_trace`] plus the process label.
pub fn chrome_trace_chip(cores: &[&Tracer]) -> String {
    let events: usize = cores.iter().map(|t| t.buf.len()).sum();
    let mut out = String::with_capacity(256 + events * 128);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    for (pid, tracer) in cores.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
             \"args\":{{\"name\":\"core {pid}\"}}}}"
        );
        tracer.chrome_body(&mut out, pid as u32, &mut first);
    }
    out.push_str("\n]}\n");
    out
}

const LANE_GT: u32 = 0;

fn lane_it(it: u8) -> u32 {
    1 + u32::from(it)
}

/// Lane of a routed tile: GT, then ITs, RTs, DTs, and the ET array
/// row-major — packed per the geometry so no two tiles collide at any
/// supported size (prototype: RT 6.., DT 10.., ET 14..).
fn lane_tile(g: CoreGeometry, t: TileId) -> u32 {
    let rt_base = 1 + g.num_its() as u32;
    let dt_base = rt_base + g.num_rts() as u32;
    let et_base = dt_base + g.num_dts() as u32;
    match t {
        TileId::Gt => LANE_GT,
        TileId::Rt(b) => rt_base + u32::from(b),
        TileId::Dt(d) => dt_base + u32::from(d),
        TileId::Et(r, c) => et_base + u32::from(r) * g.et_cols as u32 + u32::from(c),
    }
}

fn lane_opn(g: CoreGeometry, net: u8) -> u32 {
    // First lane past the tiles (prototype: 30).
    g.tile_ticks() as u32 + u32::from(net)
}

/// The secondary system's OCN gets one lane after the OPNs.
fn lane_ocn(g: CoreGeometry) -> u32 {
    lane_opn(g, 4)
}

/// (lane, event name, json args body) for one event kind.
fn describe(g: CoreGeometry, kind: &TraceKind) -> (u32, String, String) {
    match *kind {
        TraceKind::FetchIssued { frame, pc } => (
            LANE_GT,
            format!("fetch f{}", frame.0),
            format!("\"frame\":{},\"pc\":\"{pc:#x}\"", frame.0),
        ),
        TraceKind::DispatchCmd { frame, pc } => (
            LANE_GT,
            format!("dispatch f{}", frame.0),
            format!("\"frame\":{},\"pc\":\"{pc:#x}\"", frame.0),
        ),
        TraceKind::DispatchBeat { it, frame, beat } => (
            lane_it(it),
            format!("beat f{}", frame.0),
            format!("\"frame\":{},\"beat\":{beat}", frame.0),
        ),
        TraceKind::OpnInject { net, class, src, dst } => (
            lane_opn(g, net),
            format!("inject {}", class.name()),
            format!("\"src\":\"{src}\",\"dst\":\"{dst}\",\"net\":{net}"),
        ),
        TraceKind::OpnEject { net, class, src, dst, hops, queued } => (
            lane_opn(g, net),
            format!("eject {}", class.name()),
            format!(
                "\"src\":\"{src}\",\"dst\":\"{dst}\",\"net\":{net},\"hops\":{hops},\
                 \"queued\":{queued}"
            ),
        ),
        TraceKind::LsqInsert { dt, frame, lsid, store } => (
            lane_tile(g, TileId::Dt(dt)),
            format!("lsq {} f{}", if store { "store" } else { "load" }, frame.0),
            format!("\"frame\":{},\"lsid\":{lsid},\"store\":{store}", frame.0),
        ),
        TraceKind::LsqWakeup { dt, frame, lsid } => (
            lane_tile(g, TileId::Dt(dt)),
            format!("lsq wakeup f{}", frame.0),
            format!("\"frame\":{},\"lsid\":{lsid}", frame.0),
        ),
        TraceKind::WritesDone { rt, frame } => (
            lane_tile(g, TileId::Rt(rt)),
            format!("writes done f{}", frame.0),
            format!("\"frame\":{}", frame.0),
        ),
        TraceKind::StoresDone { frame } => (
            lane_tile(g, TileId::Dt(0)),
            format!("stores done f{}", frame.0),
            format!("\"frame\":{}", frame.0),
        ),
        TraceKind::BlockComplete { frame } => {
            (LANE_GT, format!("complete f{}", frame.0), format!("\"frame\":{}", frame.0))
        }
        TraceKind::CommitCmd { frame } => {
            (LANE_GT, format!("commit f{}", frame.0), format!("\"frame\":{}", frame.0))
        }
        TraceKind::CommitWave { tile, frame } => (
            lane_tile(g, tile),
            format!("commit wave f{}", frame.0),
            format!("\"frame\":{}", frame.0),
        ),
        TraceKind::FlushWave { tile, mask } => {
            (lane_tile(g, tile), "flush wave".to_string(), format!("\"mask\":\"{mask:#010b}\""))
        }
        TraceKind::CommitAck { tile, frame } => {
            (lane_tile(g, tile), format!("ack f{}", frame.0), format!("\"frame\":{}", frame.0))
        }
        TraceKind::BlockAck { frame, pc } => (
            LANE_GT,
            format!("dealloc f{}", frame.0),
            format!("\"frame\":{},\"pc\":\"{pc:#x}\"", frame.0),
        ),
        TraceKind::Violation { dt, frame } => (
            lane_tile(g, TileId::Dt(dt)),
            format!("violation f{}", frame.0),
            format!("\"frame\":{}", frame.0),
        ),
        TraceKind::RefillStart { it, addr } => {
            (lane_it(it), "refill".to_string(), format!("\"addr\":\"{addr:#x}\""))
        }
        TraceKind::RefillDone { it, addr } => {
            (lane_it(it), "refill done".to_string(), format!("\"addr\":\"{addr:#x}\""))
        }
        TraceKind::OcnInject { port, addr, write } => (
            lane_ocn(g),
            format!("inject {}", if write { "writeback" } else { "fill" }),
            format!("\"port\":{port},\"addr\":\"{addr:#x}\",\"write\":{write}"),
        ),
        TraceKind::OcnEject { port, addr, write } => (
            lane_ocn(g),
            format!("eject {}", if write { "ack" } else { "fill" }),
            format!("\"port\":{port},\"addr\":\"{addr:#x}\",\"write\":{write}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceKind {
        TraceKind::FetchIssued { frame: FrameId((i % 8) as u8), pc: i * 64 }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        let mut called = false;
        t.record(0, || {
            called = true;
            ev(0)
        });
        assert!(!called, "closure must not run when disabled");
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn ring_drops_oldest_without_reallocating() {
        let mut t = Tracer::enabled(4);
        for i in 0..10u64 {
            t.record(i, || ev(i));
        }
        let base_cap = t.buf.capacity();
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest events evicted first");
        for i in 10..1000u64 {
            t.record(i, || ev(i));
        }
        assert_eq!(t.buf.capacity(), base_cap, "ring must not reallocate");
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn clear_keeps_enabled_and_capacity() {
        let mut t = Tracer::enabled(8);
        for i in 0..20u64 {
            t.record(i, || ev(i));
        }
        t.clear();
        assert!(t.is_enabled());
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
        t.record(5, || ev(5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let mut t = Tracer::enabled(64);
        t.record(1, || TraceKind::FetchIssued { frame: FrameId(0), pc: 0x80 });
        t.record(3, || TraceKind::OpnInject {
            net: 0,
            class: OpnClass::Operand,
            src: TileId::Et(0, 0),
            dst: TileId::Et(1, 2),
        });
        t.record(7, || TraceKind::OpnEject {
            net: 0,
            class: OpnClass::Operand,
            src: TileId::Et(0, 0),
            dst: TileId::Et(1, 2),
            hops: 3,
            queued: 1,
        });
        let json = t.chrome_trace();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"hops\":3"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("ET(1,2)"));
    }
}
