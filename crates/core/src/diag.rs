//! The hang diagnoser: when a run times out, snapshot which frames,
//! tiles, and micronets still hold work and render a readable
//! deadlock report.
//!
//! A distributed machine hangs distributedly: the GT may be waiting on
//! a `WritesDone` that an RT never sent because an operand is parked
//! in an OPN eject queue nobody drains. A bare "timeout after N
//! cycles" forces a debugging session; a [`HangReport`] names the
//! stuck frame, what it is waiting for, and where the oldest
//! undelivered message sits.

use std::fmt;

/// One in-flight frame and what it is still waiting for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDiag {
    /// Frame slot (0..8).
    pub frame: u8,
    /// GT lifecycle state name (`Fetching`, `Executing`, ...).
    pub state: String,
    /// Block header address.
    pub pc: u64,
    /// Human-readable list of missing completion conditions, empty
    /// when nothing is outstanding at the GT.
    pub waiting_on: String,
}

/// One tile still holding queued work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDiag {
    /// Tile name (`GT`, `IT2`, `RT0`, `ET(1,3)`, `DT0`).
    pub tile: String,
    /// What it holds (station counts, queue depths, outbox length).
    pub detail: String,
}

/// One micronet with undelivered messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDiag {
    /// Network name (`OPN0`, `GDN row 2`, `GSN/DT`, ...).
    pub net: String,
    /// Messages still in the network (or in an undrained eject queue).
    pub pending: usize,
    /// Description of the oldest undelivered message, when known.
    pub oldest: Option<String>,
}

/// A snapshot of everything still holding work at timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Cycle of the snapshot.
    pub cycle: u64,
    /// Frames in flight at the GT.
    pub frames_in_flight: usize,
    /// Per-frame status.
    pub frames: Vec<FrameDiag>,
    /// Tiles with queued work.
    pub tiles: Vec<TileDiag>,
    /// Networks with undelivered messages.
    pub nets: Vec<NetDiag>,
}

impl HangReport {
    /// One-line summary: the most stuck-looking frame and the net
    /// holding the oldest undelivered message.
    pub fn summary(&self) -> String {
        let frame = self
            .frames
            .first()
            .map(|f| {
                format!("frame {} {} pc={:#x} awaits [{}]", f.frame, f.state, f.pc, f.waiting_on)
            })
            .unwrap_or_else(|| "no frames in flight".to_string());
        let net = self
            .nets
            .iter()
            .find(|n| n.oldest.is_some())
            .map(|n| {
                format!("; oldest undelivered: {} on {}", n.oldest.as_deref().unwrap_or(""), n.net)
            })
            .unwrap_or_default();
        format!("{frame}{net}")
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hang snapshot at cycle {} ({} frames in flight)",
            self.cycle, self.frames_in_flight
        )?;
        if self.frames.is_empty() {
            writeln!(f, "  frames: none in flight")?;
        }
        for fr in &self.frames {
            writeln!(
                f,
                "  frame {}: {} pc={:#x} waiting on [{}]",
                fr.frame, fr.state, fr.pc, fr.waiting_on
            )?;
        }
        for t in &self.tiles {
            writeln!(f, "  tile {}: {}", t.tile, t.detail)?;
        }
        for n in &self.nets {
            match &n.oldest {
                Some(o) => writeln!(f, "  net {}: {} pending, oldest {}", n.net, n.pending, o)?,
                None => writeln!(f, "  net {}: {} pending", n.net, n.pending)?,
            }
        }
        if self.tiles.is_empty() && self.nets.is_empty() {
            writeln!(f, "  all tiles and networks drained (GT-side stall)")?;
        }
        Ok(())
    }
}
