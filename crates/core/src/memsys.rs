//! The pluggable secondary memory system behind the L1 banks.
//!
//! [`MemSys`] is the core-side adapter for
//! [`CoreConfig::mem_backend`](crate::CoreConfig): the perfect-L2
//! variant answers every fill after a flat latency and holds no state
//! at all, while the NUCA variant owns a
//! [`trips_mem::SecondarySystem`] and carries DT MSHR fills, IT
//! I-cache refills, and commit-time store writebacks as [`MemReq`]
//! packets over the 4×10 OCN.
//!
//! The backend is **timing-only**: load values are read from the
//! core's memory image at execute time (with LSQ forwarding overlaid),
//! and committed stores write that image directly, so the secondary
//! system only decides *when* a fill completes or a store-commit
//! acknowledgement returns — never what a load observes. That is the
//! same timing/data split the NUCA model itself uses (banks hold tags
//! only), and it is why the two backends are architecturally
//! interchangeable (see DESIGN.md §5d for the determinism argument).
//!
//! Per client (each DT and each IT owns one OCN port) the adapter
//! keeps a FIFO of requests the network has not yet accepted and a
//! FIFO of completions the tile has not yet consumed, supporting any
//! number of outstanding requests per client. Arbitration is
//! deterministic: pending queues are drained in fixed client order
//! every tick, and the OCN itself resolves contention with its own
//! deterministic round-robin.
//!
//! ## Sharing one NUCA between cores
//!
//! The prototype chip has **two** cores on the same secondary system
//! (§2), so the client-side state lives in an [`Adapter`] that does
//! not own the [`SecondarySystem`]: a solo [`Processor`] wraps both
//! together (`Imp::Owned`, behaviourally identical to the original
//! single-owner design), while a [`Chip`](crate::chip::Chip) gives
//! each core an `Imp::Shared` adapter bound to a disjoint
//! [`PortMap`] slice of the die's OCN client ports — computed from
//! [`OcnGeometry`] for any 1..=16-core die — and drives the
//! inject → `SecondarySystem::tick` → drain phases itself, inserting
//! a round-robin [`BankArb`] between cores that converge on one bank.
//!
//! [`Processor`]: crate::Processor

use std::collections::VecDeque;

use trips_mem::{MemReq, OcnGeometry, SecondarySystem, ID_COH};

use crate::config::{CoreConfig, CoreGeometry, MemBackend};
use crate::stats::MemSysStats;
use crate::trace::{TraceKind, Tracer};

/// Clients of the secondary system, in deterministic arbitration
/// order: the DTs, then the ITs (the prototype's four-then-five).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemClient {
    /// Data tile (geometry-sized column; `0..4` on the prototype).
    Dt(u8),
    /// Instruction tile (`0..5` on the prototype).
    It(u8),
}

impl MemClient {
    /// Flat client index: DTs first, then ITs. The split point is the
    /// geometry's DT count, so every geometry keeps the prototype's
    /// deterministic arbitration order over its own prefix.
    fn index(self, num_dts: usize) -> usize {
        match self {
            MemClient::Dt(d) => d as usize,
            MemClient::It(i) => num_dts + i as usize,
        }
    }
}

/// A core's slice of the secondary system: which OCN client ports its
/// DTs and ITs drive, and the physical-address offset that keeps its
/// lines from aliasing another core's in the shared bank tags.
///
/// The prototype gives each L1 bank a private OCN link (§3.6): core 0
/// keeps the original solo mapping (DTs on west ports 0..4, ITs on
/// east ports 10..15), core 1 takes the remaining ports of the block.
/// Dies beyond two cores tile that block per [`OcnGeometry`], so
/// every slot's map is a whole-block translation of one of the two
/// prototype slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PortMap {
    /// First OCN port of the DT clients.
    dt_base: usize,
    /// First OCN port of the IT clients.
    it_base: usize,
    /// Added to every request address: cores run disjoint address
    /// spaces (no coherence in the model), so their lines must not
    /// alias in the shared bank tags. Zero for a solo core. The
    /// offset is a multiple of 2^40, invisible to bank striping and
    /// set indexing (both divide 2^34 line indices by small powers of
    /// two), so it shifts *which* tags a core occupies, never *where*
    /// its lines are homed.
    phys_base: u64,
    /// The die block this core lives in — its bank-stat slice of the
    /// shared system (block-local, so a core of any die reports the
    /// same 16-bank vectors a solo run does).
    block: usize,
}

impl PortMap {
    /// The solo mapping the single-`Processor` path has always used.
    pub(crate) const SOLO: PortMap = PortMap { dt_base: 0, it_base: 10, phys_base: 0, block: 0 };

    /// The mapping for core `k` of an `ncores`-core die, computed
    /// from [`OcnGeometry`]. Core 0 is exactly [`PortMap::SOLO`] —
    /// the bit-identity anchor for the single-core-chip pin test —
    /// and `for_core(1, 2)` is the dual-core prototype's hand map
    /// this computation replaced (pinned by a test below).
    pub(crate) fn for_core(k: usize, ncores: usize) -> PortMap {
        assert!(k < ncores, "core {k} of an {ncores}-core die");
        let geo = OcnGeometry::for_cores(ncores);
        PortMap {
            dt_base: geo.core_dt_base(k),
            it_base: geo.core_it_base(k),
            phys_base: (k as u64) << 40,
            block: geo.core_block(k),
        }
    }

    /// The shared-memory mapping for core `k`: the same port slice as
    /// [`PortMap::for_core`], but `phys_base = 0` — every core names
    /// the **same** physical lines, which is the whole point of the
    /// coherent mode (the directory, not address disjointness, keeps
    /// the bank tags honest).
    pub(crate) fn for_core_shared(k: usize, ncores: usize) -> PortMap {
        PortMap { phys_base: 0, ..PortMap::for_core(k, ncores) }
    }

    fn port_of(&self, c: usize, num_dts: usize) -> usize {
        if c < num_dts {
            self.dt_base + c
        } else {
            self.it_base + (c - num_dts)
        }
    }

    /// All OCN ports this map drives, for tagging. Every supported
    /// geometry's clients fit the prototype port blocks: `num_dts ≤ 8`
    /// stays below `it_base = 10`, and `num_its ≤ 9` fits the ten
    /// I-side ports.
    pub(crate) fn ports(&self, geom: CoreGeometry) -> impl Iterator<Item = usize> + '_ {
        let num_dts = geom.num_dts();
        (0..num_dts + geom.num_its()).map(move |c| self.port_of(c, num_dts))
    }
}

/// Request-id bit marking a line fill; store writebacks carry the
/// committing frame index instead, so a response is self-describing.
/// Fill ids also carry the **core-local** line index, so completions
/// are recovered from the id and never from the (possibly
/// `phys_base`-offset) address.
const ID_FILL: u64 = 1 << 63;

/// A completion delivered back to a client tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MemEvent {
    /// A requested line arrived (fill the MSHR / refill chunk).
    Fill {
        /// The 64-byte line index (`addr >> 6`).
        line: u64,
    },
    /// A commit-time store writeback was acknowledged (the ESN's role
    /// in the hardware: L2-side store completion feeding commit).
    StoreAck {
        /// The committing frame the writeback belonged to.
        frame: u8,
    },
}

/// How a fill request will complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillPath {
    /// Perfect backend: the fill completes at this cycle.
    At(u64),
    /// NUCA backend: the fill completes via a later
    /// [`MemEvent::Fill`].
    Queued,
}

/// Per-cycle round-robin arbitration between cores converging on one
/// NUCA bank: within a core the fixed client order stands (so a solo
/// core is never restricted), but across cores each bank admits
/// injections from only one core per cycle. The winning order rotates
/// every cycle, bounding any core's wait for a contested bank to
/// `ncores - 1` cycles — the starvation-freedom the arbitration tests
/// pin.
pub(crate) struct BankArb {
    /// Which core (if any) holds each bank this cycle.
    granted: Vec<Option<u8>>,
    /// Cumulative cross-core conflict stalls per bank.
    pub(crate) conflict_stalls: Vec<u64>,
}

impl BankArb {
    pub(crate) fn new(banks: usize) -> BankArb {
        BankArb { granted: vec![None; banks], conflict_stalls: vec![0; banks] }
    }

    /// Clears the per-cycle grants (call once per chip cycle).
    pub(crate) fn begin_cycle(&mut self) {
        self.granted.fill(None);
    }

    /// Whether `core` may inject to `bank` this cycle; a grant holds
    /// the bank for that core for the rest of the cycle. A refusal is
    /// recorded as a conflict stall against the bank.
    fn try_grant(&mut self, bank: usize, core: u8) -> bool {
        match self.granted[bank] {
            None => {
                self.granted[bank] = Some(core);
                true
            }
            Some(owner) if owner == core => true,
            Some(_) => {
                self.conflict_stalls[bank] += 1;
                false
            }
        }
    }
}

/// Client-side state of a NUCA-backed core: the request/completion
/// FIFOs, the conservation ledger, and the per-core statistics. Owns
/// no network — the [`SecondarySystem`] is passed into
/// [`Adapter::inject`]/[`Adapter::drain`] by whoever owns it (the
/// solo `MemSys` or the chip).
struct Adapter {
    ports: PortMap,
    /// Coherent (shared-memory) mode: D-side fills become MSI GetS,
    /// store writebacks become GetM, and received invalidations are
    /// acknowledged from the [`Adapter::coh_pending`] side channel.
    coherent: bool,
    /// Client split point (DTs before, ITs after), from the geometry.
    num_dts: usize,
    /// Total clients (`num_dts + num_its`).
    num_clients: usize,
    /// Per-client requests the network has not accepted yet.
    pending: Vec<VecDeque<MemReq>>,
    /// Per-client invalidation acks awaiting injection. Coherence
    /// tokens live entirely outside the request/response ledger
    /// (`outstanding`/`issued`/`delivered` never see them); they take
    /// priority over `pending` so a stalled writeback can never wedge
    /// the ack that would release it.
    coh_pending: Vec<VecDeque<MemReq>>,
    /// Per-client invalidated lines the owning DT has not consumed
    /// yet. The DT drops its tag *before* the ack is queued (see
    /// [`MemSys::ack_inval`]), which is what makes the chip's SWMR
    /// invariant sound: by the time the directory counts the last ack,
    /// every victim copy is provably gone.
    inval_ready: Vec<VecDeque<u64>>,
    /// Per-client completions the tile has not consumed yet.
    ready: Vec<VecDeque<MemEvent>>,
    /// Per-client accepted-but-undelivered request count (the
    /// conservation ledger: pending + in-system + ready).
    outstanding: Vec<u64>,
    /// Committed stores awaiting chip-level propagation to every
    /// core's replica (coherent mode only): `(ea, val, bytes)` in
    /// commit-drain order.
    prop: Vec<(u64, u64, usize)>,
    /// Fill-request issue times, for the miss-latency histogram:
    /// `(client, line, requested_at)`.
    sent_at: Vec<(u64, u64, u64)>,
    /// Requests accepted into the OCN.
    issued: u64,
    /// Responses popped out of the OCN.
    delivered: u64,
    stats: MemSysStats,
}

impl Adapter {
    fn new(ports: PortMap, geom: CoreGeometry, coherent: bool) -> Adapter {
        let num_clients = geom.num_dts() + geom.num_its();
        Adapter {
            ports,
            coherent,
            num_dts: geom.num_dts(),
            num_clients,
            pending: vec![VecDeque::new(); num_clients],
            coh_pending: vec![VecDeque::new(); num_clients],
            inval_ready: vec![VecDeque::new(); num_clients],
            ready: vec![VecDeque::new(); num_clients],
            outstanding: vec![0; num_clients],
            prop: Vec::new(),
            sent_at: Vec::new(),
            issued: 0,
            delivered: 0,
            stats: MemSysStats::default(),
        }
    }

    fn push_fill(&mut self, client: MemClient, line: u64) {
        let c = client.index(self.num_dts);
        debug_assert_eq!(line << 6 >> 6, line, "line index collides with phys_base");
        let id = ID_FILL | line;
        let addr = self.ports.phys_base | (line << 6);
        // I-side refills stay plain reads even in coherent mode: code
        // is never stored to, so instruction lines need no sharer
        // tracking.
        let req = if self.coherent && matches!(client, MemClient::Dt(_)) {
            MemReq::get_s(id, addr)
        } else {
            MemReq::read_line(id, addr)
        };
        self.pending[c].push_back(req);
        self.outstanding[c] += 1;
        match client {
            MemClient::Dt(_) => self.stats.dside_fills += 1,
            MemClient::It(_) => self.stats.iside_fills += 1,
        }
    }

    fn push_store(&mut self, dt: u8, frame: u8, ea: u64, val: u64, bytes: usize) {
        let c = MemClient::Dt(dt).index(self.num_dts);
        let id = u64::from(frame);
        let addr = self.ports.phys_base | ea;
        let req = if self.coherent {
            self.prop.push((ea, val, bytes));
            MemReq::get_m(id, addr, [0; 64])
        } else {
            MemReq::write_line(id, addr, [0; 64])
        };
        self.pending[c].push_back(req);
        self.outstanding[c] += 1;
        self.stats.store_writebacks += 1;
    }

    fn quiet(&self) -> bool {
        self.outstanding.iter().all(|&o| o == 0)
            && self.coh_pending.iter().all(VecDeque::is_empty)
            && self.inval_ready.iter().all(VecDeque::is_empty)
    }

    /// True when the adapter itself has same-cycle work: a request
    /// awaiting injection or a completion awaiting its tile. Packets
    /// inside the OCN/banks are the [`SecondarySystem`]'s events, not
    /// the adapter's.
    fn busy_now(&self) -> bool {
        self.pending.iter().any(|q| !q.is_empty())
            || self.coh_pending.iter().any(|q| !q.is_empty())
            || self.inval_ready.iter().any(|q| !q.is_empty())
            || self.ready.iter().any(|q| !q.is_empty())
    }

    /// Injects pending requests into `sys` in fixed client order. With
    /// an arbiter, a client whose head request is homed at a bank
    /// another core already holds this cycle stalls in place
    /// (preserving its FIFO order); without one, only the OCN's own
    /// backpressure can refuse a request — the solo behaviour.
    fn inject(
        &mut self,
        now: u64,
        sys: &mut SecondarySystem,
        tracer: &mut Tracer,
        mut arb: Option<(&mut BankArb, u8)>,
    ) {
        for c in 0..self.num_clients {
            let port = self.ports.port_of(c, self.num_dts);
            // Invalidation acks first — outside the issued/delivered
            // ledger, and never queued behind a request whose own
            // completion may be waiting on this very ack. A client
            // whose ack stalls injects nothing else this cycle.
            let mut ack_stalled = false;
            while let Some(req) = self.coh_pending[c].front() {
                let addr = req.addr;
                if let Some((arb, core)) = arb.as_mut() {
                    if !arb.try_grant(sys.home_bank(port, addr), *core) {
                        self.stats.bank_conflict_stalls += 1;
                        ack_stalled = true;
                        break;
                    }
                }
                if sys.request(now, port, req.clone()) {
                    self.coh_pending[c].pop_front();
                    tracer.record(now, || TraceKind::OcnInject {
                        port: port as u8,
                        addr,
                        write: false,
                    });
                } else {
                    self.stats.inject_stalls += 1;
                    ack_stalled = true;
                    break;
                }
            }
            if ack_stalled {
                continue;
            }
            while let Some(req) = self.pending[c].front() {
                let is_fill = req.id & ID_FILL != 0;
                let addr = req.addr;
                if let Some((arb, core)) = arb.as_mut() {
                    if !arb.try_grant(sys.home_bank(port, addr), *core) {
                        self.stats.bank_conflict_stalls += 1;
                        break;
                    }
                }
                if sys.request(now, port, req.clone()) {
                    let line = req.id & !ID_FILL;
                    self.pending[c].pop_front();
                    self.issued += 1;
                    if is_fill {
                        self.sent_at.push((c as u64, line, now));
                    }
                    tracer.record(now, || TraceKind::OcnInject {
                        port: port as u8,
                        addr,
                        write: !is_fill,
                    });
                } else {
                    self.stats.inject_stalls += 1;
                    break;
                }
            }
        }
    }

    /// Steers responses that arrived at this core's ports back into
    /// the per-client completion queues (consumed by the tiles next
    /// cycle). Fill lines are recovered from the request id, which
    /// carries the core-local line index regardless of `phys_base`.
    fn drain(&mut self, now: u64, sys: &mut SecondarySystem, tracer: &mut Tracer) {
        for c in 0..self.num_clients {
            let port = self.ports.port_of(c, self.num_dts);
            while let Some(resp) = sys.pop_response(now, port) {
                // An unsolicited invalidation from the home directory:
                // park it for the owning DT, which drops its tag and
                // poisons overlapping MSHRs *before* acknowledging
                // (via [`MemSys::ack_inval`] → `coh_pending`). The ack
                // therefore proves the copy is gone — the ordering the
                // directory's SWMR argument rests on.
                if resp.id & ID_COH != 0 {
                    self.stats.invals_received += 1;
                    self.inval_ready[c].push_back(resp.id & !ID_COH);
                    continue;
                }
                self.delivered += 1;
                let is_fill = resp.id & ID_FILL != 0;
                tracer.record(now, || TraceKind::OcnEject {
                    port: port as u8,
                    addr: resp.addr,
                    write: !is_fill,
                });
                if is_fill {
                    let line = resp.id & !ID_FILL;
                    if let Some(k) =
                        self.sent_at.iter().position(|&(sc, sl, _)| sc == c as u64 && sl == line)
                    {
                        let (_, _, at) = self.sent_at.swap_remove(k);
                        // 8-cycle buckets: a NUCA round trip is tens of
                        // cycles, far past the histogram's 0..31 range.
                        self.stats.fill_latency.record((now - at) / 8);
                    }
                    self.ready[c].push_back(MemEvent::Fill { line });
                } else {
                    self.ready[c].push_back(MemEvent::StoreAck { frame: resp.id as u8 });
                }
            }
        }
    }

    /// Updates the outstanding high-water mark (end of each tick the
    /// adapter participated in).
    fn note_peak(&mut self) {
        let total: u64 = self.outstanding.iter().sum();
        self.stats.peak_outstanding = self.stats.peak_outstanding.max(total);
    }

    /// The client-side conservation ledger: every request handed over
    /// is exactly one of pending, inside the system, or ready.
    fn audit_ledger(&self) -> Result<(), String> {
        let ledger: u64 = self.outstanding.iter().sum();
        let held: u64 = self.pending.iter().map(|q| q.len() as u64).sum::<u64>()
            + (self.issued - self.delivered)
            + self.ready.iter().map(|q| q.len() as u64).sum::<u64>();
        if ledger != held {
            return Err(format!("memsys ledger {ledger} != pending + in-flight + ready {held}"));
        }
        Ok(())
    }

    fn diag(&self, in_system: u64) -> String {
        let pending: usize = self.pending.iter().map(VecDeque::len).sum::<usize>()
            + self.coh_pending.iter().map(VecDeque::len).sum::<usize>()
            + self.inval_ready.iter().map(VecDeque::len).sum::<usize>();
        let ready: usize = self.ready.iter().map(VecDeque::len).sum();
        format!(
            "{pending} request(s) awaiting injection, {in_system} in the OCN/banks, \
             {ready} completion(s) unconsumed"
        )
    }
}

/// The secondary memory system in any backend configuration.
pub(crate) struct MemSys {
    imp: Imp,
}

enum Imp {
    /// Flat-latency answer machine; holds no state.
    Perfect { latency: u64 },
    /// A solo core owning its private NUCA — the original
    /// single-processor path.
    Owned { sys: Box<SecondarySystem>, ad: Adapter },
    /// One core of a chip: the [`SecondarySystem`] lives in the
    /// [`Chip`](crate::chip::Chip), which drives this adapter's
    /// inject/drain phases. [`MemSys::tick`] is a no-op.
    Shared { ad: Adapter },
}

impl MemSys {
    /// Builds the backend selected by `cfg.mem_backend`, installing
    /// the fault plan's OCN stalls when one is configured.
    pub(crate) fn new(cfg: &CoreConfig) -> MemSys {
        let imp = match &cfg.mem_backend {
            MemBackend::PerfectL2 { latency } => Imp::Perfect { latency: *latency },
            MemBackend::Nuca(mc) => {
                let mut sys = SecondarySystem::new(mc.clone());
                if let Some(plan) = &cfg.faults {
                    sys.set_ocn_fault(plan.ocn_fault().as_ref());
                }
                Imp::Owned {
                    sys: Box::new(sys),
                    ad: Adapter::new(PortMap::SOLO, cfg.geometry, false),
                }
            }
        };
        MemSys { imp }
    }

    /// A shared-NUCA adapter for core `k` of an `ncores`-core chip
    /// (the chip owns the [`SecondarySystem`] and drives the phases).
    pub(crate) fn shared(k: usize, ncores: usize, geom: CoreGeometry) -> MemSys {
        MemSys { imp: Imp::Shared { ad: Adapter::new(PortMap::for_core(k, ncores), geom, false) } }
    }

    /// A *coherent* shared-NUCA adapter: same port slice as
    /// [`MemSys::shared`] but `phys_base = 0` (one physical address
    /// space), D-side fills sent as GetS, writebacks as GetM, and
    /// received invalidations delivered to the owning DT (which drops
    /// its copy, then acknowledges via [`MemSys::ack_inval`]).
    pub(crate) fn shared_coherent(k: usize, ncores: usize, geom: CoreGeometry) -> MemSys {
        MemSys {
            imp: Imp::Shared { ad: Adapter::new(PortMap::for_core_shared(k, ncores), geom, true) },
        }
    }

    /// The port map of core `k` of an `ncores`-core die (for tagging
    /// the shared system's ports).
    pub(crate) fn ports_for_core(k: usize, ncores: usize) -> PortMap {
        PortMap::for_core(k, ncores)
    }

    /// A D-side line fill for DT `dt` (line = `ea >> 6`).
    pub(crate) fn dside_fill(&mut self, now: u64, dt: u8, line: u64) -> FillPath {
        self.fill(now, MemClient::Dt(dt), line)
    }

    /// An I-side line fill for IT `it` (`addr` is line-aligned).
    pub(crate) fn iside_fill(&mut self, now: u64, it: u8, addr: u64) -> FillPath {
        self.fill(now, MemClient::It(it), addr >> 6)
    }

    fn fill(&mut self, now: u64, client: MemClient, line: u64) -> FillPath {
        match &mut self.imp {
            Imp::Perfect { latency } => FillPath::At(now + *latency),
            Imp::Owned { ad, .. } | Imp::Shared { ad } => {
                ad.push_fill(client, line);
                FillPath::Queued
            }
        }
    }

    /// A commit-time store writeback from DT `dt` for frame `frame`
    /// (ESN-style). Returns true when an acknowledgement will follow
    /// as a [`MemEvent::StoreAck`]; the perfect backend acknowledges
    /// implicitly and returns false. The line payload is zeros — the
    /// core's memory image is the data authority (timing-only model).
    /// `val`/`bytes` matter only to the coherent mode, which queues
    /// the store for chip-level propagation to every core's replica.
    pub(crate) fn store_write(
        &mut self,
        dt: u8,
        frame: u8,
        ea: u64,
        val: u64,
        bytes: usize,
    ) -> bool {
        match &mut self.imp {
            Imp::Perfect { .. } => false,
            Imp::Owned { ad, .. } | Imp::Shared { ad } => {
                ad.push_store(dt, frame, ea, val, bytes);
                true
            }
        }
    }

    /// Takes the committed stores queued for chip-level propagation
    /// (coherent mode; empty otherwise): `(ea, val, bytes)` in
    /// commit-drain order.
    pub(crate) fn take_propagations(&mut self) -> Vec<(u64, u64, usize)> {
        match &mut self.imp {
            Imp::Perfect { .. } => Vec::new(),
            Imp::Owned { ad, .. } | Imp::Shared { ad } => std::mem::take(&mut ad.prop),
        }
    }

    /// The OCN port DT `dt` drives, for directory/cache agreement
    /// checks (coherent chips only; the perfect backend has no ports).
    pub(crate) fn dt_port(&self, dt: u8) -> usize {
        match &self.imp {
            Imp::Perfect { .. } => unreachable!("dt_port on a perfect backend"),
            Imp::Owned { ad, .. } | Imp::Shared { ad } => ad.ports.port_of(dt as usize, ad.num_dts),
        }
    }

    /// Pops the next completion for `client`, if one is ready.
    pub(crate) fn pop_event(&mut self, client: MemClient) -> Option<MemEvent> {
        match &mut self.imp {
            Imp::Perfect { .. } => None,
            Imp::Owned { ad, .. } | Imp::Shared { ad } => {
                let c = client.index(ad.num_dts);
                let ev = ad.ready[c].pop_front();
                if ev.is_some() {
                    ad.outstanding[c] -= 1;
                }
                ev
            }
        }
    }

    /// True when `client` has an unconsumed completion (keeps the tile
    /// ticking under clock gating — the event is invisible to the
    /// tile's own `active()` predicate).
    pub(crate) fn has_events(&self, client: MemClient) -> bool {
        match &self.imp {
            Imp::Perfect { .. } => false,
            Imp::Owned { ad, .. } | Imp::Shared { ad } => {
                let c = client.index(ad.num_dts);
                !ad.ready[c].is_empty() || !ad.inval_ready[c].is_empty()
            }
        }
    }

    /// True when this adapter runs the coherent (shared-memory)
    /// protocol — gates the DT behaviours that differ between the
    /// multiprogrammed and coherent chips (e.g. no silent line install
    /// at commit drain, which would break directory inclusion).
    pub(crate) fn is_coherent(&self) -> bool {
        match &self.imp {
            Imp::Perfect { .. } => false,
            Imp::Owned { ad, .. } | Imp::Shared { ad } => ad.coherent,
        }
    }

    /// Pops the next directory invalidation delivered to `client`
    /// (coherent mode). The DT must drop its tag and poison matching
    /// MSHRs, then call [`MemSys::ack_inval`] in the same tick.
    pub(crate) fn pop_inval(&mut self, client: MemClient) -> Option<u64> {
        match &mut self.imp {
            Imp::Perfect { .. } => None,
            Imp::Owned { ad, .. } | Imp::Shared { ad } => {
                ad.inval_ready[client.index(ad.num_dts)].pop_front()
            }
        }
    }

    /// Queues the acknowledgement for an invalidation previously
    /// popped via [`MemSys::pop_inval`]. Called *after* the victim
    /// copy is dropped; the ack is injected in the chip's memory phase
    /// (which runs after the core ticks of the same cycle), so the
    /// directory can only observe it once the drop has happened.
    pub(crate) fn ack_inval(&mut self, client: MemClient, line: u64) {
        match &mut self.imp {
            Imp::Perfect { .. } => unreachable!("ack_inval on a perfect backend"),
            Imp::Owned { ad, .. } | Imp::Shared { ad } => {
                ad.coh_pending[client.index(ad.num_dts)].push_back(MemReq::inval_ack(line));
            }
        }
    }

    /// One cycle, run after the tiles and nets: inject pending
    /// requests in client order, advance the OCN and banks, and steer
    /// arrived responses back to their client queues (consumed by the
    /// tiles next cycle). A no-op for the shared variant — the chip
    /// drives the same phases around the one shared system.
    pub(crate) fn tick(&mut self, now: u64, tracer: &mut Tracer) {
        let Imp::Owned { sys, ad } = &mut self.imp else {
            return;
        };
        if ad.quiet() {
            return;
        }
        ad.inject(now, sys, tracer, None);
        sys.tick(now);
        ad.drain(now, sys, tracer);
        ad.note_peak();
    }

    /// Chip phase 1: inject this core's pending requests through the
    /// shared `sys`, arbitrated per bank.
    pub(crate) fn shared_inject(
        &mut self,
        now: u64,
        sys: &mut SecondarySystem,
        tracer: &mut Tracer,
        arb: &mut BankArb,
        core: u8,
    ) {
        let Imp::Shared { ad } = &mut self.imp else {
            unreachable!("shared_inject on a non-shared memsys");
        };
        ad.inject(now, sys, tracer, Some((arb, core)));
    }

    /// Chip phase 2 (after `sys.tick`): collect this core's responses
    /// and update its outstanding high-water mark.
    pub(crate) fn shared_drain(
        &mut self,
        now: u64,
        sys: &mut SecondarySystem,
        tracer: &mut Tracer,
    ) {
        let Imp::Shared { ad } = &mut self.imp else {
            unreachable!("shared_drain on a non-shared memsys");
        };
        ad.drain(now, sys, tracer);
        ad.note_peak();
    }

    /// `(issued, delivered)` through this adapter, for the chip-level
    /// conservation audit (`Σ(issued−delivered) == sys.in_system()`).
    pub(crate) fn flow(&self) -> (u64, u64) {
        match &self.imp {
            Imp::Perfect { .. } => (0, 0),
            Imp::Owned { ad, .. } | Imp::Shared { ad } => (ad.issued, ad.delivered),
        }
    }

    /// Folds the shared system's counters (OCN, DRAM, banks) into
    /// this core's snapshot-to-be. Called by the chip when the core
    /// halts, so its [`MemSysStats`] describe the system state at its
    /// own halt time — exactly what a solo run reports. The per-bank
    /// vectors are sliced to the core's **own block**, so every core
    /// of every die reports the same 16-entry bank vectors a solo run
    /// does (on a one-block die the slice is the whole system —
    /// unchanged from the dual-core prototype). OCN and DRAM counters
    /// stay die-wide, as they always have.
    pub(crate) fn absorb_sys(&mut self, sys: &SecondarySystem) {
        let Imp::Shared { ad } = &mut self.imp else {
            unreachable!("absorb_sys on a non-shared memsys");
        };
        ad.stats.ocn = sys.ocn_stats();
        ad.stats.dram_accesses = sys.dram_accesses;
        let block = sys.geometry().block_banks(ad.ports.block);
        let (hits, misses): (Vec<u64>, Vec<u64>) =
            sys.bank_stats()[block.clone()].iter().copied().unzip();
        ad.stats.bank_hits = hits;
        ad.stats.bank_misses = misses;
        ad.stats.bank_peak_occupancy = sys.bank_peaks()[block].to_vec();
    }

    /// Cycle of the memory system's next state change, for the
    /// epoch-skipping scheduler. `Some(now)` while the adapter has
    /// same-cycle work (injections or undelivered completions); the
    /// owned backend then defers to its private system's timers. The
    /// perfect backend is stateless — fill timers live inside the
    /// requesting tile (DT MSHR `fill_at`, IT refill `done_at`) and
    /// are folded by that tile's own `next_wake`. For the shared
    /// variant the chip folds the one shared system's
    /// [`SecondarySystem::next_event`] itself.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        match &self.imp {
            Imp::Perfect { .. } => None,
            Imp::Owned { sys, ad } => {
                if ad.busy_now() {
                    Some(now)
                } else {
                    sys.next_event(now)
                }
            }
            Imp::Shared { ad } => {
                if ad.busy_now() {
                    Some(now)
                } else {
                    None
                }
            }
        }
    }

    /// True when nothing is pending anywhere: no unaccepted request,
    /// nothing inside the OCN or banks, no unconsumed completion. The
    /// complement of the work [`MemSys::tick`] could still do, so
    /// "quiesced" and "nothing to tick" can never disagree.
    pub(crate) fn quiet(&self) -> bool {
        match &self.imp {
            Imp::Perfect { .. } => true,
            Imp::Owned { ad, .. } | Imp::Shared { ad } => ad.quiet(),
        }
    }

    /// A run-end statistics snapshot (`None` for the perfect backend,
    /// keeping `CoreStats` bit-identical to the pre-backend model).
    /// The owned variant folds in its private system's counters; the
    /// shared variant reports whatever [`MemSys::absorb_sys`] last
    /// captured.
    pub(crate) fn stats_snapshot(&self) -> Option<MemSysStats> {
        match &self.imp {
            Imp::Perfect { .. } => None,
            Imp::Owned { sys, ad } => {
                let mut s = ad.stats.clone();
                s.ocn = sys.ocn_stats();
                s.dram_accesses = sys.dram_accesses;
                let (hits, misses): (Vec<u64>, Vec<u64>) = sys.bank_stats().into_iter().unzip();
                s.bank_hits = hits;
                s.bank_misses = misses;
                s.bank_peak_occupancy = sys.bank_peaks().to_vec();
                Some(s)
            }
            Imp::Shared { ad } => Some(ad.stats.clone()),
        }
    }

    /// Request/response conservation: every request a client handed
    /// over is exactly one of pending, inside the system, or ready —
    /// and, for the owned variant, the OCN's own packet accounting
    /// balances. (A shared adapter checks its ledger only; the
    /// system-wide equations are the chip's to audit, since no single
    /// core sees all the traffic.)
    ///
    /// # Errors
    ///
    /// A description of the first violated accounting equation.
    pub(crate) fn audit(&self) -> Result<(), String> {
        match &self.imp {
            Imp::Perfect { .. } => Ok(()),
            Imp::Owned { sys, ad } => {
                sys.audit().map_err(|e| format!("OCN: {e}"))?;
                let in_system = sys.in_system() as u64;
                if ad.issued - ad.delivered != in_system {
                    return Err(format!(
                        "memsys conservation broken: issued {} - delivered {} != in-system {}",
                        ad.issued, ad.delivered, in_system
                    ));
                }
                ad.audit_ledger()
            }
            Imp::Shared { ad } => ad.audit_ledger(),
        }
    }

    /// Queued work for the hang diagnoser (`None` when quiet).
    pub(crate) fn diag(&self) -> Option<String> {
        match &self.imp {
            Imp::Perfect { .. } => None,
            Imp::Owned { sys, ad } => {
                if ad.quiet() {
                    return None;
                }
                Some(ad.diag(sys.in_system() as u64))
            }
            Imp::Shared { ad } => {
                if ad.quiet() {
                    return None;
                }
                Some(ad.diag(ad.issued - ad.delivered))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trips_harness::Rng;

    // The chip visits cores in `(rr + i) % n` order with `rr`
    // advancing every cycle; these properties hold for that order no
    // matter what the other cores demand, which is what makes the
    // bound a starvation-freedom guarantee rather than a benchmark
    // observation.

    #[test]
    fn contested_bank_wait_is_bounded_by_ncores_minus_one() {
        for n in [4usize, 8, 16] {
            let mut rng = Rng::new(0xbab5 ^ n as u64);
            let mut arb = BankArb::new(1);
            let mut want = vec![false; n];
            let mut waited = vec![0u64; n];
            for t in 0..20_000u64 {
                // Random flips keep a mix of persistent and bursty
                // demand; the wait counter runs only while a core
                // continuously wants the bank.
                for w in want.iter_mut() {
                    if rng.chance(1, 7) {
                        *w = !*w;
                    }
                }
                arb.begin_cycle();
                let rr = t as usize % n;
                for i in 0..n {
                    let k = (rr + i) % n;
                    if want[k] && !arb.try_grant(0, k as u8) {
                        waited[k] += 1;
                        assert!(
                            waited[k] < n as u64,
                            "core {k} of {n} waited {} cycles on a contested bank",
                            waited[k]
                        );
                    } else {
                        waited[k] = 0;
                    }
                }
            }
        }
    }

    #[test]
    fn saturated_bank_grants_rotate_fairly() {
        for n in [4usize, 8, 16] {
            let mut arb = BankArb::new(1);
            let mut grants = vec![0u64; n];
            let window = 25 * n as u64;
            for t in 0..window {
                arb.begin_cycle();
                let rr = t as usize % n;
                let mut winners = 0;
                for i in 0..n {
                    let k = (rr + i) % n;
                    if arb.try_grant(0, k as u8) {
                        grants[k] += 1;
                        winners += 1;
                    }
                }
                assert_eq!(winners, 1, "one bank admits exactly one core per cycle");
            }
            let min = *grants.iter().min().unwrap();
            let max = *grants.iter().max().unwrap();
            assert!(
                max - min <= 1,
                "grant counts drifted beyond rotation fairness over {window} cycles: {grants:?}"
            );
            assert_eq!(
                arb.conflict_stalls[0],
                window * (n as u64 - 1),
                "every cycle the {} losers must each record one conflict stall",
                n - 1
            );
        }
    }
}
